"""Unit tests for the geometric multipath channel model."""

import numpy as np
import pytest

from repro.phy.channel import (
    ChannelRealization,
    MultipathChannel,
    PropagationPath,
    delay_spread,
)
from repro.phy.geometry import Position, RoomGeometry, uniform_linear_array
from repro.phy.ofdm import SPEED_OF_LIGHT, sounding_layout


@pytest.fixture()
def arrays():
    tx = uniform_linear_array(Position(0.0, 0.0), 3, 0.03)
    rx = uniform_linear_array(Position(0.0, 3.0), 2, 0.03)
    return tx, rx


class TestMultipathChannel:
    def test_path_count_includes_los_walls_and_scatterers(self, arrays, layout20):
        tx, rx = arrays
        channel = MultipathChannel(num_scatterers=5, environment_seed=1)
        realization = channel.realize(tx, rx, layout20.config.carrier_frequency_hz)
        kinds = [p.kind for p in realization.paths]
        assert kinds.count("los") == 1
        assert kinds.count("wall") == 4
        assert kinds.count("scatter") == 5

    def test_cfr_shape_matches_layout_and_arrays(self, arrays, layout20):
        tx, rx = arrays
        channel = MultipathChannel(environment_seed=1)
        cfr = channel.realize(tx, rx, layout20.config.carrier_frequency_hz).cfr(layout20)
        assert cfr.shape == (layout20.num_subcarriers, 3, 2)
        assert np.iscomplexobj(cfr)

    def test_same_environment_seed_reproduces_channel(self, arrays, layout20):
        tx, rx = arrays
        fc = layout20.config.carrier_frequency_hz
        cfr_a = MultipathChannel(environment_seed=3).realize(tx, rx, fc).cfr(layout20)
        cfr_b = MultipathChannel(environment_seed=3).realize(tx, rx, fc).cfr(layout20)
        np.testing.assert_allclose(cfr_a, cfr_b)

    def test_different_environments_differ(self, arrays, layout20):
        tx, rx = arrays
        fc = layout20.config.carrier_frequency_hz
        cfr_a = MultipathChannel(environment_seed=3).realize(tx, rx, fc).cfr(layout20)
        cfr_b = MultipathChannel(environment_seed=4).realize(tx, rx, fc).cfr(layout20)
        assert not np.allclose(cfr_a, cfr_b)

    def test_moving_receiver_changes_channel(self, layout20):
        tx = uniform_linear_array(Position(0.0, 0.0), 3, 0.03)
        fc = layout20.config.carrier_frequency_hz
        channel = MultipathChannel(environment_seed=5)
        rx_near = uniform_linear_array(Position(0.0, 2.0), 2, 0.03)
        rx_far = uniform_linear_array(Position(0.5, 3.0), 2, 0.03)
        cfr_near = channel.realize(tx, rx_near, fc).cfr(layout20)
        cfr_far = channel.realize(tx, rx_far, fc).cfr(layout20)
        assert not np.allclose(cfr_near, cfr_far)
        # Closer receiver sees a stronger channel on average.
        assert np.mean(np.abs(cfr_near)) > np.mean(np.abs(cfr_far))

    def test_scatterers_lie_inside_the_room(self):
        room = RoomGeometry()
        channel = MultipathChannel(room=room, num_scatterers=10, environment_seed=0)
        for scatterer in channel.scatterers:
            assert room.contains(scatterer)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MultipathChannel(num_scatterers=-1)
        with pytest.raises(ValueError):
            MultipathChannel(wall_reflection_loss=1.5)

    def test_invalid_array_shapes_rejected(self, layout20):
        channel = MultipathChannel()
        with pytest.raises(ValueError):
            channel.realize(np.zeros((3,)), np.zeros((2, 2)), 5e9)
        with pytest.raises(ValueError):
            channel.realize(np.zeros((3, 2)), np.zeros((2, 3)), 5e9)


class TestChannelRealization:
    def test_single_los_path_matches_analytic_cfr(self, layout20):
        distances = np.full((1, 1), 3.0)
        realization = ChannelRealization(
            paths=[PropagationPath(distances_m=distances, gain=1.0, kind="los")],
            carrier_frequency_hz=layout20.config.carrier_frequency_hz,
        )
        cfr = realization.cfr(layout20)
        tau = 3.0 / SPEED_OF_LIGHT
        expected = np.exp(-2j * np.pi * layout20.frequencies_hz * tau)
        np.testing.assert_allclose(cfr[:, 0, 0], expected, atol=1e-12)

    def test_perturbed_keeps_geometry_but_changes_gains(self, arrays, layout20):
        tx, rx = arrays
        channel = MultipathChannel(environment_seed=1)
        base = channel.realize(tx, rx, layout20.config.carrier_frequency_hz)
        perturbed = base.perturbed(np.random.default_rng(0), gain_jitter=0.2)
        assert len(perturbed.paths) == len(base.paths)
        np.testing.assert_allclose(
            perturbed.paths[0].distances_m, base.paths[0].distances_m
        )
        assert not np.allclose(
            [p.gain for p in perturbed.paths], [p.gain for p in base.paths]
        )

    def test_antenna_count_properties(self, arrays, layout20):
        tx, rx = arrays
        channel = MultipathChannel(environment_seed=1)
        realization = channel.realize(tx, rx, layout20.config.carrier_frequency_hz)
        assert realization.num_tx_antennas == 3
        assert realization.num_rx_antennas == 2

    def test_empty_realization_rejected(self):
        with pytest.raises(ValueError):
            ChannelRealization(paths=[], carrier_frequency_hz=5e9)

    def test_mismatched_path_shapes_rejected(self):
        path_a = PropagationPath(distances_m=np.ones((2, 2)), gain=1.0)
        path_b = PropagationPath(distances_m=np.ones((3, 2)), gain=1.0)
        with pytest.raises(ValueError):
            ChannelRealization(paths=[path_a, path_b], carrier_frequency_hz=5e9)

    def test_delay_spread_is_positive_for_multipath(self, arrays, layout20):
        tx, rx = arrays
        channel = MultipathChannel(environment_seed=1)
        realization = channel.realize(tx, rx, layout20.config.carrier_frequency_hz)
        assert delay_spread(realization) > 0.0

    def test_delay_spread_is_zero_for_single_path(self, layout20):
        realization = ChannelRealization(
            paths=[PropagationPath(distances_m=np.full((1, 1), 2.0), gain=1.0)],
            carrier_frequency_hz=layout20.config.carrier_frequency_hz,
        )
        assert delay_spread(realization) == pytest.approx(0.0, abs=1e-15)
