"""Tests for the ASCII plotting helpers and the separability diagnostics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.ascii_plots import (
    PlotError,
    accuracy_comparison,
    bar_chart,
    heatmap,
    histogram,
    line_plot,
    sparkline,
)
from repro.analysis.separability import (
    LinearProbe,
    SeparabilityError,
    centroid_separability,
    linear_probe_accuracy,
)
from repro.datasets.containers import FeedbackSample


def _synthetic_samples(num_per_class=20, num_classes=3, separation=2.0, seed=0):
    """Tiny well-separated synthetic 'V~' samples for the probe tests."""
    rng = np.random.default_rng(seed)
    samples = []
    for cls in range(num_classes):
        centre = separation * rng.standard_normal((8, 2, 1)) + separation * cls
        for _ in range(num_per_class):
            matrix = centre + 0.1 * (
                rng.standard_normal((8, 2, 1)) + 1j * rng.standard_normal((8, 2, 1))
            )
            samples.append(
                FeedbackSample(v_tilde=matrix, module_id=cls, beamformee_id=1)
            )
    rng.shuffle(samples)
    return samples


class TestSparklineAndBars:
    def test_sparkline_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_sparkline_constant_series(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▄▄▄"

    def test_sparkline_rejects_empty_and_nan(self):
        with pytest.raises(PlotError):
            sparkline([])
        with pytest.raises(PlotError):
            sparkline([1.0, float("nan")])

    def test_bar_chart_renders_one_row_per_value(self):
        chart = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[1].count("█") == 10
        assert lines[0].count("█") == 5

    def test_bar_chart_validates_inputs(self):
        with pytest.raises(PlotError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(PlotError):
            bar_chart(["a"], [-1.0])
        with pytest.raises(PlotError):
            bar_chart(["a"], [1.0], width=0)

    def test_accuracy_comparison_includes_paper_value(self):
        text = accuracy_comparison([("S1", 0.98, 0.9802), ("S2", 0.75, None)])
        assert "paper" in text
        assert "S2" in text
        with pytest.raises(PlotError):
            accuracy_comparison([("S1", 1.5, None)])
        with pytest.raises(PlotError):
            accuracy_comparison([])

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=50))
    def test_sparkline_never_crashes_on_finite_input(self, values):
        assert len(sparkline(values)) == len(values)


class TestLineAndHistogram:
    def test_line_plot_has_requested_height(self):
        plot = line_plot(np.sin(np.linspace(0, 6, 50)), height=8, width=40)
        lines = plot.splitlines()
        assert len(lines) == 8 + 2  # header + rows + footer
        assert all(len(line) <= 40 for line in lines[1:-1])

    def test_line_plot_rejects_bad_dimensions(self):
        with pytest.raises(PlotError):
            line_plot([1.0, 2.0], height=1)
        with pytest.raises(PlotError):
            line_plot([1.0, 2.0], width=1)

    def test_histogram_counts_sum_to_sample_size(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=200)
        text = histogram(values, num_bins=8)
        counts = [int(line.rsplit(" ", 1)[-1]) for line in text.splitlines()]
        assert sum(counts) == 200

    def test_histogram_invalid_bins(self):
        with pytest.raises(PlotError):
            histogram([1.0, 2.0], num_bins=0)


class TestHeatmap:
    def test_heatmap_shape_and_labels(self):
        matrix = np.arange(12).reshape(3, 4)
        text = heatmap(matrix, row_labels=["r0", "r1", "r2"], col_labels=list("abcd"))
        lines = text.splitlines()
        assert len(lines) == 4  # header + 3 rows
        assert lines[1].startswith("r0")

    def test_heatmap_rejects_bad_labels(self):
        with pytest.raises(PlotError):
            heatmap(np.ones((2, 2)), row_labels=["only-one"])
        with pytest.raises(PlotError):
            heatmap(np.ones((2, 2)), col_labels=["a"])
        with pytest.raises(PlotError):
            heatmap(np.array([[np.inf, 1.0]]))

    def test_heatmap_darkest_cell_is_maximum(self):
        matrix = np.array([[0.0, 0.0], [0.0, 1.0]])
        text = heatmap(matrix)
        assert text.splitlines()[-1].endswith("@")


class TestLinearProbe:
    def test_probe_separates_well_separated_classes(self):
        samples = _synthetic_samples()
        split = int(0.8 * len(samples))
        accuracy = linear_probe_accuracy(samples[:split], samples[split:])
        assert accuracy > 0.9

    def test_probe_requires_fit_before_predict(self):
        probe = LinearProbe()
        with pytest.raises(SeparabilityError):
            probe.predict(_synthetic_samples(num_per_class=2))

    def test_probe_rejects_single_class(self):
        samples = _synthetic_samples(num_per_class=5, num_classes=1)
        with pytest.raises(SeparabilityError):
            LinearProbe().fit(samples)

    def test_probe_rejects_empty_input(self):
        with pytest.raises(SeparabilityError):
            LinearProbe().fit([])
        with pytest.raises(SeparabilityError):
            LinearProbe(epochs=0)

    def test_probe_is_deterministic_given_seed(self):
        samples = _synthetic_samples()
        split = int(0.8 * len(samples))
        first = linear_probe_accuracy(samples[:split], samples[split:], seed=3)
        second = linear_probe_accuracy(samples[:split], samples[split:], seed=3)
        assert first == second


class TestCentroidSeparability:
    def test_separated_classes_have_high_fisher_ratio(self):
        report = centroid_separability(_synthetic_samples(separation=3.0))
        assert report.num_classes == 3
        assert report.fisher_ratio > 1.0
        assert report.nearest_centroid_accuracy > 0.9

    def test_overlapping_classes_have_lower_ratio(self):
        separated = centroid_separability(_synthetic_samples(separation=3.0, seed=1))
        overlapping = centroid_separability(_synthetic_samples(separation=0.05, seed=1))
        assert separated.fisher_ratio > overlapping.fisher_ratio
        assert (
            separated.nearest_centroid_accuracy
            >= overlapping.nearest_centroid_accuracy
        )

    def test_single_class_rejected(self):
        with pytest.raises(SeparabilityError):
            centroid_separability(_synthetic_samples(num_per_class=4, num_classes=1))
