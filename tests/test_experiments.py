"""Tests for the experiment profiles and the lightweight experiments.

The training-heavy experiments are exercised by the benchmark suite; here
they are only checked for structure using miniature profiles so the test
suite stays fast.
"""

import numpy as np
import pytest

from repro.core.model import DeepCsiModelConfig
from repro.experiments import (
    fig13_quantization_error,
    fig14_v_time_evolution,
)
from repro.experiments.common import (
    cached_dataset_d1,
    clear_dataset_cache,
    default_feature_config,
    default_subcarrier_positions,
    format_accuracy_table,
    train_and_evaluate,
)
from repro.experiments.profiles import (
    FAST_PROFILE,
    FULL_PROFILE,
    ExperimentProfile,
    get_profile,
)
from repro.datasets.splits import D1_SPLITS, d1_split

#: A miniature profile so experiment plumbing can be tested in seconds.
MINI_PROFILE = ExperimentProfile(
    name="mini",
    num_modules=3,
    d1_soundings_per_trace=4,
    d2_soundings_per_trace=6,
    subcarrier_stride=8,
    model=DeepCsiModelConfig(
        num_filters=8,
        kernel_widths=(5, 3),
        pool_width=2,
        dense_units=(16,),
        dropout_retain=(0.8,),
        attention_kernel_width=3,
    ),
    epochs=4,
    batch_size=16,
    early_stopping_patience=None,
    learning_rate=3e-3,
    base_seed=5,
)


class TestProfiles:
    def test_named_profiles(self):
        assert get_profile("fast") is FAST_PROFILE
        assert get_profile("full") is FULL_PROFILE
        with pytest.raises(ValueError):
            get_profile("huge")

    def test_environment_variable_selects_profile(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "full")
        assert get_profile() is FULL_PROFILE
        monkeypatch.delenv("REPRO_PROFILE")
        assert get_profile() is FAST_PROFILE

    def test_profile_derives_dataset_and_training_configs(self):
        d1_cfg = MINI_PROFILE.d1_config()
        assert d1_cfg.num_modules == 3
        assert d1_cfg.soundings_per_trace == 4
        d2_cfg = MINI_PROFILE.d2_config()
        assert d2_cfg.soundings_per_trace == 6
        training = MINI_PROFILE.training_config(seed=3)
        assert training.epochs == 4
        assert training.seed == 3

    def test_scaled_returns_modified_copy(self):
        scaled = FAST_PROFILE.scaled(num_modules=5)
        assert scaled.num_modules == 5
        assert FAST_PROFILE.num_modules == 10

    def test_full_profile_uses_paper_scale(self):
        assert FULL_PROFILE.subcarrier_stride == 1
        assert FULL_PROFILE.model.num_filters == 128


class TestCommonHelpers:
    def test_default_subcarrier_positions_respect_stride(self):
        positions = default_subcarrier_positions(MINI_PROFILE)
        assert positions[0] == 0
        assert positions[1] == MINI_PROFILE.subcarrier_stride
        assert len(positions) == int(np.ceil(234 / MINI_PROFILE.subcarrier_stride))

    def test_dataset_cache_returns_same_object(self):
        clear_dataset_cache()
        first = cached_dataset_d1(MINI_PROFILE)
        second = cached_dataset_d1(MINI_PROFILE)
        assert first is second
        clear_dataset_cache()

    def test_train_and_evaluate_produces_report(self):
        clear_dataset_cache()
        dataset = cached_dataset_d1(MINI_PROFILE)
        train, test = d1_split(dataset, D1_SPLITS["S1"], beamformee_id=1)
        evaluation = train_and_evaluate(
            train,
            test,
            MINI_PROFILE,
            feature_config=default_feature_config(MINI_PROFILE),
            label="unit",
        )
        assert 0.0 <= evaluation.accuracy <= 1.0
        assert evaluation.num_parameters > 0
        assert evaluation.report.confusion.shape == (3, 3)
        clear_dataset_cache()

    def test_format_accuracy_table_includes_paper_values(self):
        text = format_accuracy_table(
            [("S1", 0.98)], title="demo", paper_values={"S1": 98.0}
        )
        assert "S1" in text and "paper" in text


class TestLightweightExperiments:
    def test_fig13_error_grows_with_stream_and_coarser_codebook(self):
        result = fig13_quantization_error.run(MINI_PROFILE, num_realizations=6)
        fine = result.mean_error(7, 9)
        coarse = result.mean_error(5, 7)
        # Coarser quantisation increases the error for every entry.
        assert np.all(coarse > fine)
        # The second stream is reconstructed less accurately than the first
        # (averaged over the non-reference antennas).
        assert fine[:2, 1].mean() > fine[:2, 0].mean()
        report = fig13_quantization_error.format_report(result)
        assert "codebook" in report

    def test_fig14_second_stream_fluctuates_more(self):
        result = fig14_v_time_evolution.run(MINI_PROFILE, num_soundings=10)
        assert result.temporal_std.shape == (3, 2)
        assert result.temporal_std[:, 1].mean() > result.temporal_std[:, 0].mean()
        assert set(result.magnitude_maps) == {
            (a, s) for a in range(3) for s in range(2)
        }
        report = fig14_v_time_evolution.format_report(result)
        assert "temporal std" in report
