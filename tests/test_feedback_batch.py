"""Batch/scalar equivalence of the vectorised feedback hot path."""

import numpy as np
import pytest

from repro.feedback.capture import reconstruct_frame_batch
from repro.feedback.frames import FeedbackFrame, VhtMimoControl, pack_feedback_frame
from repro.feedback.givens import (
    GivensError,
    compress_v_matrix,
    reconstruct_v_matrices,
    reconstruct_v_matrix,
    stack_feedback_angles,
)
from repro.feedback.quantization import (
    QuantizationConfig,
    QuantizationError,
    dequantize_angles,
    dequantize_angles_batch,
    quantize_angles,
    stack_quantized_angles,
)
from tests.conftest import random_unitary_columns


def _random_angle_batch(rng, batch=6, num_subcarriers=11, num_tx=3, num_streams=2):
    matrices = [
        random_unitary_columns(rng, num_subcarriers, num_tx, num_streams)
        for _ in range(batch)
    ]
    return [compress_v_matrix(matrix) for matrix in matrices]


class TestBatchedReconstruction:
    @pytest.mark.parametrize(
        "num_tx,num_streams", [(2, 1), (2, 2), (3, 1), (3, 2), (3, 3), (4, 2)]
    )
    def test_matches_per_sample_reconstruction(self, rng, num_tx, num_streams):
        angles = _random_angle_batch(
            rng, num_tx=num_tx, num_streams=num_streams
        )
        phi, psi, stacked_tx, stacked_streams = stack_feedback_angles(angles)
        batch = reconstruct_v_matrices(phi, psi, stacked_tx, stacked_streams)
        per_sample = np.stack(
            [reconstruct_v_matrix(item) for item in angles], axis=0
        )
        assert batch.shape == per_sample.shape
        np.testing.assert_allclose(batch, per_sample, atol=1e-12, rtol=0)

    def test_quantised_batch_matches_per_sample(self, rng):
        config = QuantizationConfig()
        quantized = [
            quantize_angles(item, config) for item in _random_angle_batch(rng)
        ]
        q_phi, q_psi, stacked_config, num_tx, num_streams = stack_quantized_angles(
            quantized
        )
        phi, psi = dequantize_angles_batch(q_phi, q_psi, stacked_config)
        batch = reconstruct_v_matrices(phi, psi, num_tx, num_streams)
        per_sample = np.stack(
            [reconstruct_v_matrix(dequantize_angles(item)) for item in quantized],
            axis=0,
        )
        np.testing.assert_allclose(batch, per_sample, atol=1e-12, rtol=0)

    def test_rejects_wrong_angle_shapes(self, rng):
        angles = _random_angle_batch(rng)
        phi, psi, num_tx, num_streams = stack_feedback_angles(angles)
        with pytest.raises(GivensError):
            reconstruct_v_matrices(phi[0], psi[0], num_tx, num_streams)
        with pytest.raises(GivensError):
            reconstruct_v_matrices(phi[:, :, :-1], psi, num_tx, num_streams)
        with pytest.raises(GivensError):
            reconstruct_v_matrices(phi[:-1], psi, num_tx, num_streams)


class TestStackHelpers:
    def test_stack_feedback_angles_rejects_mixed_geometry(self, rng):
        wide = compress_v_matrix(random_unitary_columns(rng, 11, 3, 2))
        narrow = compress_v_matrix(random_unitary_columns(rng, 11, 2, 2))
        with pytest.raises(GivensError):
            stack_feedback_angles([wide, narrow])
        with pytest.raises(GivensError):
            stack_feedback_angles([])

    def test_stack_quantized_rejects_mixed_configs(self, rng):
        angles = _random_angle_batch(rng, batch=2)
        low = quantize_angles(angles[0], QuantizationConfig(b_phi=7, b_psi=5))
        high = quantize_angles(angles[1], QuantizationConfig(b_phi=9, b_psi=7))
        with pytest.raises(QuantizationError):
            stack_quantized_angles([low, high])
        with pytest.raises(QuantizationError):
            stack_quantized_angles([])

    def test_dequantize_batch_matches_scalar(self, rng):
        config = QuantizationConfig()
        quantized = [
            quantize_angles(item, config) for item in _random_angle_batch(rng)
        ]
        q_phi, q_psi, stacked_config, _, _ = stack_quantized_angles(quantized)
        phi, psi = dequantize_angles_batch(q_phi, q_psi, stacked_config)
        for index, item in enumerate(quantized):
            scalar = dequantize_angles(item)
            np.testing.assert_array_equal(phi[index], scalar.phi)
            np.testing.assert_array_equal(psi[index], scalar.psi)


class TestFrameBatchReconstruction:
    def test_mixed_geometry_frames_keep_input_order(self, rng):
        config = QuantizationConfig()
        frames = []
        expected = []
        # Alternate two geometries so the grouping has to scatter results
        # back into the original frame order.
        for index in range(6):
            num_tx = 3 if index % 2 == 0 else 2
            v_matrix = random_unitary_columns(rng, 11, num_tx, 2)
            quantized = quantize_angles(compress_v_matrix(v_matrix), config)
            control = VhtMimoControl(
                num_columns=2,
                num_rows=num_tx,
                bandwidth_mhz=80,
                codebook=1,
                num_subcarriers=11,
            )
            frames.append(
                FeedbackFrame(
                    source_address=f"02:00:00:00:00:{index:02x}",
                    destination_address="02:00:00:00:aa:00",
                    timestamp_s=float(index),
                    payload=pack_feedback_frame(quantized, control),
                )
            )
            expected.append(reconstruct_v_matrix(dequantize_angles(quantized)))
        batch = reconstruct_frame_batch(frames)
        assert len(batch) == len(frames)
        for got, want in zip(batch, expected):
            np.testing.assert_allclose(got, want, atol=1e-12, rtol=0)

    def test_empty_frame_list_gives_empty_batch(self):
        assert reconstruct_frame_batch([]) == []
