"""Tests for the phase-offset correction baseline."""

import numpy as np
import pytest

from repro.core.offset_correction import (
    correct_phase_offsets,
    correct_sample,
    correct_samples,
)
from repro.datasets.containers import FeedbackSample


def make_matrix(rng, num_sub=40):
    v = rng.standard_normal((num_sub, 3, 2)) + 1j * rng.standard_normal((num_sub, 3, 2))
    return v


def make_smooth_matrix(rng, num_sub=40):
    """A matrix whose phase varies smoothly across sub-carriers.

    Smoothness keeps ``numpy.unwrap`` consistent when an extra linear phase
    slope is added, which is required for exact slope-removal checks.
    """
    k = np.arange(num_sub)
    magnitude = 1.0 + 0.2 * rng.random((num_sub, 3, 2))
    phase = (
        0.4 * np.sin(2 * np.pi * k / 32)[:, np.newaxis, np.newaxis]
        + rng.uniform(-np.pi, np.pi, size=(1, 3, 2))
    )
    return magnitude * np.exp(1j * phase)


class TestCorrectPhaseOffsets:
    def test_preserves_magnitude(self, rng):
        v = make_matrix(rng)
        cleaned = correct_phase_offsets(v)
        np.testing.assert_allclose(np.abs(cleaned), np.abs(v), rtol=1e-10)

    def test_removes_constant_phase_offset(self, rng):
        v = make_matrix(rng)
        rotated = v * np.exp(1j * 0.9)
        np.testing.assert_allclose(
            correct_phase_offsets(rotated), correct_phase_offsets(v), atol=1e-8
        )

    def test_removes_linear_phase_slope(self, rng):
        num_sub = 40
        v = make_smooth_matrix(rng, num_sub)
        slope = np.exp(1j * 0.05 * np.arange(num_sub))
        tilted = v * slope[:, np.newaxis, np.newaxis]
        np.testing.assert_allclose(
            correct_phase_offsets(tilted), correct_phase_offsets(v), atol=1e-6
        )

    def test_keeps_nonlinear_phase_structure(self, rng):
        num_sub = 64
        magnitude = np.ones((num_sub, 1, 1))
        curvature = 0.5 * np.sin(2 * np.pi * np.arange(num_sub) / 16)
        v = magnitude * np.exp(1j * curvature[:, np.newaxis, np.newaxis])
        cleaned = correct_phase_offsets(v)
        # The sinusoidal (non-affine) phase component must survive.
        assert np.std(np.angle(cleaned[:, 0, 0])) > 0.1

    def test_idempotent(self, rng):
        v = make_smooth_matrix(rng)
        once = correct_phase_offsets(v)
        twice = correct_phase_offsets(once)
        np.testing.assert_allclose(once, twice, atol=1e-8)

    def test_custom_subcarrier_indices(self, rng):
        v = make_matrix(rng, 20)
        indices = np.linspace(-10, 10, 20)
        cleaned = correct_phase_offsets(v, subcarrier_indices=indices)
        assert cleaned.shape == v.shape

    def test_invalid_inputs_rejected(self, rng):
        with pytest.raises(ValueError):
            correct_phase_offsets(rng.standard_normal((4, 4)))
        with pytest.raises(ValueError):
            correct_phase_offsets(make_matrix(rng, 10), subcarrier_indices=np.arange(5))


class TestCorrectSample:
    def test_labels_are_preserved(self, rng):
        sample = FeedbackSample(
            v_tilde=make_matrix(rng),
            module_id=4,
            beamformee_id=2,
            position_id=7,
            group="mob1",
            timestamp_s=3.5,
            path_progress=0.4,
        )
        cleaned = correct_sample(sample)
        assert cleaned.module_id == 4
        assert cleaned.beamformee_id == 2
        assert cleaned.position_id == 7
        assert cleaned.group == "mob1"
        assert cleaned.path_progress == 0.4
        assert not np.allclose(cleaned.v_tilde, sample.v_tilde)

    def test_correct_samples_maps_the_list(self, rng):
        samples = [
            FeedbackSample(v_tilde=make_matrix(rng), module_id=i, beamformee_id=1)
            for i in range(3)
        ]
        cleaned = correct_samples(samples)
        assert len(cleaned) == 3
        assert [s.module_id for s in cleaned] == [0, 1, 2]
