"""Tests for the batched streaming inference engine."""

import numpy as np
import pytest

from repro.core.classifier import ClassifierConfig, DeepCsiClassifier
from repro.core.engine import (
    ANONYMOUS_SOURCE,
    UNKNOWN_MODULE_ID,
    EngineError,
    EngineResult,
    EngineStats,
    InferenceEngine,
    SourceWindows,
)
from repro.core.model import DeepCsiModelConfig
from repro.datasets.features import FeatureConfig, strided_subcarriers
from repro.datasets.splits import D1_SPLITS, d1_split
from repro.feedback.capture import MonitorCapture, SoundingSimulator, station_mac
from repro.nn.training import TrainingConfig
from repro.phy.channel import MultipathChannel
from repro.phy.devices import AccessPoint, make_beamformee
from repro.phy.geometry import AP_POSITION_A, beamformee_positions
from repro.phy.ofdm import sounding_layout

TINY_MODEL = DeepCsiModelConfig(
    num_filters=8,
    kernel_widths=(5, 3),
    pool_width=2,
    dense_units=(16,),
    dropout_retain=(0.8,),
    attention_kernel_width=3,
)


@pytest.fixture(scope="module")
def trained_classifier(tiny_d1):
    train, _ = d1_split(tiny_d1, D1_SPLITS["S1"], beamformee_id=1)
    classifier = DeepCsiClassifier(
        ClassifierConfig(
            num_classes=3,
            feature=FeatureConfig(
                stream_indices=(0,), subcarrier_positions=strided_subcarriers(234, 8)
            ),
            model=TINY_MODEL,
            training=TrainingConfig(
                epochs=4, batch_size=16, validation_split=0.2,
                early_stopping_patience=None, seed=0,
            ),
            learning_rate=3e-3,
        )
    )
    classifier.fit(train)
    return classifier


@pytest.fixture(scope="module")
def test_samples(tiny_d1):
    _, test = d1_split(tiny_d1, D1_SPLITS["S1"], beamformee_id=1)
    return test


class TestPredictMatrices:
    def test_matches_looped_predict_matrix_exactly(
        self, trained_classifier, test_samples
    ):
        subset = test_samples[:12]
        v_batch = np.stack([sample.v_tilde for sample in subset], axis=0)
        ids, confidences = trained_classifier.predict_matrices(v_batch)
        assert ids.shape == (12,)
        assert confidences.shape == (12,)
        for index, sample in enumerate(subset):
            module_id, confidence = trained_classifier.predict_matrix(sample.v_tilde)
            assert ids[index] == module_id
            assert confidences[index] == confidence

    def test_empty_batch_gives_empty_results(self, trained_classifier):
        ids, confidences = trained_classifier.predict_matrices(
            np.zeros((0, 29, 3, 2), dtype=complex)
        )
        assert ids.shape == (0,)
        assert confidences.shape == (0,)
        # Regression (found by repro-lint hot-path/missing-dtype): the empty
        # fast path must match the dtypes of the populated path.
        assert ids.dtype == np.dtype(int)
        assert confidences.dtype == np.dtype(float)

    def test_wrong_rank_rejected(self, trained_classifier, test_samples):
        from repro.core.classifier import ClassifierError

        with pytest.raises(ClassifierError):
            trained_classifier.predict_matrices(test_samples[0].v_tilde)


class TestEngineBatching:
    def test_drain_matches_per_frame_results(self, trained_classifier, test_samples):
        engine = InferenceEngine(trained_classifier, batch_size=5)
        results = engine.drain(test_samples[:13])
        assert len(results) == 13
        assert [result.sequence for result in results] == list(range(13))
        for result, sample in zip(results, test_samples[:13]):
            module_id, confidence = trained_classifier.predict_matrix(sample.v_tilde)
            assert result.predicted_module_id == module_id
            assert result.confidence == confidence

    def test_submit_buffers_until_batch_is_full(
        self, trained_classifier, test_samples
    ):
        engine = InferenceEngine(trained_classifier, batch_size=4)
        outputs = []
        for sample in test_samples[:6]:
            outputs.append(engine.submit(sample))
        # The first three submissions buffer; the fourth releases the batch.
        assert [len(batch) for batch in outputs] == [0, 0, 0, 4, 0, 0]
        assert len(engine.flush()) == 2
        assert engine.stats.frames_in == 6
        assert engine.stats.frames_out == 6
        assert engine.stats.batches == 2

    def test_max_latency_forces_partial_batches(
        self, trained_classifier, test_samples
    ):
        engine = InferenceEngine(
            trained_classifier, batch_size=64, max_latency_frames=2
        )
        outputs = [engine.submit(sample) for sample in test_samples[:4]]
        assert [len(batch) for batch in outputs] == [0, 2, 0, 2]

    def test_stream_yields_every_result(self, trained_classifier, test_samples):
        engine = InferenceEngine(trained_classifier, batch_size=4)
        results = list(engine.stream(test_samples[:7]))
        assert len(results) == 7
        assert engine.stats.mean_batch_size == pytest.approx(3.5)
        assert engine.stats.frames_per_second > 0.0

    def test_mixed_geometries_keep_input_order(self, trained_classifier, test_samples):
        # The classifier was trained on (K, M, N_SS) = (234, 3, 2) inputs;
        # feed the same geometry through both the array and sample branches.
        engine = InferenceEngine(trained_classifier, batch_size=8)
        observations = [
            test_samples[0],
            np.asarray(test_samples[1].v_tilde),
            test_samples[2],
        ]
        results = engine.drain(observations)
        expected = [
            trained_classifier.predict_matrix(test_samples[index].v_tilde)[0]
            for index in range(3)
        ]
        assert [result.predicted_module_id for result in results] == expected

    def test_invalid_configuration_rejected(self, trained_classifier):
        with pytest.raises(EngineError):
            InferenceEngine(trained_classifier, batch_size=0)
        with pytest.raises(EngineError):
            InferenceEngine(trained_classifier, max_latency_frames=0)
        with pytest.raises(EngineError):
            InferenceEngine(trained_classifier, vote_window=0)

    def test_invalid_observation_rejected(self, trained_classifier):
        engine = InferenceEngine(trained_classifier)
        with pytest.raises(EngineError):
            engine.submit(np.zeros((4, 4)))


class TestEngineVoting:
    def test_per_source_ring_buffers_and_verdicts(
        self, trained_classifier, test_samples
    ):
        engine = InferenceEngine(trained_classifier, batch_size=4, vote_window=3)
        for sample in test_samples[:6]:
            engine.submit(sample, source="alice")
        for sample in test_samples[6:10]:
            engine.submit(sample, source="bob")
        engine.flush()
        assert engine.sources == ["alice", "bob"]
        verdict = engine.verdict("alice")
        # The window is capped at vote_window results.
        assert verdict.window_size == 3
        assert 1 <= verdict.num_votes <= 3
        assert 0.0 <= verdict.confidence <= 1.0

    def test_anonymous_observations_share_a_window(
        self, trained_classifier, test_samples
    ):
        engine = InferenceEngine(trained_classifier, batch_size=2)
        engine.drain(test_samples[:4])
        verdict = engine.verdict()
        assert verdict.window_size == 4
        assert engine.sources == [ANONYMOUS_SOURCE]

    def test_unknown_source_rejected(self, trained_classifier):
        engine = InferenceEngine(trained_classifier)
        with pytest.raises(EngineError):
            engine.verdict("nobody")

    def test_source_windows_are_bounded(self, trained_classifier, test_samples):
        engine = InferenceEngine(trained_classifier, batch_size=1, max_sources=2)
        for index in range(4):
            engine.submit(test_samples[index], source=f"station-{index}")
        # Only the two most recently seen sources keep a ring buffer.
        assert engine.sources == ["station-2", "station-3"]
        with pytest.raises(EngineError):
            engine.verdict("station-0")
        # A recently-updated source survives eviction over a stale one.
        engine.submit(test_samples[0], source="station-2")
        engine.submit(test_samples[1], source="station-4")
        assert engine.sources == ["station-2", "station-4"]

    def test_reset_clears_state(self, trained_classifier, test_samples):
        engine = InferenceEngine(trained_classifier, batch_size=2)
        engine.drain(test_samples[:4])
        engine.reset()
        assert engine.stats.frames_in == 0
        assert engine.sources == []
        results = engine.drain(test_samples[:2])
        assert results[0].sequence == 0


class TestEngineStatsGuards:
    """Regression: the derived stats must not divide by zero when idle."""

    def test_fresh_stats_report_zero_throughput(self):
        stats = EngineStats()
        assert stats.frames_per_second == 0.0
        assert stats.mean_batch_size == 0.0

    def test_fresh_engine_stats_are_safe_to_read(self, trained_classifier):
        engine = InferenceEngine(trained_classifier)
        assert engine.stats.frames_per_second == 0.0
        assert engine.stats.mean_batch_size == 0.0

    def test_reset_engine_stats_are_safe_to_read(
        self, trained_classifier, test_samples
    ):
        engine = InferenceEngine(trained_classifier, batch_size=2)
        engine.drain(test_samples[:4])
        assert engine.stats.frames_per_second > 0.0
        engine.reset()
        assert engine.stats.frames_per_second == 0.0
        assert engine.stats.mean_batch_size == 0.0

    def test_stats_snapshot_is_consistent_mid_drain(
        self, trained_classifier, test_samples
    ):
        """Regression: a snapshot taken from another thread mid-drain must be
        consistent - all counters of a batch published together, never a
        half-updated mix (e.g. frames_out bumped but batches not yet).
        """
        import threading

        from repro.analysis.runtime import validate_guarded

        batch_size = 2
        engine = InferenceEngine(trained_classifier, batch_size=batch_size)
        # Runtime lock validation: every access of the # guarded-by: _stats_lock
        # state must hold the lock, checked live while the watcher races.
        monitor = validate_guarded(engine)
        stop = threading.Event()
        violations = []

        def watch():
            while not stop.is_set():
                stats = engine.stats
                # Full batches only, so every published batch adds exactly
                # batch_size frames: any other ratio is a torn snapshot.
                if stats.frames_out != stats.batches * batch_size:
                    violations.append((stats.frames_out, stats.batches))

        watcher = threading.Thread(target=watch)
        watcher.start()
        try:
            for _ in range(10):
                for sample in test_samples[:8]:
                    engine.submit(sample)
        finally:
            stop.set()
            watcher.join()
        assert not violations, f"torn stats snapshots observed: {violations[:5]}"
        assert engine.stats.frames_out == engine.stats.batches * batch_size
        monitor.assert_clean()
        monitor.restore()


class TestEngineOnSniffedFrames:
    def test_raw_frames_take_the_batched_givens_path(
        self, trained_classifier, small_modules
    ):
        layout = sounding_layout(80)
        access_point = AccessPoint(module=small_modules[0], position=AP_POSITION_A)
        bf_pos, _ = beamformee_positions(3)
        beamformee = make_beamformee(
            1, bf_pos, num_antennas=2, num_streams=2, seed=5 + 10_000
        )
        simulator = SoundingSimulator(
            access_point=access_point,
            beamformees=[beamformee],
            channel=MultipathChannel(num_scatterers=8, environment_seed=11),
            layout=layout,
        )
        capture = MonitorCapture()
        simulator.sound_many(5, np.random.default_rng(0), capture=capture)

        engine = InferenceEngine(trained_classifier, batch_size=3)
        results = engine.drain(capture.frames)
        assert len(results) == 5
        assert all(result.source == station_mac(1) for result in results)
        # The batched frame decode must agree with the scalar capture path.
        reconstructed = capture.reconstruct()
        for result, feedback in zip(results, reconstructed):
            module_id, confidence = trained_classifier.predict_matrix(
                feedback.v_tilde
            )
            assert result.predicted_module_id == module_id
            assert result.confidence == pytest.approx(confidence, abs=1e-12)
        verdict = engine.verdict(station_mac(1))
        assert verdict.window_size == 5


class TestSourceWindowsRejection:
    """Regression tests of the rejection-aware windowed majority vote.

    The original vote counted every window entry, so a burst of open-set
    rejections could be outvoted by *older* accepted entries and a departed
    (or taken-over) source would keep authenticating as its stale enrolled
    identity.  These tests pin the corrected rules.
    """

    @staticmethod
    def _result(module_id, accepted=True, score=0.9, confidence=0.9, version=0):
        return EngineResult(
            predicted_module_id=module_id,
            confidence=confidence,
            source="src",
            score=score,
            accepted=accepted,
            model_version=version,
        )

    def test_trailing_rejections_beat_older_accepted_majority(self):
        """An old accepted majority must NOT outvote a fresh reject streak."""
        windows = SourceWindows(vote_window=8, max_sources=4, reject_streak=3)
        for _ in range(5):
            windows.append(self._result(1))
        for _ in range(3):
            windows.append(self._result(1, accepted=False, score=0.2))
        verdict = windows.verdict("src")
        assert verdict.module_id == UNKNOWN_MODULE_ID
        assert verdict.num_rejected == 3
        assert verdict.window_size == 8

    def test_stray_rejection_does_not_flip_the_verdict(self):
        windows = SourceWindows(vote_window=8, max_sources=4, reject_streak=3)
        for _ in range(6):
            windows.append(self._result(2))
        windows.append(self._result(2, accepted=False, score=0.3))
        windows.append(self._result(2))
        verdict = windows.verdict("src")
        assert verdict.module_id == 2
        assert verdict.num_votes == 7
        assert verdict.num_rejected == 1

    def test_rejections_matching_winner_votes_give_unknown(self):
        windows = SourceWindows(vote_window=8, max_sources=4, reject_streak=5)
        windows.append(self._result(0))
        windows.append(self._result(0, accepted=False, score=0.1))
        windows.append(self._result(0, accepted=False, score=0.1))
        windows.append(self._result(0))
        verdict = windows.verdict("src")
        assert verdict.module_id == UNKNOWN_MODULE_ID
        assert verdict.num_rejected == 2

    def test_all_rejected_window_reports_rejection_strength(self):
        windows = SourceWindows(vote_window=4, max_sources=4)
        for score in (0.2, 0.4):
            windows.append(self._result(0, accepted=False, score=score))
        verdict = windows.verdict("src")
        assert verdict.module_id == UNKNOWN_MODULE_ID
        assert verdict.confidence == pytest.approx(0.7)  # mean(1 - score)
        assert verdict.num_votes == verdict.num_rejected == 2

    def test_streak_is_capped_by_the_window(self):
        """reject_streak larger than the window still triggers when the
        whole window is rejected."""
        windows = SourceWindows(vote_window=2, max_sources=4, reject_streak=10)
        windows.append(self._result(1, accepted=False, score=0.1))
        windows.append(self._result(1, accepted=False, score=0.1))
        assert windows.verdict("src").module_id == UNKNOWN_MODULE_ID

    def test_verdict_version_is_max_over_the_window(self):
        windows = SourceWindows(vote_window=4, max_sources=4)
        windows.append(self._result(1, version=0))
        windows.append(self._result(1, version=2))
        windows.append(self._result(1, version=1))
        assert windows.verdict("src").model_version == 2

    def test_invalid_reject_streak_rejected(self):
        with pytest.raises(EngineError, match="reject_streak"):
            SourceWindows(vote_window=4, max_sources=4, reject_streak=0)
