"""Tests for the access-point array orientation (used by the D2 mobility traces)."""

import numpy as np
import pytest

from repro.phy.devices import AccessPoint, make_module_population
from repro.phy.geometry import Position, uniform_linear_array


@pytest.fixture(scope="module")
def module():
    return make_module_population(num_modules=2, seed=11)[0]


class TestAccessPointOrientation:
    def test_default_orientation_matches_x_axis_ula(self, module):
        ap = AccessPoint(module=module, position=Position(0.3, -0.2))
        expected = uniform_linear_array(
            Position(0.3, -0.2), ap.num_antennas, ap.antenna_spacing_m, axis="x"
        )
        np.testing.assert_allclose(ap.antenna_elements(), expected)

    def test_ninety_degree_rotation_aligns_with_y_axis(self, module):
        ap = AccessPoint(
            module=module, position=Position(0.0, 0.0), orientation_rad=np.pi / 2
        )
        elements = ap.antenna_elements()
        np.testing.assert_allclose(elements[:, 0], 0.0, atol=1e-12)
        assert elements[0, 1] < elements[-1, 1]

    def test_rotation_preserves_centroid_and_spacing(self, module):
        ap = AccessPoint(module=module, position=Position(1.0, 2.0))
        rotated = ap.rotated(0.7)
        original_elements = ap.antenna_elements()
        rotated_elements = rotated.antenna_elements()
        np.testing.assert_allclose(
            np.mean(rotated_elements, axis=0), np.mean(original_elements, axis=0)
        )
        original_spacing = np.linalg.norm(original_elements[1] - original_elements[0])
        rotated_spacing = np.linalg.norm(rotated_elements[1] - rotated_elements[0])
        assert rotated_spacing == pytest.approx(original_spacing)

    def test_rotated_returns_new_instance(self, module):
        ap = AccessPoint(module=module, position=Position(0.0, 0.0))
        rotated = ap.rotated(0.3)
        assert rotated is not ap
        assert ap.orientation_rad == 0.0
        assert rotated.orientation_rad == pytest.approx(0.3)
        assert rotated.module is ap.module

    def test_moved_to_keeps_orientation(self, module):
        ap = AccessPoint(
            module=module, position=Position(0.0, 0.0), orientation_rad=0.5
        )
        moved = ap.moved_to(Position(0.0, 0.8))
        assert moved.orientation_rad == pytest.approx(0.5)
        assert moved.position == Position(0.0, 0.8)

    def test_small_rotation_changes_elements_continuously(self, module):
        ap = AccessPoint(module=module, position=Position(0.0, 0.0))
        slightly_rotated = ap.rotated(1e-3)
        delta = np.abs(
            slightly_rotated.antenna_elements() - ap.antenna_elements()
        ).max()
        assert 0 < delta < 1e-3
