"""Unit tests for the RF-chain impairment models."""

import numpy as np
import pytest

from repro.phy.impairments import (
    BeamformeeImpairment,
    DeviceFingerprint,
    PacketOffsets,
    RfChainImpairment,
    thermal_noise,
)
from repro.phy.ofdm import sounding_layout


@pytest.fixture()
def indices():
    return sounding_layout(20).indices


SPACING = 312_500.0
SYMBOL_T = 1.0 / SPACING


class TestRfChainImpairment:
    def test_identity_impairment_is_unity(self, indices):
        chain = RfChainImpairment()
        response = chain.response(indices, SPACING)
        np.testing.assert_allclose(response, np.ones(len(indices)))

    def test_constant_phase_offset_rotates_all_subcarriers(self, indices):
        chain = RfChainImpairment(phase_offset_rad=np.pi / 3)
        response = chain.response(indices, SPACING)
        np.testing.assert_allclose(np.angle(response), np.pi / 3)
        np.testing.assert_allclose(np.abs(response), 1.0)

    def test_delay_skew_creates_linear_phase(self, indices):
        delay = 5e-9
        chain = RfChainImpairment(delay_skew_s=delay)
        response = chain.response(indices, SPACING)
        expected = 2.0 * np.pi * indices * SPACING * delay
        np.testing.assert_allclose(np.unwrap(np.angle(response)), expected, atol=1e-9)

    def test_gain_offset_scales_magnitude(self, indices):
        chain = RfChainImpairment(gain_offset=0.1)
        np.testing.assert_allclose(np.abs(chain.response(indices, SPACING)), 1.1)

    def test_random_draw_is_deterministic_given_seed(self, indices):
        a = RfChainImpairment.random(np.random.default_rng(3))
        b = RfChainImpairment.random(np.random.default_rng(3))
        np.testing.assert_allclose(
            a.response(indices, SPACING), b.response(indices, SPACING)
        )

    def test_zero_strength_yields_near_identity(self, indices):
        chain = RfChainImpairment.random(np.random.default_rng(0), strength=0.0)
        response = chain.response(indices, SPACING)
        np.testing.assert_allclose(np.abs(response), 1.0, atol=1e-12)

    def test_negative_strength_rejected(self):
        with pytest.raises(ValueError):
            RfChainImpairment.random(np.random.default_rng(0), strength=-1.0)

    def test_iq_imbalance_changes_response(self, indices):
        clean = RfChainImpairment(phase_offset_rad=0.4)
        skewed = RfChainImpairment(
            phase_offset_rad=0.4, iq_amplitude_imbalance=0.05
        )
        assert not np.allclose(
            clean.response(indices, SPACING), skewed.response(indices, SPACING)
        )


class TestDeviceFingerprint:
    def test_apply_multiplies_rows(self, indices, rng):
        fingerprint = DeviceFingerprint.random(np.random.default_rng(1), num_chains=3)
        cfr = rng.standard_normal((len(indices), 3, 2)) + 1j * rng.standard_normal(
            (len(indices), 3, 2)
        )
        impaired = fingerprint.apply(cfr, indices, SPACING)
        response = fingerprint.response_matrix(indices, SPACING)
        np.testing.assert_allclose(
            impaired[:, 1, 0], cfr[:, 1, 0] * response[:, 1]
        )

    def test_apply_rejects_mismatched_antennas(self, indices):
        fingerprint = DeviceFingerprint.random(np.random.default_rng(1), num_chains=2)
        cfr = np.ones((len(indices), 3, 2), dtype=complex)
        with pytest.raises(ValueError):
            fingerprint.apply(cfr, indices, SPACING)

    def test_different_seeds_give_different_fingerprints(self, indices):
        a = DeviceFingerprint.random(np.random.default_rng(1), num_chains=3)
        b = DeviceFingerprint.random(np.random.default_rng(2), num_chains=3)
        assert not np.allclose(
            a.response_matrix(indices, SPACING), b.response_matrix(indices, SPACING)
        )

    def test_empty_fingerprint_rejected(self):
        with pytest.raises(ValueError):
            DeviceFingerprint(chains=())

    def test_apply_requires_3d_cfr(self, indices):
        fingerprint = DeviceFingerprint.random(np.random.default_rng(1), num_chains=3)
        with pytest.raises(ValueError):
            fingerprint.apply(np.ones((len(indices), 3)), indices, SPACING)


class TestBeamformeeImpairment:
    def test_apply_multiplies_columns(self, indices, rng):
        impairment = BeamformeeImpairment.random(np.random.default_rng(4), num_chains=2)
        cfr = rng.standard_normal((len(indices), 3, 2)) + 1j * rng.standard_normal(
            (len(indices), 3, 2)
        )
        impaired = impairment.apply(cfr, indices, SPACING)
        ratio = impaired[:, 0, 1] / cfr[:, 0, 1]
        ratio_other_row = impaired[:, 2, 1] / cfr[:, 2, 1]
        np.testing.assert_allclose(ratio, ratio_other_row)

    def test_mismatched_rx_count_rejected(self, indices):
        impairment = BeamformeeImpairment.random(np.random.default_rng(4), num_chains=1)
        with pytest.raises(ValueError):
            impairment.apply(np.ones((len(indices), 3, 2), dtype=complex), indices, SPACING)


class TestPacketOffsets:
    def test_none_offsets_leave_cfr_unchanged(self, indices, rng):
        cfr = rng.standard_normal((len(indices), 3, 2)) + 1j * rng.standard_normal(
            (len(indices), 3, 2)
        )
        offsets = PacketOffsets.none(3)
        np.testing.assert_allclose(offsets.apply(cfr, indices, SYMBOL_T), cfr)

    def test_phase_follows_eq9_structure(self, indices):
        offsets = PacketOffsets(
            cfo_phase_rad=0.3,
            sfo_delay_s=10e-9,
            pdd_delay_s=20e-9,
            pll_phase_rad=0.1,
            antenna_phase_ambiguity_rad=(0.0, np.pi, 0.0),
        )
        phase = offsets.phase(indices, SYMBOL_T, 3)
        expected_common = 0.3 + 0.1 - 2 * np.pi * indices * (30e-9) / SYMBOL_T
        np.testing.assert_allclose(phase[:, 0], expected_common)
        np.testing.assert_allclose(phase[:, 1], expected_common + np.pi)

    def test_apply_preserves_magnitude(self, indices, rng):
        cfr = rng.standard_normal((len(indices), 3, 2)) + 1j * rng.standard_normal(
            (len(indices), 3, 2)
        )
        offsets = PacketOffsets.random(np.random.default_rng(0), 3)
        rotated = offsets.apply(cfr, indices, SYMBOL_T)
        np.testing.assert_allclose(np.abs(rotated), np.abs(cfr))

    def test_random_offsets_differ_between_packets(self):
        rng = np.random.default_rng(0)
        first = PacketOffsets.random(rng, 3)
        second = PacketOffsets.random(rng, 3)
        assert first.cfo_phase_rad != second.cfo_phase_rad

    def test_phase_ambiguity_is_multiple_of_pi(self):
        offsets = PacketOffsets.random(np.random.default_rng(0), 4)
        for value in offsets.antenna_phase_ambiguity_rad:
            assert value in (0.0, np.pi)

    def test_insufficient_antenna_terms_rejected(self, indices):
        offsets = PacketOffsets.none(2)
        with pytest.raises(ValueError):
            offsets.phase(indices, SYMBOL_T, 3)


class TestThermalNoise:
    def test_noise_power_matches_target_snr(self):
        rng = np.random.default_rng(0)
        noise = thermal_noise(rng, (20000,), snr_db=10.0, signal_power=1.0)
        measured = np.mean(np.abs(noise) ** 2)
        assert measured == pytest.approx(0.1, rel=0.05)

    def test_negative_signal_power_rejected(self):
        with pytest.raises(ValueError):
            thermal_noise(np.random.default_rng(0), (4,), 10.0, -1.0)
