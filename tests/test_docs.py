"""The documentation must not rot: link check + runnable doc examples.

These tests mirror the CI ``docs`` job so a broken doc reference or a stale
doctest fails the tier-1 suite locally too.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = ("docs/ARCHITECTURE.md", "docs/EXPERIMENTS.md", "README.md")


def _run(command):
    environment = dict(os.environ)
    environment["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + environment["PYTHONPATH"]
        if environment.get("PYTHONPATH")
        else ""
    )
    return subprocess.run(
        command,
        cwd=REPO_ROOT,
        env=environment,
        capture_output=True,
        text=True,
    )


def test_doc_links_resolve():
    result = _run([sys.executable, "scripts/check_doc_links.py"])
    assert result.returncode == 0, result.stderr
    assert "doc links ok" in result.stdout


def test_doc_examples_run():
    for document in DOC_FILES:
        result = _run([sys.executable, "-m", "doctest", document])
        assert result.returncode == 0, f"{document}:\n{result.stdout}"


def test_architecture_documents_every_package():
    text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text()
    packages = sorted(
        path.name
        for path in (REPO_ROOT / "src" / "repro").iterdir()
        if path.is_dir() and (path / "__init__.py").exists()
    )
    missing = [name for name in packages if f"repro.{name}" not in text]
    assert not missing, f"docs/ARCHITECTURE.md does not mention: {missing}"
