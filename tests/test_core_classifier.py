"""Tests for the high-level DeepCSI classifier and the evaluation helpers."""

import numpy as np
import pytest

from repro.core.classifier import ClassifierConfig, ClassifierError, DeepCsiClassifier
from repro.core.evaluation import (
    ClassificationReport,
    EvaluationError,
    accuracy_score,
    confusion_matrix,
    evaluate_predictions,
    format_confusion_matrix,
    normalize_confusion,
    per_class_accuracy,
)
from repro.core.model import DeepCsiModelConfig
from repro.datasets.features import FeatureConfig, strided_subcarriers
from repro.datasets.splits import D1_SPLITS, d1_split
from repro.nn.training import TrainingConfig

#: Minimal architecture / training setup shared by the classifier tests.
TINY_MODEL = DeepCsiModelConfig(
    num_filters=8,
    kernel_widths=(5, 3),
    pool_width=2,
    dense_units=(16,),
    dropout_retain=(0.8,),
    attention_kernel_width=3,
)


def tiny_classifier(num_classes=3, epochs=6, seed=0):
    feature = FeatureConfig(
        stream_indices=(0,), subcarrier_positions=strided_subcarriers(234, 8)
    )
    training = TrainingConfig(
        epochs=epochs, batch_size=16, validation_split=0.2,
        early_stopping_patience=None, seed=seed,
    )
    config = ClassifierConfig(
        num_classes=num_classes,
        feature=feature,
        model=TINY_MODEL,
        training=training,
        learning_rate=3e-3,
        seed=seed,
    )
    return DeepCsiClassifier(config)


@pytest.fixture(scope="module")
def d1_train_test(tiny_d1):
    return d1_split(tiny_d1, D1_SPLITS["S1"], beamformee_id=1)


class TestDeepCsiClassifier:
    def test_fit_learns_the_tiny_dataset(self, d1_train_test):
        train, test = d1_train_test
        classifier = tiny_classifier()
        history = classifier.fit(train)
        assert history.num_epochs >= 1
        report = classifier.evaluate(test)
        # Three classes, chance level 1/3: the tiny model must do clearly
        # better than chance on the easy S1 split.
        assert report.accuracy > 0.6

    def test_predictions_have_expected_shapes(self, d1_train_test):
        train, test = d1_train_test
        classifier = tiny_classifier()
        classifier.fit(train)
        subset = test[:10]
        labels = classifier.predict(subset)
        probabilities = classifier.predict_proba(subset)
        assert labels.shape == (10,)
        assert probabilities.shape == (10, 3)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0, atol=1e-6)

    def test_predict_matrix_returns_confidence(self, d1_train_test):
        train, test = d1_train_test
        classifier = tiny_classifier()
        classifier.fit(train)
        module_id, confidence = classifier.predict_matrix(test[0].v_tilde)
        assert 0 <= module_id < 3
        assert 0.0 <= confidence <= 1.0

    def test_save_and_load_preserve_predictions(self, d1_train_test, tmp_path):
        train, test = d1_train_test
        classifier = tiny_classifier()
        classifier.fit(train)
        expected = classifier.predict(test[:8])
        classifier.save(tmp_path / "model")

        restored = tiny_classifier()
        restored.load(tmp_path / "model")
        np.testing.assert_array_equal(restored.predict(test[:8]), expected)

    def test_load_with_wrong_class_count_rejected(self, d1_train_test, tmp_path):
        train, _ = d1_train_test
        classifier = tiny_classifier()
        classifier.fit(train)
        classifier.save(tmp_path / "model")
        wrong = tiny_classifier(num_classes=4)
        with pytest.raises(ClassifierError):
            wrong.load(tmp_path / "model")

    def test_save_persists_the_full_configuration(self, d1_train_test, tmp_path):
        import json

        train, _ = d1_train_test
        classifier = tiny_classifier()
        classifier.fit(train)
        classifier.save(tmp_path / "model")
        metadata = json.loads((tmp_path / "model" / "metadata.json").read_text())
        assert metadata["model"]["num_filters"] == TINY_MODEL.num_filters
        assert tuple(metadata["model"]["kernel_widths"]) == TINY_MODEL.kernel_widths
        assert metadata["feature"]["stream_indices"] == [0]
        assert metadata["training"]["batch_size"] == 16

    def test_load_with_wrong_architecture_rejected(self, d1_train_test, tmp_path):
        train, _ = d1_train_test
        classifier = tiny_classifier()
        classifier.fit(train)
        classifier.save(tmp_path / "model")

        other_model = DeepCsiModelConfig(
            num_filters=4,
            kernel_widths=(3,),
            pool_width=2,
            dense_units=(8,),
            dropout_retain=(0.9,),
            attention_kernel_width=3,
        )
        wrong = DeepCsiClassifier(
            ClassifierConfig(
                num_classes=3,
                feature=classifier.config.feature,
                model=other_model,
                training=classifier.config.training,
            )
        )
        with pytest.raises(ClassifierError, match="model"):
            wrong.load(tmp_path / "model")

    def test_load_with_wrong_feature_selection_rejected(
        self, d1_train_test, tmp_path
    ):
        train, _ = d1_train_test
        classifier = tiny_classifier()
        classifier.fit(train)
        classifier.save(tmp_path / "model")

        wrong = DeepCsiClassifier(
            ClassifierConfig(
                num_classes=3,
                feature=FeatureConfig(
                    stream_indices=(1,),
                    subcarrier_positions=strided_subcarriers(234, 8),
                ),
                model=TINY_MODEL,
                training=classifier.config.training,
            )
        )
        with pytest.raises(ClassifierError, match="feature"):
            wrong.load(tmp_path / "model")

    def test_fine_tune_inherits_training_configuration(self, d1_train_test):
        train, _ = d1_train_test
        classifier = tiny_classifier(epochs=2)
        classifier.fit(train)
        history = classifier.fine_tune(train[:16], epochs=1)
        assert history.num_epochs == 1

    def test_untrained_classifier_refuses_to_predict(self, d1_train_test):
        _, test = d1_train_test
        classifier = tiny_classifier()
        with pytest.raises(ClassifierError):
            classifier.predict(test[:2])

    def test_empty_training_set_rejected(self):
        with pytest.raises(ClassifierError):
            tiny_classifier().fit([])

    def test_out_of_range_labels_rejected(self, d1_train_test):
        train, _ = d1_train_test
        classifier = tiny_classifier(num_classes=2)  # dataset has 3 modules
        with pytest.raises(ClassifierError):
            classifier.fit(train)

    def test_invalid_config_rejected(self):
        with pytest.raises(ClassifierError):
            ClassifierConfig(num_classes=1)
        with pytest.raises(ClassifierError):
            ClassifierConfig(learning_rate=0.0)


class TestEvaluation:
    def test_confusion_matrix_counts(self):
        matrix = confusion_matrix([0, 0, 1, 2], [0, 1, 1, 2], num_classes=3)
        expected = np.array([[1, 1, 0], [0, 1, 0], [0, 0, 1]])
        np.testing.assert_array_equal(matrix, expected)

    def test_confusion_matrix_infers_class_count(self):
        matrix = confusion_matrix([0, 3], [3, 0])
        assert matrix.shape == (4, 4)

    def test_normalised_rows_sum_to_one(self):
        matrix = confusion_matrix([0, 0, 1], [0, 1, 1], num_classes=3)
        normalised = normalize_confusion(matrix)
        np.testing.assert_allclose(normalised[:2].sum(axis=1), 1.0)
        np.testing.assert_allclose(normalised[2], 0.0)

    def test_accuracy_and_per_class_accuracy(self):
        true = [0, 0, 1, 1, 2]
        pred = [0, 1, 1, 1, 0]
        assert accuracy_score(true, pred) == pytest.approx(3 / 5)
        matrix = confusion_matrix(true, pred, num_classes=3)
        np.testing.assert_allclose(per_class_accuracy(matrix), [0.5, 1.0, 0.0])

    def test_evaluate_predictions_builds_report(self):
        report = evaluate_predictions([0, 1, 1], [0, 1, 0], num_classes=2, label="unit")
        assert isinstance(report, ClassificationReport)
        assert report.num_samples == 3
        assert "unit" in str(report)

    def test_format_confusion_matrix_mentions_every_class(self):
        matrix = confusion_matrix([0, 1, 2], [0, 1, 2], num_classes=3)
        text = format_confusion_matrix(matrix)
        assert text.count("1.00") == 3

    def test_invalid_inputs_rejected(self):
        with pytest.raises(EvaluationError):
            confusion_matrix([0, 1], [0], num_classes=2)
        with pytest.raises(EvaluationError):
            confusion_matrix([0, 5], [0, 1], num_classes=2)
        with pytest.raises(EvaluationError):
            accuracy_score([], [])
