"""End-to-end tests of the command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.datasets.io import load_dataset


@pytest.fixture(scope="module")
def generated_dataset(tmp_path_factory):
    """A tiny D1 archive generated through the CLI itself."""
    directory = tmp_path_factory.mktemp("cli-data")
    path = directory / "d1.npz"
    code = main(
        [
            "generate",
            "d1",
            str(path),
            "--modules",
            "3",
            "--soundings",
            "4",
            "--seed",
            "7",
        ]
    )
    assert code == 0
    return path


class TestParser:
    def test_parser_knows_every_subcommand(self):
        parser = build_parser()
        minimal_arguments = {
            "generate": ["d1", "out.npz"],
            "info": ["data.npz"],
            "train": ["data.npz", "model-dir"],
            "evaluate": ["data.npz", "model-dir"],
            "authenticate": ["data.npz", "model-dir"],
            "serve": ["data.npz", "model-dir"],
            "probe": ["data.npz"],
        }
        for command, extra in minimal_arguments.items():
            args = parser.parse_args([command, *extra])
            assert args.command == command

    def test_missing_subcommand_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_serve_accepts_every_backend(self):
        parser = build_parser()
        for backend in ("threads", "processes"):
            args = parser.parse_args(
                ["serve", "data.npz", "model-dir", "--backend", backend]
            )
            assert args.backend == backend
        # Workers default to None: the service picks the heuristic count
        # (1 on a single core, where more shards are slower).
        assert parser.parse_args(["serve", "data.npz", "model-dir"]).workers is None
        with pytest.raises(SystemExit):
            parser.parse_args(["serve", "data.npz", "model-dir", "--backend", "x"])


class TestGenerateAndInfo:
    def test_generate_writes_a_loadable_archive(self, generated_dataset):
        dataset = load_dataset(generated_dataset)
        assert dataset.num_samples == 3 * 9 * 4 * 2
        assert dataset.module_ids == [0, 1, 2]

    def test_info_summarises_the_archive(self, generated_dataset, capsys):
        code = main(["info", str(generated_dataset)])
        captured = capsys.readouterr().out
        assert code == 0
        assert "traces" in captured
        assert "V~ shape" in captured

    def test_info_on_missing_file_fails_cleanly(self, tmp_path, capsys):
        code = main(["info", str(tmp_path / "missing.npz")])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestProbeTrainEvaluate:
    def test_probe_reports_accuracy(self, generated_dataset, capsys):
        code = main(
            [
                "probe",
                str(generated_dataset),
                "--split",
                "S1",
                "--stride",
                "16",
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "linear-probe accuracy" in captured
        assert "%" in captured

    def test_train_then_evaluate_round_trip(self, generated_dataset, tmp_path, capsys):
        model_dir = tmp_path / "model"
        code = main(
            [
                "train",
                str(generated_dataset),
                str(model_dir),
                "--split",
                "S1",
                "--stride",
                "16",
                "--epochs",
                "2",
                "--batch-size",
                "16",
            ]
        )
        assert code == 0
        summary = json.loads((model_dir / "training_summary.json").read_text())
        assert summary["split"] == "S1"
        assert (model_dir / "weights.npz").exists()

        code = main(
            [
                "evaluate",
                str(generated_dataset),
                str(model_dir),
                "--split",
                "S1",
                "--stride",
                "16",
                "--num-classes",
                "3",
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "accuracy" in captured

        code = main(
            [
                "authenticate",
                str(generated_dataset),
                str(model_dir),
                "--split",
                "S1",
                "--stride",
                "16",
                "--num-classes",
                "3",
                "--batch-size",
                "8",
                "--window",
                "4",
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "micro-batches" in captured
        assert "frames/s" in captured
        assert "verdict module" in captured

        code = main(
            [
                "serve",
                str(generated_dataset),
                str(model_dir),
                "--split",
                "S1",
                "--stride",
                "16",
                "--num-classes",
                "3",
                "--workers",
                "2",
                "--queue-depth",
                "16",
                "--batch-size",
                "8",
                "--window",
                "4",
                "--stats-every",
                "16",
                "--repeat",
                "2",
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "2 workers on the threads backend (queue depth 16" in captured
        assert "[stats]" in captured
        assert "worker 0:" in captured
        assert "worker 1:" in captured
        assert "frame accuracy" in captured
        assert "verdict module" in captured

        code = main(
            [
                "serve",
                str(generated_dataset),
                str(model_dir),
                "--split",
                "S1",
                "--stride",
                "16",
                "--num-classes",
                "3",
                "--workers",
                "2",
                "--backend",
                "processes",
                "--queue-depth",
                "16",
                "--batch-size",
                "8",
                "--window",
                "4",
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "2 workers on the processes backend" in captured
        assert "(processes backend" in captured
        assert "worker 0:" in captured
        assert "worker 1:" in captured
        assert "verdict module" in captured

    def test_authenticate_compute_backends_and_profile(
        self, generated_dataset, tmp_path, capsys
    ):
        model_dir = tmp_path / "model"
        code = main(
            [
                "train", str(generated_dataset), str(model_dir),
                "--split", "S1", "--stride", "16",
                "--epochs", "2", "--batch-size", "16",
            ]
        )
        assert code == 0
        capsys.readouterr()

        base = [
            "authenticate", str(generated_dataset), str(model_dir),
            "--split", "S1", "--stride", "16",
            "--num-classes", "3", "--batch-size", "8",
        ]
        for compute in ("exact", "fp32", "int8"):
            code = main(base + ["--compute", compute])
            captured = capsys.readouterr().out
            assert code == 0
            assert f"compute {compute}" in captured
            assert "per-layer forward profile" not in captured

        code = main(base + ["--compute", "fp32", "--profile"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "per-layer forward profile:" in captured
        assert "ms/call" in captured

        code = main(
            [
                "serve", str(generated_dataset), str(model_dir),
                "--split", "S1", "--stride", "16",
                "--num-classes", "3", "--workers", "2",
                "--batch-size", "8", "--compute", "fp32",
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "compute fp32" in captured

    def test_authenticate_codeword_fast_path(
        self, generated_dataset, tmp_path, capsys
    ):
        model_dir = tmp_path / "model"
        code = main(
            [
                "train", str(generated_dataset), str(model_dir),
                "--split", "S1", "--stride", "16",
                "--epochs", "2", "--batch-size", "16",
            ]
        )
        assert code == 0
        capsys.readouterr()

        base = [
            "authenticate", str(generated_dataset), str(model_dir),
            "--split", "S1", "--stride", "16",
            "--num-classes", "3", "--batch-size", "8", "--codewords",
        ]
        for precision in ("exact", "fast"):
            code = main(base + ["--precision", precision])
            captured = capsys.readouterr().out
            assert code == 0
            assert f"precision {precision}" in captured
            assert "verdict module" in captured

        code = main(base + ["--precision", "fast", "--profile"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "per-stage preprocessing profile:" in captured
        assert "reconstruct" in captured
        assert "ms/batch" in captured

    def test_unknown_precision_rejected_by_parser(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(
                ["authenticate", "data.npz", "model-dir", "--precision", "fp16"]
            )

    def test_unknown_compute_backend_rejected_by_parser(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(
                ["authenticate", "data.npz", "model-dir", "--compute", "fp16"]
            )

    def test_serve_rejects_invalid_repeat(self, generated_dataset, tmp_path, capsys):
        code = main(
            [
                "serve",
                str(generated_dataset),
                str(tmp_path / "missing-model"),
                "--repeat",
                "0",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_split_is_reported_as_error(self, generated_dataset):
        with pytest.raises(SystemExit):
            # argparse rejects the invalid choice before our handler runs.
            main(["probe", str(generated_dataset), "--split", "S9"])
