"""Tests for the spatial-attention block of the DeepCSI architecture."""

import numpy as np
import pytest

from repro.nn.attention import SpatialAttention
from repro.nn.gradcheck import check_layer_input_gradient, check_layer_parameter_gradients
from repro.nn.layers import LayerError


class TestSpatialAttentionForward:
    def test_output_shape_matches_input(self, rng):
        layer = SpatialAttention((1, 3), rng=np.random.default_rng(0))
        x = rng.standard_normal((2, 5, 1, 12))
        assert layer.forward(x).shape == x.shape

    def test_output_is_input_scaled_between_one_and_two(self, rng):
        # y = x * sigmoid(...) + x, so y/x lies in (1, 2) element-wise.
        layer = SpatialAttention((1, 3), rng=np.random.default_rng(0))
        x = rng.standard_normal((2, 4, 1, 9)) + 5.0  # keep x positive
        ratio = layer.forward(x) / x
        assert np.all(ratio > 1.0)
        assert np.all(ratio < 2.0)

    def test_attention_weights_are_shared_across_channels(self, rng):
        layer = SpatialAttention((1, 3), rng=np.random.default_rng(0))
        x = rng.standard_normal((1, 4, 1, 6))
        y = layer.forward(x)
        scale = y / x - 1.0  # recover the sigmoid weight per position
        np.testing.assert_allclose(scale[0, 0], scale[0, 3], atol=1e-12)

    def test_parameters_come_from_internal_convolution(self):
        layer = SpatialAttention((1, 5), rng=np.random.default_rng(0))
        params = layer.parameters()
        assert set(params) == {"conv_weight", "conv_bias"}
        assert params["conv_weight"].shape == (1, 2, 1, 5)

    def test_requires_4d_input(self, rng):
        layer = SpatialAttention((1, 3), rng=np.random.default_rng(0))
        with pytest.raises(LayerError):
            layer.forward(rng.standard_normal((3, 4)))

    def test_backward_before_forward_rejected(self):
        layer = SpatialAttention((1, 3), rng=np.random.default_rng(0))
        with pytest.raises(LayerError):
            layer.backward(np.zeros((1, 2, 1, 4)))


class TestSpatialAttentionGradients:
    def test_input_gradient_matches_finite_differences(self, rng):
        layer = SpatialAttention((1, 3), rng=np.random.default_rng(0))
        # Distinct values keep the channel-argmax stable under perturbation.
        x = rng.permutation(np.arange(2 * 3 * 1 * 8)).reshape(2, 3, 1, 8) * 0.13
        check_layer_input_gradient(layer, x, rtol=1e-3, atol=1e-6)

    def test_parameter_gradients_match_finite_differences(self, rng):
        layer = SpatialAttention((1, 3), rng=np.random.default_rng(1))
        x = rng.permutation(np.arange(1 * 3 * 2 * 6)).reshape(1, 3, 2, 6) * 0.21
        check_layer_parameter_gradients(layer, x, rtol=1e-3, atol=1e-6)

    def test_skip_connection_keeps_gradient_flowing_when_attention_saturates(self, rng):
        layer = SpatialAttention((1, 3), rng=np.random.default_rng(0))
        # Drive the attention logits far negative so sigmoid ~ 0; the skip
        # connection must still pass the gradient through.
        layer.conv.bias[...] = -50.0
        x = rng.standard_normal((1, 2, 1, 6))
        layer.forward(x, training=True)
        grad = layer.backward(np.ones((1, 2, 1, 6)))
        assert np.all(np.abs(grad) > 0.9)
