"""Tests for the dataset containers (samples, traces, datasets)."""

import numpy as np
import pytest

from repro.datasets.containers import (
    FeedbackDataset,
    FeedbackSample,
    Trace,
    merge_datasets,
)


def make_sample(module_id=0, beamformee_id=1, position_id=1, group="static",
                timestamp=0.0, progress=0.0, rng=None):
    rng = rng if rng is not None else np.random.default_rng(0)
    v = rng.standard_normal((8, 3, 2)) + 1j * rng.standard_normal((8, 3, 2))
    return FeedbackSample(
        v_tilde=v,
        module_id=module_id,
        beamformee_id=beamformee_id,
        position_id=position_id,
        group=group,
        timestamp_s=timestamp,
        path_progress=progress,
    )


def make_trace(module_id=0, position_id=1, group="static", num_samples=6):
    trace = Trace(module_id=module_id, position_id=position_id, group=group)
    for index in range(num_samples):
        for beamformee in (1, 2):
            trace.add(
                make_sample(
                    module_id=module_id,
                    beamformee_id=beamformee,
                    position_id=position_id,
                    group=group,
                    timestamp=index * 0.5,
                    progress=index / max(num_samples - 1, 1),
                )
            )
    return trace


class TestFeedbackSample:
    def test_dimension_properties(self):
        sample = make_sample()
        assert sample.num_subcarriers == 8
        assert sample.num_tx_antennas == 3
        assert sample.num_streams == 2


class TestTrace:
    def test_iteration_and_indexing(self):
        trace = make_trace(num_samples=3)
        assert len(trace) == 6
        assert trace[0].beamformee_id == 1
        assert sum(1 for _ in trace) == 6

    def test_filter_beamformee(self):
        trace = make_trace(num_samples=4)
        only_bf2 = trace.filter_beamformee(2)
        assert len(only_bf2) == 4
        assert all(s.beamformee_id == 2 for s in only_bf2)
        assert only_bf2.module_id == trace.module_id

    def test_time_split_keeps_order_and_proportion(self):
        trace = make_trace(num_samples=10)
        train, test = trace.time_split(0.8)
        assert len(train) == 16 and len(test) == 4
        # Training samples come before test samples for each beamformee.
        for beamformee in (1, 2):
            train_times = [s.timestamp_s for s in train if s.beamformee_id == beamformee]
            test_times = [s.timestamp_s for s in test if s.beamformee_id == beamformee]
            assert max(train_times) < min(test_times)

    def test_time_split_keeps_both_beamformees(self):
        trace = make_trace(num_samples=5)
        train, test = trace.time_split(0.8)
        assert {s.beamformee_id for s in train} == {1, 2}
        assert {s.beamformee_id for s in test} == {1, 2}

    def test_time_split_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            make_trace().time_split(1.0)

    def test_progress_split(self):
        trace = make_trace(num_samples=10)
        before, after = trace.progress_split(0.5)
        assert all(s.path_progress <= 0.5 for s in before)
        assert all(s.path_progress > 0.5 for s in after)
        assert len(before) + len(after) == len(trace)

    def test_progress_split_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            make_trace().progress_split(0.0)


class TestFeedbackDataset:
    def make_dataset(self):
        dataset = FeedbackDataset(name="test")
        for module in range(2):
            for position in (1, 2, 3):
                dataset.add(make_trace(module_id=module, position_id=position))
        return dataset

    def test_summary_properties(self):
        dataset = self.make_dataset()
        assert len(dataset) == 6
        assert dataset.module_ids == [0, 1]
        assert dataset.position_ids == [1, 2, 3]
        assert dataset.groups == ["static"]
        assert dataset.num_samples == 6 * 12
        assert "test" in dataset.summary()

    def test_filter_by_module_and_position(self):
        dataset = self.make_dataset()
        filtered = dataset.filter(module_ids=[1], position_ids=[2, 3])
        assert len(filtered) == 2
        assert all(t.module_id == 1 for t in filtered)

    def test_filter_with_predicate(self):
        dataset = self.make_dataset()
        filtered = dataset.filter(predicate=lambda t: t.position_id == 1)
        assert len(filtered) == 2

    def test_samples_flattening_and_beamformee_restriction(self):
        dataset = self.make_dataset()
        all_samples = dataset.samples()
        bf1_samples = dataset.samples(beamformee_id=1)
        assert len(all_samples) == dataset.num_samples
        assert len(bf1_samples) == dataset.num_samples // 2

    def test_merge_datasets(self):
        merged = merge_datasets([self.make_dataset(), self.make_dataset()])
        assert len(merged) == 12
