"""Unit tests for CFR assembly, SVD beamforming and MU-MIMO precoding."""

import numpy as np
import pytest

from repro.phy.devices import AccessPoint, make_beamformee
from repro.phy.geometry import AP_POSITION_A, beamformee_positions
from repro.phy.channel import MultipathChannel
from repro.phy.impairments import PacketOffsets
from repro.phy.mimo import (
    beamforming_matrix,
    compute_cfr,
    interference_metrics,
    mu_mimo_precoder,
    sound_beamformee,
    steering_weights,
)


class TestComputeCfr:
    def test_shape_and_dtype(self, small_network, layout20):
        ap, bf, channel = small_network
        cfr = compute_cfr(ap, bf, channel, layout20, np.random.default_rng(0))
        assert cfr.shape == (layout20.num_subcarriers, 3, 2)
        assert np.iscomplexobj(cfr)

    def test_different_modules_produce_different_cfr(
        self, small_modules, small_network, layout20
    ):
        ap, bf, channel = small_network
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(0)
        offsets = PacketOffsets.none(3)
        cfr_a = compute_cfr(ap, bf, channel, layout20, rng_a, packet_offsets=offsets)
        other_ap = ap.with_module(small_modules[1])
        cfr_b = compute_cfr(other_ap, bf, channel, layout20, rng_b, packet_offsets=offsets)
        assert not np.allclose(cfr_a, cfr_b)

    def test_high_snr_reduces_packet_to_packet_variation(
        self, small_network, layout20
    ):
        ap, bf, channel = small_network
        offsets = PacketOffsets.none(3)

        def spread(snr_db):
            cfrs = [
                compute_cfr(
                    ap, bf, channel, layout20, np.random.default_rng(seed),
                    packet_offsets=offsets, snr_db=snr_db, fading_jitter=0.0,
                )
                for seed in range(4)
            ]
            stacked = np.stack(cfrs)
            return float(np.mean(np.std(stacked, axis=0)))

        assert spread(40.0) < spread(5.0)

    def test_reusing_realization_keeps_geometry_constant(self, small_network, layout20):
        ap, bf, channel = small_network
        realization = channel.realize(
            ap.antenna_elements(), bf.antenna_elements(),
            layout20.config.carrier_frequency_hz,
        )
        offsets = PacketOffsets.none(3)
        cfr_a = compute_cfr(
            ap, bf, channel, layout20, np.random.default_rng(1),
            packet_offsets=offsets, snr_db=80.0, fading_jitter=0.0,
            realization=realization,
        )
        cfr_b = compute_cfr(
            ap, bf, channel, layout20, np.random.default_rng(2),
            packet_offsets=offsets, snr_db=80.0, fading_jitter=0.0,
            realization=realization,
        )
        np.testing.assert_allclose(cfr_a, cfr_b, rtol=1e-3, atol=1e-5)


class TestBeamformingMatrix:
    def test_columns_are_orthonormal(self, small_network, layout20):
        ap, bf, channel = small_network
        cfr = compute_cfr(ap, bf, channel, layout20, np.random.default_rng(0))
        v = beamforming_matrix(cfr, 2)
        gram = np.einsum("kms,kmt->kst", np.conj(v), v)
        identity = np.broadcast_to(np.eye(2), gram.shape)
        np.testing.assert_allclose(gram, identity, atol=1e-10)

    def test_single_stream_shape(self, small_network, layout20):
        ap, bf, channel = small_network
        cfr = compute_cfr(ap, bf, channel, layout20, np.random.default_rng(0))
        v = beamforming_matrix(cfr, 1)
        assert v.shape == (layout20.num_subcarriers, 3, 1)

    def test_first_column_maximises_effective_gain(self, small_network, layout20):
        # The first right-singular vector gives at least as much gain as any
        # of the later ones: ||H^T v_1|| >= ||H^T v_2||.
        ap, bf, channel = small_network
        cfr = compute_cfr(ap, bf, channel, layout20, np.random.default_rng(0))
        v = beamforming_matrix(cfr, 2)
        h_t = np.transpose(cfr, (0, 2, 1))
        gain_1 = np.linalg.norm(np.matmul(h_t, v[:, :, :1]), axis=(1, 2))
        gain_2 = np.linalg.norm(np.matmul(h_t, v[:, :, 1:2]), axis=(1, 2))
        assert np.all(gain_1 >= gain_2 - 1e-9)

    def test_stream_count_validation(self, small_network, layout20):
        ap, bf, channel = small_network
        cfr = compute_cfr(ap, bf, channel, layout20, np.random.default_rng(0))
        with pytest.raises(ValueError):
            beamforming_matrix(cfr, 0)
        with pytest.raises(ValueError):
            beamforming_matrix(cfr, 3)  # only 2 RX antennas

    def test_requires_3d_input(self):
        with pytest.raises(ValueError):
            beamforming_matrix(np.ones((4, 3)), 1)

    def test_steering_weights_copy(self, small_network, layout20):
        ap, bf, channel = small_network
        cfr = compute_cfr(ap, bf, channel, layout20, np.random.default_rng(0))
        v = beamforming_matrix(cfr, 2)
        w = steering_weights(v)
        w[0, 0, 0] = 0.0
        assert v[0, 0, 0] != 0.0


class TestMuMimoPrecoding:
    def _two_user_cfrs(self, layout20, rng):
        channel = MultipathChannel(environment_seed=2)
        from repro.phy.devices import make_module_population

        module = make_module_population(num_modules=1, seed=1)[0]
        ap = AccessPoint(module=module, position=AP_POSITION_A)
        bf1_pos, bf2_pos = beamformee_positions(4)
        bf1 = make_beamformee(1, bf1_pos, num_antennas=1, num_streams=1)
        bf2 = make_beamformee(2, bf2_pos, num_antennas=2, num_streams=2)
        offsets = PacketOffsets.none(3)
        cfr1 = compute_cfr(ap, bf1, channel, layout20, rng, packet_offsets=offsets, snr_db=60)
        cfr2 = compute_cfr(ap, bf2, channel, layout20, rng, packet_offsets=offsets, snr_db=60)
        return [cfr1, cfr2]

    def test_zero_forcing_cancels_inter_user_interference(self, layout20):
        rng = np.random.default_rng(3)
        cfrs = self._two_user_cfrs(layout20, rng)
        weights = mu_mimo_precoder(cfrs, streams_per_user=[1, 2])
        report = interference_metrics(cfrs, weights)
        for signal, iui in zip(report.signal_power, report.inter_user_interference):
            assert iui < 1e-6 * signal

    def test_su_beamforming_has_interference_towards_other_user(self, layout20):
        rng = np.random.default_rng(3)
        cfrs = self._two_user_cfrs(layout20, rng)
        su_weights = [
            steering_weights(beamforming_matrix(cfrs[0], 1)),
            steering_weights(beamforming_matrix(cfrs[1], 2)),
        ]
        report = interference_metrics(cfrs, su_weights)
        assert max(report.inter_user_interference) > 1e-3

    def test_sinr_improves_with_zero_forcing(self, layout20):
        rng = np.random.default_rng(3)
        cfrs = self._two_user_cfrs(layout20, rng)
        zf_weights = mu_mimo_precoder(cfrs, streams_per_user=[1, 2])
        su_weights = [
            steering_weights(beamforming_matrix(cfrs[0], 1)),
            steering_weights(beamforming_matrix(cfrs[1], 2)),
        ]
        noise = 1e-4
        zf_sinr = interference_metrics(cfrs, zf_weights).sinr_db(noise)
        su_sinr = interference_metrics(cfrs, su_weights).sinr_db(noise)
        assert min(zf_sinr) > min(su_sinr)

    def test_too_many_streams_rejected(self, layout20):
        rng = np.random.default_rng(3)
        cfrs = self._two_user_cfrs(layout20, rng)
        with pytest.raises(ValueError):
            mu_mimo_precoder(cfrs, streams_per_user=[2, 2])

    def test_mismatched_arguments_rejected(self, layout20):
        rng = np.random.default_rng(3)
        cfrs = self._two_user_cfrs(layout20, rng)
        with pytest.raises(ValueError):
            mu_mimo_precoder(cfrs, streams_per_user=[1])
        with pytest.raises(ValueError):
            interference_metrics(cfrs, [np.zeros((1, 3, 1))])


class TestSoundBeamformee:
    def test_returns_cfr_and_v(self, small_network, layout20):
        ap, bf, channel = small_network
        result = sound_beamformee(ap, bf, channel, layout20, np.random.default_rng(0))
        assert result.cfr.shape == (layout20.num_subcarriers, 3, 2)
        assert result.v_matrix.shape == (layout20.num_subcarriers, 3, 2)
