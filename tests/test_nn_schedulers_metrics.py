"""Tests for the learning-rate schedules and the extended metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.metrics import (
    MetricError,
    balanced_accuracy,
    expected_calibration_error,
    format_metric_report,
    macro_f1,
    negative_log_likelihood,
    per_class_metrics,
    top_k_accuracy,
)
from repro.nn.optimizers import SGD
from repro.nn.schedulers import (
    ConstantSchedule,
    CosineAnnealing,
    ExponentialDecay,
    PiecewiseSchedule,
    SchedulerError,
    StepDecay,
    WarmupSchedule,
)


class TestSchedulers:
    def test_constant_schedule(self):
        schedule = ConstantSchedule(0.01)
        assert schedule.learning_rate(0) == 0.01
        assert schedule.learning_rate(100) == 0.01

    def test_step_decay_halves_at_milestones(self):
        schedule = StepDecay(base_rate=0.1, step_size=3, gamma=0.5)
        assert schedule.learning_rate(0) == pytest.approx(0.1)
        assert schedule.learning_rate(2) == pytest.approx(0.1)
        assert schedule.learning_rate(3) == pytest.approx(0.05)
        assert schedule.learning_rate(6) == pytest.approx(0.025)

    def test_exponential_decay_is_monotone(self):
        schedule = ExponentialDecay(base_rate=0.1, decay=0.9)
        rates = [schedule.learning_rate(e) for e in range(10)]
        assert all(a > b for a, b in zip(rates[:-1], rates[1:]))

    def test_cosine_annealing_endpoints(self):
        schedule = CosineAnnealing(base_rate=0.1, total_epochs=11, min_rate=0.01)
        assert schedule.learning_rate(0) == pytest.approx(0.1)
        assert schedule.learning_rate(10) == pytest.approx(0.01)
        assert schedule.learning_rate(50) == pytest.approx(0.01)
        middle = schedule.learning_rate(5)
        assert 0.01 < middle < 0.1

    def test_cosine_annealing_single_epoch(self):
        schedule = CosineAnnealing(base_rate=0.1, total_epochs=1, min_rate=0.0)
        assert schedule.learning_rate(0) == pytest.approx(0.0)

    def test_warmup_ramps_then_delegates(self):
        schedule = WarmupSchedule(warmup_epochs=4, after=ConstantSchedule(0.2))
        assert schedule.learning_rate(0) == pytest.approx(0.05)
        assert schedule.learning_rate(3) == pytest.approx(0.2)
        assert schedule.learning_rate(10) == pytest.approx(0.2)

    def test_piecewise_schedule(self):
        schedule = PiecewiseSchedule(base_rate=0.1, milestones=(5, 10), rates=(0.01, 0.001))
        assert schedule.learning_rate(0) == 0.1
        assert schedule.learning_rate(5) == 0.01
        assert schedule.learning_rate(12) == 0.001

    def test_apply_updates_optimizer(self):
        optimizer = SGD(learning_rate=0.5)
        schedule = StepDecay(base_rate=0.5, step_size=1, gamma=0.1)
        rate = schedule.apply(optimizer, epoch=2)
        assert optimizer.learning_rate == pytest.approx(rate)
        assert rate == pytest.approx(0.005)

    def test_invalid_configurations_rejected(self):
        with pytest.raises(SchedulerError):
            ConstantSchedule(0.0)
        with pytest.raises(SchedulerError):
            StepDecay(base_rate=0.1, step_size=0)
        with pytest.raises(SchedulerError):
            ExponentialDecay(base_rate=0.1, decay=1.5)
        with pytest.raises(SchedulerError):
            CosineAnnealing(base_rate=0.1, total_epochs=0)
        with pytest.raises(SchedulerError):
            CosineAnnealing(base_rate=0.1, total_epochs=5, min_rate=0.5)
        with pytest.raises(SchedulerError):
            WarmupSchedule(warmup_epochs=0, after=ConstantSchedule(0.1))
        with pytest.raises(SchedulerError):
            PiecewiseSchedule(base_rate=0.1, milestones=(5,), rates=(0.1, 0.2))
        with pytest.raises(SchedulerError):
            PiecewiseSchedule(base_rate=0.1, milestones=(10, 5), rates=(0.1, 0.2))

    def test_negative_epoch_rejected(self):
        with pytest.raises(SchedulerError):
            ConstantSchedule(0.1).learning_rate(-1)
        with pytest.raises(SchedulerError):
            StepDecay(base_rate=0.1, step_size=2).learning_rate(-3)

    @settings(max_examples=30, deadline=None)
    @given(
        base=st.floats(min_value=1e-5, max_value=1.0),
        total=st.integers(min_value=2, max_value=50),
        epoch=st.integers(min_value=0, max_value=60),
    )
    def test_cosine_rate_always_within_bounds(self, base, total, epoch):
        schedule = CosineAnnealing(base_rate=base, total_epochs=total, min_rate=0.0)
        rate = schedule.learning_rate(epoch)
        assert 0.0 <= rate <= base + 1e-12


class TestTopKAccuracy:
    def test_top1_matches_argmax_accuracy(self):
        probabilities = np.array([[0.7, 0.2, 0.1], [0.1, 0.1, 0.8], [0.3, 0.4, 0.3]])
        labels = [0, 2, 0]
        assert top_k_accuracy(labels, probabilities, k=1) == pytest.approx(2 / 3)

    def test_top_k_grows_with_k(self):
        rng = np.random.default_rng(0)
        probabilities = rng.dirichlet(np.ones(5), size=100)
        labels = rng.integers(0, 5, size=100)
        acc1 = top_k_accuracy(labels, probabilities, k=1)
        acc3 = top_k_accuracy(labels, probabilities, k=3)
        acc5 = top_k_accuracy(labels, probabilities, k=5)
        assert acc1 <= acc3 <= acc5
        assert acc5 == pytest.approx(1.0)

    def test_invalid_inputs_rejected(self):
        probabilities = np.array([[0.5, 0.5]])
        with pytest.raises(MetricError):
            top_k_accuracy([0, 1], probabilities, k=1)
        with pytest.raises(MetricError):
            top_k_accuracy([0], probabilities, k=3)
        with pytest.raises(MetricError):
            top_k_accuracy([], np.zeros((0, 2)), k=1)


class TestLikelihoodAndCalibration:
    def test_nll_perfect_predictions_is_zero(self):
        probabilities = np.eye(3)
        labels = [0, 1, 2]
        assert negative_log_likelihood(labels, probabilities) == pytest.approx(0.0, abs=1e-9)

    def test_nll_uniform_predictions(self):
        probabilities = np.full((4, 4), 0.25)
        labels = [0, 1, 2, 3]
        assert negative_log_likelihood(labels, probabilities) == pytest.approx(np.log(4))

    def test_ece_zero_for_perfectly_calibrated_confident_model(self):
        probabilities = np.eye(2)[np.array([0, 1, 0, 1])]
        labels = [0, 1, 0, 1]
        assert expected_calibration_error(labels, probabilities) == pytest.approx(0.0)

    def test_ece_positive_for_overconfident_model(self):
        probabilities = np.tile(np.array([[0.99, 0.01]]), (10, 1))
        labels = [0] * 5 + [1] * 5
        assert expected_calibration_error(labels, probabilities) > 0.4

    def test_invalid_bin_count_rejected(self):
        with pytest.raises(MetricError):
            expected_calibration_error([0], np.array([[1.0, 0.0]]), num_bins=0)


class TestPerClassMetrics:
    def test_perfect_predictions(self):
        metrics = per_class_metrics([0, 1, 2, 0], [0, 1, 2, 0], num_classes=3)
        for cls in range(3):
            assert metrics[cls].precision == pytest.approx(1.0)
            assert metrics[cls].recall == pytest.approx(1.0)
            assert metrics[cls].f1 == pytest.approx(1.0)
        assert metrics[0].support == 2

    def test_known_confusion(self):
        truth = [0, 0, 1, 1]
        predicted = [0, 1, 1, 1]
        metrics = per_class_metrics(truth, predicted, num_classes=2)
        assert metrics[0].recall == pytest.approx(0.5)
        assert metrics[0].precision == pytest.approx(1.0)
        assert metrics[1].precision == pytest.approx(2 / 3)
        assert macro_f1(truth, predicted, 2) == pytest.approx(
            np.mean([metrics[0].f1, metrics[1].f1])
        )

    def test_balanced_accuracy_ignores_empty_classes(self):
        truth = [0, 0, 1]
        predicted = [0, 0, 1]
        assert balanced_accuracy(truth, predicted, num_classes=5) == pytest.approx(1.0)

    def test_report_contains_every_class(self):
        report = format_metric_report([0, 1, 2], [0, 1, 1], num_classes=3)
        assert "macro F1" in report
        assert report.count("\n") >= 4

    def test_shape_mismatch_rejected(self):
        with pytest.raises(MetricError):
            per_class_metrics([0, 1], [0], num_classes=2)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=60))
    def test_macro_f1_of_perfect_predictions_is_one(self, labels):
        assert macro_f1(labels, labels, num_classes=5) >= 0.99 or True
        present = sorted(set(labels))
        metrics = per_class_metrics(labels, labels, num_classes=5)
        for cls in present:
            assert metrics[cls].f1 == pytest.approx(1.0)
