"""Chaos tests of the always-on service lifecycle.

The zero-downtime swap claim is load-bearing: an always-on authenticator
must pick up new model weights *while* adversarial and enrolled traffic keep
flowing, without dropping a frame, without mixing two versions inside one
frame's classification, and without a failed swap wedging the service.  This
suite attacks that claim on both execution backends:

* swap under sustained load -- every submitted frame comes back, per-source
  verdict versions never decrease, and the new version actually serves;
* determinism -- a same-weights swap must leave every per-frame decision
  bitwise identical to a swap-free run (frames are classified entirely by
  one version, never by a half-installed one);
* crash during swap -- an architecture-mismatched version must surface as
  :class:`~repro.core.service.ServiceError` on both backends (and a killed
  worker process mid-swap must raise, not hang);
* threshold hot-swap -- a version that bundles a new open-set threshold
  re-calibrates rejection at the same batch boundary as the weights.

Set ``REPRO_SLOW_TESTS=1`` to also run the sustained multi-swap soak
variants.
"""

import os

import numpy as np
import pytest

from repro.core.classifier import ClassifierConfig, DeepCsiClassifier
from repro.core.engine import UNKNOWN_MODULE_ID
from repro.core.lifecycle import DriftConfig, ModelVersion
from repro.core.model import DeepCsiModelConfig
from repro.core.openset import OpenSetAuthenticator, calibrate_threshold
from repro.core.service import ServiceError, StreamingService
from repro.datasets.adversarial import impostor_scenario, interleaved_traffic
from repro.datasets.features import FeatureConfig
from repro.nn.training import TrainingConfig

SLOW = os.environ.get("REPRO_SLOW_TESTS", "") not in ("", "0")
BACKENDS = ("threads", "processes")

NUM_ENROLLED = 3


def _train_classifier(samples, seed):
    classifier = DeepCsiClassifier(
        ClassifierConfig(
            num_classes=NUM_ENROLLED,
            feature=FeatureConfig(stream_indices=(0,)),
            model=DeepCsiModelConfig(
                num_filters=8,
                kernel_widths=(3,),
                pool_width=2,
                dense_units=(16,),
                dropout_retain=(1.0,),
                use_attention=False,
            ),
            training=TrainingConfig(
                epochs=20,
                batch_size=16,
                validation_split=0.0,
                early_stopping_patience=None,
            ),
            learning_rate=5e-3,
            seed=seed,
        )
    )
    classifier.fit(samples)
    return classifier


@pytest.fixture(scope="module")
def scenario():
    return impostor_scenario(
        num_enrolled=NUM_ENROLLED, num_unseen=2, num_per_module=20, seed=0
    )


@pytest.fixture(scope="module")
def classifier_v0(scenario):
    return _train_classifier(scenario.enrolled_train, seed=0)


@pytest.fixture(scope="module")
def classifier_v1(scenario):
    """Same architecture, genuinely different weights (different init)."""
    return _train_classifier(scenario.enrolled_train, seed=1)


@pytest.fixture(scope="module")
def feed(scenario):
    return interleaved_traffic(scenario, sources_per_population=2, seed=0)


def _serve_with_swaps(classifier, feed, backend, swaps=(), **service_kwargs):
    """Run the feed through a 2-worker service, swapping at given frame counts.

    ``swaps`` is a list of ``(frame_index, replacement)`` pairs; each swap
    fires right after that many frames have been submitted.  A
    ``swap_threshold`` keyword is forwarded to every swap as its bundled
    open-set threshold.  Returns the results (submission order), the final
    stats and the per-source verdicts.
    """
    swap_threshold = service_kwargs.pop("swap_threshold", None)
    pending = sorted(swaps, key=lambda entry: entry[0])
    results = []
    with StreamingService(
        classifier,
        num_workers=2,
        batch_size=8,
        backend=backend,
        **service_kwargs,
    ) as service:
        for submitted, (source, sample) in enumerate(feed, start=1):
            service.submit(sample, source=source)
            results.extend(service.collect())
            while pending and pending[0][0] == submitted:
                service.swap_model(
                    pending.pop(0)[1], open_set_threshold=swap_threshold
                )
        service.flush()
        results.extend(service.collect())
        stats = service.stats
        verdicts = {source: service.verdict(source) for source in service.sources}
    results.sort(key=lambda result: result.sequence)
    return results, stats, verdicts


class TestSwapUnderLoad:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_no_dropped_frames_and_monotonic_versions(
        self, classifier_v0, classifier_v1, feed, backend
    ):
        swap_at = len(feed) // 2
        results, stats, verdicts = _serve_with_swaps(
            classifier_v0, feed, backend, swaps=[(swap_at, classifier_v1)]
        )
        # Zero drops: every submitted frame produced exactly one result.
        assert [result.sequence for result in results] == list(range(len(feed)))
        assert stats.frames_out == len(feed)
        assert stats.model_version == 1
        # The swap actually took: both versions served frames.
        versions = [result.model_version for result in results]
        assert 0 in versions and 1 in versions
        # Per-source verdict versions never decrease in submission order.
        by_source = {}
        for result in results:
            by_source.setdefault(result.source, []).append(result.model_version)
        for source, stamped in by_source.items():
            assert stamped == sorted(stamped), source
        assert all(verdict.model_version == 1 for verdict in verdicts.values())

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_same_weights_swap_is_bitwise_invisible(
        self, classifier_v0, feed, backend
    ):
        """Every frame is classified entirely by one version: a swap to
        identical weights must not perturb a single bit of any decision."""
        baseline, _, _ = _serve_with_swaps(classifier_v0, feed, backend)
        swapped, stats, _ = _serve_with_swaps(
            classifier_v0, feed, backend, swaps=[(len(feed) // 3, classifier_v0)]
        )
        assert stats.model_version == 1
        for before, after in zip(baseline, swapped):
            assert before.sequence == after.sequence
            assert before.source == after.source
            assert before.predicted_module_id == after.predicted_module_id
            # Bitwise float equality, not approx: same version, same bits.
            assert before.confidence == after.confidence

    @pytest.mark.skipif(not SLOW, reason="soak variant; set REPRO_SLOW_TESTS=1")
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sustained_load_with_repeated_swaps(
        self, classifier_v0, classifier_v1, feed, backend
    ):
        stream = feed * 4
        replacements = [classifier_v1, classifier_v0, classifier_v1, classifier_v0]
        step = len(stream) // (len(replacements) + 1)
        swaps = [
            (step * (index + 1), replacement)
            for index, replacement in enumerate(replacements)
        ]
        results, stats, _ = _serve_with_swaps(
            classifier_v0, stream, backend, swaps=swaps
        )
        assert [result.sequence for result in results] == list(range(len(stream)))
        assert stats.model_version == len(replacements)
        by_source = {}
        for result in results:
            by_source.setdefault(result.source, []).append(result.model_version)
        for stamped in by_source.values():
            assert stamped == sorted(stamped)


class TestSwapFailures:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_architecture_mismatch_raises_service_error(
        self, classifier_v0, feed, backend
    ):
        """A version that does not fit the running model must fail the swap
        loudly on every backend -- never hang, never half-install."""
        bogus = ModelVersion(
            version=1,
            weights={"99_dense/weight": np.zeros((4, 4), dtype=np.float64)},
        )
        with StreamingService(
            classifier_v0, num_workers=2, batch_size=8, backend=backend
        ) as service:
            for source, sample in feed[:8]:
                service.submit(sample, source=source)
            with pytest.raises(ServiceError, match="model swap failed"):
                service.swap_model(bogus)
            # The failed shard poisons the service rather than serving a
            # half-installed model.
            with pytest.raises(ServiceError):
                service.submit(feed[0][1], source="after-failure")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_non_monotonic_version_rejected(self, classifier_v0, feed, backend):
        stale = ModelVersion.from_classifier(classifier_v0, version=5)
        with StreamingService(
            classifier_v0, num_workers=2, batch_size=8, backend=backend
        ) as service:
            with pytest.raises(ServiceError, match="must be 1"):
                service.swap_model(stale)
            # The failed precondition leaves the service fully usable.
            results = service.drain([sample for _, sample in feed[:8]])
            assert len(results) == 8
            assert service.model_version == 0

    def test_killed_worker_during_swap_raises_not_hangs(
        self, classifier_v0, classifier_v1, feed
    ):
        with StreamingService(
            classifier_v0, num_workers=2, batch_size=8, backend="processes"
        ) as service:
            for source, sample in feed[:8]:
                service.submit(sample, source=source)
            service.flush()
            service.collect()
            for shard in service._backend.shards:
                shard.process.kill()
            with pytest.raises(ServiceError, match="model swap failed"):
                service.swap_model(classifier_v1)


class TestThresholdHotSwap:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_swapped_threshold_applies_at_the_swap_boundary(
        self, scenario, classifier_v0, feed, backend
    ):
        """A version bundling threshold > 1 must reject every max-softmax
        score after the swap -- proving the policy swaps with the weights."""
        authenticator = OpenSetAuthenticator(classifier_v0, scoring="max_softmax")
        calibrate_threshold(
            authenticator, scenario.enrolled_train, target_false_reject_rate=0.05
        )
        swap_at = len(feed) // 2
        results, stats, verdicts = _serve_with_swaps(
            classifier_v0,
            feed,
            backend,
            swaps=[(swap_at, classifier_v0)],
            open_set=authenticator,
            drift=DriftConfig(),
            swap_threshold=1.5,
        )
        assert stats.open_set
        assert stats.model_version == 1
        new_version = [r for r in results if r.model_version == 1]
        assert new_version
        assert all(not result.accepted for result in new_version)
        # Every source ends the run in a rejection streak, so the windowed
        # verdicts collapse to UNKNOWN.
        assert all(
            verdict.module_id == UNKNOWN_MODULE_ID for verdict in verdicts.values()
        )
        assert stats.frames_rejected >= len(new_version)
        # Rejections drag the drift monitor's fast EWMA under its baseline.
        assert stats.drift
