"""Tests for the sharded multi-worker streaming service."""

import numpy as np
import pytest

from repro.core.classifier import ClassifierConfig, DeepCsiClassifier
from repro.core.engine import InferenceEngine
from repro.core.model import DeepCsiModelConfig
from repro.core.service import (
    ServiceError,
    ServiceStats,
    StreamingService,
    resolve_num_workers,
    shard_for_source,
)
from repro.datasets.features import FeatureConfig, strided_subcarriers
from repro.datasets.splits import D1_SPLITS, d1_split
from repro.feedback.capture import station_mac
from repro.nn.training import TrainingConfig

TINY_MODEL = DeepCsiModelConfig(
    num_filters=8,
    kernel_widths=(5, 3),
    pool_width=2,
    dense_units=(16,),
    dropout_retain=(0.8,),
    attention_kernel_width=3,
)


@pytest.fixture(scope="module")
def trained_classifier(tiny_d1):
    train, _ = d1_split(tiny_d1, D1_SPLITS["S1"], beamformee_id=1)
    classifier = DeepCsiClassifier(
        ClassifierConfig(
            num_classes=3,
            feature=FeatureConfig(
                stream_indices=(0,), subcarrier_positions=strided_subcarriers(234, 8)
            ),
            model=TINY_MODEL,
            training=TrainingConfig(
                epochs=4, batch_size=16, validation_split=0.2,
                early_stopping_patience=None, seed=0,
            ),
            learning_rate=3e-3,
        )
    )
    classifier.fit(train)
    return classifier


@pytest.fixture(scope="module")
def test_samples(tiny_d1):
    _, test = d1_split(tiny_d1, D1_SPLITS["S1"], beamformee_id=1)
    return test


@pytest.fixture(scope="module")
def multi_source_stream(test_samples):
    """(source, sample) pairs: 6 sources, round-robin interleaved."""
    sources = [station_mac(index) for index in range(6)]
    return [
        (sources[index % len(sources)], sample)
        for index, sample in enumerate(test_samples[:24])
    ]


class TestShardRouting:
    def test_routing_is_stable_and_in_range(self):
        for num_shards in (1, 2, 4, 7):
            for index in range(64):
                source = station_mac(index)
                shard = shard_for_source(source, num_shards)
                assert 0 <= shard < num_shards
                assert shard == shard_for_source(source, num_shards)

    def test_many_sources_cover_every_shard(self):
        shards = {shard_for_source(station_mac(index), 4) for index in range(64)}
        assert shards == {0, 1, 2, 3}

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ServiceError):
            shard_for_source("02:00:00:00:00:01", 0)

    def test_one_source_never_spans_two_shards(
        self, trained_classifier, test_samples
    ):
        with StreamingService(trained_classifier, num_workers=4) as service:
            service.drain(test_samples[:8], source="alice")
            owners = [
                index
                for index, shard in enumerate(service._shards)
                if shard.engine.sources
            ]
        assert owners == [shard_for_source("alice", 4)]


class TestServiceResults:
    def test_drain_matches_single_engine_bitwise(
        self, trained_classifier, multi_source_stream
    ):
        engine = InferenceEngine(trained_classifier, batch_size=5)
        expected = []
        for source, sample in multi_source_stream:
            expected.extend(engine.submit(sample, source=source))
        expected.extend(engine.flush())
        expected.sort(key=lambda result: result.sequence)

        with StreamingService(
            trained_classifier, num_workers=3, batch_size=5
        ) as service:
            for source, sample in multi_source_stream:
                service.submit(sample, source=source)
            service.flush()
            actual = sorted(service.collect(), key=lambda result: result.sequence)

        assert [result.sequence for result in actual] == list(
            range(len(multi_source_stream))
        )
        for got, want in zip(actual, expected):
            assert got.source == want.source
            assert got.predicted_module_id == want.predicted_module_id
            assert got.confidence == pytest.approx(want.confidence, rel=1e-12)

    def test_verdicts_match_single_engine(
        self, trained_classifier, multi_source_stream
    ):
        engine = InferenceEngine(trained_classifier, batch_size=4, vote_window=8)
        for source, sample in multi_source_stream:
            engine.submit(sample, source=source)
        engine.flush()

        with StreamingService(
            trained_classifier, num_workers=4, batch_size=4, vote_window=8
        ) as service:
            for source, sample in multi_source_stream:
                service.submit(sample, source=source)
            service.flush()
            assert service.sources == engine.sources
            for source in engine.sources:
                got = service.verdict(source)
                want = engine.verdict(source)
                assert got.module_id == want.module_id
                assert got.num_votes == want.num_votes
                assert got.window_size == want.window_size
                assert got.confidence == pytest.approx(want.confidence, rel=1e-12)

    def test_drain_returns_submission_order(self, trained_classifier, test_samples):
        with StreamingService(
            trained_classifier, num_workers=2, batch_size=4
        ) as service:
            results = service.drain(test_samples[:10])
        assert [result.sequence for result in results] == list(range(10))

    def test_stream_yields_every_result(self, trained_classifier, test_samples):
        with StreamingService(
            trained_classifier, num_workers=2, batch_size=4
        ) as service:
            results = list(service.stream(test_samples[:7]))
        assert len(results) == 7

    def test_unknown_source_verdict_rejected(self, trained_classifier):
        from repro.core.engine import EngineError

        with StreamingService(trained_classifier, num_workers=2) as service:
            with pytest.raises(EngineError):
                service.verdict("nobody")


class TestConcurrentProducers:
    def test_parallel_submitters_get_unique_sequences(
        self, trained_classifier, test_samples
    ):
        """Regression: the service-wide sequence stamp must not race."""
        import threading

        from repro.analysis.runtime import validate_guarded

        sources = [station_mac(index) for index in range(4)]
        per_producer = 8
        with StreamingService(
            trained_classifier, num_workers=2, batch_size=4
        ) as service:
            # Runtime lock validation: the # guarded-by: _submit_lock sequence
            # counter must be locked on every access, including the stats
            # snapshots the producers interleave with their submissions.
            monitor = validate_guarded(service)

            def produce(source):
                for sample in test_samples[:per_producer]:
                    service.submit(sample, source=source)
                    service.stats

            threads = [
                threading.Thread(target=produce, args=(source,))
                for source in sources
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            service.flush()
            results = service.collect()
            monitor.assert_clean()
            monitor.restore()

        sequences = sorted(result.sequence for result in results)
        assert sequences == list(range(len(sources) * per_producer))


class TestBackpressureAndLifecycle:
    def test_bounded_queue_loses_no_frames(self, trained_classifier, test_samples):
        with StreamingService(
            trained_classifier, num_workers=2, queue_depth=1, batch_size=4
        ) as service:
            results = service.drain(test_samples[:20])
            stats = service.stats
        assert len(results) == 20
        assert stats.frames_in == stats.frames_out == 20
        assert stats.queue_full_waits >= 0

    def test_invalid_observation_surfaces_as_service_error(
        self, trained_classifier, test_samples
    ):
        with StreamingService(trained_classifier, num_workers=2) as service:
            service.submit(np.zeros((4, 4)))
            with pytest.raises(ServiceError):
                service.flush()

    def test_closed_service_rejects_submissions(
        self, trained_classifier, test_samples
    ):
        service = StreamingService(trained_classifier, num_workers=2)
        service.drain(test_samples[:2])
        service.close()
        service.close()  # idempotent
        with pytest.raises(ServiceError):
            service.submit(test_samples[0])
        with pytest.raises(ServiceError):
            service.flush()

    def test_invalid_configuration_rejected(self, trained_classifier):
        with pytest.raises(ServiceError):
            StreamingService(trained_classifier, num_workers=0)
        with pytest.raises(ServiceError):
            StreamingService(trained_classifier, queue_depth=0)


class TestWorkerHeuristic:
    def test_explicit_worker_count_always_wins(self):
        assert resolve_num_workers(2, "threads", cpu_count=1) == 2
        assert resolve_num_workers(7, "processes", cpu_count=1) == 7

    def test_single_core_defaults_to_one_shard(self):
        # On one core extra shards only add queue handshakes (threads: the
        # GIL already serialises them; processes: they time-slice the core
        # while paying transport copies) - the default must never be slower
        # than 1 worker.
        assert resolve_num_workers(None, "threads", cpu_count=1) == 1
        assert resolve_num_workers(None, "processes", cpu_count=1) == 1

    def test_multi_core_grows_with_cores_up_to_cap(self):
        assert resolve_num_workers(None, "threads", cpu_count=2) == 2
        assert resolve_num_workers(None, "processes", cpu_count=3) == 3
        assert resolve_num_workers(None, "threads", cpu_count=16) == 4

    def test_service_applies_heuristic_for_default_workers(
        self, trained_classifier
    ):
        import os

        expected = resolve_num_workers(None, "threads", cpu_count=os.cpu_count())
        with StreamingService(trained_classifier) as service:
            assert service.num_workers == expected

    def test_unknown_backend_rejected(self, trained_classifier):
        with pytest.raises(ServiceError):
            StreamingService(trained_classifier, num_workers=1, backend="fibers")


class TestProcessBackend:
    def test_results_match_threads_backend_bitwise(
        self, trained_classifier, multi_source_stream
    ):
        """Identical traffic through both backends: bitwise-identical results."""

        def run(backend):
            with StreamingService(
                trained_classifier, num_workers=2, batch_size=5, backend=backend
            ) as service:
                for source, sample in multi_source_stream:
                    service.submit(sample, source=source)
                service.flush()
                results = sorted(
                    service.collect(), key=lambda result: result.sequence
                )
                verdicts = {
                    source: service.verdict(source) for source in service.sources
                }
            return results, verdicts

        thread_results, thread_verdicts = run("threads")
        process_results, process_verdicts = run("processes")
        assert len(process_results) == len(thread_results) == len(
            multi_source_stream
        )
        for thread_result, process_result in zip(thread_results, process_results):
            assert thread_result.sequence == process_result.sequence
            assert thread_result.source == process_result.source
            assert (
                thread_result.predicted_module_id
                == process_result.predicted_module_id
            )
            assert thread_result.confidence == process_result.confidence  # bitwise
            assert thread_result.timestamp_s == process_result.timestamp_s
        assert set(process_verdicts) == set(thread_verdicts)
        for source, process_verdict in process_verdicts.items():
            thread_verdict = thread_verdicts[source]
            assert process_verdict.module_id == thread_verdict.module_id
            assert process_verdict.num_votes == thread_verdict.num_votes
            assert process_verdict.window_size == thread_verdict.window_size
            assert process_verdict.confidence == thread_verdict.confidence

    def test_worker_crash_raises_instead_of_hanging(
        self, trained_classifier, test_samples
    ):
        """Killing a child process surfaces as ServiceError, not a deadlock."""
        service = StreamingService(
            trained_classifier,
            num_workers=2,
            batch_size=4,
            queue_depth=4,
            backend="processes",
        )
        try:
            service.drain(test_samples[:4])
            for shard in service._shards:
                shard.process.kill()
                shard.process.join(timeout=5.0)
            with pytest.raises(ServiceError, match="died"):
                # The dead consumers never drain their rings, so keep
                # submitting until backpressure makes the liveness check run;
                # the small ring bounds the number of iterations needed.
                for sample in test_samples * 20:
                    service.submit(sample, source="alice")
        finally:
            service.close()

    def test_flush_with_dead_worker_raises(self, trained_classifier, test_samples):
        service = StreamingService(
            trained_classifier, num_workers=2, batch_size=4, backend="processes"
        )
        try:
            service.drain(test_samples[:4])
            for shard in service._shards:
                shard.process.kill()
                shard.process.join(timeout=5.0)
            with pytest.raises(ServiceError):
                service.flush()
        finally:
            service.close()

    def test_close_unlinks_every_shm_segment(self, trained_classifier, test_samples):
        from repro.core.transport import segment_exists

        service = StreamingService(
            trained_classifier, num_workers=2, batch_size=4, backend="processes"
        )
        names = service._backend.segment_names
        assert all(segment_exists(name) for name in names)
        service.drain(test_samples[:6])
        service.close()
        assert not any(segment_exists(name) for name in names)

    def test_close_unlinks_segments_after_worker_crash(
        self, trained_classifier, test_samples
    ):
        from repro.core.transport import segment_exists

        service = StreamingService(
            trained_classifier, num_workers=2, batch_size=4, backend="processes"
        )
        names = service._backend.segment_names
        service.drain(test_samples[:4])
        for shard in service._shards:
            shard.process.kill()
            shard.process.join(timeout=5.0)
        service.close()
        assert not any(segment_exists(name) for name in names)

    def test_stats_aggregate_per_shard_sums(
        self, trained_classifier, multi_source_stream
    ):
        with StreamingService(
            trained_classifier, num_workers=3, batch_size=4, backend="processes"
        ) as service:
            for source, sample in multi_source_stream:
                service.submit(sample, source=source)
            service.flush()
            stats = service.stats
        assert stats.backend == "processes"
        assert stats.num_workers == 3
        assert len(stats.worker_stats) == 3
        assert stats.frames_in == len(multi_source_stream)
        assert stats.frames_out == sum(w.frames_out for w in stats.worker_stats)
        assert stats.frames_out == len(multi_source_stream)
        assert stats.batches == sum(w.batches for w in stats.worker_stats)
        assert stats.inference_seconds == pytest.approx(
            sum(w.inference_seconds for w in stats.worker_stats)
        )

    def test_invalid_observation_surfaces_as_service_error(
        self, trained_classifier
    ):
        with StreamingService(
            trained_classifier, num_workers=2, backend="processes"
        ) as service:
            service.submit(np.zeros((4, 4, 4, 4)))
            with pytest.raises(ServiceError):
                service.flush()

    def test_oversize_frames_span_ring_slots(self, trained_classifier, test_samples):
        """Frames bigger than one shm slot still arrive bit for bit."""
        with StreamingService(
            trained_classifier,
            num_workers=2,
            batch_size=4,
            backend="processes",
            slot_bytes=1024,  # far below one (234, 3, 2) complex128 payload
        ) as service:
            results = service.drain(test_samples[:6])
        assert len(results) == 6

    def test_closed_service_rejects_submissions(
        self, trained_classifier, test_samples
    ):
        service = StreamingService(
            trained_classifier, num_workers=2, backend="processes"
        )
        service.drain(test_samples[:2])
        service.close()
        service.close()  # idempotent
        with pytest.raises(ServiceError):
            service.submit(test_samples[0])


class TestServiceStats:
    def test_counters_aggregate_worker_stats(
        self, trained_classifier, multi_source_stream
    ):
        with StreamingService(
            trained_classifier, num_workers=3, batch_size=4
        ) as service:
            for source, sample in multi_source_stream:
                service.submit(sample, source=source)
            service.flush()
            stats = service.stats
        assert stats.num_workers == 3
        assert stats.frames_out == len(multi_source_stream)
        assert stats.batches == sum(w.batches for w in stats.worker_stats)
        assert stats.inference_seconds == pytest.approx(
            sum(w.inference_seconds for w in stats.worker_stats)
        )
        assert stats.frames_per_second > 0.0
        assert stats.wall_frames_per_second > 0.0
        assert stats.mean_batch_size > 0.0

    def test_fresh_service_stats_guard_zero_division(self, trained_classifier):
        with StreamingService(trained_classifier, num_workers=2) as service:
            stats = service.stats
        assert stats.frames_per_second == 0.0
        assert stats.mean_batch_size == 0.0

    def test_stats_without_wall_time_guard_zero_division(self):
        stats = ServiceStats(num_workers=1)
        assert stats.frames_per_second == 0.0
        assert stats.wall_frames_per_second == 0.0
        assert stats.mean_batch_size == 0.0
