"""Tests for the spatially-correlated tapped-delay channel model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.fading import (
    ChannelTap,
    FadingModelError,
    GaussianRandomField,
    RealizedTap,
    SpatiallyCorrelatedChannel,
    TappedDelayRealization,
    spatial_correlation,
)
from repro.phy.geometry import Position, uniform_linear_array
from repro.phy.ofdm import sounding_layout


class TestGaussianRandomField:
    def test_random_field_has_expected_shapes(self):
        rng = np.random.default_rng(0)
        field = GaussianRandomField.random(rng, dims=4, correlation_length_m=0.2)
        assert field.dims == 4
        assert field.frequencies.shape[0] == field.phases.shape[0]

    def test_value_matches_values_batch(self):
        rng = np.random.default_rng(1)
        field = GaussianRandomField.random(rng, dims=2, correlation_length_m=0.3)
        points = rng.uniform(-1.0, 1.0, size=(5, 2))
        batch = field.values(points)
        single = np.array([field.value(p) for p in points])
        np.testing.assert_allclose(batch, single, rtol=1e-10)

    def test_field_is_deterministic_given_seed(self):
        field_a = GaussianRandomField.random(
            np.random.default_rng(7), dims=2, correlation_length_m=0.2
        )
        field_b = GaussianRandomField.random(
            np.random.default_rng(7), dims=2, correlation_length_m=0.2
        )
        point = np.array([0.3, -0.4])
        assert field_a.value(point) == field_b.value(point)

    def test_average_power_is_close_to_one(self):
        rng = np.random.default_rng(3)
        field = GaussianRandomField.random(
            rng, dims=2, correlation_length_m=0.25, num_features=128
        )
        points = rng.uniform(-3.0, 3.0, size=(400, 2))
        power = np.mean(np.abs(field.values(points)) ** 2)
        assert 0.5 < power < 2.0

    def test_nearby_points_are_more_correlated_than_distant_ones(self):
        rng = np.random.default_rng(5)
        field = GaussianRandomField.random(
            rng, dims=2, correlation_length_m=0.2, num_features=96
        )
        base_points = rng.uniform(-2.0, 2.0, size=(200, 2))
        near = field.values(base_points + np.array([0.05, 0.0]))
        far = field.values(base_points + np.array([1.5, 0.0]))
        base = field.values(base_points)

        def corr(a, b):
            return np.abs(np.vdot(a, b)) / (np.linalg.norm(a) * np.linalg.norm(b))

        assert corr(base, near) > corr(base, far)
        assert corr(base, near) > 0.7

    def test_invalid_configuration_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(FadingModelError):
            GaussianRandomField.random(rng, dims=0, correlation_length_m=0.2)
        with pytest.raises(FadingModelError):
            GaussianRandomField.random(rng, dims=2, correlation_length_m=0.0)
        with pytest.raises(FadingModelError):
            GaussianRandomField.random(rng, dims=2, correlation_length_m=0.2, num_features=0)

    def test_wrong_point_shape_rejected(self):
        rng = np.random.default_rng(0)
        field = GaussianRandomField.random(rng, dims=3, correlation_length_m=0.2)
        with pytest.raises(FadingModelError):
            field.value(np.zeros(2))
        with pytest.raises(FadingModelError):
            field.values(np.zeros((4, 2)))


class TestChannelTap:
    def test_gain_uses_field_and_amplitude(self):
        rng = np.random.default_rng(2)
        field = GaussianRandomField.random(rng, dims=4, correlation_length_m=0.3)
        tap = ChannelTap(
            excess_delay_s=20e-9,
            amplitude=0.5,
            departure_direction=np.array([1.0, 0.0]),
            arrival_direction=np.array([0.0, 1.0]),
            gain_field=field,
        )
        tx = np.array([0.0, 0.0])
        rx = np.array([1.0, 2.0])
        expected = 0.5 * field.value(np.concatenate([tx, rx]))
        assert tap.gain(tx, rx) == pytest.approx(expected)

    def test_gain_without_field_is_constant(self):
        tap = ChannelTap(
            excess_delay_s=0.0,
            amplitude=0.7,
            departure_direction=np.array([1.0, 0.0]),
            arrival_direction=np.array([1.0, 0.0]),
            gain_field=None,
            kind="los",
        )
        assert tap.gain(np.zeros(2), np.ones(2)) == pytest.approx(0.7)


class TestSpatiallyCorrelatedChannel:
    @pytest.fixture(scope="class")
    def channel(self):
        return SpatiallyCorrelatedChannel(environment_seed=3)

    @pytest.fixture(scope="class")
    def arrays(self):
        tx = uniform_linear_array(Position(0.0, 0.0), 3, 0.028)
        rx = uniform_linear_array(Position(0.2, 3.0), 2, 0.028)
        return tx, rx

    def test_invalid_configuration_rejected(self):
        with pytest.raises(FadingModelError):
            SpatiallyCorrelatedChannel(num_taps=0)
        with pytest.raises(FadingModelError):
            SpatiallyCorrelatedChannel(rician_k=-0.1)
        with pytest.raises(FadingModelError):
            SpatiallyCorrelatedChannel(correlation_length_m=0.0)
        with pytest.raises(FadingModelError):
            SpatiallyCorrelatedChannel(max_excess_delay_s=0.0)

    def test_taps_are_deterministic_given_seed(self):
        a = SpatiallyCorrelatedChannel(environment_seed=9).taps()
        b = SpatiallyCorrelatedChannel(environment_seed=9).taps()
        assert len(a) == len(b)
        for tap_a, tap_b in zip(a, b):
            assert tap_a.excess_delay_s == tap_b.excess_delay_s
            assert tap_a.amplitude == tap_b.amplitude

    def test_tap_powers_sum_to_one(self, channel):
        total = sum(tap.amplitude ** 2 for tap in channel.taps())
        assert total == pytest.approx(1.0)

    def test_realize_produces_los_plus_diffuse_taps(self, channel, arrays):
        tx, rx = arrays
        realization = channel.realize(tx, rx, 5.21e9)
        kinds = [tap.kind for tap in realization.taps]
        assert kinds.count("los") == 1
        assert kinds.count("diffuse") == channel.num_taps
        assert realization.num_tx_antennas == 3
        assert realization.num_rx_antennas == 2

    def test_los_delay_matches_geometry(self, channel, arrays):
        tx, rx = arrays
        realization = channel.realize(tx, rx, 5.21e9)
        los = next(tap for tap in realization.taps if tap.kind == "los")
        distance = np.linalg.norm(np.mean(rx, axis=0) - np.mean(tx, axis=0))
        assert los.delay_s == pytest.approx(distance / 299_792_458.0, rel=1e-9)
        # Diffuse taps arrive strictly after the line of sight.
        for tap in realization.taps:
            if tap.kind == "diffuse":
                assert tap.delay_s > los.delay_s

    def test_cfr_shape_and_finiteness(self, channel, arrays, layout20):
        tx, rx = arrays
        cfr = channel.realize(tx, rx, layout20.config.carrier_frequency_hz).cfr(layout20)
        assert cfr.shape == (layout20.num_subcarriers, 3, 2)
        assert np.all(np.isfinite(cfr))
        assert np.iscomplexobj(cfr)

    def test_cfr_is_frequency_selective(self, channel, arrays, layout80):
        tx, rx = arrays
        cfr = channel.realize(tx, rx, layout80.config.carrier_frequency_hz).cfr(layout80)
        magnitudes = np.abs(cfr[:, 0, 0])
        assert magnitudes.std() / magnitudes.mean() > 0.05

    def test_single_antenna_arrays_supported(self, channel, layout20):
        tx = uniform_linear_array(Position(0.0, 0.0), 1, 0.028)
        rx = uniform_linear_array(Position(0.0, 3.0), 1, 0.028)
        cfr = channel.realize(tx, rx, layout20.config.carrier_frequency_hz).cfr(layout20)
        assert cfr.shape == (layout20.num_subcarriers, 1, 1)

    def test_invalid_array_shapes_rejected(self, channel):
        with pytest.raises(FadingModelError):
            channel.realize(np.zeros((3,)), np.zeros((2, 2)), 5e9)
        with pytest.raises(FadingModelError):
            channel.realize(np.zeros((3, 2)), np.zeros((2, 3)), 5e9)

    def test_perturbed_changes_gains_but_not_structure(self, channel, arrays):
        tx, rx = arrays
        realization = channel.realize(tx, rx, 5.21e9)
        perturbed = realization.perturbed(np.random.default_rng(0), gain_jitter=0.1)
        assert len(perturbed.taps) == len(realization.taps)
        for original, jittered in zip(realization.taps, perturbed.taps):
            assert jittered.delay_s == original.delay_s
            assert jittered.gain != original.gain
        # The LoS tap is perturbed less than diffuse taps on average.
        assert np.all(np.isfinite(perturbed.cfr(sounding_layout(20))))

    def test_nearby_rx_positions_give_similar_cfr(self, channel, layout20):
        tx = uniform_linear_array(Position(0.0, 0.0), 3, 0.028)
        rx_a = uniform_linear_array(Position(0.0, 3.0), 2, 0.028)
        rx_b = uniform_linear_array(Position(0.05, 3.0), 2, 0.028)
        rx_c = uniform_linear_array(Position(1.5, 3.0), 2, 0.028)
        fc = layout20.config.carrier_frequency_hz
        cfr_a = channel.realize(tx, rx_a, fc).cfr(layout20).ravel()
        cfr_b = channel.realize(tx, rx_b, fc).cfr(layout20).ravel()
        cfr_c = channel.realize(tx, rx_c, fc).cfr(layout20).ravel()

        def similarity(x, y):
            return np.abs(np.vdot(x, y)) / (np.linalg.norm(x) * np.linalg.norm(y))

        assert similarity(cfr_a, cfr_b) > similarity(cfr_a, cfr_c)

    @settings(max_examples=20, deadline=None)
    @given(
        k=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
        length=st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
    )
    def test_any_valid_configuration_yields_finite_cfr(self, k, length):
        channel = SpatiallyCorrelatedChannel(
            num_taps=4, rician_k=k, correlation_length_m=length, environment_seed=1
        )
        tx = uniform_linear_array(Position(0.0, 0.0), 2, 0.028)
        rx = uniform_linear_array(Position(0.3, 2.5), 2, 0.028)
        layout = sounding_layout(20)
        cfr = channel.realize(tx, rx, layout.config.carrier_frequency_hz).cfr(layout)
        assert np.all(np.isfinite(cfr))
        assert np.any(np.abs(cfr) > 0)


class TestTappedDelayRealization:
    def test_requires_at_least_one_tap(self):
        with pytest.raises(FadingModelError):
            TappedDelayRealization(taps=[], carrier_frequency_hz=5e9)

    def test_mismatched_antenna_counts_rejected(self):
        tap_a = RealizedTap(
            delay_s=1e-8, gain=1.0, tx_steering=np.ones(3), rx_steering=np.ones(2)
        )
        tap_b = RealizedTap(
            delay_s=2e-8, gain=1.0, tx_steering=np.ones(2), rx_steering=np.ones(2)
        )
        with pytest.raises(FadingModelError):
            TappedDelayRealization(taps=[tap_a, tap_b], carrier_frequency_hz=5e9)

    def test_single_tap_cfr_has_flat_magnitude(self, layout20):
        tap = RealizedTap(
            delay_s=1e-8,
            gain=0.5 + 0.5j,
            tx_steering=np.exp(1j * np.array([0.0, 0.3, 0.6])),
            rx_steering=np.exp(1j * np.array([0.0, -0.2])),
        )
        realization = TappedDelayRealization(taps=[tap], carrier_frequency_hz=5e9)
        cfr = realization.cfr(layout20)
        magnitudes = np.abs(cfr)
        np.testing.assert_allclose(magnitudes, magnitudes[0, 0, 0], rtol=1e-9)


class TestSpatialCorrelation:
    def test_correlation_decays_with_displacement(self):
        channel = SpatiallyCorrelatedChannel(
            correlation_length_m=0.2, environment_seed=4
        )
        curve = spatial_correlation(
            channel, Position(0.0, 3.0), [0.0, 0.05, 0.6], 5.21e9
        )
        values = dict(curve)
        assert values[0.0] == pytest.approx(1.0)
        assert values[0.05] > values[0.6]

    def test_invalid_reference_count_rejected(self):
        channel = SpatiallyCorrelatedChannel(environment_seed=4)
        with pytest.raises(FadingModelError):
            spatial_correlation(
                channel, Position(0.0, 3.0), [0.0], 5.21e9, num_references=0
            )
