"""Tests for the end-to-end authentication pipeline."""

import numpy as np
import pytest

from repro.core.classifier import ClassifierConfig, DeepCsiClassifier
from repro.core.model import DeepCsiModelConfig
from repro.core.engine import UNKNOWN_MODULE_ID
from repro.core.pipeline import AuthenticationPipeline, AuthenticationResult, PipelineError
from repro.datasets.features import FeatureConfig, strided_subcarriers
from repro.datasets.splits import D1_SPLITS, d1_split
from repro.feedback.capture import MonitorCapture, SoundingSimulator, station_mac
from repro.phy.channel import MultipathChannel
from repro.phy.devices import AccessPoint, make_beamformee
from repro.phy.geometry import AP_POSITION_A, beamformee_positions
from repro.phy.ofdm import sounding_layout

TINY_MODEL = DeepCsiModelConfig(
    num_filters=8,
    kernel_widths=(5, 3),
    pool_width=2,
    dense_units=(16,),
    dropout_retain=(0.8,),
    attention_kernel_width=3,
)


@pytest.fixture(scope="module")
def trained_pipeline(tiny_d1):
    from repro.nn.training import TrainingConfig

    train, _ = d1_split(tiny_d1, D1_SPLITS["S1"], beamformee_id=1)
    classifier = DeepCsiClassifier(
        ClassifierConfig(
            num_classes=3,
            feature=FeatureConfig(
                stream_indices=(0,), subcarrier_positions=strided_subcarriers(234, 8)
            ),
            model=TINY_MODEL,
            training=TrainingConfig(
                epochs=6, batch_size=16, validation_split=0.2,
                early_stopping_patience=None, seed=0,
            ),
            learning_rate=3e-3,
        )
    )
    pipeline = AuthenticationPipeline(classifier, confidence_threshold=0.3)
    pipeline.enroll(train)
    return pipeline


@pytest.fixture(scope="module")
def test_samples(tiny_d1):
    _, test = d1_split(tiny_d1, D1_SPLITS["S1"], beamformee_id=1)
    return test


class TestAuthenticate:
    def test_accepts_correct_claim_on_majority_of_samples(self, trained_pipeline, test_samples):
        outcomes = [
            trained_pipeline.authenticate(sample, claimed_module_id=sample.module_id)
            for sample in test_samples[:20]
        ]
        accepted = sum(result.accepted for result in outcomes)
        assert accepted > len(outcomes) / 2

    def test_rejects_wrong_claim_on_majority_of_samples(self, trained_pipeline, test_samples):
        outcomes = [
            trained_pipeline.authenticate(
                sample, claimed_module_id=(sample.module_id + 1) % 3
            )
            for sample in test_samples[:20]
        ]
        rejected = sum(not result.accepted for result in outcomes)
        assert rejected > len(outcomes) / 2

    def test_open_set_query_returns_prediction(self, trained_pipeline, test_samples):
        result = trained_pipeline.authenticate(test_samples[0])
        assert isinstance(result, AuthenticationResult)
        assert result.claimed_module_id is None
        assert 0 <= result.predicted_module_id < 3

    def test_accepts_raw_array_input(self, trained_pipeline, test_samples):
        result = trained_pipeline.authenticate(np.asarray(test_samples[0].v_tilde))
        assert 0.0 <= result.confidence <= 1.0

    def test_invalid_observation_rejected(self, trained_pipeline):
        with pytest.raises(PipelineError):
            trained_pipeline.authenticate(np.zeros((4, 4)))

    def test_invalid_threshold_rejected(self, trained_pipeline):
        with pytest.raises(PipelineError):
            AuthenticationPipeline(trained_pipeline.classifier, confidence_threshold=1.5)


class TestCaptureAuthentication:
    def test_authenticate_capture_from_sniffed_frames(self, trained_pipeline, small_modules):
        # Sniff frames from the simulated network whose AP uses module 0 and
        # authenticate them with the enrolled pipeline.  The capture uses the
        # 80 MHz layout so the feature shapes match the training data.
        layout = sounding_layout(80)
        access_point = AccessPoint(module=small_modules[0], position=AP_POSITION_A)
        bf1_pos, _ = beamformee_positions(3)
        beamformee = make_beamformee(1, bf1_pos, num_antennas=2, num_streams=2, seed=5 + 10_000)
        simulator = SoundingSimulator(
            access_point=access_point,
            beamformees=[beamformee],
            channel=MultipathChannel(num_scatterers=8, environment_seed=11),
            layout=layout,
        )
        capture = MonitorCapture()
        simulator.sound_many(3, np.random.default_rng(0), capture=capture)

        results = trained_pipeline.authenticate_capture(
            capture, source_address=station_mac(1)
        )
        assert len(results) == 3
        verdict = trained_pipeline.majority_vote(results)
        assert 0 <= verdict.predicted_module_id < 3

    def test_empty_capture_rejected(self, trained_pipeline):
        with pytest.raises(PipelineError):
            trained_pipeline.authenticate_capture(MonitorCapture())

    def test_majority_vote_requires_results(self, trained_pipeline):
        with pytest.raises(PipelineError):
            trained_pipeline.majority_vote([])

    def test_majority_vote_picks_most_frequent(self, trained_pipeline):
        results = [
            AuthenticationResult(predicted_module_id=1, confidence=0.9, accepted=True),
            AuthenticationResult(predicted_module_id=1, confidence=0.8, accepted=True),
            AuthenticationResult(predicted_module_id=2, confidence=0.99, accepted=True),
        ]
        verdict = trained_pipeline.majority_vote(results)
        assert verdict.predicted_module_id == 1
        assert verdict.confidence == pytest.approx(0.85)

    def test_majority_vote_rejects_inconsistent_claims(self, trained_pipeline):
        results = [
            AuthenticationResult(
                predicted_module_id=1, confidence=0.9, accepted=True,
                claimed_module_id=1,
            ),
            AuthenticationResult(
                predicted_module_id=1, confidence=0.8, accepted=False,
                claimed_module_id=2,
            ),
        ]
        with pytest.raises(PipelineError):
            trained_pipeline.majority_vote(results)

    def test_majority_vote_rejects_mixed_open_and_claimed(self, trained_pipeline):
        results = [
            AuthenticationResult(
                predicted_module_id=1, confidence=0.9, accepted=True,
                claimed_module_id=1,
            ),
            AuthenticationResult(
                predicted_module_id=1, confidence=0.8, accepted=True,
            ),
        ]
        with pytest.raises(PipelineError):
            trained_pipeline.majority_vote(results)

    def test_majority_vote_keeps_consistent_claim(self, trained_pipeline):
        results = [
            AuthenticationResult(
                predicted_module_id=2, confidence=0.9, accepted=True,
                claimed_module_id=2,
            ),
            AuthenticationResult(
                predicted_module_id=2, confidence=0.7, accepted=True,
                claimed_module_id=2,
            ),
        ]
        verdict = trained_pipeline.majority_vote(results)
        assert verdict.claimed_module_id == 2
        assert verdict.accepted

    def test_authenticate_batch_matches_per_frame_path(
        self, trained_pipeline, test_samples
    ):
        subset = test_samples[:9]
        batched = trained_pipeline.authenticate_batch(subset, batch_size=4)
        for sample, result in zip(subset, batched):
            single = trained_pipeline.authenticate(sample)
            assert result.predicted_module_id == single.predicted_module_id
            assert result.confidence == pytest.approx(single.confidence, abs=1e-12)
            assert result.accepted == single.accepted

    def test_authenticate_batch_rejects_empty_input(self, trained_pipeline):
        with pytest.raises(PipelineError):
            trained_pipeline.authenticate_batch([])

    def test_authenticate_batch_with_workers_matches_single_engine(
        self, trained_pipeline, test_samples
    ):
        subset = test_samples[:12]
        single = trained_pipeline.authenticate_batch(subset, batch_size=4)
        sharded = trained_pipeline.authenticate_batch(
            subset, batch_size=4, workers=3
        )
        assert len(sharded) == len(single)
        for got, want in zip(sharded, single):
            assert got.predicted_module_id == want.predicted_module_id
            assert got.confidence == pytest.approx(want.confidence, rel=1e-12)
            assert got.accepted == want.accepted

    def test_authenticate_capture_with_workers(self, trained_pipeline, small_modules):
        layout = sounding_layout(80)
        access_point = AccessPoint(module=small_modules[0], position=AP_POSITION_A)
        bf1_pos, _ = beamformee_positions(3)
        beamformee = make_beamformee(
            1, bf1_pos, num_antennas=2, num_streams=2, seed=5 + 10_000
        )
        simulator = SoundingSimulator(
            access_point=access_point,
            beamformees=[beamformee],
            channel=MultipathChannel(num_scatterers=8, environment_seed=11),
            layout=layout,
        )
        capture = MonitorCapture()
        simulator.sound_many(4, np.random.default_rng(0), capture=capture)
        assert capture.source_addresses() == [station_mac(1)]

        single = trained_pipeline.authenticate_capture(capture)
        sharded = trained_pipeline.authenticate_capture(capture, workers=2)
        assert len(sharded) == len(single) == 4
        for got, want in zip(sharded, single):
            assert got.predicted_module_id == want.predicted_module_id
            assert got.confidence == pytest.approx(want.confidence, rel=1e-12)

        # The process backend must agree with the thread backend bit for bit:
        # same routed sub-streams, same engines, only the transport differs.
        processed = trained_pipeline.authenticate_capture(
            capture, workers=2, backend="processes"
        )
        assert len(processed) == len(sharded)
        for got, want in zip(processed, sharded):
            assert got.predicted_module_id == want.predicted_module_id
            assert got.confidence == want.confidence  # bitwise
            assert got.accepted == want.accepted


class TestMajorityVoteRejection:
    """Regression: a fused UNKNOWN winner must never authenticate.

    Open-set engines report rejected frames with
    ``predicted_module_id == UNKNOWN_MODULE_ID`` and high *rejection*
    confidence.  The original fusion only checked the confidence threshold,
    so a window full of confident rejections authenticated as "module -1" --
    exactly the traffic the open-set layer exists to refuse.
    """

    def test_unknown_majority_is_never_accepted(self, trained_pipeline):
        results = [
            AuthenticationResult(
                predicted_module_id=UNKNOWN_MODULE_ID,
                confidence=0.95,
                accepted=False,
            )
            for _ in range(3)
        ]
        verdict = trained_pipeline.majority_vote(results)
        assert verdict.predicted_module_id == UNKNOWN_MODULE_ID
        assert verdict.confidence == pytest.approx(0.95)
        assert not verdict.accepted

    def test_unknown_majority_with_claim_is_never_accepted(self, trained_pipeline):
        results = [
            AuthenticationResult(
                predicted_module_id=UNKNOWN_MODULE_ID,
                confidence=0.9,
                accepted=False,
                claimed_module_id=1,
            ),
            AuthenticationResult(
                predicted_module_id=UNKNOWN_MODULE_ID,
                confidence=0.9,
                accepted=False,
                claimed_module_id=1,
            ),
            AuthenticationResult(
                predicted_module_id=1,
                confidence=0.8,
                accepted=True,
                claimed_module_id=1,
            ),
        ]
        verdict = trained_pipeline.majority_vote(results)
        assert verdict.predicted_module_id == UNKNOWN_MODULE_ID
        assert not verdict.accepted

    def test_enrolled_majority_still_accepted(self, trained_pipeline):
        """The fix must not regress the accepted path: an enrolled winner
        with a minority of rejections keeps authenticating."""
        results = [
            AuthenticationResult(predicted_module_id=2, confidence=0.9, accepted=True),
            AuthenticationResult(predicted_module_id=2, confidence=0.8, accepted=True),
            AuthenticationResult(
                predicted_module_id=UNKNOWN_MODULE_ID, confidence=0.9, accepted=False
            ),
        ]
        verdict = trained_pipeline.majority_vote(results)
        assert verdict.predicted_module_id == 2
        assert verdict.accepted
