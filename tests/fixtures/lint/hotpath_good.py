"""Hot-path-clean counterpart: zero expected violations."""

import numpy as np

from repro.analysis.annotations import hot_path


def cold_path_may_stack(frames):
    # Not decorated: batch constructors are fine off the hot path.
    return np.stack(frames, axis=0)


@hot_path
def staged_forward(batch, arena):
    staged = np.empty(batch.shape, dtype=np.float32)
    np.copyto(staged, batch)
    view = np.asarray(staged)  # asarray of an array does not copy
    results = [None] * len(batch)  # preallocated, not grown per item
    for index in range(len(batch)):
        results[index] = view[index].sum()
    self_appending = batch.tolist()
    return staged, results, self_appending


@hot_path
def method_style(self, frames):
    # Attribute-based accumulators (self._windows.append) are engine-managed
    # deques, not per-call lists; only bare local lists are flagged.
    for frame in frames:
        self._windows.append(frame)
    return np.zeros((len(frames), 4), dtype=np.float32)
