"""Same code as dtypes_bad.py but without the dtype-strict marker: clean."""

import numpy as np


def upcasting_kernel(x):
    accumulator = np.zeros(x.shape)
    widened = np.asarray(x, dtype=np.float64)
    return accumulator, widened
