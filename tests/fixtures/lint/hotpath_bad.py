"""Seeded hot-path allocation violations."""

import numpy as np

from repro.analysis.annotations import hot_path


@hot_path
def stack_frames(frames):
    batch = np.stack(frames, axis=0)  # hot-path/banned-alloc
    totals = np.zeros(len(frames))  # hot-path/missing-dtype
    collected = []
    for frame in frames:
        collected.append(frame.sum())  # hot-path/list-append-in-loop
    return batch, totals, collected


@hot_path
def concat_then_copy(left, right):
    merged = np.concatenate([left, right])  # hot-path/banned-alloc
    return np.array(merged)  # hot-path/banned-alloc
