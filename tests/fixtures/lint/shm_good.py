"""Disciplined process/shared-memory usage: zero expected violations."""

import multiprocessing as mp
from multiprocessing import shared_memory


def decode(record):
    return record


class CleanRing:
    def __init__(self, context):
        self._seg = shared_memory.SharedMemory(create=True, size=64)
        try:
            self._slots = context.Semaphore(4)
        except BaseException:
            self._seg.close()
            self._seg.unlink()
            raise

    def close(self):
        self._seg.close()
        self._seg.unlink()


def ship_data(queue, frame, ring):
    # Data-only payloads and parent-side keyword callbacks are fine.
    queue.put((b"frame", len(frame)))
    ring.put(b"frame", liveness=lambda: None)
    worker = mp.Process(target=decode, args=(b"frame",))
    return worker


def worker_loop(queue, stop):
    # Primitives created at startup, reused per iteration.
    while not stop.is_set():
        queue.put(b"heartbeat")
