"""Seeded lock-discipline violations (never imported; parsed by the linter)."""

import threading


class BadCounter:
    def __init__(self):
        self._hits = 0  # guarded-by: _lock
        self._items = {}  # guarded-by: _lock
        self._lock = threading.Lock()

    def torn_read(self):  # lock/unguarded-read
        value = self._hits
        return value

    def torn_write(self):  # lock/unguarded-write
        self._hits = 0

    def raw_escape(self):  # lock/guarded-ref-escape (even inside the lock)
        with self._lock:
            return self._items

    def tuple_escape(self):  # lock/guarded-ref-escape via tuple element
        with self._lock:
            return self._hits, len(self._items)

    def deferred_closure(self):  # closure body runs after the lock is released
        with self._lock:

            def worker():
                value = self._hits  # lock/unguarded-read
                return value

            return worker
