"""Suppression-handling cases for the framework tests."""

import numpy as np

from repro.analysis.annotations import hot_path


@hot_path
def justified_inline(frames):
    return np.stack(frames)  # lint: disable=hot-path/banned-alloc -- test fixture: output must escape the arena


@hot_path
def justified_family(frames):
    # lint: disable=hot-path -- test fixture: family-wide suppression
    totals = np.zeros(len(frames))
    return totals


@hot_path
def unjustified(frames):
    return np.concatenate(frames)  # lint: disable=hot-path/banned-alloc
