"""Dtype-strict module that keeps its declared precision: clean."""

# lint: dtype-strict

import numpy as np


def fp32_kernel(x):
    staging = np.zeros(x.shape, dtype=np.float32)
    np.copyto(staging, x)
    quantized = np.clip(np.rint(staging), -127, 127).astype(np.int8)
    return staging, quantized
