"""Seeded dtype-contract violations."""

# lint: dtype-strict

import numpy as np


def upcasting_kernel(x):
    accumulator = np.zeros(x.shape)  # dtype/missing-dtype
    widened = np.asarray(x, dtype=np.float64)  # dtype/float64
    stringly = x.astype("float64")  # dtype/float64
    builtin = np.empty(3, dtype=float)  # dtype/float64 (builtin float is f8)
    return accumulator, widened, stringly, builtin
