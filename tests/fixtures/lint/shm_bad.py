"""Seeded process/shared-memory safety violations."""

import multiprocessing as mp
from multiprocessing import shared_memory


def leak_unstored():
    # shm/missing-cleanup: result not stored, can never be released.
    shared_memory.SharedMemory(create=True, size=64)


class LeakyRing:
    def __init__(self):
        # shm/missing-cleanup: close()/unlink() exist but none sits on an
        # exception path, so a startup failure leaks the segment.
        self._seg = shared_memory.SharedMemory(create=True, size=64)

    def close(self):
        self._seg.close()
        self._seg.unlink()


def ship_closures(queue, frame):
    def encode():
        return frame

    queue.put((frame, lambda: frame))  # shm/payload-closure (lambda)
    queue.put(encode)  # shm/payload-closure (local function)
    worker = mp.Process(target=print, args=(lambda: frame,))  # shm/payload-closure
    return worker


def worker_loop(stop):
    while not stop.is_set():
        response = mp.Queue()  # shm/primitive-in-loop
        response.put(None)
