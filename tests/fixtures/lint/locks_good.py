"""Disciplined counterpart of locks_bad.py: zero expected violations."""

import threading


class GoodCounter:
    def __init__(self):
        self._hits = 0  # guarded-by: _lock
        self._items = {}  # guarded-by: _lock
        self._lock = threading.Lock()
        self._unguarded_scratch = []  # no declaration: never checked

    def bump(self):
        with self._lock:
            self._hits += 1
            self._items["last"] = self._hits

    def snapshot(self):
        with self._lock:
            value = self._hits
        return value

    def copy_out(self):  # returning a *copy* does not escape the reference
        with self._lock:
            return dict(self._items)

    def scratch(self):
        self._unguarded_scratch.append(1)
        return len(self._unguarded_scratch)
