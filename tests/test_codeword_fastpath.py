"""Tests of the codeword-native preprocessing fast path.

Covers the trig-LUT reconstruction (bitwise float64 parity with the legacy
dequantize+reconstruct pipeline, tolerance-bounded complex64 parity), the
arena steady state, the fused accumulator->features extraction, the engine
``precision`` knob and stage profile, and the compact ``RECORD_CODEWORDS``
transport (codec round trip plus process-backend parity).
"""

import numpy as np
import pytest

from repro.arena import ArenaPool
from repro.core.classifier import ClassifierConfig, DeepCsiClassifier
from repro.core.engine import (
    EngineError,
    InferenceEngine,
    STAGE_NAMES,
)
from repro.core.model import DeepCsiModelConfig
from repro.core.service import ServiceError, StreamingService
from repro.core.transport import (
    RECORD_CODEWORDS,
    TransportError,
    _unpack_codewords,
    pack_array_record,
    pack_codeword_record,
    unpack_record,
)
from repro.datasets.features import FeatureConfig, FeatureExtractor, strided_subcarriers
from repro.datasets.splits import D1_SPLITS, d1_split
from repro.feedback.givens import (
    compress_v_matrix,
    reconstruct_accumulator_quantized,
    reconstruct_v_matrices,
    reconstruct_v_matrices_quantized,
)
from repro.feedback.quantization import (
    QuantizationConfig,
    dequantize_angles_batch,
    quantize_angles,
    stack_quantized_angles,
    trig_lut_for,
)
from repro.nn.training import TrainingConfig

CODEBOOKS = [
    QuantizationConfig(b_phi=7, b_psi=5),  # VHT codebook 0
    QuantizationConfig(b_phi=9, b_psi=7),  # VHT codebook 1 (the paper's AP)
]
GEOMETRIES = [(2, 1), (2, 2), (3, 2), (3, 3), (4, 2)]


def _unitary_columns(rng, num_sub, num_tx, num_streams):
    raw = rng.standard_normal((num_sub, num_tx, num_tx)) + 1j * rng.standard_normal(
        (num_sub, num_tx, num_tx)
    )
    q, _ = np.linalg.qr(raw)
    return q[:, :, :num_streams]


def _quantized_batch(rng, batch, num_sub, num_tx, num_streams, config):
    return [
        quantize_angles(
            compress_v_matrix(_unitary_columns(rng, num_sub, num_tx, num_streams)),
            config,
        )
        for _ in range(batch)
    ]


def _legacy_reconstruct(q_phi, q_psi, config, num_tx, num_streams):
    phi, psi = dequantize_angles_batch(q_phi, q_psi, config)
    return reconstruct_v_matrices(phi, psi, num_tx, num_streams)


# --------------------------------------------------------------------------- #
# LUT reconstruction parity
# --------------------------------------------------------------------------- #
class TestCodewordReconstruction:
    @pytest.mark.parametrize("config", CODEBOOKS, ids=["low", "high"])
    @pytest.mark.parametrize("geometry", GEOMETRIES)
    def test_exact_path_is_bitwise_identical_to_legacy(self, config, geometry):
        num_tx, num_streams = geometry
        rng = np.random.default_rng(7)
        items = _quantized_batch(rng, 3, 16, num_tx, num_streams, config)
        q_phi, q_psi, config, num_tx, num_streams = stack_quantized_angles(items)
        legacy = _legacy_reconstruct(q_phi, q_psi, config, num_tx, num_streams)
        fast = reconstruct_v_matrices_quantized(
            q_phi, q_psi, config, num_tx, num_streams
        )
        assert fast.dtype == np.complex128
        assert fast.shape == legacy.shape
        # Bitwise, not approximate: the LUT gathers and the restricted-row
        # Givens updates must reproduce the legacy IEEE operation order.
        assert fast.tobytes() == legacy.tobytes()

    @pytest.mark.parametrize("geometry", GEOMETRIES)
    def test_fast_tables_match_within_float32_tolerance(self, geometry):
        num_tx, num_streams = geometry
        config = QuantizationConfig()
        rng = np.random.default_rng(11)
        items = _quantized_batch(rng, 3, 16, num_tx, num_streams, config)
        q_phi, q_psi, config, num_tx, num_streams = stack_quantized_angles(items)
        legacy = _legacy_reconstruct(q_phi, q_psi, config, num_tx, num_streams)
        fast = reconstruct_v_matrices_quantized(
            q_phi, q_psi, config, num_tx, num_streams, fast=True
        )
        assert fast.dtype == np.complex64
        assert np.max(np.abs(fast - legacy)) < 1e-5

    def test_steady_state_reconstruction_is_allocation_free(self):
        config = QuantizationConfig()
        rng = np.random.default_rng(3)
        items = _quantized_batch(rng, 4, 16, 3, 2, config)
        q_phi, q_psi, config, num_tx, num_streams = stack_quantized_angles(items)
        arena = ArenaPool()
        first = reconstruct_accumulator_quantized(
            q_phi, q_psi, config, num_tx, num_streams, arena=arena
        ).copy()
        warm = arena.allocations
        second = reconstruct_accumulator_quantized(
            q_phi, q_psi, config, num_tx, num_streams, arena=arena
        )
        assert arena.allocations == warm
        assert second.tobytes() == first.tobytes()

    def test_shape_validation(self):
        config = QuantizationConfig()
        with pytest.raises(Exception):
            reconstruct_v_matrices_quantized(
                np.zeros((2, 4, 99), dtype=np.int16),
                np.zeros((2, 4, 3), dtype=np.int16),
                config,
                3,
                2,
            )

    def test_trig_lut_is_cached_and_matches_eq8(self):
        config = QuantizationConfig()
        lut = trig_lut_for(config)
        assert trig_lut_for(QuantizationConfig()) is lut
        assert lut.exp_phi.shape == (config.phi_levels,)
        assert lut.cos_psi.shape == (config.psi_levels,)
        from repro.feedback.quantization import dequantize_phi, dequantize_psi

        phi = dequantize_phi(np.arange(config.phi_levels, dtype=np.int64), config)
        psi = dequantize_psi(np.arange(config.psi_levels, dtype=np.int64), config)
        assert lut.exp_phi.tobytes() == np.exp(1j * phi).tobytes()
        assert lut.cos_psi.tobytes() == np.cos(psi).tobytes()
        assert lut.sin_psi.tobytes() == np.sin(psi).tobytes()

    def test_codewords_are_int16(self):
        config = QuantizationConfig()
        rng = np.random.default_rng(5)
        item = _quantized_batch(rng, 1, 8, 3, 2, config)[0]
        assert item.q_phi.dtype == np.int16
        assert item.q_psi.dtype == np.int16


# --------------------------------------------------------------------------- #
# Fused accumulator -> features extraction
# --------------------------------------------------------------------------- #
class TestTransformAccumulator:
    def test_matches_transform_matrices_bitwise(self):
        config = QuantizationConfig()
        rng = np.random.default_rng(13)
        items = _quantized_batch(rng, 4, 24, 3, 2, config)
        q_phi, q_psi, config, num_tx, num_streams = stack_quantized_angles(items)
        accumulator = reconstruct_accumulator_quantized(
            q_phi, q_psi, config, num_tx, num_streams
        )
        extractor = FeatureExtractor(
            FeatureConfig(
                stream_indices=(0,),
                subcarrier_positions=strided_subcarriers(24, 2),
            )
        )
        fused = extractor.transform_accumulator(accumulator, num_streams)
        reference = extractor.transform_matrices(accumulator[..., :num_streams])
        assert fused.tobytes() == reference.tobytes()

    def test_complex64_accumulator_gives_float32_features(self):
        config = QuantizationConfig()
        rng = np.random.default_rng(17)
        items = _quantized_batch(rng, 2, 16, 3, 2, config)
        q_phi, q_psi, config, num_tx, num_streams = stack_quantized_angles(items)
        accumulator = reconstruct_accumulator_quantized(
            q_phi, q_psi, config, num_tx, num_streams, fast=True
        )
        extractor = FeatureExtractor(FeatureConfig(stream_indices=(0,)))
        features = extractor.transform_accumulator(accumulator, num_streams)
        assert features.dtype == np.float32


# --------------------------------------------------------------------------- #
# Engine precision knob
# --------------------------------------------------------------------------- #
TINY_MODEL = DeepCsiModelConfig(
    num_filters=8,
    kernel_widths=(5, 3),
    pool_width=2,
    dense_units=(16,),
    dropout_retain=(0.8,),
    attention_kernel_width=3,
)


@pytest.fixture(scope="module")
def trained_classifier(tiny_d1):
    train, _ = d1_split(tiny_d1, D1_SPLITS["S1"], beamformee_id=1)
    classifier = DeepCsiClassifier(
        ClassifierConfig(
            num_classes=3,
            feature=FeatureConfig(
                stream_indices=(0,), subcarrier_positions=strided_subcarriers(234, 8)
            ),
            model=TINY_MODEL,
            training=TrainingConfig(
                epochs=4, batch_size=16, validation_split=0.2,
                early_stopping_patience=None, seed=0,
            ),
            learning_rate=3e-3,
        )
    )
    classifier.fit(train)
    return classifier


@pytest.fixture(scope="module")
def quantized_stream(tiny_d1):
    _, test = d1_split(tiny_d1, D1_SPLITS["S1"], beamformee_id=1)
    config = QuantizationConfig()
    return [
        (
            f"module-{sample.module_id:02d}",
            quantize_angles(compress_v_matrix(sample.v_tilde), config),
        )
        for sample in test[:18]
    ]


class TestEnginePrecision:
    def test_invalid_precision_rejected(self, trained_classifier):
        with pytest.raises(EngineError):
            InferenceEngine(trained_classifier, precision="float16")

    def test_exact_codewords_match_manual_reconstruction(
        self, trained_classifier, quantized_stream
    ):
        engine = InferenceEngine(trained_classifier, batch_size=8)
        results = []
        for source, quantized in quantized_stream:
            results.extend(engine.submit_quantized(quantized, source=source))
        results.extend(engine.flush())
        assert len(results) == len(quantized_stream)

        q_phi, q_psi, config, num_tx, num_streams = stack_quantized_angles(
            [quantized for _, quantized in quantized_stream]
        )
        v_batch = _legacy_reconstruct(q_phi, q_psi, config, num_tx, num_streams)
        ids, confidences = trained_classifier.predict_matrices(v_batch)
        for result, module_id, confidence in zip(results, ids, confidences):
            assert result.predicted_module_id == int(module_id)
            assert result.confidence == float(confidence)

    def test_fast_precision_preserves_verdicts(
        self, trained_classifier, quantized_stream
    ):
        exact = InferenceEngine(trained_classifier, batch_size=8, precision="exact")
        fast = InferenceEngine(trained_classifier, batch_size=8, precision="fast")
        for source, quantized in quantized_stream:
            exact.submit_quantized(quantized, source=source)
            fast.submit_quantized(quantized, source=source)
        exact.flush()
        fast.flush()
        assert exact.sources == fast.sources
        for source in exact.sources:
            assert exact.verdict(source).module_id == fast.verdict(source).module_id

    def test_mixed_batch_preserves_input_order(
        self, trained_classifier, quantized_stream, tiny_d1
    ):
        _, test = d1_split(tiny_d1, D1_SPLITS["S1"], beamformee_id=1)
        engine = InferenceEngine(trained_classifier, batch_size=6)
        # Interleave ready V~ samples with quantised codewords in one batch.
        results = []
        for index in range(3):
            results.extend(engine.submit(test[index]))
            results.extend(engine.submit_quantized(quantized_stream[index][1]))
        results.extend(engine.flush())
        assert [result.sequence for result in results] == list(range(6))
        for index in range(3):
            module_id, confidence = trained_classifier.predict_matrix(
                test[index].v_tilde
            )
            assert results[2 * index].predicted_module_id == module_id
            assert results[2 * index].confidence == confidence

    def test_stage_profile_reports_preprocessing_stages(
        self, trained_classifier, quantized_stream
    ):
        engine = InferenceEngine(trained_classifier, batch_size=4)
        for source, quantized in quantized_stream[:8]:
            engine.submit_quantized(quantized, source=source)
        engine.flush()
        stats = engine.stats
        assert stats.precision == "exact"
        names = [stage.name for stage in stats.stage_profile]
        assert names == list(STAGE_NAMES)
        for stage in stats.stage_profile:
            assert stage.calls > 0
            assert stage.total_ns > 0
            assert stage.mean_ms >= 0.0

    def test_reset_clears_stage_profile(self, trained_classifier, quantized_stream):
        engine = InferenceEngine(trained_classifier, batch_size=4)
        for source, quantized in quantized_stream[:4]:
            engine.submit_quantized(quantized, source=source)
        engine.flush()
        assert engine.stats.stage_profile
        engine.reset()
        assert engine.stats.stage_profile == ()


# --------------------------------------------------------------------------- #
# Codeword transport
# --------------------------------------------------------------------------- #
class TestCodewordTransport:
    def test_round_trip(self, quantized_stream):
        source, quantized = quantized_stream[0]
        data = pack_codeword_record(42, source, 1.5, quantized)
        record = unpack_record(data)
        assert record.kind == RECORD_CODEWORDS
        assert record.sequence == 42
        assert record.source == source
        assert record.timestamp_s == 1.5
        decoded = record.quantized
        assert decoded is not None
        assert decoded.config == quantized.config
        assert decoded.num_tx == quantized.num_tx
        assert decoded.num_streams == quantized.num_streams
        assert decoded.q_phi.dtype == np.int16
        assert np.array_equal(decoded.q_phi, quantized.q_phi)
        assert np.array_equal(decoded.q_psi, quantized.q_psi)

    def test_codeword_record_is_much_smaller_than_vtilde(self, quantized_stream):
        _, quantized = quantized_stream[0]
        q_phi, q_psi, config, num_tx, num_streams = stack_quantized_angles([quantized])
        v_batch = _legacy_reconstruct(q_phi, q_psi, config, num_tx, num_streams)
        codeword_bytes = len(pack_codeword_record(0, "a", 0.0, quantized))
        vtilde_bytes = len(pack_array_record(0, "a", 0.0, v_batch[0]))
        assert codeword_bytes * 6 < vtilde_bytes

    def test_truncated_payload_rejected(self, quantized_stream):
        _, quantized = quantized_stream[0]
        data = pack_codeword_record(0, "a", 0.0, quantized)
        with pytest.raises(TransportError):
            unpack_record(data[:-3])

    def test_truncated_subheader_rejected(self):
        with pytest.raises(TransportError):
            _unpack_codewords(b"\x01")

    def test_length_mismatch_rejected(self):
        import struct

        # A valid subheader for (K, M, N_SS) = (4, 3, 2) followed by two
        # bytes fewer than the 4 * (5 + 3) int16 codewords it promises.
        subheader = struct.pack("<BBBBBH", 9, 7, 1, 3, 2, 4)
        with pytest.raises(TransportError):
            _unpack_codewords(subheader + b"\x00" * (2 * 4 * 8 - 2))

    def test_process_backend_parity(self, trained_classifier, quantized_stream):
        reference = InferenceEngine(trained_classifier, batch_size=8)
        expected = []
        for source, quantized in quantized_stream:
            expected.extend(reference.submit_quantized(quantized, source=source))
        expected.extend(reference.flush())

        with StreamingService(
            trained_classifier,
            num_workers=1,
            backend="processes",
            batch_size=8,
            queue_depth=32,
        ) as service:
            for source, quantized in quantized_stream:
                service.submit(quantized, source=source)
            service.flush()
            results = sorted(service.collect(), key=lambda r: r.sequence)
            verdicts = {source: service.verdict(source) for source in service.sources}

        assert len(results) == len(expected)
        for got, want in zip(results, expected):
            assert got.predicted_module_id == want.predicted_module_id
            assert got.confidence == want.confidence
            assert got.source == want.source
        for source in {source for source, _ in quantized_stream}:
            assert verdicts[source].module_id == reference.verdict(source).module_id

    def test_service_rejects_unknown_precision(self, trained_classifier):
        with pytest.raises(ServiceError):
            StreamingService(trained_classifier, num_workers=1, precision="half")
