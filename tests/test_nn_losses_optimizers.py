"""Tests for losses, optimisers and initialisers."""

import numpy as np
import pytest

from repro.nn.gradcheck import numerical_gradient
from repro.nn.initializers import get_initializer, glorot_uniform, he_normal, lecun_normal
from repro.nn.losses import LossError, MeanSquaredError, SoftmaxCrossEntropy, accuracy
from repro.nn.optimizers import SGD, Adam, OptimizerError


class TestSoftmaxCrossEntropy:
    def test_uniform_logits_give_log_num_classes(self):
        loss = SoftmaxCrossEntropy()
        logits = np.zeros((4, 10))
        labels = np.arange(4) % 10
        assert loss.forward(logits, labels) == pytest.approx(np.log(10))

    def test_perfect_prediction_gives_near_zero_loss(self):
        loss = SoftmaxCrossEntropy()
        logits = np.full((3, 5), -50.0)
        labels = np.array([0, 2, 4])
        logits[np.arange(3), labels] = 50.0
        assert loss.forward(logits, labels) < 1e-6

    def test_gradient_matches_finite_differences(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.standard_normal((5, 4))
        labels = rng.integers(0, 4, size=5)
        loss.forward(logits, labels)
        analytic = loss.backward()
        numerical = numerical_gradient(lambda x: loss.forward(x, labels), logits.copy())
        np.testing.assert_allclose(analytic, numerical, rtol=1e-4, atol=1e-7)

    def test_label_smoothing_softens_targets(self, rng):
        logits = rng.standard_normal((6, 3))
        labels = rng.integers(0, 3, size=6)
        plain = SoftmaxCrossEntropy().forward(logits, labels)
        smoothed = SoftmaxCrossEntropy(label_smoothing=0.2).forward(logits, labels)
        assert smoothed != pytest.approx(plain)

    def test_invalid_inputs_rejected(self):
        loss = SoftmaxCrossEntropy()
        with pytest.raises(LossError):
            loss.forward(np.zeros((3, 2)), np.array([0, 1]))
        with pytest.raises(LossError):
            loss.forward(np.zeros((2, 2)), np.array([0, 5]))
        with pytest.raises(LossError):
            loss.backward()
        with pytest.raises(LossError):
            SoftmaxCrossEntropy(label_smoothing=1.5)

    def test_softmax_is_stable_for_large_logits(self):
        probabilities = SoftmaxCrossEntropy.softmax(np.array([[1e4, 0.0, -1e4]]))
        assert np.isfinite(probabilities).all()
        assert probabilities[0, 0] == pytest.approx(1.0)

    def test_accuracy_helper(self):
        logits = np.array([[0.1, 0.9], [0.8, 0.2]])
        assert accuracy(logits, np.array([1, 0])) == 1.0
        assert accuracy(logits, np.array([0, 0])) == 0.5


class TestMeanSquaredError:
    def test_value_and_gradient(self, rng):
        loss = MeanSquaredError()
        predictions = rng.standard_normal((4, 3))
        targets = rng.standard_normal((4, 3))
        value = loss.forward(predictions, targets)
        assert value == pytest.approx(np.mean((predictions - targets) ** 2))
        numerical = numerical_gradient(lambda p: loss.forward(p, targets), predictions.copy())
        loss.forward(predictions, targets)
        np.testing.assert_allclose(loss.backward(), numerical, rtol=1e-5, atol=1e-8)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(LossError):
            MeanSquaredError().forward(np.zeros((2, 2)), np.zeros((3, 2)))


class TestOptimizers:
    @staticmethod
    def _quadratic_descent(optimizer, start=5.0, steps=200):
        """Minimise f(x) = x^2 with the given optimiser; return the final x."""
        param = np.array([start])
        grad = np.zeros_like(param)
        for _ in range(steps):
            grad[...] = 2.0 * param
            optimizer.step([("x", param, grad)])
        return float(param[0])

    def test_sgd_converges_on_quadratic(self):
        assert abs(self._quadratic_descent(SGD(learning_rate=0.1))) < 1e-3

    def test_sgd_momentum_converges_faster_than_plain(self):
        plain = abs(self._quadratic_descent(SGD(learning_rate=0.01), steps=60))
        momentum = abs(
            self._quadratic_descent(SGD(learning_rate=0.01, momentum=0.9), steps=60)
        )
        assert momentum < plain

    def test_adam_converges_on_quadratic(self):
        assert abs(self._quadratic_descent(Adam(learning_rate=0.2))) < 1e-2

    def test_weight_decay_shrinks_parameters_without_gradient(self):
        optimizer = SGD(learning_rate=0.1, weight_decay=0.5)
        param = np.array([2.0])
        for _ in range(10):
            optimizer.step([("x", param, np.zeros_like(param))])
        assert abs(param[0]) < 2.0

    def test_state_is_kept_per_parameter_name(self):
        optimizer = Adam(learning_rate=0.1)
        a, b = np.array([1.0]), np.array([1.0])
        optimizer.step([("a", a, np.array([1.0])), ("b", b, np.array([-1.0]))])
        optimizer.step([("a", a, np.array([1.0])), ("b", b, np.array([-1.0]))])
        assert a[0] < 1.0 < b[0]

    def test_reset_clears_state(self):
        optimizer = SGD(learning_rate=0.1, momentum=0.9)
        param = np.array([1.0])
        optimizer.step([("x", param, np.array([1.0]))])
        optimizer.reset()
        assert optimizer._state == {}

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: SGD(learning_rate=0.0),
            lambda: SGD(learning_rate=0.1, momentum=1.5),
            lambda: Adam(learning_rate=0.1, beta1=1.0),
            lambda: Adam(learning_rate=0.1, epsilon=0.0),
            lambda: SGD(learning_rate=0.1, weight_decay=-1.0),
        ],
    )
    def test_invalid_configurations_rejected(self, factory):
        with pytest.raises(OptimizerError):
            factory()


class TestInitializers:
    def test_lecun_normal_variance(self):
        rng = np.random.default_rng(0)
        weights = lecun_normal((1000, 50), rng)
        assert weights.std() == pytest.approx(np.sqrt(1.0 / 1000), rel=0.1)

    def test_he_normal_variance(self):
        rng = np.random.default_rng(0)
        weights = he_normal((1000, 50), rng)
        assert weights.std() == pytest.approx(np.sqrt(2.0 / 1000), rel=0.1)

    def test_glorot_uniform_bounds(self):
        rng = np.random.default_rng(0)
        weights = glorot_uniform((100, 100), rng)
        limit = np.sqrt(6.0 / 200)
        assert np.all(np.abs(weights) <= limit)

    def test_conv_kernel_fan_in_uses_receptive_field(self):
        rng = np.random.default_rng(0)
        weights = lecun_normal((64, 16, 1, 7), rng)
        assert weights.std() == pytest.approx(np.sqrt(1.0 / (16 * 7)), rel=0.1)

    def test_lookup_by_name(self):
        assert get_initializer("lecun_normal") is lecun_normal
        with pytest.raises(ValueError):
            get_initializer("unknown")
