"""Tests for the repro-lint framework itself: parsing, suppressions,
file discovery, reporters and the CLI entry points."""

import json
from pathlib import Path

import pytest

from repro.analysis.lint import (
    JSON_SCHEMA,
    LintError,
    SourceFile,
    Suppression,
    all_rules,
    lint_source,
    render_json,
    render_text,
    run_lint,
)
from repro.analysis.lint.cli import build_lint_parser, main, run_lint_command
from repro.analysis.lint.framework import iter_python_files

FIXTURES = Path(__file__).parent / "fixtures" / "lint"

EXPECTED_RULES = {
    "lock/unguarded-read",
    "lock/unguarded-write",
    "lock/guarded-ref-escape",
    "hot-path/banned-alloc",
    "hot-path/missing-dtype",
    "hot-path/list-append-in-loop",
    "dtype/float64",
    "dtype/missing-dtype",
    "shm/missing-cleanup",
    "shm/payload-closure",
    "shm/primitive-in-loop",
}


class TestSourceFile:
    def test_comments_and_markers(self):
        source = SourceFile(
            "demo.py",
            "# lint: dtype-strict\nx = 1  # trailing note\n",
        )
        assert source.has_marker("lint: dtype-strict")
        assert source.comment_on(2) == "trailing note"
        assert source.comment_on(99) == ""

    def test_numpy_and_multiprocessing_aliases(self):
        source = SourceFile(
            "demo.py",
            "import numpy as np\n"
            "import multiprocessing as mp\n"
            "from multiprocessing import shared_memory\n"
            "from multiprocessing import Process\n",
        )
        assert source.numpy_aliases == {"np"}
        assert "mp" in source.multiprocessing_aliases
        assert "shared_memory" in source.multiprocessing_aliases
        assert source.multiprocessing_names == {"Process": "multiprocessing"}

    def test_parent_chain_and_enclosing_function(self):
        source = SourceFile(
            "demo.py",
            "def outer():\n    def inner():\n        return 1\n    return inner\n",
        )
        import ast

        inner = source.tree.body[0].body[0]
        constant = inner.body[0].value
        assert source.enclosing_function(constant) is inner
        chain = list(source.parent_chain(constant))
        assert isinstance(chain[-1], ast.Module)


class TestSuppressions:
    def test_covers_rule_and_family(self):
        suppression = Suppression(line=1, rules=("hot-path",), justification="x")
        assert suppression.covers("hot-path/banned-alloc")
        assert not suppression.covers("lock/unguarded-read")
        exact = Suppression(line=1, rules=("dtype/float64",), justification="x")
        assert exact.covers("dtype/float64")
        assert not exact.covers("dtype/missing-dtype")

    def test_standalone_comment_applies_to_next_line(self):
        source = SourceFile(
            "demo.py",
            "import numpy as np\n"
            "from repro.analysis.annotations import hot_path\n"
            "@hot_path\n"
            "def f(x):\n"
            "    # lint: disable=hot-path/missing-dtype -- fixture\n"
            "    return np.zeros(x)\n",
        )
        violations, suppressed = lint_source(source)
        assert violations == []
        assert [entry.rule for entry in suppressed] == ["hot-path/missing-dtype"]

    def test_trailing_comment_of_previous_statement_does_not_leak(self):
        source = SourceFile(
            "demo.py",
            "import numpy as np\n"
            "from repro.analysis.annotations import hot_path\n"
            "@hot_path\n"
            "def f(x):\n"
            "    y = 1  # lint: disable=hot-path/missing-dtype -- fixture\n"
            "    return np.zeros(x), y\n",
        )
        violations, _ = lint_source(source)
        assert [entry.rule for entry in violations] == ["hot-path/missing-dtype"]

    def test_unjustified_suppression_is_a_violation(self):
        source = SourceFile("demo.py", "x = 1  # lint: disable=lock\n")
        violations, suppressed = lint_source(source)
        assert [entry.rule for entry in violations] == [
            "lint/unjustified-suppression"
        ]
        assert suppressed == []


class TestRegistryAndDiscovery:
    def test_rule_catalogue(self):
        assert set(all_rules()) == EXPECTED_RULES

    def test_fixture_directories_are_excluded(self):
        files = list(iter_python_files([str(Path(__file__).parent)]))
        assert files, "test directory scan found nothing"
        assert not any("fixtures" in path.parts for path in files)

    def test_explicit_file_bypasses_exclusion(self):
        target = FIXTURES / "locks_bad.py"
        assert list(iter_python_files([str(target)])) == [target]

    def test_missing_path_raises(self):
        with pytest.raises(LintError, match="does not exist"):
            list(iter_python_files(["does/not/exist"]))

    def test_unknown_select_entry_raises(self):
        with pytest.raises(LintError, match="unknown rule"):
            run_lint([str(FIXTURES / "locks_bad.py")], select=["nonsense"])

    def test_parse_errors_are_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        report = run_lint([str(bad)])
        assert not report.ok
        assert "SyntaxError" in report.errors[str(bad)]


class TestReporters:
    def test_text_clean_summary(self):
        report = run_lint([str(FIXTURES / "locks_good.py")])
        text = render_text(report)
        assert "clean: 1 files, 0 violations" in text

    def test_text_lists_violations_with_summary(self):
        report = run_lint([str(FIXTURES / "locks_bad.py")])
        text = render_text(report)
        assert "locks_bad.py" in text
        assert "lock/unguarded-write" in text
        assert "5 violations in 1 files" in text

    def test_json_schema_shape(self):
        report = run_lint([str(FIXTURES / "hotpath_bad.py")])
        document = json.loads(render_json(report))
        assert document["schema"] == JSON_SCHEMA
        assert document["ok"] is False
        assert document["files_scanned"] == 1
        assert set(document["summary"]) == {"total", "by_rule", "suppressed"}
        assert document["summary"]["total"] == len(document["violations"])
        first = document["violations"][0]
        assert set(first) == {"rule", "path", "line", "col", "message"}

    def test_json_show_suppressed_includes_justifications(self):
        report = run_lint([str(FIXTURES / "suppressed.py")])
        document = json.loads(render_json(report, show_suppressed=True))
        assert document["suppressed"]
        assert all("justification" in entry for entry in document["suppressed"])


class TestCli:
    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in EXPECTED_RULES:
            assert rule in out

    def test_clean_path_exits_zero(self, capsys):
        assert main([str(FIXTURES / "locks_good.py")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violations_exit_one(self, capsys):
        assert main([str(FIXTURES / "locks_bad.py")]) == 1
        assert "lock/unguarded-read" in capsys.readouterr().out

    def test_bad_select_exits_two(self, capsys):
        assert main(["--select", "bogus", str(FIXTURES / "locks_bad.py")]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_json_format(self, capsys):
        assert main(["--format", "json", str(FIXTURES / "locks_good.py")]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == JSON_SCHEMA

    def test_select_filters_families(self, capsys):
        assert main(["--select", "hot-path", str(FIXTURES / "locks_bad.py")]) == 0

    def test_parser_embeds_into_existing_subparser(self):
        import argparse

        root = argparse.ArgumentParser()
        sub = root.add_subparsers(dest="command")
        lint = sub.add_parser("lint")
        build_lint_parser(lint)
        args = root.parse_args(["lint", "--list-rules"])
        assert run_lint_command(args) == 0

    def test_repro_cli_lint_subcommand(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["lint", str(FIXTURES / "locks_good.py")]) == 0
        assert "clean" in capsys.readouterr().out
