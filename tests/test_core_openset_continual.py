"""Tests for open-set authentication and continual learning."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.classifier import ClassifierConfig, DeepCsiClassifier
from repro.core.continual import (
    ContinualConfig,
    ContinualDeepCsi,
    ContinualLearningError,
    ReplayBuffer,
    evaluate_forgetting,
)
from repro.core.model import DeepCsiModelConfig
from repro.core.openset import (
    OpenSetAuthenticator,
    OpenSetError,
    calibrate_threshold,
    calibrate_threshold_far,
    evaluate_open_set,
    threshold_sweep,
)
from repro.datasets.containers import FeedbackSample
from repro.datasets.features import FeatureConfig
from repro.nn.training import TrainingConfig


def _make_samples(module_ids, num_per_module=25, seed=0, shift=0.0, centres_seed=42):
    """Small, well-separated synthetic samples (fast to train on).

    The class centres depend only on ``centres_seed`` and the module id, so
    sample sets generated with different ``seed`` values (train / test / new
    condition) share the same class structure.
    """
    rng = np.random.default_rng(seed)
    centres = {
        module_id: (
            lambda class_rng: class_rng.standard_normal((12, 2, 1))
            + 1j * class_rng.standard_normal((12, 2, 1))
        )(np.random.default_rng(centres_seed + module_id))
        for module_id in module_ids
    }
    samples = []
    for module_id in module_ids:
        for _ in range(num_per_module):
            noise = 0.15 * (
                rng.standard_normal((12, 2, 1)) + 1j * rng.standard_normal((12, 2, 1))
            )
            samples.append(
                FeedbackSample(
                    v_tilde=centres[module_id] + noise + shift,
                    module_id=module_id,
                    beamformee_id=1,
                )
            )
    rng.shuffle(samples)
    return samples


def _tiny_classifier(num_classes):
    config = ClassifierConfig(
        num_classes=num_classes,
        feature=FeatureConfig(stream_indices=(0,)),
        model=DeepCsiModelConfig(
            num_filters=8,
            kernel_widths=(3,),
            pool_width=2,
            dense_units=(16,),
            dropout_retain=(1.0,),
            use_attention=False,
        ),
        training=TrainingConfig(epochs=25, batch_size=16, validation_split=0.0,
                                early_stopping_patience=None),
        learning_rate=5e-3,
        seed=0,
    )
    return DeepCsiClassifier(config)


@pytest.fixture(scope="module")
def trained_setup():
    """A classifier trained on modules 0-2 plus held-out and unknown samples."""
    known_train = _make_samples([0, 1, 2], num_per_module=30, seed=1)
    known_test = _make_samples([0, 1, 2], num_per_module=10, seed=2)
    unknown = _make_samples([3, 4], num_per_module=10, seed=3, shift=1.5)
    classifier = _tiny_classifier(num_classes=3)
    classifier.fit(known_train)
    return classifier, known_train, known_test, unknown


class TestOpenSetAuthenticator:
    def test_invalid_scoring_rejected(self, trained_setup):
        classifier = trained_setup[0]
        with pytest.raises(OpenSetError):
            OpenSetAuthenticator(classifier, scoring="bogus")

    def test_scores_and_decisions(self, trained_setup):
        classifier, _, known_test, _ = trained_setup
        authenticator = OpenSetAuthenticator(classifier, threshold=0.0)
        scores = authenticator.scores(known_test)
        assert scores.shape == (len(known_test),)
        decisions = authenticator.decide(known_test)
        assert all(decision.accepted for decision in decisions)
        assert all(0 <= decision.predicted_module_id < 3 for decision in decisions)

    def test_empty_sample_list_rejected(self, trained_setup):
        authenticator = OpenSetAuthenticator(trained_setup[0])
        with pytest.raises(OpenSetError):
            authenticator.scores([])

    def test_centroid_scoring_requires_enrolment(self, trained_setup):
        classifier, known_train, known_test, _ = trained_setup
        authenticator = OpenSetAuthenticator(classifier, scoring="centroid_distance")
        with pytest.raises(OpenSetError):
            authenticator.scores(known_test)
        authenticator.enroll(known_train)
        assert authenticator.scores(known_test).shape == (len(known_test),)

    def test_known_devices_score_higher_than_unknown(self, trained_setup):
        classifier, known_train, known_test, unknown = trained_setup
        for scoring in ("max_softmax", "negative_entropy", "centroid_distance"):
            authenticator = OpenSetAuthenticator(classifier, scoring=scoring)
            if scoring == "centroid_distance":
                authenticator.enroll(known_train)
            known_scores = authenticator.scores(known_test)
            unknown_scores = authenticator.scores(unknown)
            assert known_scores.mean() > unknown_scores.mean(), scoring

    def test_calibrated_threshold_bounds_false_rejections(self, trained_setup):
        classifier, known_train, known_test, unknown = trained_setup
        authenticator = OpenSetAuthenticator(classifier)
        threshold = calibrate_threshold(
            authenticator, known_train, target_false_reject_rate=0.1
        )
        assert authenticator.threshold == threshold
        metrics = evaluate_open_set(authenticator, known_test, unknown)
        assert metrics.false_reject_rate <= 0.35
        assert 0.0 <= metrics.auroc <= 1.0
        assert metrics.auroc > 0.6

    def test_threshold_sweep_is_monotone(self, trained_setup):
        classifier, _, known_test, unknown = trained_setup
        authenticator = OpenSetAuthenticator(classifier)
        sweep = threshold_sweep(authenticator, known_test, unknown, num_points=11)
        thresholds = sorted(sweep)
        fars = [sweep[t][0] for t in thresholds]
        frrs = [sweep[t][1] for t in thresholds]
        assert all(a >= b for a, b in zip(fars[:-1], fars[1:]))
        assert all(a <= b for a, b in zip(frrs[:-1], frrs[1:]))

    def test_evaluation_requires_both_populations(self, trained_setup):
        classifier, _, known_test, unknown = trained_setup
        authenticator = OpenSetAuthenticator(classifier)
        with pytest.raises(OpenSetError):
            evaluate_open_set(authenticator, [], unknown)
        with pytest.raises(OpenSetError):
            evaluate_open_set(authenticator, known_test, [])


class TestReplayBuffer:
    def test_buffer_respects_capacity(self):
        buffer = ReplayBuffer(capacity=10, seed=0)
        buffer.add(_make_samples([0, 1], num_per_module=20))
        assert len(buffer) <= 10
        assert set(buffer.classes) == {0, 1}

    def test_buffer_keeps_all_classes(self):
        buffer = ReplayBuffer(capacity=9, seed=0)
        buffer.add(_make_samples([0, 1, 2], num_per_module=30))
        assert set(buffer.classes) == {0, 1, 2}

    def test_sample_is_balanced_and_bounded(self):
        buffer = ReplayBuffer(capacity=30, seed=0)
        buffer.add(_make_samples([0, 1, 2], num_per_module=20))
        drawn = buffer.sample(9)
        assert len(drawn) <= 9
        drawn_classes = {sample.module_id for sample in drawn}
        assert drawn_classes == {0, 1, 2}

    def test_sample_zero_returns_empty(self):
        buffer = ReplayBuffer(capacity=5)
        assert buffer.sample(0) == []

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ContinualLearningError):
            ReplayBuffer(capacity=0)
        buffer = ReplayBuffer(capacity=5)
        with pytest.raises(ContinualLearningError):
            buffer.sample(-1)


class TestContinualLearning:
    def test_config_validation(self):
        with pytest.raises(ContinualLearningError):
            ContinualConfig(replay_capacity=0)
        with pytest.raises(ContinualLearningError):
            ContinualConfig(fine_tune_epochs=0)
        with pytest.raises(ContinualLearningError):
            ContinualConfig(learning_rate=0.0)
        with pytest.raises(ContinualLearningError):
            ContinualConfig(replay_ratio=-1.0)

    def test_observe_requires_bootstrap(self):
        learner = ContinualDeepCsi(_tiny_classifier(3))
        with pytest.raises(Exception):
            learner.observe(_make_samples([0], num_per_module=4))

    def test_bootstrap_then_observe_keeps_accuracy(self):
        train = _make_samples([0, 1, 2], num_per_module=25, seed=5)
        test = _make_samples([0, 1, 2], num_per_module=8, seed=6)
        new_condition = _make_samples([0, 1, 2], num_per_module=8, seed=7, shift=0.3)
        learner = ContinualDeepCsi(
            _tiny_classifier(3),
            ContinualConfig(replay_capacity=60, fine_tune_epochs=2, seed=0),
        )
        learner.bootstrap(train)
        baseline = learner.evaluate(test).accuracy
        assert baseline > 0.8
        report = evaluate_forgetting(learner, test, new_condition)
        assert learner.num_updates == 1
        assert report.before == pytest.approx(baseline)
        # Replay keeps the earlier condition from collapsing.
        assert report.after > 0.5
        assert report.forgetting < 0.4

    def test_empty_inputs_rejected(self):
        learner = ContinualDeepCsi(_tiny_classifier(3))
        with pytest.raises(ContinualLearningError):
            learner.bootstrap([])
        with pytest.raises(ContinualLearningError):
            ContinualDeepCsi(_tiny_classifier(3)).observe([])


class _StubAuthenticator:
    """Duck-typed authenticator with fully controlled scores.

    ``calibrate_threshold`` / ``evaluate_open_set`` only touch ``scores()``,
    ``threshold`` and (for evaluation) ``classifier.predict``, so a stub lets
    the edge-case tests pin exact score distributions no trained network
    would produce on demand.
    """

    class _StubClassifier:
        def predict(self, samples):
            return np.zeros(len(samples), dtype=np.int64)

    def __init__(self, known_scores, unknown_scores=()):
        self._known = np.asarray(known_scores, dtype=np.float64)
        self._unknown = np.asarray(unknown_scores, dtype=np.float64)
        self.threshold = 0.5
        self.classifier = self._StubClassifier()

    @staticmethod
    def samples(population, count):
        """Marker samples carrying only the module_id the evaluation reads."""
        return [
            SimpleNamespace(module_id=0, population=population)
            for _ in range(count)
        ]

    def scores(self, samples):
        if samples and samples[0].population == "unknown":
            return self._unknown
        return self._known


class TestCalibrationEdgeCases:
    def test_all_equal_scores_keep_everything_accepted(self):
        """A degenerate single-value score distribution must calibrate to
        that value (acceptance is >=, so nothing enrolled is rejected)."""
        stub = _StubAuthenticator([0.7] * 10)
        for target in (0.0, 0.05, 0.5, 0.99):
            threshold = calibrate_threshold(
                stub,
                stub.samples("known", 10),
                target_false_reject_rate=target,
            )
            assert threshold == pytest.approx(0.7)
            assert np.all(stub.scores(stub.samples("known", 10)) >= threshold)

    def test_target_frr_zero_rejects_nothing(self):
        stub = _StubAuthenticator([0.2, 0.5, 0.9, 0.95])
        threshold = calibrate_threshold(
            stub, stub.samples("known", 4), target_false_reject_rate=0.0
        )
        assert threshold == pytest.approx(0.2)
        assert np.all(stub.scores(stub.samples("known", 4)) >= threshold)

    def test_target_frr_one_rejected(self):
        stub = _StubAuthenticator([0.2, 0.9])
        for bad_target in (1.0, -0.1, 1.5):
            with pytest.raises(OpenSetError, match="target_false_reject_rate"):
                calibrate_threshold(
                    stub,
                    stub.samples("known", 2),
                    target_false_reject_rate=bad_target,
                )

    def test_far_zero_rejects_every_impostor(self):
        stub = _StubAuthenticator([0.3, 0.8, 0.9999])
        threshold = calibrate_threshold_far(
            stub, stub.samples("known", 3), target_false_accept_rate=0.0
        )
        assert threshold > 0.9999
        assert not np.any(stub.scores(stub.samples("known", 3)) >= threshold)

    def test_single_enrolled_class_calibration_bounds_rejections(self):
        """Calibrating against one enrolled class (every label identical --
        the degenerate single-population case) must still produce a valid
        threshold that bounds the false rejections."""
        train = _make_samples([0], num_per_module=20, seed=4)
        classifier = _tiny_classifier(num_classes=2)
        classifier.fit(train)
        authenticator = OpenSetAuthenticator(classifier, scoring="max_softmax")
        threshold = calibrate_threshold(
            authenticator, train, target_false_reject_rate=0.1
        )
        assert 0.0 <= threshold <= 1.0
        rejected = sum(
            1 for decision in authenticator.decide(train) if not decision.accepted
        )
        assert rejected <= int(0.1 * len(train))


class TestAurocProperties:
    def test_perfect_separation_scores_one(self):
        stub = _StubAuthenticator([0.8, 0.9, 0.95], [0.1, 0.2, 0.3])
        metrics = evaluate_open_set(
            stub, stub.samples("known", 3), stub.samples("unknown", 3)
        )
        assert metrics.auroc == pytest.approx(1.0)

    def test_inverted_separation_scores_zero(self):
        stub = _StubAuthenticator([0.1, 0.2], [0.8, 0.9])
        metrics = evaluate_open_set(
            stub, stub.samples("known", 2), stub.samples("unknown", 2)
        )
        assert metrics.auroc == pytest.approx(0.0)

    def test_indistinguishable_populations_score_half(self):
        """All-tied scores must give chance-level AUROC, not 0 or 1."""
        stub = _StubAuthenticator([0.6, 0.6, 0.6], [0.6, 0.6, 0.6])
        metrics = evaluate_open_set(
            stub, stub.samples("known", 3), stub.samples("unknown", 3)
        )
        assert metrics.auroc == pytest.approx(0.5)

    def test_auroc_stays_in_unit_interval(self):
        rng = np.random.default_rng(0)
        for trial in range(20):
            stub = _StubAuthenticator(rng.random(7), rng.random(5))
            metrics = evaluate_open_set(
                stub, stub.samples("known", 7), stub.samples("unknown", 5)
            )
            assert 0.0 <= metrics.auroc <= 1.0

    def test_auroc_of_trained_authenticator_in_bounds(self, trained_setup):
        classifier, _, known_test, unknown = trained_setup
        authenticator = OpenSetAuthenticator(classifier, scoring="max_softmax")
        metrics = evaluate_open_set(authenticator, known_test, unknown)
        assert 0.0 <= metrics.auroc <= 1.0


class TestReplayBufferSkew:
    def test_reservoir_balance_under_heavy_class_skew(self):
        """1000-vs-10 traffic skew must not evict the rare class."""
        buffer = ReplayBuffer(capacity=30, seed=0)
        buffer.add(_make_samples([0], num_per_module=1000, seed=5))
        buffer.add(_make_samples([1], num_per_module=10, seed=6))
        assert len(buffer) <= 30
        per_class = {
            module_id: sum(
                1 for sample in buffer.sample(len(buffer))
                if sample.module_id == module_id
            )
            for module_id in buffer.classes
        }
        # The rare class keeps everything it ever offered; the frequent one
        # is clamped to its per-class share.
        assert per_class[1] == 10
        assert per_class[0] <= 15

    def test_skewed_sample_draw_is_balanced(self):
        buffer = ReplayBuffer(capacity=40, seed=0)
        buffer.add(_make_samples([0], num_per_module=500, seed=7))
        buffer.add(_make_samples([1], num_per_module=500, seed=8))
        drawn = buffer.sample(20)
        counts = {0: 0, 1: 0}
        for sample in drawn:
            counts[sample.module_id] += 1
        assert counts[0] == counts[1] == 10
