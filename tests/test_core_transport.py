"""Tests for the shared-memory frame transport of the process backend."""

import multiprocessing

import numpy as np
import pytest

from repro.core.lifecycle import LifecycleError, ModelVersion
from repro.core.transport import (
    RECORD_FLUSH,
    RECORD_FRAME,
    RECORD_MODEL_SWAP,
    RECORD_STOP,
    RECORD_VTILDE,
    ShmRing,
    TransportError,
    pack_array_record,
    pack_control_record,
    pack_frame_record,
    pack_model_swap_record,
    segment_exists,
    unpack_record,
)


@pytest.fixture()
def context():
    return multiprocessing.get_context()


class TestRecordCodec:
    def test_array_record_roundtrip_preserves_bits(self):
        rng = np.random.default_rng(3)
        array = rng.standard_normal((17, 3, 2)) + 1j * rng.standard_normal((17, 3, 2))
        encoded = pack_array_record(42, "02:00:00:00:00:07", 12.5, array)
        record = unpack_record(encoded)
        assert record.kind == RECORD_VTILDE
        assert record.sequence == 42
        assert record.source == "02:00:00:00:00:07"
        assert record.timestamp_s == 12.5
        assert record.array.dtype == array.dtype
        assert record.array.shape == array.shape
        np.testing.assert_array_equal(record.array, array)

    def test_frame_record_roundtrip(self):
        payload = bytes(range(256)) * 3
        encoded = pack_frame_record(7, "aa:bb", 1.25, payload)
        record = unpack_record(encoded)
        assert record.kind == RECORD_FRAME
        assert record.sequence == 7
        assert record.source == "aa:bb"
        assert record.payload == payload

    def test_control_records(self):
        for kind in (RECORD_FLUSH, RECORD_STOP):
            record = unpack_record(pack_control_record(kind, sequence=9))
            assert record.kind == kind
            assert record.sequence == 9
        with pytest.raises(TransportError):
            pack_control_record(RECORD_VTILDE)

    def test_rejects_untransportable_arrays(self):
        with pytest.raises(TransportError):
            pack_array_record(0, "s", 0.0, np.zeros((2, 2, 2, 2, 2)))


class TestShmRing:
    def test_put_get_fifo(self, context):
        ring = ShmRing(context, num_slots=8, slot_bytes=256)
        try:
            for sequence in range(5):
                ring.put(pack_frame_record(sequence, "src", 0.0, b"x" * 32))
            for sequence in range(5):
                assert ring.get().sequence == sequence
        finally:
            ring.unlink()

    def test_large_record_spans_multiple_slots(self, context):
        """An oversize V~ frame must survive a tiny-slot ring bit for bit."""
        ring = ShmRing(context, num_slots=64, slot_bytes=128)
        rng = np.random.default_rng(5)
        array = rng.standard_normal((30, 3, 2)) + 1j * rng.standard_normal((30, 3, 2))
        try:
            assert ring.slots_needed(len(pack_array_record(0, "s", 0.0, array))) > 1
            ring.put(pack_array_record(3, "02:aa", 0.5, array))
            record = ring.get()
            np.testing.assert_array_equal(record.array, array)
            assert record.sequence == 3
        finally:
            ring.unlink()

    def test_record_larger_than_ring_rejected(self, context):
        ring = ShmRing(context, num_slots=2, slot_bytes=64)
        try:
            with pytest.raises(TransportError):
                ring.put(b"z" * 1024)
        finally:
            ring.unlink()

    def test_backpressure_invokes_on_wait(self, context):
        """A full ring blocks; draining in another thread unblocks the put."""
        import threading

        ring = ShmRing(context, num_slots=1, slot_bytes=256)
        waits = []
        try:
            ring.put(pack_control_record(RECORD_FLUSH))

            def drain_later():
                ring.get()

            drainer = threading.Timer(0.05, drain_later)
            drainer.start()
            ring.put(pack_control_record(RECORD_FLUSH), on_wait=lambda: waits.append(1))
            drainer.join()
            assert waits == [1]
        finally:
            ring.unlink()

    def test_unlink_destroys_segment(self, context):
        ring = ShmRing(context, num_slots=2, slot_bytes=128)
        name = ring.name
        assert segment_exists(name)
        ring.unlink()
        ring.unlink()  # idempotent
        assert not segment_exists(name)

    def test_invalid_configuration_rejected(self, context):
        with pytest.raises(TransportError):
            ShmRing(context, num_slots=0, slot_bytes=256)
        with pytest.raises(TransportError):
            ShmRing(context, num_slots=4, slot_bytes=8)

    def test_init_failure_after_create_releases_segment(self):
        """Regression (found by repro-lint shm/missing-cleanup): a semaphore
        construction failure after SharedMemory(create=True) must not leak
        the freshly created segment."""
        created_names = []
        original = ShmRing.__init__

        class FailingContext:
            def Semaphore(self, value):
                raise OSError("named-semaphore quota exhausted")

        def capturing_init(ring, context, num_slots, slot_bytes):
            try:
                original(ring, context, num_slots, slot_bytes)
            finally:
                shm = ring.__dict__.get("_shm")
                if shm is not None:
                    created_names.append(shm.name)

        ShmRing.__init__ = capturing_init
        try:
            with pytest.raises(OSError, match="quota"):
                ShmRing(FailingContext(), num_slots=2, slot_bytes=128)
        finally:
            ShmRing.__init__ = original
        assert len(created_names) == 1
        assert not segment_exists(created_names[0])


class TestModelSwapCodec:
    """RECORD_MODEL_SWAP mirrors the codeword-record codec guarantees."""

    @staticmethod
    def _version(version=3, threshold=0.75, size=4):
        rng = np.random.default_rng(11)
        return ModelVersion(
            version=version,
            weights={
                "00_conv/weight": rng.standard_normal((size, size)),
                "00_conv/bias": rng.standard_normal(size),
            },
            open_set_threshold=threshold,
        )

    def test_swap_record_roundtrip_preserves_bits(self):
        original = self._version()
        encoded = pack_model_swap_record(
            9, original.version, original.to_bytes(), original.open_set_threshold
        )
        record = unpack_record(encoded)
        assert record.kind == RECORD_MODEL_SWAP
        assert record.sequence == 9
        assert record.swap.version == 3
        assert record.swap.open_set_threshold == pytest.approx(0.75)
        decoded = ModelVersion.from_bytes(
            record.swap.blob, expected_version=record.swap.version
        )
        assert decoded.version == original.version
        assert set(decoded.weights) == set(original.weights)
        for name, value in original.weights.items():
            np.testing.assert_array_equal(decoded.weights[name], value)

    def test_swap_record_without_threshold(self):
        original = self._version(threshold=None)
        record = unpack_record(
            pack_model_swap_record(0, original.version, original.to_bytes())
        )
        assert record.swap.open_set_threshold is None

    def test_version_field_bounds(self):
        blob = self._version().to_bytes()
        for bad_version in (0, -1, 2**32):
            with pytest.raises(TransportError, match="swap record subheader"):
                pack_model_swap_record(0, bad_version, blob)

    def test_truncated_subheader_rejected(self):
        encoded = pack_model_swap_record(1, 2, self._version(version=2).to_bytes())
        with pytest.raises(TransportError, match="truncated model-swap"):
            unpack_record(encoded[: len(encoded) - len(self._version().to_bytes()) - 4])

    def test_truncated_blob_rejected(self):
        encoded = pack_model_swap_record(1, 3, self._version().to_bytes())
        with pytest.raises(TransportError, match="blob has"):
            unpack_record(encoded[:-7])

    def test_announced_version_mismatch_detected(self):
        """The transport ships the blob verbatim; the lifecycle decoder must
        catch a payload whose embedded version disagrees with the record."""
        swap = unpack_record(
            pack_model_swap_record(0, 5, self._version(version=4).to_bytes())
        ).swap
        with pytest.raises(LifecycleError, match="mismatch"):
            ModelVersion.from_bytes(swap.blob, expected_version=swap.version)

    def test_corrupt_blob_rejected(self):
        blob = self._version().to_bytes()
        with pytest.raises(LifecycleError, match="truncated or corrupt"):
            ModelVersion.from_bytes(blob[: len(blob) // 2])

    def test_oversized_swap_spans_multiple_ring_slots(self, context):
        """A multi-KB weight snapshot must survive a tiny-slot ring bit for
        bit, exactly like the oversized V~ records."""
        ring = ShmRing(context, num_slots=256, slot_bytes=128)
        original = self._version(version=6, size=32)
        encoded = pack_model_swap_record(
            6, original.version, original.to_bytes(), original.open_set_threshold
        )
        try:
            assert ring.slots_needed(len(encoded)) > 1
            ring.put(encoded)
            record = ring.get()
            assert record.kind == RECORD_MODEL_SWAP
            decoded = ModelVersion.from_bytes(
                record.swap.blob, expected_version=record.swap.version
            )
            for name, value in original.weights.items():
                np.testing.assert_array_equal(decoded.weights[name], value)
        finally:
            ring.unlink()
