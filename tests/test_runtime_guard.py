"""Tests for the runtime ``# guarded-by:`` validator.

The validator (:mod:`repro.analysis.runtime`) replays the static lock
checker's declarations dynamically: these tests prove it catches real
discipline breaks (negative controls) and passes disciplined code, using
small synthetic classes whose source lives in this file.  The validation of
the *production* classes runs inside the existing concurrent stress tests
(``test_core_engine.py`` / ``test_core_service.py``), which instrument the
live engine and service while hammering them from multiple threads.
"""

import threading

import pytest

from repro.analysis.runtime import (
    GuardError,
    RecordingLock,
    guarded_declarations_of,
    validate_guarded,
)


class DisciplinedCounter:
    """Every access of ``_hits`` correctly holds ``_lock``."""

    def __init__(self):
        self._hits = 0  # guarded-by: _lock
        self._lock = threading.Lock()

    def bump(self):
        with self._lock:
            self._hits += 1

    def snapshot(self):
        with self._lock:
            value = self._hits
        return value


class TornCounter:
    """``read_torn`` / ``write_torn`` break the declared discipline."""

    def __init__(self):
        self._hits = 0  # guarded-by: _lock
        self._lock = threading.Lock()

    def bump(self):
        with self._lock:
            self._hits += 1

    def read_torn(self):
        # lint: disable=lock -- negative control: the runtime validator must catch this
        return self._hits

    def write_torn(self):
        # lint: disable=lock -- negative control: the runtime validator must catch this
        self._hits = 99


class Undeclared:
    def __init__(self):
        self.value = 0


class TestRecordingLock:
    def test_tracks_holder_thread(self):
        lock = RecordingLock()
        assert not lock.held_by_current_thread()
        with lock:
            assert lock.held_by_current_thread()
            assert lock.locked()
        assert not lock.held_by_current_thread()
        assert lock.acquisitions == 1

    def test_other_thread_is_not_a_holder(self):
        lock = RecordingLock()
        seen = {}

        def probe():
            seen["held"] = lock.held_by_current_thread()

        with lock:
            worker = threading.Thread(target=probe)
            worker.start()
            worker.join()
        assert seen["held"] is False

    def test_mutual_exclusion_still_works(self):
        lock = RecordingLock()
        counter = {"value": 0}

        def work():
            for _ in range(200):
                with lock:
                    counter["value"] += 1

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter["value"] == 800


class TestDeclarationExtraction:
    def test_reads_declarations_from_class_source(self):
        assert guarded_declarations_of(DisciplinedCounter) == {"_hits": "_lock"}

    def test_undeclared_class_has_no_declarations(self):
        assert guarded_declarations_of(Undeclared) == {}

    def test_instrumenting_undeclared_class_fails(self):
        with pytest.raises(GuardError, match="declares no"):
            validate_guarded(Undeclared())


class TestValidator:
    def test_disciplined_code_passes(self):
        counter = DisciplinedCounter()
        with validate_guarded(counter) as monitor:
            for _ in range(5):
                counter.bump()
            assert counter.snapshot() == 5
        monitor.assert_clean()
        assert monitor.reads >= 5
        assert monitor.writes >= 5
        assert monitor.locks["_lock"].acquisitions == 6

    def test_catches_unguarded_read(self):
        counter = TornCounter()
        with validate_guarded(counter) as monitor:
            counter.bump()
            counter.read_torn()
        assert [entry.operation for entry in monitor.violations] == ["read"]
        violation = monitor.violations[0]
        assert violation.attribute == "_hits"
        assert violation.lock == "_lock"
        assert "test_runtime_guard.py" in violation.caller
        with pytest.raises(GuardError, match="unguarded"):
            monitor.assert_clean()

    def test_catches_unguarded_write(self):
        counter = TornCounter()
        with validate_guarded(counter) as monitor:
            counter.write_torn()
        assert [entry.operation for entry in monitor.violations] == ["write"]

    def test_strict_mode_raises_at_the_access_site(self):
        counter = TornCounter()
        validate_guarded(counter, strict=True)
        counter.bump()  # fine: lock held
        with pytest.raises(GuardError, match="read of '_hits'"):
            counter.read_torn()

    def test_vacuous_run_is_rejected(self):
        counter = DisciplinedCounter()
        with validate_guarded(counter) as monitor:
            pass
        with pytest.raises(GuardError, match="vacuous"):
            monitor.assert_clean()

    def test_restore_returns_the_original_class(self):
        counter = DisciplinedCounter()
        monitor = validate_guarded(counter)
        assert type(counter).__name__ == "GuardedDisciplinedCounter"
        counter.bump()
        monitor.restore()
        assert type(counter) is DisciplinedCounter
        assert counter._hits == 1  # shadow value moved back
        counter.bump()
        assert counter._hits == 2

    def test_concurrent_discipline_break_is_caught(self):
        """A racing reader without the lock is detected from any thread."""
        counter = TornCounter()
        monitor = validate_guarded(counter)
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                counter.read_torn()

        worker = threading.Thread(target=reader, name="torn-reader")
        worker.start()
        try:
            for _ in range(50):
                counter.bump()
        finally:
            stop.set()
            worker.join()
        monitor.restore()
        assert monitor.violations
        assert all(entry.thread == "torn-reader" for entry in monitor.violations)
