"""Checker-family tests over the seeded fixture snippets.

Each fixture under ``tests/fixtures/lint`` carries known violations (or is
deliberately clean); these tests pin the exact rules -- and the exact
*non*-findings, since a checker that over-reports real idioms (snapshot
copies, parent-side callbacks, preallocated lists) would be suppressed into
uselessness within a week.
"""

from pathlib import Path

import pytest

from repro.analysis.lint import SourceFile, lint_source

FIXTURES = Path(__file__).parent / "fixtures" / "lint"


def lint_fixture(name, select=None):
    path = FIXTURES / name
    source = SourceFile(str(path), path.read_text())
    return lint_source(source, select=select)


def rules_of(violations):
    return sorted(violation.rule for violation in violations)


class TestLockDiscipline:
    def test_bad_fixture_findings(self):
        violations, _ = lint_fixture("locks_bad.py", select=["lock"])
        assert rules_of(violations) == [
            "lock/guarded-ref-escape",
            "lock/guarded-ref-escape",
            "lock/unguarded-read",
            "lock/unguarded-read",
            "lock/unguarded-write",
        ]

    def test_closure_inside_with_is_not_guarded(self):
        """A closure defined inside the with-block runs after release."""
        violations, _ = lint_fixture("locks_bad.py", select=["lock"])
        closure_reads = [
            violation
            for violation in violations
            if violation.rule == "lock/unguarded-read"
            and "_hits" in violation.message
        ]
        assert any(
            violation.line > 25 for violation in closure_reads
        ), "the deferred-closure read was not flagged"

    def test_escape_messages_name_attribute_and_lock(self):
        violations, _ = lint_fixture("locks_bad.py", select=["lock"])
        escape = next(
            violation
            for violation in violations
            if violation.rule == "lock/guarded-ref-escape"
        )
        assert "_lock" in escape.message
        assert "copy" in escape.message

    def test_good_fixture_is_clean(self):
        violations, suppressed = lint_fixture("locks_good.py")
        assert violations == []
        assert suppressed == []


class TestHotPathAllocation:
    def test_bad_fixture_findings(self):
        violations, _ = lint_fixture("hotpath_bad.py", select=["hot-path"])
        assert rules_of(violations) == [
            "hot-path/banned-alloc",
            "hot-path/banned-alloc",
            "hot-path/banned-alloc",
            "hot-path/list-append-in-loop",
            "hot-path/missing-dtype",
        ]

    def test_good_fixture_is_clean(self):
        violations, suppressed = lint_fixture("hotpath_good.py")
        assert violations == []
        assert suppressed == []

    def test_undecorated_functions_are_never_checked(self):
        violations, _ = lint_fixture("hotpath_good.py", select=["hot-path"])
        assert violations == []


class TestDtypeContract:
    def test_marked_module_findings(self):
        violations, _ = lint_fixture("dtypes_bad.py", select=["dtype"])
        assert rules_of(violations) == [
            "dtype/float64",
            "dtype/float64",
            "dtype/float64",
            "dtype/missing-dtype",
        ]

    def test_unmarked_module_is_exempt(self):
        violations, _ = lint_fixture("dtypes_unmarked.py", select=["dtype"])
        assert violations == []

    def test_strict_fp32_module_is_clean(self):
        violations, suppressed = lint_fixture("dtypes_good.py")
        assert violations == []
        assert suppressed == []


class TestProcessSafety:
    def test_bad_fixture_findings(self):
        violations, _ = lint_fixture("shm_bad.py", select=["shm"])
        assert rules_of(violations) == [
            "shm/missing-cleanup",
            "shm/missing-cleanup",
            "shm/payload-closure",
            "shm/payload-closure",
            "shm/payload-closure",
            "shm/primitive-in-loop",
        ]

    def test_cleanup_message_distinguishes_the_two_failure_modes(self):
        violations, _ = lint_fixture("shm_bad.py", select=["shm/missing-cleanup"])
        messages = sorted(violation.message for violation in violations)
        assert "not stored" in messages[0]
        assert "exception" in messages[1]

    def test_good_fixture_is_clean(self):
        violations, suppressed = lint_fixture("shm_good.py")
        assert violations == [], [v.format() for v in violations]
        assert suppressed == []

    def test_parent_side_keyword_callbacks_are_not_payloads(self):
        """liveness=lambda on ring.put stays in the parent process."""
        violations, _ = lint_fixture("shm_good.py", select=["shm/payload-closure"])
        assert violations == []


class TestSuppressionInteraction:
    def test_justified_suppressions_silence_and_record(self):
        violations, suppressed = lint_fixture("suppressed.py")
        # The unjustified suppression silences nothing: both the suppression
        # itself and the violation it failed to cover are reported.
        assert rules_of(violations) == [
            "hot-path/banned-alloc",
            "lint/unjustified-suppression",
        ]
        assert rules_of(suppressed) == [
            "hot-path/banned-alloc",
            "hot-path/missing-dtype",
        ]
        assert all(entry.justification for entry in suppressed)

    def test_family_level_suppression_covers_member_rules(self):
        _, suppressed = lint_fixture("suppressed.py")
        family_cases = [
            entry
            for entry in suppressed
            if entry.rule == "hot-path/missing-dtype"
        ]
        assert family_cases, "family-wide suppression did not apply"

    def test_unjustified_suppression_does_not_silence(self):
        violations, _ = lint_fixture("suppressed.py", select=["hot-path"])
        assert "hot-path/banned-alloc" in rules_of(violations)


class TestSelectFiltering:
    def test_select_by_family_excludes_other_families(self):
        violations, _ = lint_fixture("locks_bad.py", select=["hot-path"])
        assert violations == []

    def test_select_by_rule_id(self):
        violations, _ = lint_fixture(
            "locks_bad.py", select=["lock/unguarded-write"]
        )
        assert rules_of(violations) == ["lock/unguarded-write"]
