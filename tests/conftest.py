"""Shared fixtures for the DeepCSI reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.generator import DatasetConfig, generate_dataset_d1, generate_dataset_d2
from repro.phy.channel import MultipathChannel
from repro.phy.devices import AccessPoint, make_beamformee, make_module_population
from repro.phy.geometry import AP_POSITION_A, beamformee_positions
from repro.phy.ofdm import sounding_layout


def random_unitary_columns(
    rng: np.random.Generator, num_subcarriers: int, num_tx: int, num_streams: int
) -> np.ndarray:
    """Random matrices with orthonormal columns, shape (K, M, N_SS)."""
    raw = rng.standard_normal((num_subcarriers, num_tx, num_tx)) + 1j * rng.standard_normal(
        (num_subcarriers, num_tx, num_tx)
    )
    q, _ = np.linalg.qr(raw)
    return q[:, :, :num_streams]


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Session-wide deterministic random generator."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def layout20():
    """20 MHz sounding layout (54 sub-carriers) for fast PHY tests."""
    return sounding_layout(20)


@pytest.fixture(scope="session")
def layout80():
    """80 MHz sounding layout (234 sub-carriers), the paper's configuration."""
    return sounding_layout(80)


@pytest.fixture(scope="session")
def small_modules():
    """Three Wi-Fi modules with reproducible fingerprints."""
    return make_module_population(num_modules=3, seed=99)


@pytest.fixture(scope="session")
def small_network(small_modules):
    """A minimal network: AP (module 0), one beamformee, a channel."""
    access_point = AccessPoint(module=small_modules[0], position=AP_POSITION_A)
    bf_position, _ = beamformee_positions(3)
    beamformee = make_beamformee(1, bf_position, num_antennas=2, num_streams=2)
    channel = MultipathChannel(num_scatterers=4, environment_seed=7)
    return access_point, beamformee, channel


@pytest.fixture(scope="session")
def tiny_dataset_config() -> DatasetConfig:
    """Very small dataset configuration used by the slower tests."""
    return DatasetConfig(num_modules=3, soundings_per_trace=4, base_seed=5)


@pytest.fixture(scope="session")
def tiny_d1(tiny_dataset_config):
    """A miniature D1 dataset (3 modules x 9 positions x 4 soundings)."""
    return generate_dataset_d1(tiny_dataset_config)


@pytest.fixture(scope="session")
def tiny_d2(tiny_dataset_config):
    """A miniature D2 dataset (3 modules x 11 traces x 4 soundings)."""
    return generate_dataset_d2(tiny_dataset_config)
