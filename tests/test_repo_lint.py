"""The shipping bar: zero lint violations across the whole repository.

This is the test-suite twin of the CI ``static-analysis`` job.  It also
self-checks the gate: a seeded violation injected next to the real sources
must be caught, so a silently-broken checker cannot green-light the repo.
"""

from pathlib import Path

from repro.analysis.lint import run_lint

REPO_ROOT = Path(__file__).parent.parent
SCAN_ROOTS = [
    str(REPO_ROOT / name)
    for name in ("src", "benchmarks", "scripts", "tests")
    if (REPO_ROOT / name).is_dir()
]


def test_repository_is_lint_clean():
    report = run_lint(SCAN_ROOTS)
    assert report.files_scanned > 100
    assert report.errors == {}
    assert report.violations == [], "\n".join(
        violation.format() for violation in report.violations
    )


def test_every_suppression_in_the_tree_is_justified():
    report = run_lint(SCAN_ROOTS)
    assert all(entry.justification for entry in report.suppressed)
    # The deliberate fp64 escapes of the compute backends, the Eq. (8)
    # float64 reference formulas feeding the trig LUTs, and the runtime
    # validator's negative-control class are the only suppressions we
    # expect; new ones need a review-visible justification.
    suppressed_files = {Path(entry.path).name for entry in report.suppressed}
    assert suppressed_files <= {
        "compute.py",
        "quantization.py",
        "test_runtime_guard.py",
    }


def test_injected_violation_is_caught(tmp_path):
    bad = tmp_path / "injected.py"
    bad.write_text(
        "import threading\n"
        "\n"
        "\n"
        "class Injected:\n"
        "    def __init__(self):\n"
        "        self._state = 0  # guarded-by: _lock\n"
        "        self._lock = threading.Lock()\n"
        "\n"
        "    def torn(self):\n"
        "        self._state = 1\n"
    )
    report = run_lint([str(bad)])
    assert not report.ok
    assert [entry.rule for entry in report.violations] == ["lock/unguarded-write"]
