"""Tests for dataset persistence (save/load round trip)."""

import numpy as np
import pytest

from repro.datasets.containers import FeedbackDataset, FeedbackSample, Trace
from repro.datasets.io import (
    DatasetIOError,
    dataset_size_bytes,
    load_dataset,
    save_dataset,
)


def _tiny_dataset(num_traces=3, samples_per_trace=4, shape=(16, 3, 2)):
    rng = np.random.default_rng(0)
    dataset = FeedbackDataset(name="tiny")
    for trace_id in range(num_traces):
        trace = Trace(
            module_id=trace_id % 2,
            position_id=trace_id + 1,
            group="static",
            trace_id=trace_id,
        )
        for index in range(samples_per_trace):
            matrix = (
                rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
            ).astype(np.complex64)
            trace.add(
                FeedbackSample(
                    v_tilde=matrix,
                    module_id=trace.module_id,
                    beamformee_id=1 + index % 2,
                    position_id=trace.position_id,
                    group="static",
                    timestamp_s=0.5 * index,
                    path_progress=index / samples_per_trace,
                )
            )
        dataset.add(trace)
    return dataset


class TestSaveLoadRoundTrip:
    def test_round_trip_preserves_everything(self, tmp_path):
        dataset = _tiny_dataset()
        path = save_dataset(dataset, tmp_path / "tiny.npz")
        loaded = load_dataset(path)

        assert loaded.name == dataset.name
        assert len(loaded) == len(dataset)
        assert loaded.num_samples == dataset.num_samples
        for original, restored in zip(dataset, loaded):
            assert restored.module_id == original.module_id
            assert restored.position_id == original.position_id
            assert restored.group == original.group
            assert restored.trace_id == original.trace_id
            for sample_a, sample_b in zip(original, restored):
                np.testing.assert_allclose(sample_b.v_tilde, sample_a.v_tilde)
                assert sample_b.beamformee_id == sample_a.beamformee_id
                assert sample_b.timestamp_s == pytest.approx(sample_a.timestamp_s)
                assert sample_b.path_progress == pytest.approx(sample_a.path_progress)

    def test_suffix_added_when_missing(self, tmp_path):
        path = save_dataset(_tiny_dataset(), tmp_path / "archive")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_generated_d1_round_trips(self, tmp_path, tiny_d1):
        path = save_dataset(tiny_d1, tmp_path / "d1.npz")
        loaded = load_dataset(path)
        assert loaded.num_samples == tiny_d1.num_samples
        assert loaded.module_ids == tiny_d1.module_ids
        assert loaded.position_ids == tiny_d1.position_ids

    def test_size_estimate_is_positive(self):
        assert dataset_size_bytes(_tiny_dataset()) > 0


class TestErrorHandling:
    def test_empty_dataset_rejected(self, tmp_path):
        with pytest.raises(DatasetIOError):
            save_dataset(FeedbackDataset(name="empty"), tmp_path / "empty.npz")

    def test_empty_trace_rejected(self, tmp_path):
        dataset = FeedbackDataset(name="bad")
        dataset.add(Trace(module_id=0, trace_id=0))
        with pytest.raises(DatasetIOError):
            save_dataset(dataset, tmp_path / "bad.npz")

    def test_inconsistent_shapes_rejected(self, tmp_path):
        dataset = _tiny_dataset(num_traces=1)
        odd = FeedbackSample(
            v_tilde=np.zeros((8, 3, 2), dtype=np.complex64),
            module_id=0,
            beamformee_id=1,
        )
        dataset.traces[0].add(odd)
        with pytest.raises(DatasetIOError):
            save_dataset(dataset, tmp_path / "odd.npz")

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(DatasetIOError):
            load_dataset(tmp_path / "does_not_exist.npz")

    def test_corrupt_archive_rejected(self, tmp_path):
        path = tmp_path / "corrupt.npz"
        np.savez(path, unrelated=np.arange(3))
        with pytest.raises(DatasetIOError):
            load_dataset(path)
