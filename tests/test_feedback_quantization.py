"""Unit and property tests for the feedback-angle quantisation (Eq. 8)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.feedback.givens import compress_v_matrix, compression_error, reconstruct_v_matrix
from repro.feedback.quantization import (
    CODEBOOK_HIGH,
    CODEBOOK_LOW,
    QuantizationConfig,
    QuantizationError,
    dequantize_angles,
    dequantize_phi,
    dequantize_psi,
    quantization_roundtrip,
    quantize_angles,
    quantize_phi,
    quantize_psi,
)
from tests.conftest import random_unitary_columns


class TestQuantizationConfig:
    def test_paper_codebook_is_default(self):
        config = QuantizationConfig()
        assert (config.b_psi, config.b_phi) == CODEBOOK_HIGH

    def test_low_codebook_accepted(self):
        config = QuantizationConfig(b_phi=7, b_psi=5)
        assert (config.b_psi, config.b_phi) == CODEBOOK_LOW

    def test_non_standard_codebook_rejected_in_strict_mode(self):
        with pytest.raises(QuantizationError):
            QuantizationConfig(b_phi=6, b_psi=4)

    def test_non_standard_codebook_allowed_when_not_strict(self):
        config = QuantizationConfig(b_phi=4, b_psi=2, strict=False)
        assert config.phi_levels == 16
        assert config.psi_levels == 4

    def test_step_sizes(self):
        config = QuantizationConfig(b_phi=9, b_psi=7)
        assert config.phi_step == pytest.approx(np.pi / 256)
        assert config.psi_step == pytest.approx(np.pi / 256)

    def test_bits_per_subcarrier(self):
        config = QuantizationConfig(b_phi=9, b_psi=7)
        # M = 3, N_SS = 2 -> 3 phi + 3 psi angles per sub-carrier.
        assert config.bits_per_subcarrier(3, 3) == 3 * 9 + 3 * 7

    def test_invalid_bit_width_rejected(self):
        with pytest.raises(QuantizationError):
            QuantizationConfig(b_phi=0, b_psi=1, strict=False)


class TestScalarQuantization:
    def test_dequantized_phi_matches_eq8(self):
        config = QuantizationConfig()
        q = np.array([0, 1, 2 ** config.b_phi - 1])
        expected = np.pi * (1.0 / 2 ** config.b_phi + q / 2 ** (config.b_phi - 1))
        np.testing.assert_allclose(dequantize_phi(q, config), expected)

    def test_dequantized_psi_matches_eq8(self):
        config = QuantizationConfig()
        q = np.array([0, 5, 2 ** config.b_psi - 1])
        expected = np.pi * (1.0 / 2 ** (config.b_psi + 2) + q / 2 ** (config.b_psi + 1))
        np.testing.assert_allclose(dequantize_psi(q, config), expected)

    def test_phi_error_bounded_by_half_step(self, rng):
        config = QuantizationConfig()
        phi = rng.uniform(0.0, 2.0 * np.pi, size=1000)
        recovered = dequantize_phi(quantize_phi(phi, config), config)
        error = np.abs(np.angle(np.exp(1j * (recovered - phi))))
        assert np.max(error) <= config.phi_step / 2 + 1e-12

    def test_psi_error_bounded_by_half_step(self, rng):
        config = QuantizationConfig()
        psi = rng.uniform(0.0, np.pi / 2.0, size=1000)
        recovered = dequantize_psi(quantize_psi(psi, config), config)
        # Edge values saturate to the last reconstruction level.
        assert np.max(np.abs(recovered - psi)) <= config.psi_step

    def test_codewords_within_range(self, rng):
        config = QuantizationConfig(b_phi=7, b_psi=5)
        phi = rng.uniform(-10.0, 10.0, size=200)
        psi = rng.uniform(-1.0, 3.0, size=200)
        q_phi = quantize_phi(phi, config)
        q_psi = quantize_psi(psi, config)
        assert q_phi.min() >= 0 and q_phi.max() < config.phi_levels
        assert q_psi.min() >= 0 and q_psi.max() < config.psi_levels

    @given(phi=st.floats(0.0, 2.0 * np.pi, exclude_max=True))
    @settings(max_examples=100, deadline=None)
    def test_phi_quantisation_error_property(self, phi):
        config = QuantizationConfig()
        recovered = float(dequantize_phi(quantize_phi(np.array([phi]), config), config)[0])
        error = abs(np.angle(np.exp(1j * (recovered - phi))))
        assert error <= config.phi_step / 2 + 1e-9

    @given(psi=st.floats(0.0, np.pi / 2.0))
    @settings(max_examples=100, deadline=None)
    def test_psi_quantisation_error_property(self, psi):
        config = QuantizationConfig()
        recovered = float(dequantize_psi(quantize_psi(np.array([psi]), config), config)[0])
        assert abs(recovered - psi) <= config.psi_step + 1e-9


class TestFeedbackQuantization:
    def test_roundtrip_preserves_shapes_and_metadata(self, rng):
        v = random_unitary_columns(rng, 16, 3, 2)
        angles = compress_v_matrix(v)
        quantised = quantize_angles(angles, QuantizationConfig())
        assert quantised.q_phi.shape == angles.phi.shape
        assert quantised.q_psi.shape == angles.psi.shape
        recovered = dequantize_angles(quantised)
        assert recovered.num_tx == 3 and recovered.num_streams == 2

    def test_finer_codebook_reduces_v_error(self, rng):
        v = random_unitary_columns(rng, 64, 3, 2)
        angles = compress_v_matrix(v)
        coarse = compression_error(
            v,
            reconstruct_v_matrix(
                quantization_roundtrip(angles, QuantizationConfig(b_phi=7, b_psi=5))
            ),
        ).mean()
        fine = compression_error(
            v,
            reconstruct_v_matrix(
                quantization_roundtrip(angles, QuantizationConfig(b_phi=9, b_psi=7))
            ),
        ).mean()
        assert fine < coarse
        assert coarse / fine > 2.0  # roughly a factor of 4 in theory

    def test_quantised_reconstruction_stays_orthonormal(self, rng):
        v = random_unitary_columns(rng, 32, 3, 2)
        angles = quantization_roundtrip(compress_v_matrix(v), QuantizationConfig())
        reconstructed = reconstruct_v_matrix(angles)
        gram = np.einsum("kms,kmt->kst", np.conj(reconstructed), reconstructed)
        identity = np.broadcast_to(np.eye(2), gram.shape)
        assert np.max(np.abs(gram - identity)) < 1e-10

    def test_second_stream_error_exceeds_first_on_average(self, rng):
        # The Fig. 13 effect: the recursive construction propagates the
        # quantisation error towards later columns.
        errors = []
        for seed in range(8):
            local = np.random.default_rng(seed)
            v = random_unitary_columns(local, 64, 3, 2)
            angles = compress_v_matrix(v)
            quantised = quantization_roundtrip(angles, QuantizationConfig(b_phi=7, b_psi=5))
            errors.append(compression_error(v, reconstruct_v_matrix(quantised)))
        stacked = np.concatenate(errors, axis=0)
        per_stream = stacked.mean(axis=(0, 1))
        assert per_stream[1] > per_stream[0]
