"""Unit tests for the OFDM sub-carrier layouts."""

import numpy as np
import pytest

from repro.phy.ofdm import (
    OfdmConfig,
    OfdmError,
    SOUNDED_SUBCARRIERS,
    SubcarrierLayout,
    demodulate_symbol,
    ofdm_symbol,
    sounding_layout,
    subband_indices,
)


class TestOfdmConfig:
    def test_default_matches_paper_setup(self):
        config = OfdmConfig()
        assert config.bandwidth_mhz == 80
        assert config.carrier_frequency_hz == pytest.approx(5.21e9)
        assert config.num_sounded_subcarriers == 234

    def test_symbol_duration_is_inverse_spacing(self):
        config = OfdmConfig()
        assert config.symbol_duration_s == pytest.approx(1.0 / config.subcarrier_spacing_hz)

    @pytest.mark.parametrize("bandwidth", [10, 160, 0, -20])
    def test_rejects_unsupported_bandwidth(self, bandwidth):
        with pytest.raises(OfdmError):
            OfdmConfig(bandwidth_mhz=bandwidth)

    def test_rejects_non_positive_carrier(self):
        with pytest.raises(OfdmError):
            OfdmConfig(carrier_frequency_hz=0.0)


class TestSoundingLayout:
    @pytest.mark.parametrize("bandwidth", [20, 40, 80])
    def test_subcarrier_counts_match_standard(self, bandwidth):
        layout = sounding_layout(bandwidth)
        assert layout.num_subcarriers == SOUNDED_SUBCARRIERS[bandwidth]
        assert len(layout) == SOUNDED_SUBCARRIERS[bandwidth]

    def test_indices_are_sorted_and_unique(self):
        layout = sounding_layout(80)
        assert np.all(np.diff(layout.indices) > 0)

    def test_dc_subcarriers_excluded(self):
        for bandwidth in (20, 40, 80):
            layout = sounding_layout(bandwidth)
            assert 0 not in layout.indices

    def test_80mhz_pilots_excluded(self):
        layout = sounding_layout(80)
        for pilot in (-103, -75, -39, -11, 11, 39, 75, 103):
            assert pilot not in layout.indices

    def test_frequencies_centred_on_carrier(self):
        layout = sounding_layout(80)
        assert np.all(np.abs(layout.frequencies_hz - 5.21e9) < 40e6)

    def test_baseband_offsets_scale_with_spacing(self):
        layout = sounding_layout(20)
        np.testing.assert_allclose(
            layout.baseband_offsets_hz,
            layout.indices * layout.config.subcarrier_spacing_hz,
        )

    def test_layout_rejects_wrong_index_count(self):
        config = OfdmConfig(bandwidth_mhz=20)
        with pytest.raises(OfdmError):
            SubcarrierLayout(config=config, indices=np.arange(10))

    def test_unsupported_bandwidth_rejected(self):
        with pytest.raises(OfdmError):
            sounding_layout(160)


class TestSubbandIndices:
    def test_identity_when_target_equals_capture(self):
        layout = sounding_layout(80)
        positions = subband_indices(layout, 80)
        np.testing.assert_array_equal(positions, np.arange(234))

    @pytest.mark.parametrize("target,expected", [(40, 110), (20, 54)])
    def test_nested_counts_match_fig12(self, target, expected):
        layout = sounding_layout(80)
        positions = subband_indices(layout, target)
        assert len(positions) == expected
        assert len(set(positions.tolist())) == expected

    def test_nested_positions_are_valid_and_contiguous_in_frequency(self):
        layout = sounding_layout(80)
        positions = subband_indices(layout, 20)
        assert positions.min() >= 0
        assert positions.max() < layout.num_subcarriers
        selected = layout.indices[positions]
        # Channel 36 sits in the lower part of channel 42.
        assert selected.max() < 0

    def test_larger_target_than_capture_rejected(self):
        layout = sounding_layout(40)
        with pytest.raises(OfdmError):
            subband_indices(layout, 80)

    def test_unknown_target_rejected(self):
        layout = sounding_layout(80)
        with pytest.raises(OfdmError):
            subband_indices(layout, 30)


class TestOfdmSymbol:
    def test_modulation_roundtrip(self, rng):
        layout = sounding_layout(20)
        data = rng.standard_normal(54) + 1j * rng.standard_normal(54)
        _, samples = ofdm_symbol(data, layout)
        recovered = demodulate_symbol(samples, layout)
        np.testing.assert_allclose(recovered, data, atol=1e-9)

    def test_wrong_data_length_rejected(self):
        layout = sounding_layout(20)
        with pytest.raises(OfdmError):
            ofdm_symbol(np.ones(10), layout)

    def test_invalid_oversampling_rejected(self):
        layout = sounding_layout(20)
        with pytest.raises(OfdmError):
            ofdm_symbol(np.ones(54), layout, oversampling=0)
