"""Tests for the Sequential container, the training loop and serialisation."""

import numpy as np
import pytest

from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, Relu, Selu
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import ModelError, Sequential
from repro.nn.optimizers import Adam, SGD
from repro.nn.serialization import load_weights, save_weights
from repro.nn.training import History, Trainer, TrainingConfig, TrainingError


def make_mlp(seed=0, in_features=8, num_classes=3):
    rng = np.random.default_rng(seed)
    return Sequential(
        [
            Dense(in_features, 16, rng=rng, name="hidden"),
            Selu(),
            Dense(16, num_classes, rng=rng, name="out"),
        ]
    )


def make_blobs(rng, num_samples=300, num_classes=3, num_features=8, separation=3.0):
    """Linearly separable Gaussian blobs."""
    centers = rng.standard_normal((num_classes, num_features)) * separation
    labels = rng.integers(0, num_classes, size=num_samples)
    features = centers[labels] + rng.standard_normal((num_samples, num_features))
    return features, labels


class TestSequential:
    def test_forward_chains_layers(self, rng):
        model = make_mlp()
        x = rng.standard_normal((5, 8))
        out = model.forward(x)
        assert out.shape == (5, 3)

    def test_parameters_have_unique_names(self):
        model = make_mlp()
        names = [name for name, _, _ in model.parameters()]
        assert len(names) == len(set(names)) == 4  # two Dense layers x (w, b)

    def test_num_parameters(self):
        model = make_mlp()
        assert model.num_parameters == (8 * 16 + 16) + (16 * 3 + 3)

    def test_get_set_weights_roundtrip(self, rng):
        model = make_mlp(seed=0)
        other = make_mlp(seed=1)
        x = rng.standard_normal((4, 8))
        assert not np.allclose(model.forward(x), other.forward(x))
        other.set_weights(model.get_weights())
        np.testing.assert_allclose(model.forward(x), other.forward(x))

    def test_set_weights_shape_mismatch_rejected(self):
        model = make_mlp()
        weights = model.get_weights()
        weights[0] = weights[0][:, :2]
        with pytest.raises(ModelError):
            model.set_weights(weights)

    def test_predict_batches_match_single_pass(self, rng):
        model = make_mlp()
        x = rng.standard_normal((23, 8))
        np.testing.assert_allclose(model.predict(x, batch_size=5), model.forward(x))

    def test_empty_model_rejected(self, rng):
        with pytest.raises(ModelError):
            Sequential().forward(rng.standard_normal((2, 2)))

    def test_summary_mentions_every_layer(self):
        model = make_mlp()
        summary = model.summary()
        assert "Dense" in summary
        assert "Total trainable parameters" in summary

    def test_backward_through_cnn_stack(self, rng):
        model = Sequential(
            [
                Conv2D(2, 4, (1, 3), rng=np.random.default_rng(0)),
                Relu(),
                MaxPool2D((1, 2)),
                Flatten(),
                Dense(4 * 1 * 4, 2, rng=np.random.default_rng(0)),
            ]
        )
        x = rng.standard_normal((3, 2, 1, 8))
        out = model.forward(x, training=True)
        grad_in = model.backward(np.ones_like(out))
        assert grad_in.shape == x.shape


class TestTrainer:
    def test_learns_separable_blobs(self, rng):
        features, labels = make_blobs(np.random.default_rng(0))
        model = make_mlp(seed=2)
        trainer = Trainer(
            model,
            optimizer=Adam(1e-2),
            config=TrainingConfig(epochs=30, batch_size=32, validation_split=0.2,
                                  early_stopping_patience=None, seed=0),
        )
        history = trainer.fit(features, labels)
        assert history.train_accuracy[-1] > 0.95
        assert history.best_val_accuracy > 0.9

    def test_loss_decreases_over_epochs(self):
        features, labels = make_blobs(np.random.default_rng(1))
        model = make_mlp(seed=3)
        trainer = Trainer(
            model,
            optimizer=SGD(learning_rate=0.05),
            config=TrainingConfig(epochs=10, validation_split=0.0,
                                  early_stopping_patience=None, seed=0),
        )
        history = trainer.fit(features, labels)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_explicit_validation_data_is_used(self):
        features, labels = make_blobs(np.random.default_rng(2), num_samples=200)
        model = make_mlp(seed=4)
        trainer = Trainer(model, config=TrainingConfig(epochs=3, seed=0,
                                                       early_stopping_patience=None))
        history = trainer.fit(
            features[:150], labels[:150], validation_data=(features[150:], labels[150:])
        )
        assert len(history.val_accuracy) == history.num_epochs

    def test_early_stopping_halts_training(self):
        # Random labels cannot be generalised, so validation loss stalls and
        # early stopping must trigger before the epoch budget is exhausted.
        rng = np.random.default_rng(3)
        features = rng.standard_normal((120, 8))
        labels = rng.integers(0, 3, size=120)
        model = make_mlp(seed=5)
        trainer = Trainer(
            model,
            optimizer=Adam(1e-2),
            config=TrainingConfig(epochs=60, batch_size=16, validation_split=0.3,
                                  early_stopping_patience=2, seed=0),
        )
        history = trainer.fit(features, labels)
        assert history.num_epochs < 60

    def test_evaluate_returns_loss_and_accuracy(self):
        features, labels = make_blobs(np.random.default_rng(4), num_samples=100)
        model = make_mlp(seed=6)
        trainer = Trainer(model, config=TrainingConfig(epochs=5, seed=0,
                                                       early_stopping_patience=None))
        trainer.fit(features, labels)
        loss, acc = trainer.evaluate(features, labels)
        assert loss >= 0.0
        assert 0.0 <= acc <= 1.0

    def test_predict_labels_shape(self):
        features, labels = make_blobs(np.random.default_rng(5), num_samples=50)
        model = make_mlp(seed=7)
        trainer = Trainer(model, config=TrainingConfig(epochs=2, seed=0,
                                                       early_stopping_patience=None))
        trainer.fit(features, labels)
        predictions = trainer.predict_labels(features)
        assert predictions.shape == labels.shape

    def test_mismatched_inputs_rejected(self):
        model = make_mlp()
        trainer = Trainer(model)
        with pytest.raises(TrainingError):
            trainer.fit(np.zeros((4, 8)), np.zeros(5, dtype=int))
        with pytest.raises(TrainingError):
            trainer.evaluate(np.zeros((0, 8)), np.zeros(0, dtype=int))

    def test_invalid_config_rejected(self):
        with pytest.raises(TrainingError):
            TrainingConfig(epochs=0)
        with pytest.raises(TrainingError):
            TrainingConfig(validation_split=1.0)
        with pytest.raises(TrainingError):
            TrainingConfig(early_stopping_patience=0)

    def test_history_as_dict(self):
        history = History(train_loss=[1.0], train_accuracy=[0.5])
        exported = history.as_dict()
        assert exported["train_loss"] == [1.0]
        assert np.isnan(history.best_val_accuracy)


class TestSerialization:
    def test_save_load_roundtrip(self, tmp_path, rng):
        model = make_mlp(seed=8)
        x = rng.standard_normal((4, 8))
        expected = model.forward(x)
        path = tmp_path / "weights.npz"
        save_weights(model, path)
        other = make_mlp(seed=9)
        load_weights(other, path)
        np.testing.assert_allclose(other.forward(x), expected)

    def test_load_into_wrong_architecture_rejected(self, tmp_path):
        model = make_mlp(seed=8)
        path = tmp_path / "weights.npz"
        save_weights(model, path)
        wrong = Sequential([Dense(8, 4, rng=np.random.default_rng(0), name="hidden")])
        with pytest.raises(ModelError):
            load_weights(wrong, path)

    def test_saving_empty_model_rejected(self, tmp_path):
        with pytest.raises(ModelError):
            save_weights(Sequential([Relu()]), tmp_path / "weights.npz")
