"""Tests for the 802.11ax (HE) compressed-feedback variant."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.feedback.he_feedback import (
    ALLOWED_GROUPINGS,
    HeFeedbackConfig,
    HeFeedbackError,
    expand_groups,
    feedback_overhead_bits,
    group_subcarriers,
    he_feedback_roundtrip,
    overhead_reduction,
)
from tests.conftest import random_unitary_columns


@pytest.fixture(scope="module")
def v_matrix():
    rng = np.random.default_rng(7)
    return random_unitary_columns(rng, num_subcarriers=64, num_tx=3, num_streams=2)


class TestHeFeedbackConfig:
    def test_codebook_selects_quantisation(self):
        mu_fine = HeFeedbackConfig(grouping=4, codebook=1, mu=True)
        assert (mu_fine.quantization.b_phi, mu_fine.quantization.b_psi) == (9, 7)
        mu_coarse = HeFeedbackConfig(grouping=4, codebook=0, mu=True)
        assert (mu_coarse.quantization.b_phi, mu_coarse.quantization.b_psi) == (7, 5)
        su = HeFeedbackConfig(grouping=4, codebook=0, mu=False)
        assert (su.quantization.b_phi, su.quantization.b_psi) == (4, 2)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(HeFeedbackError):
            HeFeedbackConfig(grouping=3)
        with pytest.raises(HeFeedbackError):
            HeFeedbackConfig(codebook=2)


class TestGrouping:
    def test_grouping_keeps_every_ng_th_tone(self, v_matrix):
        grouped = group_subcarriers(v_matrix, 4)
        assert grouped.shape == (16, 3, 2)
        np.testing.assert_allclose(grouped[1], v_matrix[4])

    def test_grouping_one_is_identity(self, v_matrix):
        np.testing.assert_allclose(group_subcarriers(v_matrix, 1), v_matrix)

    def test_expand_restores_tone_count(self, v_matrix):
        grouped = group_subcarriers(v_matrix, 4)
        expanded = expand_groups(grouped, v_matrix.shape[0], 4)
        assert expanded.shape == v_matrix.shape
        # The reported tones are reproduced exactly.
        np.testing.assert_allclose(expanded[::4], grouped, atol=1e-12)

    def test_expand_interpolates_between_groups(self, v_matrix):
        grouped = group_subcarriers(v_matrix, 4)
        expanded = expand_groups(grouped, v_matrix.shape[0], 4)
        midpoint = expanded[2, 0, 0]
        average = 0.5 * (grouped[0, 0, 0] + grouped[1, 0, 0])
        assert midpoint == pytest.approx(average, rel=1e-9)

    def test_expand_rejects_mismatched_shapes(self, v_matrix):
        grouped = group_subcarriers(v_matrix, 4)
        with pytest.raises(HeFeedbackError):
            expand_groups(grouped, 128, 4)
        with pytest.raises(HeFeedbackError):
            expand_groups(grouped[:, 0, :], 64, 4)

    def test_invalid_grouping_rejected(self, v_matrix):
        with pytest.raises(HeFeedbackError):
            group_subcarriers(v_matrix, 5)


class TestRoundTrip:
    def test_ungrouped_roundtrip_close_to_input(self, v_matrix):
        config = HeFeedbackConfig(grouping=1, codebook=1, mu=True)
        reconstructed = he_feedback_roundtrip(v_matrix, config)
        assert reconstructed.shape == v_matrix.shape
        # The Givens representation fixes the per-column phase, so compare
        # column magnitudes rather than raw entries.
        np.testing.assert_allclose(
            np.abs(reconstructed), np.abs(v_matrix), atol=0.05
        )

    def test_grouping_increases_reconstruction_error(self, v_matrix):
        fine = he_feedback_roundtrip(v_matrix, HeFeedbackConfig(grouping=1))
        coarse = he_feedback_roundtrip(v_matrix, HeFeedbackConfig(grouping=16))
        error_fine = np.mean(np.abs(np.abs(fine) - np.abs(v_matrix)))
        error_coarse = np.mean(np.abs(np.abs(coarse) - np.abs(v_matrix)))
        assert error_coarse >= error_fine

    @settings(max_examples=10, deadline=None)
    @given(grouping=st.sampled_from(ALLOWED_GROUPINGS))
    def test_roundtrip_preserves_shape_for_every_grouping(self, grouping):
        rng = np.random.default_rng(grouping)
        matrix = random_unitary_columns(rng, num_subcarriers=32, num_tx=3, num_streams=2)
        out = he_feedback_roundtrip(matrix, HeFeedbackConfig(grouping=grouping))
        assert out.shape == matrix.shape
        assert np.all(np.isfinite(out))


class TestOverhead:
    def test_overhead_matches_manual_count(self):
        config = HeFeedbackConfig(grouping=1, codebook=1, mu=True)
        # M=3, N_SS=2 -> n_phi = n_psi = (3-1) + (3-2) = 3 angles each.
        bits = feedback_overhead_bits(234, 3, 2, config)
        assert bits == 234 * (3 * 9 + 3 * 7)

    def test_grouping_reduces_overhead(self):
        grouped = HeFeedbackConfig(grouping=4, codebook=1, mu=True)
        assert feedback_overhead_bits(234, 3, 2, grouped) < feedback_overhead_bits(
            234, 3, 2, HeFeedbackConfig(grouping=1, codebook=1, mu=True)
        )
        reduction = overhead_reduction(234, 3, 2, grouped)
        assert 0.2 < reduction < 0.3

    def test_invalid_subcarrier_count_rejected(self):
        with pytest.raises(HeFeedbackError):
            feedback_overhead_bits(0, 3, 2, HeFeedbackConfig())
