"""Unit tests for the device abstractions (modules, AP, beamformees)."""

import numpy as np
import pytest

from repro.phy.devices import (
    AccessPoint,
    Beamformee,
    WiFiModule,
    half_wavelength_spacing,
    make_beamformee,
    make_module_population,
)
from repro.phy.geometry import AP_POSITION_A, Position
from repro.phy.impairments import DeviceFingerprint


class TestModulePopulation:
    def test_default_population_has_ten_modules(self):
        modules = make_module_population()
        assert len(modules) == 10
        assert [m.module_id for m in modules] == list(range(10))

    def test_population_is_reproducible(self):
        layout_indices = np.arange(-10, 10)
        first = make_module_population(num_modules=3, seed=7)
        second = make_module_population(num_modules=3, seed=7)
        for a, b in zip(first, second):
            np.testing.assert_allclose(
                a.fingerprint.response_matrix(layout_indices, 312500.0),
                b.fingerprint.response_matrix(layout_indices, 312500.0),
            )

    def test_adding_modules_keeps_existing_fingerprints(self):
        indices = np.arange(-20, 20)
        small = make_module_population(num_modules=3, seed=11)
        large = make_module_population(num_modules=6, seed=11)
        for a, b in zip(small, large[:3]):
            np.testing.assert_allclose(
                a.fingerprint.response_matrix(indices, 312500.0),
                b.fingerprint.response_matrix(indices, 312500.0),
            )

    def test_modules_have_distinct_fingerprints(self):
        indices = np.arange(-20, 20)
        modules = make_module_population(num_modules=4, seed=0)
        responses = [
            m.fingerprint.response_matrix(indices, 312500.0) for m in modules
        ]
        for i in range(len(responses)):
            for j in range(i + 1, len(responses)):
                assert not np.allclose(responses[i], responses[j])

    def test_invalid_population_size_rejected(self):
        with pytest.raises(ValueError):
            make_module_population(num_modules=0)

    def test_module_names_follow_compex_convention(self):
        modules = make_module_population(num_modules=2)
        assert modules[0].name == "compex-00"
        assert modules[1].name == "compex-01"


class TestWiFiModule:
    def test_negative_id_rejected(self):
        fingerprint = DeviceFingerprint.random(np.random.default_rng(0), 4)
        with pytest.raises(ValueError):
            WiFiModule(module_id=-1, fingerprint=fingerprint)

    def test_num_tx_chains_matches_fingerprint(self):
        fingerprint = DeviceFingerprint.random(np.random.default_rng(0), 4)
        module = WiFiModule(module_id=0, fingerprint=fingerprint)
        assert module.num_tx_chains == 4


class TestAccessPoint:
    def test_default_uses_three_antennas(self, small_modules):
        ap = AccessPoint(module=small_modules[0], position=AP_POSITION_A)
        assert ap.num_antennas == 3
        assert ap.antenna_elements().shape == (3, 2)

    def test_antenna_spacing_is_half_wavelength(self, small_modules):
        ap = AccessPoint(module=small_modules[0], position=AP_POSITION_A)
        elements = ap.antenna_elements()
        spacing = np.diff(elements[:, 0])
        np.testing.assert_allclose(spacing, half_wavelength_spacing())

    def test_cannot_use_more_antennas_than_chains(self, small_modules):
        with pytest.raises(ValueError):
            AccessPoint(
                module=small_modules[0], position=AP_POSITION_A, num_antennas=5
            )

    def test_moved_to_returns_new_instance(self, small_modules):
        ap = AccessPoint(module=small_modules[0], position=AP_POSITION_A)
        moved = ap.moved_to(Position(1.0, 1.0))
        assert moved.position == Position(1.0, 1.0)
        assert ap.position == AP_POSITION_A

    def test_with_module_swaps_only_the_module(self, small_modules):
        ap = AccessPoint(module=small_modules[0], position=AP_POSITION_A)
        swapped = ap.with_module(small_modules[1])
        assert swapped.module.module_id == 1
        assert swapped.position == ap.position


class TestBeamformee:
    def test_factory_produces_valid_station(self):
        station = make_beamformee(1, Position(0.0, 3.0))
        assert station.num_antennas == 2
        assert station.num_streams == 2
        assert station.impairment is not None
        assert station.antenna_elements().shape == (2, 2)

    def test_factory_is_reproducible_per_station_id(self):
        indices = np.arange(-5, 5)
        a = make_beamformee(1, Position(0.0, 3.0), seed=42)
        b = make_beamformee(1, Position(1.0, 3.0), seed=42)
        response_a = a.impairment.chains[0].response(indices, 312500.0)
        response_b = b.impairment.chains[0].response(indices, 312500.0)
        np.testing.assert_allclose(response_a, response_b)

    def test_different_stations_have_different_hardware(self):
        indices = np.arange(-5, 5)
        a = make_beamformee(1, Position(0.0, 3.0), seed=42)
        b = make_beamformee(2, Position(0.0, 3.0), seed=42)
        assert not np.allclose(
            a.impairment.chains[0].response(indices, 312500.0),
            b.impairment.chains[0].response(indices, 312500.0),
        )

    def test_streams_cannot_exceed_antennas(self):
        with pytest.raises(ValueError):
            Beamformee(station_id=1, position=Position(0, 3), num_antennas=1, num_streams=2)

    def test_moved_to_preserves_hardware(self):
        station = make_beamformee(1, Position(0.0, 3.0))
        moved = station.moved_to(Position(0.5, 3.0))
        assert moved.impairment is station.impairment
        assert moved.position == Position(0.5, 3.0)
