"""Tests for the D1/D2 dataset generators and the S1..S6 splits."""

import numpy as np
import pytest

from repro.datasets.generator import (
    D2_GROUPS,
    DatasetConfig,
    generate_mobility_trace,
    generate_position_trace,
)
from repro.datasets.splits import (
    D1_SPLITS,
    D2_SPLITS,
    SplitError,
    d1_cross_beamformee_split,
    d1_split,
    d2_split,
    d2_subpath_split,
)


class TestDatasetConfig:
    def test_defaults_match_paper_setup(self):
        config = DatasetConfig()
        assert config.num_modules == 10
        assert config.bandwidth_mhz == 80
        assert config.quantization.b_phi == 9
        assert config.quantization.b_psi == 7

    def test_layout_and_modules_derived_from_config(self):
        config = DatasetConfig(num_modules=4)
        assert config.layout().num_subcarriers == 234
        assert len(config.modules()) == 4

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            DatasetConfig(num_modules=1)
        with pytest.raises(ValueError):
            DatasetConfig(soundings_per_trace=0)


class TestPositionTrace:
    def test_trace_contains_both_beamformees(self, tiny_dataset_config):
        module = tiny_dataset_config.modules()[0]
        trace = generate_position_trace(module, 2, tiny_dataset_config)
        beamformees = {s.beamformee_id for s in trace}
        assert beamformees == {1, 2}
        assert len(trace) == 2 * tiny_dataset_config.soundings_per_trace

    def test_samples_carry_metadata(self, tiny_dataset_config):
        module = tiny_dataset_config.modules()[1]
        trace = generate_position_trace(module, 5, tiny_dataset_config, trace_id=7)
        assert trace.trace_id == 7
        sample = trace[0]
        assert sample.module_id == module.module_id
        assert sample.position_id == 5
        assert sample.group == "static"
        assert sample.v_tilde.shape == (234, 3, 2)

    def test_v_tilde_has_unit_norm_columns(self, tiny_dataset_config):
        module = tiny_dataset_config.modules()[0]
        trace = generate_position_trace(module, 1, tiny_dataset_config)
        v = trace[0].v_tilde.astype(complex)
        norms = np.linalg.norm(v, axis=1)
        np.testing.assert_allclose(norms, 1.0, atol=1e-5)

    def test_generation_is_deterministic(self, tiny_dataset_config):
        module = tiny_dataset_config.modules()[0]
        a = generate_position_trace(module, 1, tiny_dataset_config)
        b = generate_position_trace(module, 1, tiny_dataset_config)
        np.testing.assert_allclose(a[0].v_tilde, b[0].v_tilde)

    def test_different_positions_give_different_feedback(self, tiny_dataset_config):
        module = tiny_dataset_config.modules()[0]
        a = generate_position_trace(module, 1, tiny_dataset_config)
        b = generate_position_trace(module, 9, tiny_dataset_config)
        assert not np.allclose(a[0].v_tilde, b[0].v_tilde)

    def test_different_modules_give_different_feedback(self, tiny_dataset_config):
        modules = tiny_dataset_config.modules()
        a = generate_position_trace(modules[0], 1, tiny_dataset_config)
        b = generate_position_trace(modules[1], 1, tiny_dataset_config)
        assert not np.allclose(a[0].v_tilde, b[0].v_tilde)


class TestMobilityTraceGeneration:
    def test_mobility_groups_have_progress(self, tiny_dataset_config):
        module = tiny_dataset_config.modules()[0]
        trace = generate_mobility_trace(module, "mob1", tiny_dataset_config)
        bf1_progress = [s.path_progress for s in trace if s.beamformee_id == 1]
        assert bf1_progress[0] == pytest.approx(0.0)
        assert bf1_progress[-1] == pytest.approx(1.0)

    def test_static_groups_have_zero_progress(self, tiny_dataset_config):
        module = tiny_dataset_config.modules()[0]
        trace = generate_mobility_trace(module, "fix1", tiny_dataset_config)
        assert all(s.path_progress == 0.0 for s in trace)

    def test_d2_beamformee_stream_counts(self, tiny_dataset_config):
        module = tiny_dataset_config.modules()[0]
        trace = generate_mobility_trace(module, "mob2", tiny_dataset_config)
        bf1 = next(s for s in trace if s.beamformee_id == 1)
        bf2 = next(s for s in trace if s.beamformee_id == 2)
        assert bf1.v_tilde.shape == (234, 3, 1)
        assert bf2.v_tilde.shape == (234, 3, 2)

    def test_unknown_group_rejected(self, tiny_dataset_config):
        module = tiny_dataset_config.modules()[0]
        with pytest.raises(ValueError):
            generate_mobility_trace(module, "mob3", tiny_dataset_config)


class TestD1Dataset:
    def test_structure(self, tiny_d1, tiny_dataset_config):
        expected_traces = tiny_dataset_config.num_modules * 9
        assert len(tiny_d1) == expected_traces
        assert tiny_d1.position_ids == list(range(1, 10))
        assert tiny_d1.module_ids == list(range(tiny_dataset_config.num_modules))

    def test_every_module_position_pair_present(self, tiny_d1):
        pairs = {(t.module_id, t.position_id) for t in tiny_d1}
        assert len(pairs) == len(tiny_d1)


class TestD2Dataset:
    def test_structure(self, tiny_d2, tiny_dataset_config):
        per_module = sum(D2_GROUPS.values())
        assert len(tiny_d2) == tiny_dataset_config.num_modules * per_module
        assert set(tiny_d2.groups) == set(D2_GROUPS)

    def test_group_counts_match_paper(self, tiny_d2, tiny_dataset_config):
        for group, count in D2_GROUPS.items():
            traces = tiny_d2.filter(groups=[group])
            assert len(traces) == tiny_dataset_config.num_modules * count


class TestD1Splits:
    def test_split_definitions(self):
        assert D1_SPLITS["S1"].train_positions == tuple(range(1, 10))
        assert D1_SPLITS["S2"].test_positions == (2, 4, 6, 8)
        assert set(D1_SPLITS["S3"].train_positions).isdisjoint(
            D1_SPLITS["S3"].test_positions
        )

    def test_s1_is_a_time_split(self, tiny_d1):
        train, test = d1_split(tiny_d1, D1_SPLITS["S1"], beamformee_id=1)
        # 80/20 split of every trace.
        assert len(train) == 3 * len(test)
        train_positions = {s.position_id for s in train}
        test_positions = {s.position_id for s in test}
        assert train_positions == test_positions == set(range(1, 10))

    def test_s3_keeps_positions_disjoint(self, tiny_d1):
        train, test = d1_split(tiny_d1, D1_SPLITS["S3"], beamformee_id=1)
        assert {s.position_id for s in train} == {1, 2, 3, 4, 5}
        assert {s.position_id for s in test} == {6, 7, 8, 9}

    def test_beamformee_filter(self, tiny_d1):
        train, test = d1_split(tiny_d1, D1_SPLITS["S2"], beamformee_id=2)
        assert all(s.beamformee_id == 2 for s in train + test)

    def test_num_train_positions_restricts_training_set(self, tiny_d1):
        train_full, _ = d1_split(tiny_d1, D1_SPLITS["S3"], beamformee_id=1)
        train_small, test_small = d1_split(
            tiny_d1, D1_SPLITS["S3"], beamformee_id=1, num_train_positions=2
        )
        assert {s.position_id for s in train_small} == {1, 2}
        assert len(train_small) < len(train_full)
        assert {s.position_id for s in test_small} == {6, 7, 8, 9}

    def test_invalid_num_train_positions_rejected(self, tiny_d1):
        with pytest.raises(SplitError):
            d1_split(tiny_d1, D1_SPLITS["S3"], num_train_positions=9)

    def test_every_module_in_both_sets(self, tiny_d1):
        train, test = d1_split(tiny_d1, D1_SPLITS["S2"], beamformee_id=1)
        assert {s.module_id for s in train} == {s.module_id for s in test}

    def test_cross_beamformee_split(self, tiny_d1):
        train, test = d1_cross_beamformee_split(tiny_d1, D1_SPLITS["S1"], 1, 2)
        assert all(s.beamformee_id == 1 for s in train)
        assert all(s.beamformee_id == 2 for s in test)
        with pytest.raises(SplitError):
            d1_cross_beamformee_split(tiny_d1, D1_SPLITS["S1"], 1, 1)

    def test_empty_split_rejected(self, tiny_d2):
        # Applying a D1 split to D2 (whose traces have position 3 only but
        # group labels) must fail loudly rather than return empty sets.
        with pytest.raises(SplitError):
            d1_split(tiny_d2.filter(groups=["fix1"]), D1_SPLITS["S3"])


class TestD2Splits:
    def test_split_definitions(self):
        assert D2_SPLITS["S5"].train_groups == ("fix1", "fix2")
        assert D2_SPLITS["S6"].test_groups == ("fix1", "fix2")

    def test_s5_separates_static_and_mobile(self, tiny_d2):
        train, test = d2_split(tiny_d2, D2_SPLITS["S5"], beamformee_id=1)
        assert {s.group for s in train} == {"fix1", "fix2"}
        assert {s.group for s in test} == {"mob1", "mob2"}

    def test_s4_uses_different_mobility_groups(self, tiny_d2):
        train, test = d2_split(tiny_d2, D2_SPLITS["S4"], beamformee_id=1)
        assert {s.group for s in train} == {"mob1"}
        assert {s.group for s in test} == {"mob2"}

    def test_subpath_split_respects_progress(self, tiny_d2):
        train, test = d2_subpath_split(tiny_d2, beamformee_id=1, progress_threshold=0.5)
        assert all(s.path_progress <= 0.5 for s in train)
        assert all(s.path_progress > 0.5 for s in test)
        assert {s.group for s in train} == {"mob1"}
        assert {s.group for s in test} == {"mob2"}
