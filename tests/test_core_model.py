"""Tests for the DeepCSI CNN architecture builder."""

import numpy as np
import pytest

from repro.core.model import (
    DeepCsiModelConfig,
    FAST_MODEL_CONFIG,
    ModelConfigError,
    PAPER_MODEL_CONFIG,
    build_deepcsi_model,
    count_parameters,
)
from repro.nn.attention import SpatialAttention
from repro.nn.layers import AlphaDropout, Conv2D, Dense, MaxPool2D


class TestModelConfig:
    def test_paper_configuration_values(self):
        assert PAPER_MODEL_CONFIG.num_conv_layers == 5
        assert PAPER_MODEL_CONFIG.num_filters == 128
        assert PAPER_MODEL_CONFIG.kernel_widths == (7, 7, 7, 5, 3)
        assert PAPER_MODEL_CONFIG.dense_units == (128, 64)
        assert PAPER_MODEL_CONFIG.dropout_retain == (0.5, 0.2)

    def test_with_conv_layers_extends_or_truncates_schedule(self):
        reduced = PAPER_MODEL_CONFIG.with_conv_layers(3)
        assert reduced.num_conv_layers == 3
        assert reduced.kernel_widths == (7, 5, 3)
        extended = PAPER_MODEL_CONFIG.with_conv_layers(7)
        assert extended.num_conv_layers == 7
        assert extended.kernel_widths == (7, 7, 7, 7, 7, 5, 3)

    def test_with_filters(self):
        assert PAPER_MODEL_CONFIG.with_filters(32).num_filters == 32

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_filters=0),
            dict(kernel_widths=()),
            dict(kernel_widths=(0,)),
            dict(pool_width=0),
            dict(dense_units=()),
            dict(dense_units=(64,), dropout_retain=(0.5, 0.2)),
            dict(dropout_retain=(0.0, 0.2)),
        ],
    )
    def test_invalid_configurations_rejected(self, kwargs):
        base = dict(
            num_filters=16,
            kernel_widths=(3, 3),
            pool_width=2,
            dense_units=(16, 8),
            dropout_retain=(0.5, 0.5),
        )
        base.update(kwargs)
        with pytest.raises(ModelConfigError):
            DeepCsiModelConfig(**base)


class TestBuildModel:
    def test_paper_parameter_count_matches_paper(self):
        # Input: 234 sub-carriers, 1 spatial stream, 2M-1 = 5 channels, 10
        # classes.  The paper quotes 489,301 trainable parameters; the
        # reconstruction yields 489,305 (the difference is the accounting of
        # the attention-convolution bias).
        total = count_parameters((5, 1, 234), 10, PAPER_MODEL_CONFIG)
        assert total == 489_305
        assert abs(total - 489_301) <= 10

    def test_forward_shape(self, rng):
        model = build_deepcsi_model((5, 1, 58), 10, FAST_MODEL_CONFIG, rng=np.random.default_rng(0))
        logits = model.forward(rng.standard_normal((4, 5, 1, 58)))
        assert logits.shape == (4, 10)

    def test_architecture_block_structure(self):
        model = build_deepcsi_model((5, 1, 58), 10, FAST_MODEL_CONFIG, rng=np.random.default_rng(0))
        layer_types = [type(layer) for layer in model.layers]
        assert layer_types.count(Conv2D) == FAST_MODEL_CONFIG.num_conv_layers
        assert layer_types.count(MaxPool2D) == FAST_MODEL_CONFIG.num_conv_layers
        assert layer_types.count(SpatialAttention) == 1
        assert layer_types.count(AlphaDropout) == len(FAST_MODEL_CONFIG.dense_units)
        # Hidden dense layers plus the output classifier.
        assert layer_types.count(Dense) == len(FAST_MODEL_CONFIG.dense_units) + 1

    def test_backward_pass_runs(self, rng):
        model = build_deepcsi_model((3, 1, 32), 4, FAST_MODEL_CONFIG, rng=np.random.default_rng(0))
        x = rng.standard_normal((2, 3, 1, 32))
        logits = model.forward(x, training=True)
        grad = model.backward(np.ones_like(logits))
        assert grad.shape == x.shape

    def test_more_filters_means_more_parameters(self):
        small = count_parameters((5, 1, 58), 10, FAST_MODEL_CONFIG.with_filters(8))
        large = count_parameters((5, 1, 58), 10, FAST_MODEL_CONFIG.with_filters(32))
        assert large > small

    def test_too_many_pooling_stages_rejected(self):
        config = DeepCsiModelConfig(
            num_filters=4,
            kernel_widths=(3,) * 8,
            pool_width=2,
            dense_units=(8,),
            dropout_retain=(0.5,),
        )
        with pytest.raises(ModelConfigError):
            build_deepcsi_model((5, 1, 58), 10, config)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ModelConfigError):
            build_deepcsi_model((5, 1), 10, FAST_MODEL_CONFIG)
        with pytest.raises(ModelConfigError):
            build_deepcsi_model((5, 1, 58), 1, FAST_MODEL_CONFIG)
        with pytest.raises(ModelConfigError):
            build_deepcsi_model((0, 1, 58), 10, FAST_MODEL_CONFIG)

    def test_seeded_builds_are_identical(self, rng):
        x = rng.standard_normal((2, 5, 1, 58))
        a = build_deepcsi_model((5, 1, 58), 10, FAST_MODEL_CONFIG, rng=np.random.default_rng(3))
        b = build_deepcsi_model((5, 1, 58), 10, FAST_MODEL_CONFIG, rng=np.random.default_rng(3))
        np.testing.assert_allclose(a.forward(x), b.forward(x))
