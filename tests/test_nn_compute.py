"""Tests for the pluggable inference compute backends (exact/fp32/int8)."""

import copy

import numpy as np
import pytest

from repro.core.classifier import ClassifierConfig, ClassifierError, DeepCsiClassifier
from repro.core.engine import InferenceEngine
from repro.core.model import DeepCsiModelConfig, build_deepcsi_model
from repro.core.service import StreamingService
from repro.datasets.features import FeatureConfig, strided_subcarriers
from repro.datasets.splits import D1_SPLITS, d1_split
from repro.nn.attention import SpatialAttention
from repro.nn.compute import (
    COMPUTE_NAMES,
    ArenaPool,
    ComputeError,
    ExactBackend,
    Fp32ArenaBackend,
    Int8Backend,
    SELU_ALPHA,
    SELU_SCALE,
    compute_backend_names,
    create_compute_backend,
    fused_selu,
)
from repro.nn.layers import Conv2D, Dense, MaxPool2D, Selu, Softmax
from repro.nn.serialization import load_compute_state, save_compute_state
from repro.nn.training import TrainingConfig

TINY_MODEL = DeepCsiModelConfig(
    num_filters=8,
    kernel_widths=(5, 3),
    pool_width=2,
    dense_units=(16,),
    dropout_retain=(0.8,),
    attention_kernel_width=3,
)


@pytest.fixture()
def model_and_input():
    rng = np.random.default_rng(7)
    model = build_deepcsi_model((4, 1, 48), 5, config=TINY_MODEL, rng=rng)
    x = rng.standard_normal((12, 4, 1, 48))
    return model, x


@pytest.fixture(scope="module")
def trained_classifier(tiny_d1):
    train, _ = d1_split(tiny_d1, D1_SPLITS["S1"], beamformee_id=1)
    classifier = DeepCsiClassifier(
        ClassifierConfig(
            num_classes=3,
            feature=FeatureConfig(
                stream_indices=(0,), subcarrier_positions=strided_subcarriers(234, 8)
            ),
            model=TINY_MODEL,
            training=TrainingConfig(
                epochs=4, batch_size=16, validation_split=0.2,
                early_stopping_patience=None, seed=0,
            ),
            learning_rate=3e-3,
        )
    )
    classifier.fit(train)
    return classifier


@pytest.fixture(scope="module")
def split_samples(tiny_d1):
    return d1_split(tiny_d1, D1_SPLITS["S1"], beamformee_id=1)


class TestRegistry:
    def test_all_three_backends_registered(self):
        assert COMPUTE_NAMES == ("exact", "fp32", "int8")
        assert compute_backend_names() == COMPUTE_NAMES

    def test_unknown_backend_rejected(self):
        with pytest.raises(ComputeError):
            create_compute_backend("fp16")

    def test_instances_pass_through(self):
        backend = Fp32ArenaBackend()
        assert create_compute_backend(backend) is backend

    def test_names_by_factory(self):
        assert isinstance(create_compute_backend("exact"), ExactBackend)
        assert isinstance(create_compute_backend("fp32"), Fp32ArenaBackend)
        assert isinstance(create_compute_backend("int8"), Int8Backend)


class TestArenaPool:
    def test_grow_only_reuse(self):
        pool = ArenaPool()
        first = pool.get(("k",), (8, 4))
        assert pool.allocations == 1
        again = pool.get(("k",), (8, 4))
        assert again.base is first.base or again is first
        assert pool.allocations == 1
        smaller = pool.get(("k",), (3, 4))
        assert smaller.shape == (3, 4)
        assert pool.allocations == 1
        bigger = pool.get(("k",), (16, 4))
        assert bigger.shape == (16, 4)
        assert pool.allocations == 2

    def test_distinct_keys_and_dtypes_get_distinct_buffers(self):
        pool = ArenaPool()
        pool.get(("a",), (4, 4))
        pool.get(("b",), (4, 4))
        pool.get(("a",), (4, 4), dtype=np.float64)
        assert pool.allocations == 3

    def test_zero_initialised_buffers(self):
        pool = ArenaPool()
        buffer = pool.get(("pad",), (2, 3), zero=True)
        assert np.all(buffer == 0.0)


class TestFusedSelu:
    def test_matches_reference_formula(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((64,)).astype(np.float32) * 4.0
        out = np.empty_like(x)
        scratch = np.empty_like(x)
        fused_selu(x, out, scratch)
        reference = SELU_SCALE * np.where(
            x > 0, x, SELU_ALPHA * (np.exp(x.astype(np.float64)) - 1.0)
        )
        np.testing.assert_allclose(out, reference, rtol=1e-6, atol=1e-6)


class TestExactBackend:
    def test_bitwise_identical_to_fp64(self, model_and_input):
        model, x = model_and_input
        reference = model.forward(x, training=False)
        model.set_compute("exact")
        assert np.array_equal(model.forward(x, training=False), reference)

    def test_exact_is_flagged(self):
        assert ExactBackend().is_exact
        assert not Fp32ArenaBackend().is_exact


class TestFp32Backend:
    def test_logits_close_and_argmax_equal(self, model_and_input):
        model, x = model_and_input
        reference = model.forward(x, training=False)
        model.set_compute("fp32")
        logits = model.forward(x, training=False)
        assert logits.dtype == np.float32
        np.testing.assert_allclose(logits, reference, rtol=1e-4, atol=1e-4)
        assert np.array_equal(logits.argmax(axis=1), reference.argmax(axis=1))

    def test_steady_state_does_not_allocate(self, model_and_input):
        model, x = model_and_input
        backend = model.set_compute("fp32")
        model.forward(x, training=False)
        warm = backend.arena_allocations
        model.forward(x, training=False)
        model.forward(x, training=False)
        assert backend.arena_allocations == warm

    def test_smaller_batch_reuses_larger_arena(self, model_and_input):
        model, x = model_and_input
        backend = model.set_compute("fp32")
        reference_small = model.forward(x[:5], training=False)
        model.forward(x, training=False)  # grow to the full batch
        warm = backend.arena_allocations
        small = model.forward(x[:5], training=False)
        assert backend.arena_allocations == warm
        np.testing.assert_allclose(small, reference_small, rtol=1e-6, atol=1e-6)

    def test_larger_batch_regrows_arena(self, model_and_input):
        model, x = model_and_input
        backend = model.set_compute("fp32")
        model.forward(x, training=False)
        warm = backend.arena_allocations
        doubled = np.concatenate([x, x], axis=0)
        out = model.forward(doubled, training=False)
        assert backend.arena_allocations > warm
        reference = model_without_compute_forward(model, doubled)
        np.testing.assert_allclose(out, reference, rtol=1e-4, atol=1e-4)

    def test_outputs_do_not_alias_the_arena(self, model_and_input):
        model, x = model_and_input
        model.set_compute("fp32")
        first = model.forward(x, training=False)
        snapshot = np.array(first, copy=True)
        model.forward(x[::-1], training=False)
        # A second forward must not clobber the first result in place.
        np.testing.assert_array_equal(first, snapshot)

    def test_training_forward_bypasses_the_backend(self, model_and_input):
        model, x = model_and_input
        model.set_compute("fp32")
        out = model.forward(x, training=True)
        assert out.dtype == np.float64


def model_without_compute_forward(model, x):
    """fp64 reference forward regardless of the attached backend."""
    backend = model.compute
    model.set_compute(None)
    try:
        return model.forward(x, training=False)
    finally:
        model.set_compute(backend)


class TestInt8Backend:
    def test_uncalibrated_backend_refuses_to_run(self, model_and_input):
        model, x = model_and_input
        model.set_compute("int8")
        with pytest.raises(ComputeError):
            model.forward(x, training=False)

    def test_per_channel_quantisation_scheme(self, model_and_input):
        model, _ = model_and_input
        backend = model.set_compute("int8")
        assert backend.quantized_states, "no Conv2D/Dense layer was quantised"
        for index, state in backend.quantized_states.items():
            layer = model.layers[index]
            assert state.weight_q.dtype == np.int8
            assert state.weight_q.shape == layer.weight.shape
            assert np.max(np.abs(state.weight_q)) <= 127
            out_channels = (
                layer.weight.shape[0]
                if isinstance(layer, Conv2D)
                else layer.weight.shape[1]
            )
            assert state.weight_scale.shape == (out_channels,)
            assert np.all(state.weight_scale > 0)

    def test_logits_within_tolerance_and_argmax_equal(
        self, trained_classifier, split_samples
    ):
        train, test = split_samples
        classifier = copy.deepcopy(trained_classifier)
        reference = classifier.predict_logits(test)
        classifier.set_compute("int8", calibration=train)
        quantized = classifier.predict_logits(test)
        scale = np.max(np.abs(reference))
        assert np.max(np.abs(quantized - reference)) <= 0.05 * scale
        assert np.array_equal(
            quantized.argmax(axis=1), reference.argmax(axis=1)
        )

    def test_attention_stays_fp32(self, model_and_input):
        model, _ = model_and_input
        backend = model.set_compute("int8")
        attention_indices = [
            index
            for index, layer in enumerate(model.layers)
            if isinstance(layer, SpatialAttention)
        ]
        assert attention_indices
        for index in attention_indices:
            assert index not in backend.quantized_states

    def test_reprepare_preserves_calibration(self, model_and_input):
        model, x = model_and_input
        backend = model.set_compute("int8")
        backend.calibrate(np.asarray(x, dtype=np.float32))
        before = model.forward(x, training=False)
        # set_weights re-prepares the backend; the activation scales must
        # survive by layer position.
        model.set_weights(model.get_weights())
        assert backend.calibrated
        after = model.forward(x, training=False)
        np.testing.assert_array_equal(before, after)

    def test_quantized_state_roundtrips_through_serialization(
        self, model_and_input, tmp_path
    ):
        model, x = model_and_input
        backend = model.set_compute("int8")
        backend.calibrate(np.asarray(x, dtype=np.float32))
        reference = model.forward(x, training=False)
        path = save_compute_state(model, tmp_path / "compute.npz")

        clone = build_deepcsi_model(
            (4, 1, 48), 5, config=TINY_MODEL, rng=np.random.default_rng(7)
        )
        clone.set_weights(model.get_weights())
        restored = load_compute_state(clone, path)
        assert restored.name == "int8"
        assert restored.calibrated
        np.testing.assert_array_equal(clone.forward(x, training=False), reference)
        for index, state in backend.quantized_states.items():
            restored_state = restored.quantized_states[index]
            np.testing.assert_array_equal(restored_state.weight_q, state.weight_q)
            np.testing.assert_array_equal(
                restored_state.weight_scale, state.weight_scale
            )
            assert restored_state.act_scale == pytest.approx(state.act_scale)

    def test_uncalibrated_state_cannot_be_serialised(self, model_and_input, tmp_path):
        model, _ = model_and_input
        model.set_compute("int8")
        with pytest.raises(ComputeError):
            save_compute_state(model, tmp_path / "compute.npz")

    def test_backend_survives_pickle_and_deepcopy(self, model_and_input):
        import pickle

        model, x = model_and_input
        backend = model.set_compute("int8")
        backend.calibrate(np.asarray(x, dtype=np.float32))
        reference = model.forward(x, training=False)
        for clone in (copy.deepcopy(model), pickle.loads(pickle.dumps(model))):
            assert clone.compute.calibrated
            np.testing.assert_array_equal(
                clone.forward(x, training=False), reference
            )


class TestInferenceCachesDropped:
    """Regression: forwards at training=False must retain no cached arrays."""

    CACHE_ATTRS = ("_input", "_padded_input", "_windows", "_out", "_output", "_cache")

    def _assert_no_caches(self, layer):
        for attr in self.CACHE_ATTRS:
            assert getattr(layer, attr, None) is None, (layer, attr)
        if isinstance(layer, SpatialAttention):
            self._assert_no_caches(layer.conv)

    def test_individual_layers(self):
        rng = np.random.default_rng(0)
        cases = [
            (Dense(6, 3, rng=rng), rng.standard_normal((4, 6))),
            (
                Conv2D(2, 3, (1, 3), rng=rng),
                rng.standard_normal((4, 2, 1, 8)),
            ),
            (MaxPool2D((1, 2)), rng.standard_normal((4, 2, 1, 8))),
            (Selu(), rng.standard_normal((4, 6))),
            (Softmax(), rng.standard_normal((4, 6))),
            (SpatialAttention((1, 3), rng=rng), rng.standard_normal((4, 2, 1, 8))),
        ]
        for layer, x in cases:
            layer.forward(x, training=False)
            self._assert_no_caches(layer)

    def test_training_forward_still_retains_caches(self):
        rng = np.random.default_rng(0)
        layer = Dense(6, 3, rng=rng)
        layer.forward(rng.standard_normal((4, 6)), training=True)
        assert layer._input is not None

    def test_whole_model_after_predict(self, model_and_input):
        model, x = model_and_input
        model.predict(x)
        for layer in model.layers:
            self._assert_no_caches(layer)


class TestProfiling:
    def test_disabled_by_default(self, model_and_input):
        model, x = model_and_input
        model.forward(x, training=False)
        assert all(entry.calls == 0 for entry in model.profile())

    def test_accumulates_per_layer_counters(self, model_and_input):
        model, x = model_and_input
        model.enable_profiling()
        model.forward(x, training=False)
        model.forward(x, training=False)
        profile = model.profile()
        assert len(profile) == len(model.layers)
        assert all(entry.calls == 2 for entry in profile)
        assert all(entry.total_ns > 0 for entry in profile)
        assert profile[0].mean_ms > 0.0
        model.disable_profiling()
        model.forward(x, training=False)
        assert all(entry.calls == 2 for entry in model.profile())

    def test_reset_zeroes_counters(self, model_and_input):
        model, x = model_and_input
        model.enable_profiling()
        model.forward(x, training=False)
        model.reset_profile()
        assert all(entry.calls == 0 for entry in model.profile())

    def test_profiles_compute_backend_forwards(self, model_and_input):
        model, x = model_and_input
        model.set_compute("fp32")
        model.enable_profiling()
        out = model.forward(x, training=False)
        assert out.dtype == np.float32
        assert all(entry.calls == 1 for entry in model.profile())


class TestClassifierCompute:
    def test_default_is_fp64(self, trained_classifier):
        assert trained_classifier.compute is None
        assert trained_classifier.compute_name == "fp64"

    def test_int8_requires_calibration_data(self, trained_classifier):
        classifier = copy.deepcopy(trained_classifier)
        with pytest.raises(ClassifierError):
            classifier.set_compute("int8")
        # The failed attach must not leave a half-configured backend.
        assert classifier.compute is None

    def test_same_name_is_a_noop(self, trained_classifier, split_samples):
        train, _ = split_samples
        classifier = copy.deepcopy(trained_classifier)
        backend = classifier.set_compute("int8", calibration=train)
        assert classifier.set_compute("int8") is backend

    def test_save_load_roundtrip_restores_backend(
        self, trained_classifier, split_samples, tmp_path
    ):
        train, test = split_samples
        classifier = copy.deepcopy(trained_classifier)
        classifier.set_compute("int8", calibration=train)
        reference = classifier.predict_logits(test)
        classifier.save(tmp_path / "model")

        restored = DeepCsiClassifier(classifier.config).load(tmp_path / "model")
        assert restored.compute_name == "int8"
        np.testing.assert_array_equal(restored.predict_logits(test), reference)

    def test_calibration_accepts_v_tilde_batches(
        self, trained_classifier, split_samples
    ):
        train, test = split_samples
        classifier = copy.deepcopy(trained_classifier)
        v_batch = np.stack([sample.v_tilde for sample in train], axis=0)
        backend = classifier.set_compute("int8", calibration=v_batch)
        assert backend.calibrated


def _drain_engine(classifier, samples, **kwargs):
    engine = InferenceEngine(classifier, batch_size=8, **kwargs)
    results = []
    for sample in samples:
        results.extend(
            engine.submit(sample, source=f"module-{sample.module_id:02d}")
        )
    results.extend(engine.flush())
    return engine, [(r.predicted_module_id, r.confidence) for r in results]


def _drain_service(classifier, samples, backend, compute=None):
    with StreamingService(
        classifier,
        num_workers=2,
        batch_size=8,
        backend=backend,
        compute=compute,
    ) as service:
        for sample in samples:
            service.submit(sample, source=f"module-{sample.module_id:02d}")
        service.flush()
        results = service.collect()
        stats = service.stats
    results.sort(key=lambda result: result.sequence)
    return stats, [(r.predicted_module_id, r.confidence) for r in results]


class TestEngineAndServiceCompute:
    def test_engine_stats_carry_compute_name(self, trained_classifier, split_samples):
        _, test = split_samples
        classifier = copy.deepcopy(trained_classifier)
        engine, _ = _drain_engine(classifier, test[:16], compute="fp32")
        assert engine.stats.compute == "fp32"

    def test_engine_profile_surfaces_in_stats(self, trained_classifier, split_samples):
        _, test = split_samples
        classifier = copy.deepcopy(trained_classifier)
        engine, _ = _drain_engine(classifier, test[:16], profile=True)
        profile = engine.stats.layer_profile
        assert profile and all(entry.calls > 0 for entry in profile)

    def test_unprofiled_engine_stats_have_empty_profile(
        self, trained_classifier, split_samples
    ):
        _, test = split_samples
        classifier = copy.deepcopy(trained_classifier)
        engine, _ = _drain_engine(classifier, test[:16])
        assert engine.stats.layer_profile == ()

    def test_exact_compute_is_bitwise_across_all_backends(
        self, trained_classifier, split_samples
    ):
        """Acceptance: --compute exact stays bitwise identical to the fp64
        verdicts through the single engine and both service backends."""
        _, test = split_samples
        samples = test[:24]
        _, reference = _drain_engine(copy.deepcopy(trained_classifier), samples)
        _, exact_engine = _drain_engine(
            copy.deepcopy(trained_classifier), samples, compute="exact"
        )
        assert exact_engine == reference
        for backend in ("threads", "processes"):
            stats, results = _drain_service(
                copy.deepcopy(trained_classifier), samples, backend, compute="exact"
            )
            assert stats.compute == "exact"
            assert results == reference

    def test_int8_quantised_weights_travel_to_process_shards(
        self, trained_classifier, split_samples
    ):
        train, test = split_samples
        samples = test[:24]
        classifier = copy.deepcopy(trained_classifier)
        classifier.set_compute("int8", calibration=train)
        _, reference = _drain_engine(copy.deepcopy(classifier), samples)
        stats, results = _drain_service(classifier, samples, "processes")
        assert stats.compute == "int8"
        assert results == reference

    def test_fp32_service_on_threads(self, trained_classifier, split_samples):
        _, test = split_samples
        samples = test[:24]
        _, reference = _drain_engine(
            copy.deepcopy(trained_classifier), samples, compute="fp32"
        )
        stats, results = _drain_service(
            copy.deepcopy(trained_classifier), samples, "threads", compute="fp32"
        )
        assert stats.compute == "fp32"
        assert results == reference
