"""Integration tests for the simulated monitor-mode capture path."""

import numpy as np
import pytest

from repro.feedback.capture import (
    MonitorCapture,
    SoundingSimulator,
    access_point_mac,
    station_mac,
)
from repro.feedback.quantization import QuantizationConfig
from repro.phy.devices import AccessPoint, make_beamformee
from repro.phy.geometry import AP_POSITION_A, beamformee_positions
from repro.phy.channel import MultipathChannel


@pytest.fixture()
def simulator(small_modules, layout20):
    access_point = AccessPoint(module=small_modules[0], position=AP_POSITION_A)
    bf1_pos, bf2_pos = beamformee_positions(2)
    beamformees = [
        make_beamformee(1, bf1_pos, num_antennas=2, num_streams=2),
        make_beamformee(2, bf2_pos, num_antennas=2, num_streams=1),
    ]
    channel = MultipathChannel(num_scatterers=3, environment_seed=1)
    return SoundingSimulator(
        access_point=access_point,
        beamformees=beamformees,
        channel=channel,
        layout=layout20,
    )


class TestSoundingSimulator:
    def test_one_round_produces_one_frame_per_beamformee(self, simulator):
        frames = simulator.sound_once(np.random.default_rng(0))
        assert len(frames) == 2
        sources = {frame.source_address for frame in frames}
        assert sources == {station_mac(1), station_mac(2)}

    def test_frames_address_the_access_point(self, simulator, small_modules):
        frames = simulator.sound_once(np.random.default_rng(0))
        expected = access_point_mac(small_modules[0].module_id)
        assert all(frame.destination_address == expected for frame in frames)

    def test_timestamps_advance_with_sounding_interval(self, simulator):
        rng = np.random.default_rng(0)
        first = simulator.sound_once(rng)
        second = simulator.sound_once(rng)
        assert second[0].timestamp_s - first[0].timestamp_s == pytest.approx(
            simulator.sounding_interval_s
        )

    def test_sound_many_accumulates_frames(self, simulator):
        capture = MonitorCapture()
        frames = simulator.sound_many(3, np.random.default_rng(0), capture=capture)
        assert len(frames) == 6
        assert len(capture) == 6

    def test_invalid_sounding_count_rejected(self, simulator):
        with pytest.raises(ValueError):
            simulator.sound_many(0, np.random.default_rng(0))

    def test_requires_at_least_one_beamformee(self, simulator):
        with pytest.raises(ValueError):
            SoundingSimulator(
                access_point=simulator.access_point,
                beamformees=[],
                channel=simulator.channel,
                layout=simulator.layout,
            )

    def test_non_standard_codebook_rejected(self, simulator):
        with pytest.raises(ValueError):
            SoundingSimulator(
                access_point=simulator.access_point,
                beamformees=simulator.beamformees,
                channel=simulator.channel,
                layout=simulator.layout,
                quantization=QuantizationConfig(b_phi=5, b_psi=3, strict=False),
            )


class TestMonitorCapture:
    def test_filter_by_source_address(self, simulator):
        capture = MonitorCapture()
        simulator.sound_many(2, np.random.default_rng(0), capture=capture)
        bf1_frames = capture.filter(source_address=station_mac(1))
        assert len(bf1_frames) == 2
        assert all(f.source_address == station_mac(1) for f in bf1_frames)

    def test_filter_by_destination_address(self, simulator, small_modules):
        capture = MonitorCapture()
        simulator.sound_many(2, np.random.default_rng(0), capture=capture)
        ap_mac = access_point_mac(small_modules[0].module_id)
        assert len(capture.filter(destination_address=ap_mac)) == 4
        assert capture.filter(destination_address="02:00:00:00:aa:ff") == []

    def test_reconstruct_returns_v_tilde_matrices(self, simulator, layout20):
        capture = MonitorCapture()
        simulator.sound_once(np.random.default_rng(0), capture=capture)
        feedbacks = capture.reconstruct(source_address=station_mac(1))
        assert len(feedbacks) == 1
        v_tilde = feedbacks[0].v_tilde
        assert v_tilde.shape == (layout20.num_subcarriers, 3, 2)
        # The reconstructed matrix must have (near-)orthonormal columns.
        gram = np.einsum("kms,kmt->kst", np.conj(v_tilde), v_tilde)
        identity = np.broadcast_to(np.eye(2), gram.shape)
        assert np.max(np.abs(gram - identity)) < 1e-9

    def test_reconstruct_respects_stream_count(self, simulator, layout20):
        capture = MonitorCapture()
        simulator.sound_once(np.random.default_rng(0), capture=capture)
        feedbacks = capture.reconstruct(source_address=station_mac(2))
        assert feedbacks[0].v_tilde.shape == (layout20.num_subcarriers, 3, 1)

    def test_clear_empties_the_buffer(self, simulator):
        capture = MonitorCapture()
        simulator.sound_once(np.random.default_rng(0), capture=capture)
        capture.clear()
        assert len(capture) == 0
