"""Unit and gradient-check tests for the neural-network layers."""

import numpy as np
import pytest

from repro.nn.gradcheck import check_layer_input_gradient, check_layer_parameter_gradients
from repro.nn.layers import (
    SELU_ALPHA,
    SELU_SCALE,
    AlphaDropout,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    LayerError,
    MaxPool2D,
    Relu,
    Selu,
    Sigmoid,
    Softmax,
)


@pytest.fixture()
def feature_map(rng):
    return rng.standard_normal((3, 4, 2, 10))


class TestDense:
    def test_forward_matches_matmul(self, rng):
        layer = Dense(5, 3, rng=np.random.default_rng(0))
        x = rng.standard_normal((4, 5))
        np.testing.assert_allclose(layer.forward(x), x @ layer.weight + layer.bias)

    def test_gradients_match_finite_differences(self, rng):
        layer = Dense(6, 4, rng=np.random.default_rng(0))
        x = rng.standard_normal((3, 6))
        check_layer_input_gradient(layer, x)
        check_layer_parameter_gradients(layer, x)

    def test_parameter_count(self):
        layer = Dense(10, 7, rng=np.random.default_rng(0))
        assert layer.num_parameters == 10 * 7 + 7

    def test_shape_validation(self, rng):
        layer = Dense(5, 3, rng=np.random.default_rng(0))
        with pytest.raises(LayerError):
            layer.forward(rng.standard_normal((4, 6)))

    def test_backward_before_forward_rejected(self):
        layer = Dense(5, 3, rng=np.random.default_rng(0))
        with pytest.raises(LayerError):
            layer.backward(np.zeros((2, 3)))

    def test_invalid_sizes_rejected(self):
        with pytest.raises(LayerError):
            Dense(0, 3)


class TestConv2D:
    def test_same_padding_preserves_spatial_size(self, feature_map):
        layer = Conv2D(4, 6, (1, 7), padding="same", rng=np.random.default_rng(0))
        out = layer.forward(feature_map)
        assert out.shape == (3, 6, 2, 10)

    def test_valid_padding_shrinks_spatial_size(self, feature_map):
        layer = Conv2D(4, 6, (2, 3), padding="valid", rng=np.random.default_rng(0))
        out = layer.forward(feature_map)
        assert out.shape == (3, 6, 1, 8)

    def test_manual_convolution_result(self):
        # 1x1 spatial input, kernel (1,1): conv reduces to a channel mixing.
        layer = Conv2D(2, 1, (1, 1), rng=np.random.default_rng(0))
        layer.weight[...] = np.array([[[[2.0]], [[3.0]]]])
        layer.bias[...] = np.array([0.5])
        x = np.array([[[[1.0]], [[10.0]]]])  # (1, 2, 1, 1)
        out = layer.forward(x)
        assert out[0, 0, 0, 0] == pytest.approx(2.0 * 1.0 + 3.0 * 10.0 + 0.5)

    def test_gradients_match_finite_differences(self, rng):
        x = rng.standard_normal((2, 3, 2, 6))
        layer = Conv2D(3, 4, (1, 3), rng=np.random.default_rng(1))
        check_layer_input_gradient(layer, x)
        check_layer_parameter_gradients(layer, x)

    def test_valid_gradients_match_finite_differences(self, rng):
        x = rng.standard_normal((2, 2, 3, 6))
        layer = Conv2D(2, 3, (2, 3), padding="valid", rng=np.random.default_rng(1))
        check_layer_input_gradient(layer, x)
        check_layer_parameter_gradients(layer, x)

    def test_channel_mismatch_rejected(self, feature_map):
        layer = Conv2D(3, 4, (1, 3), rng=np.random.default_rng(0))
        with pytest.raises(LayerError):
            layer.forward(feature_map)

    def test_kernel_larger_than_valid_input_rejected(self, rng):
        layer = Conv2D(1, 1, (3, 3), padding="valid", rng=np.random.default_rng(0))
        with pytest.raises(LayerError):
            layer.forward(rng.standard_normal((1, 1, 2, 2)))

    def test_invalid_configuration_rejected(self):
        with pytest.raises(LayerError):
            Conv2D(2, 2, (0, 3))
        with pytest.raises(LayerError):
            Conv2D(2, 2, (1, 3), padding="reflect")


class TestMaxPool2D:
    def test_output_shape_and_values(self):
        layer = MaxPool2D((1, 2))
        x = np.array([[[[1.0, 5.0, 2.0, 3.0]]]])  # (1, 1, 1, 4)
        out = layer.forward(x)
        np.testing.assert_allclose(out, [[[[5.0, 3.0]]]])

    def test_odd_width_is_cropped(self):
        layer = MaxPool2D((1, 2))
        x = np.arange(5.0).reshape(1, 1, 1, 5)
        out = layer.forward(x)
        assert out.shape == (1, 1, 1, 2)

    def test_backward_routes_gradient_to_maxima(self):
        layer = MaxPool2D((1, 2))
        x = np.array([[[[1.0, 5.0, 2.0, 3.0]]]])
        layer.forward(x, training=True)
        grad = layer.backward(np.array([[[[1.0, 2.0]]]]))
        np.testing.assert_allclose(grad, [[[[0.0, 1.0, 0.0, 2.0]]]])

    def test_gradients_match_finite_differences(self, rng):
        # Use distinct values so the argmax is stable under perturbation.
        x = rng.permutation(np.arange(48.0)).reshape(2, 2, 2, 6) * 0.1
        layer = MaxPool2D((2, 2))
        check_layer_input_gradient(layer, x)

    def test_pool_larger_than_input_rejected(self, rng):
        layer = MaxPool2D((4, 4))
        with pytest.raises(LayerError):
            layer.forward(rng.standard_normal((1, 1, 2, 2)))


class TestActivations:
    def test_selu_constants(self):
        assert SELU_ALPHA == pytest.approx(1.6732632423543772)
        assert SELU_SCALE == pytest.approx(1.0507009873554805)

    def test_selu_values(self):
        layer = Selu()
        x = np.array([[-1.0, 0.0, 2.0]])
        out = layer.forward(x)
        assert out[0, 1] == pytest.approx(0.0)
        assert out[0, 2] == pytest.approx(SELU_SCALE * 2.0)
        assert out[0, 0] == pytest.approx(SELU_SCALE * SELU_ALPHA * (np.exp(-1.0) - 1.0))

    def test_selu_preserves_standardised_statistics(self, rng):
        # The self-normalising property: for standard-normal inputs the
        # output mean stays near 0 and the variance near 1.
        x = rng.standard_normal((200, 500))
        out = Selu().forward(x)
        assert abs(out.mean()) < 0.05
        assert abs(out.std() - 1.0) < 0.1

    @pytest.mark.parametrize("layer_cls", [Selu, Relu, Sigmoid])
    def test_gradients_match_finite_differences(self, layer_cls, rng):
        x = rng.standard_normal((3, 7))
        check_layer_input_gradient(layer_cls(), x)

    def test_relu_zeroes_negatives(self):
        out = Relu().forward(np.array([[-2.0, 3.0]]))
        np.testing.assert_allclose(out, [[0.0, 3.0]])

    def test_sigmoid_range_and_midpoint(self, rng):
        out = Sigmoid().forward(rng.standard_normal((10, 10)) * 10)
        assert np.all(out > 0) and np.all(out < 1)
        assert Sigmoid().forward(np.zeros((1, 1)))[0, 0] == pytest.approx(0.5)

    def test_softmax_rows_sum_to_one(self, rng):
        out = Softmax().forward(rng.standard_normal((6, 4)) * 5)
        np.testing.assert_allclose(out.sum(axis=1), 1.0)

    def test_softmax_gradient(self, rng):
        x = rng.standard_normal((3, 5))
        check_layer_input_gradient(Softmax(), x)


class TestFlatten:
    def test_roundtrip_shapes(self, feature_map):
        layer = Flatten()
        out = layer.forward(feature_map)
        assert out.shape == (3, 4 * 2 * 10)
        grad = layer.backward(out)
        assert grad.shape == feature_map.shape


class TestDropout:
    def test_inference_mode_is_identity(self, rng):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = rng.standard_normal((5, 8))
        np.testing.assert_allclose(layer.forward(x, training=False), x)

    def test_training_mode_zeroes_and_scales(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((200, 200))
        out = layer.forward(x, training=True)
        zero_fraction = np.mean(out == 0.0)
        assert 0.4 < zero_fraction < 0.6
        # Surviving activations are scaled by 1 / keep_probability.
        assert np.allclose(out[out != 0.0], 2.0)

    def test_backward_uses_same_mask(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((10, 10))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_allclose(grad, out)

    def test_invalid_rate_rejected(self):
        with pytest.raises(LayerError):
            Dropout(1.0)


class TestAlphaDropout:
    def test_inference_mode_is_identity(self, rng):
        layer = AlphaDropout(0.5, rng=np.random.default_rng(0))
        x = rng.standard_normal((5, 8))
        np.testing.assert_allclose(layer.forward(x, training=False), x)

    def test_training_approximately_preserves_mean_and_variance(self, rng):
        layer = AlphaDropout(0.8, rng=np.random.default_rng(0))
        x = rng.standard_normal((400, 400))
        out = layer.forward(x, training=True)
        assert abs(out.mean() - x.mean()) < 0.05
        assert abs(out.std() - x.std()) < 0.1

    def test_retain_probability_one_is_identity(self, rng):
        layer = AlphaDropout(1.0, rng=np.random.default_rng(0))
        x = rng.standard_normal((4, 4))
        np.testing.assert_allclose(layer.forward(x, training=True), x)

    def test_invalid_retain_probability_rejected(self):
        with pytest.raises(LayerError):
            AlphaDropout(0.0)
