"""Unit tests for the indoor geometry of Fig. 6."""

import numpy as np
import pytest

from repro.phy.geometry import (
    AP_POSITION_A,
    AP_POSITION_B,
    AP_POSITION_C,
    AP_POSITION_D,
    NUM_D1_POSITIONS,
    Position,
    RoomGeometry,
    all_beamformee_positions,
    beamformee_positions,
    mobility_subpath,
    mobility_waypoints,
    path_length,
    uniform_linear_array,
)


class TestPosition:
    def test_distance_is_euclidean(self):
        assert Position(0, 0).distance_to(Position(3, 4)) == pytest.approx(5.0)

    def test_translation_does_not_mutate_original(self):
        origin = Position(1.0, 2.0)
        moved = origin.translated(0.5, -0.5)
        assert (origin.x, origin.y) == (1.0, 2.0)
        assert (moved.x, moved.y) == (1.5, 1.5)

    def test_as_array_roundtrip(self):
        pos = Position(-0.3, 2.2)
        np.testing.assert_allclose(pos.as_array(), [-0.3, 2.2])


class TestBeamformeePositions:
    def test_position_one_matches_fig6_initial_placement(self):
        bf1, bf2 = beamformee_positions(1)
        assert bf1.y == pytest.approx(3.0)
        assert bf2.y == pytest.approx(3.0)
        assert bf1.x < 0 < bf2.x

    def test_each_step_moves_10cm_apart(self):
        for position_id in range(1, NUM_D1_POSITIONS):
            bf1_a, bf2_a = beamformee_positions(position_id)
            bf1_b, bf2_b = beamformee_positions(position_id + 1)
            assert bf1_b.x - bf1_a.x == pytest.approx(-0.10)
            assert bf2_b.x - bf2_a.x == pytest.approx(0.10)

    def test_all_positions_enumerates_nine_pairs(self):
        positions = all_beamformee_positions()
        assert sorted(positions) == list(range(1, 10))

    @pytest.mark.parametrize("bad", [0, 10, -3])
    def test_out_of_range_rejected(self, bad):
        with pytest.raises(ValueError):
            beamformee_positions(bad)


class TestMobilityPath:
    def test_waypoints_follow_abcdba(self):
        waypoints = mobility_waypoints()
        assert waypoints == [
            AP_POSITION_A,
            AP_POSITION_B,
            AP_POSITION_C,
            AP_POSITION_D,
            AP_POSITION_B,
            AP_POSITION_A,
        ]

    def test_path_distances_match_fig6(self):
        # A->B 0.8 m, B->C 0.8 m, C->D 1.6 m, D->B 0.8 m, B->A 0.8 m.
        assert path_length(mobility_waypoints()) == pytest.approx(4.8)

    def test_subpaths(self):
        assert mobility_subpath("ABCB")[0] == AP_POSITION_A
        assert mobility_subpath("BDB")[1] == AP_POSITION_D
        assert mobility_subpath("full") == mobility_waypoints()

    def test_unknown_subpath_rejected(self):
        with pytest.raises(ValueError):
            mobility_subpath("XYZ")

    def test_path_length_of_single_point_is_zero(self):
        assert path_length([AP_POSITION_A]) == 0.0


class TestRoomGeometry:
    def test_default_room_contains_all_device_positions(self):
        room = RoomGeometry()
        for position_id in range(1, 10):
            for position in beamformee_positions(position_id):
                assert room.contains(position)
        for waypoint in mobility_waypoints():
            assert room.contains(waypoint)

    def test_wall_images_are_outside_the_room(self):
        room = RoomGeometry()
        for image in room.wall_images(Position(0.2, 1.0)):
            assert not room.contains(image, margin=-1e-9)

    def test_wall_images_preserve_distance_to_wall(self):
        room = RoomGeometry()
        source = Position(0.5, 1.0)
        left_image = room.wall_images(source)[0]
        assert (source.x - room.x_min) == pytest.approx(room.x_min - left_image.x)

    def test_degenerate_room_rejected(self):
        with pytest.raises(ValueError):
            RoomGeometry(x_min=1.0, x_max=1.0)


class TestUniformLinearArray:
    def test_elements_are_centred_on_the_phase_centre(self):
        coords = uniform_linear_array(Position(1.0, 2.0), 3, 0.05)
        np.testing.assert_allclose(coords.mean(axis=0), [1.0, 2.0])

    def test_spacing_is_respected(self):
        coords = uniform_linear_array(Position(0.0, 0.0), 4, 0.03)
        gaps = np.diff(coords[:, 0])
        np.testing.assert_allclose(gaps, 0.03)

    def test_axis_selection(self):
        coords = uniform_linear_array(Position(0.0, 0.0), 2, 0.1, axis="y")
        assert np.ptp(coords[:, 0]) == pytest.approx(0.0)
        assert np.ptp(coords[:, 1]) == pytest.approx(0.1)

    @pytest.mark.parametrize("kwargs", [
        {"num_antennas": 0, "spacing_m": 0.05},
        {"num_antennas": 2, "spacing_m": 0.0},
        {"num_antennas": 2, "spacing_m": 0.05, "axis": "z"},
    ])
    def test_invalid_arguments_rejected(self, kwargs):
        with pytest.raises(ValueError):
            uniform_linear_array(Position(0, 0), **kwargs)
