"""Tests for the CNN feature extraction from ``V~`` matrices."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.containers import FeedbackSample
from repro.datasets.features import (
    FeatureConfig,
    FeatureError,
    FeatureExtractor,
    apply_normalization,
    normalize_features,
    strided_subcarriers,
)


def make_v(rng, num_sub=20, num_tx=3, num_streams=2):
    v = rng.standard_normal((num_sub, num_tx, num_streams)) + 1j * rng.standard_normal(
        (num_sub, num_tx, num_streams)
    )
    # Emulate the real-last-row property of V~.
    v[:, -1, :] = np.abs(v[:, -1, :].real)
    return v


class TestFeatureConfig:
    def test_default_shape_matches_paper_input(self, rng):
        # All 3 antennas, stream 0 only, all sub-carriers: Nch = 2M-1 = 5.
        config = FeatureConfig()
        resolved = config.resolve(234, 3, 2)
        assert resolved.shape == (5, 1, 234)

    def test_channel_count_excludes_q_of_last_antenna_only(self):
        config = FeatureConfig(antenna_indices=(0, 1), stream_indices=(0, 1))
        resolved = config.resolve(20, 3, 2)
        assert resolved.num_channels == 4  # both antennas keep I and Q
        config_with_last = FeatureConfig(antenna_indices=(0, 2), stream_indices=(0,))
        assert config_with_last.resolve(20, 3, 2).num_channels == 3

    def test_out_of_range_selections_rejected(self):
        with pytest.raises(FeatureError):
            FeatureConfig(antenna_indices=(3,)).resolve(20, 3, 2)
        with pytest.raises(FeatureError):
            FeatureConfig(stream_indices=(2,)).resolve(20, 3, 2)
        with pytest.raises(FeatureError):
            FeatureConfig(subcarrier_positions=(25,)).resolve(20, 3, 2)

    def test_empty_selection_rejected(self):
        with pytest.raises(FeatureError):
            FeatureConfig(antenna_indices=()).resolve(20, 3, 2)


class TestFeatureExtractor:
    def test_output_shape(self, rng):
        extractor = FeatureExtractor(FeatureConfig())
        features = extractor.transform_matrix(make_v(rng))
        assert features.shape == (5, 1, 20)

    def test_i_and_q_channels_carry_real_and_imaginary_parts(self, rng):
        v = make_v(rng)
        extractor = FeatureExtractor(
            FeatureConfig(antenna_indices=(0,), stream_indices=(0,), last_antenna_index=2)
        )
        features = extractor.transform_matrix(v)
        np.testing.assert_allclose(features[0, 0], v[:, 0, 0].real)
        np.testing.assert_allclose(features[1, 0], v[:, 0, 0].imag)

    def test_last_antenna_contributes_only_real_channel(self, rng):
        v = make_v(rng)
        extractor = FeatureExtractor(
            FeatureConfig(antenna_indices=(2,), stream_indices=(0,))
        )
        features = extractor.transform_matrix(v)
        assert features.shape[0] == 1
        np.testing.assert_allclose(features[0, 0], v[:, 2, 0].real)

    def test_subcarrier_selection(self, rng):
        v = make_v(rng)
        positions = (0, 2, 4, 6)
        extractor = FeatureExtractor(
            FeatureConfig(subcarrier_positions=positions, stream_indices=(0,))
        )
        features = extractor.transform_matrix(v)
        assert features.shape[2] == 4
        np.testing.assert_allclose(features[0, 0], v[list(positions), 0, 0].real)

    def test_stream_selection(self, rng):
        v = make_v(rng)
        extractor = FeatureExtractor(FeatureConfig(stream_indices=(1,)))
        features = extractor.transform_matrix(v)
        np.testing.assert_allclose(features[0, 0], v[:, 0, 1].real)

    def test_transform_samples_returns_labels(self, rng):
        extractor = FeatureExtractor(FeatureConfig())
        samples = [
            FeedbackSample(v_tilde=make_v(rng), module_id=i % 3, beamformee_id=1)
            for i in range(6)
        ]
        features, labels = extractor.transform_samples(samples)
        assert features.shape[0] == 6
        np.testing.assert_array_equal(labels, [0, 1, 2, 0, 1, 2])

    def test_empty_sample_list_rejected(self):
        with pytest.raises(FeatureError):
            FeatureExtractor().transform_samples([])

    def test_output_shape_helper_matches_actual(self, rng):
        extractor = FeatureExtractor(FeatureConfig(stream_indices=(0, 1)))
        predicted = extractor.output_shape((20, 3, 2))
        actual = extractor.transform_matrix(make_v(rng)).shape
        assert predicted == actual

    def test_non_3d_matrix_rejected(self, rng):
        with pytest.raises(FeatureError):
            FeatureExtractor().transform_matrix(rng.standard_normal((4, 4)))


class TestHelpers:
    def test_strided_subcarriers(self):
        assert strided_subcarriers(10, 3) == (0, 3, 6, 9)
        with pytest.raises(FeatureError):
            strided_subcarriers(10, 0)

    def test_normalize_features_standardises_channels(self, rng):
        features = rng.standard_normal((50, 3, 1, 20)) * 5.0 + 2.0
        normalised, stats = normalize_features(features)
        np.testing.assert_allclose(normalised.mean(axis=(0, 2, 3)), 0.0, atol=1e-9)
        np.testing.assert_allclose(normalised.std(axis=(0, 2, 3)), 1.0, atol=1e-6)

    def test_apply_normalization_reuses_statistics(self, rng):
        train = rng.standard_normal((50, 3, 1, 20)) * 5.0 + 2.0
        test = rng.standard_normal((10, 3, 1, 20)) * 5.0 + 2.0
        _, stats = normalize_features(train)
        transformed = apply_normalization(test, stats)
        expected = (test - stats[0]) / stats[1]
        np.testing.assert_allclose(transformed, expected)

    @given(stride=st.integers(1, 10), total=st.integers(10, 300))
    @settings(max_examples=30, deadline=None)
    def test_strided_subcarriers_property(self, stride, total):
        positions = strided_subcarriers(total, stride)
        assert positions[0] == 0
        assert all(b - a == stride for a, b in zip(positions, positions[1:]))
        assert positions[-1] < total
