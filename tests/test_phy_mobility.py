"""Unit tests for the mobility traces of dataset D2."""

import numpy as np
import pytest

from repro.phy.geometry import AP_POSITION_A, AP_POSITION_B, mobility_waypoints
from repro.phy.mobility import MobilityTrace, round_trip, static_trace, waypoint_path


class TestStaticTrace:
    def test_positions_are_constant(self):
        trace = static_trace(AP_POSITION_A, 10)
        assert len(trace) == 10
        assert all(p == AP_POSITION_A for p in trace.positions)
        assert trace.total_distance_m == pytest.approx(0.0)

    def test_timestamps_are_regular(self):
        trace = static_trace(AP_POSITION_A, 4, interval_s=0.25)
        np.testing.assert_allclose(trace.timestamps_s, [0.0, 0.25, 0.5, 0.75])

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            static_trace(AP_POSITION_A, 0)


class TestWaypointPath:
    def test_endpoints_match_waypoints_without_jitter(self):
        trace = waypoint_path(mobility_waypoints(), 50, jitter_std_m=0.0)
        assert trace.positions[0] == AP_POSITION_A
        assert trace.positions[-1].distance_to(AP_POSITION_A) == pytest.approx(0.0, abs=1e-12)

    def test_total_distance_close_to_polyline_length(self):
        trace = waypoint_path(mobility_waypoints(), 200, jitter_std_m=0.0)
        assert trace.total_distance_m == pytest.approx(4.8, rel=0.01)

    def test_jitter_perturbs_but_does_not_derail(self):
        rng = np.random.default_rng(0)
        trace = waypoint_path(mobility_waypoints(), 100, jitter_std_m=0.02, rng=rng)
        clean = waypoint_path(mobility_waypoints(), 100, jitter_std_m=0.0)
        deviations = [
            a.distance_to(b) for a, b in zip(trace.positions, clean.positions)
        ]
        assert max(deviations) < 0.2
        assert max(deviations) > 0.0

    def test_jitter_is_reproducible_with_seeded_rng(self):
        a = waypoint_path(mobility_waypoints(), 20, rng=np.random.default_rng(5))
        b = waypoint_path(mobility_waypoints(), 20, rng=np.random.default_rng(5))
        assert a.positions == b.positions

    def test_intermediate_waypoint_is_visited(self):
        trace = waypoint_path(mobility_waypoints(), 200, jitter_std_m=0.0)
        min_distance = min(p.distance_to(AP_POSITION_B) for p in trace.positions)
        assert min_distance < 0.05

    def test_requires_two_waypoints(self):
        with pytest.raises(ValueError):
            waypoint_path([AP_POSITION_A], 10)

    def test_invalid_sample_count_rejected(self):
        with pytest.raises(ValueError):
            waypoint_path(mobility_waypoints(), 0)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            waypoint_path(mobility_waypoints(), 10, jitter_std_m=-0.1)

    def test_coincident_waypoints_fall_back_to_static(self):
        trace = waypoint_path([AP_POSITION_A, AP_POSITION_A], 5)
        assert all(p == AP_POSITION_A for p in trace.positions)


class TestMobilityTrace:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MobilityTrace(positions=(AP_POSITION_A,), timestamps_s=(0.0, 1.0))

    def test_round_trip_doubles_samples_and_ends_at_start(self):
        trace = waypoint_path([AP_POSITION_A, AP_POSITION_B], 10, jitter_std_m=0.0)
        doubled = round_trip(trace)
        assert len(doubled) == 20
        assert doubled.positions[-1] == trace.positions[0]

    def test_indexing(self):
        trace = static_trace(AP_POSITION_B, 3)
        assert trace[1] == AP_POSITION_B
