"""Unit tests for the VHT compressed-beamforming frame packing/parsing."""

import numpy as np
import pytest

from repro.feedback.frames import (
    FeedbackFrame,
    FrameError,
    VhtMimoControl,
    frame_size_bytes,
    frame_to_angles,
    pack_feedback_frame,
    parse_feedback_frame,
)
from repro.feedback.givens import compress_v_matrix
from repro.feedback.quantization import QuantizationConfig, quantize_angles
from tests.conftest import random_unitary_columns


def make_quantized(rng, num_sub=16, num_tx=3, num_streams=2, b_phi=9, b_psi=7):
    v = random_unitary_columns(rng, num_sub, num_tx, num_streams)
    angles = compress_v_matrix(v)
    return quantize_angles(angles, QuantizationConfig(b_phi=b_phi, b_psi=b_psi))


def make_control(quantized, bandwidth_mhz=80):
    return VhtMimoControl(
        num_columns=quantized.num_streams,
        num_rows=quantized.num_tx,
        bandwidth_mhz=bandwidth_mhz,
        codebook=1 if quantized.config.b_phi == 9 else 0,
        num_subcarriers=quantized.num_subcarriers,
    )


class TestVhtMimoControl:
    def test_codebook_implies_quantization(self):
        control = VhtMimoControl(2, 3, 80, 1, 234)
        assert control.quantization.b_phi == 9
        control = VhtMimoControl(2, 3, 80, 0, 234)
        assert control.quantization.b_phi == 7

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_columns=0, num_rows=3, bandwidth_mhz=80, codebook=1, num_subcarriers=10),
            dict(num_columns=2, num_rows=1, bandwidth_mhz=80, codebook=1, num_subcarriers=10),
            dict(num_columns=2, num_rows=3, bandwidth_mhz=30, codebook=1, num_subcarriers=10),
            dict(num_columns=2, num_rows=3, bandwidth_mhz=80, codebook=2, num_subcarriers=10),
            dict(num_columns=2, num_rows=3, bandwidth_mhz=80, codebook=1, num_subcarriers=0),
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(FrameError):
            VhtMimoControl(**kwargs)


class TestFramePacking:
    def test_roundtrip_recovers_codewords_and_control(self, rng):
        quantized = make_quantized(rng)
        control = make_control(quantized)
        payload = pack_feedback_frame(quantized, control)
        parsed_control, parsed = parse_feedback_frame(payload)
        assert parsed_control == control
        np.testing.assert_array_equal(parsed.q_phi, quantized.q_phi)
        np.testing.assert_array_equal(parsed.q_psi, quantized.q_psi)

    def test_roundtrip_with_low_codebook(self, rng):
        quantized = make_quantized(rng, b_phi=7, b_psi=5)
        control = make_control(quantized)
        payload = pack_feedback_frame(quantized, control)
        _, parsed = parse_feedback_frame(payload)
        np.testing.assert_array_equal(parsed.q_phi, quantized.q_phi)
        assert parsed.config.b_phi == 7

    def test_roundtrip_single_stream(self, rng):
        quantized = make_quantized(rng, num_streams=1)
        control = make_control(quantized)
        payload = pack_feedback_frame(quantized, control)
        _, parsed = parse_feedback_frame(payload)
        np.testing.assert_array_equal(parsed.q_psi, quantized.q_psi)

    def test_payload_size_matches_prediction(self, rng):
        quantized = make_quantized(rng, num_sub=30)
        control = make_control(quantized)
        payload = pack_feedback_frame(quantized, control)
        assert len(payload) == frame_size_bytes(control)

    def test_frame_to_angles_dequantises(self, rng):
        quantized = make_quantized(rng)
        control = make_control(quantized)
        payload = pack_feedback_frame(quantized, control)
        angles = frame_to_angles(payload)
        assert angles.phi.shape == quantized.q_phi.shape
        assert np.all(angles.phi >= 0) and np.all(angles.phi < 2 * np.pi)

    def test_mismatched_control_rejected(self, rng):
        quantized = make_quantized(rng)
        bad_control = VhtMimoControl(
            num_columns=1,  # quantized feedback has 2 streams
            num_rows=quantized.num_tx,
            bandwidth_mhz=80,
            codebook=1,
            num_subcarriers=quantized.num_subcarriers,
        )
        with pytest.raises(FrameError):
            pack_feedback_frame(quantized, bad_control)

    def test_codebook_mismatch_rejected(self, rng):
        quantized = make_quantized(rng, b_phi=9, b_psi=7)
        control = VhtMimoControl(
            num_columns=quantized.num_streams,
            num_rows=quantized.num_tx,
            bandwidth_mhz=80,
            codebook=0,  # implies b_phi = 7
            num_subcarriers=quantized.num_subcarriers,
        )
        with pytest.raises(FrameError):
            pack_feedback_frame(quantized, control)

    def test_bad_magic_rejected(self, rng):
        quantized = make_quantized(rng)
        payload = pack_feedback_frame(quantized, make_control(quantized))
        corrupted = bytes([payload[0] ^ 0xFF]) + payload[1:]
        with pytest.raises(FrameError):
            parse_feedback_frame(corrupted)

    def test_truncated_frame_rejected(self, rng):
        quantized = make_quantized(rng)
        payload = pack_feedback_frame(quantized, make_control(quantized))
        with pytest.raises(FrameError):
            parse_feedback_frame(payload[: len(payload) // 2])


class TestFeedbackFrameDataclass:
    def test_carries_addresses_and_payload(self):
        frame = FeedbackFrame(
            source_address="02:00:00:00:00:01",
            destination_address="02:00:00:00:aa:00",
            timestamp_s=1.5,
            payload=b"\x00\x01",
        )
        assert frame.source_address.endswith(":01")
        assert frame.payload == b"\x00\x01"
