"""Unit and property tests for the Givens-rotation feedback compression."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.feedback.givens import (
    FeedbackAngles,
    GivensError,
    angle_counts,
    angle_order,
    compress_v_matrix,
    compression_error,
    reconstruct_v_matrix,
)
from tests.conftest import random_unitary_columns


def orthonormality_error(v: np.ndarray) -> float:
    gram = np.einsum("kms,kmt->kst", np.conj(v), v)
    identity = np.broadcast_to(np.eye(v.shape[2]), gram.shape)
    return float(np.max(np.abs(gram - identity)))


class TestAngleCounts:
    @pytest.mark.parametrize(
        "num_tx,num_streams,expected",
        [(2, 1, 1), (2, 2, 1), (3, 1, 2), (3, 2, 3), (3, 3, 3), (4, 2, 5), (4, 4, 6)],
    )
    def test_counts_match_standard_table(self, num_tx, num_streams, expected):
        n_phi, n_psi = angle_counts(num_tx, num_streams)
        assert n_phi == expected
        assert n_psi == expected

    def test_order_length_matches_counts(self):
        for num_tx, num_streams in [(3, 2), (4, 3), (2, 2)]:
            order = angle_order(num_tx, num_streams)
            n_phi, n_psi = angle_counts(num_tx, num_streams)
            assert len(order) == n_phi + n_psi

    def test_order_interleaves_phi_then_psi_per_iteration(self):
        order = angle_order(3, 2)
        kinds = [entry[0] for entry in order]
        assert kinds == ["phi", "phi", "psi", "psi", "phi", "psi"]

    @pytest.mark.parametrize("num_tx,num_streams", [(1, 1), (3, 0), (3, 4)])
    def test_invalid_dimensions_rejected(self, num_tx, num_streams):
        with pytest.raises(GivensError):
            angle_counts(num_tx, num_streams)


class TestCompressReconstruct:
    @pytest.mark.parametrize("num_tx,num_streams", [(2, 1), (2, 2), (3, 1), (3, 2), (3, 3), (4, 2)])
    def test_lossless_roundtrip(self, rng, num_tx, num_streams):
        v = random_unitary_columns(rng, 16, num_tx, num_streams)
        angles = compress_v_matrix(v)
        reconstructed = reconstruct_v_matrix(angles)
        assert compression_error(v, reconstructed).max() < 1e-10

    def test_reconstructed_last_row_is_real_non_negative(self, rng):
        v = random_unitary_columns(rng, 32, 3, 2)
        reconstructed = reconstruct_v_matrix(compress_v_matrix(v))
        last_row = reconstructed[:, -1, :]
        assert np.max(np.abs(last_row.imag)) < 1e-10
        assert np.min(last_row.real) > -1e-10

    def test_reconstructed_columns_are_orthonormal(self, rng):
        v = random_unitary_columns(rng, 32, 3, 2)
        reconstructed = reconstruct_v_matrix(compress_v_matrix(v))
        assert orthonormality_error(reconstructed) < 1e-10

    def test_angle_ranges(self, rng):
        v = random_unitary_columns(rng, 64, 3, 2)
        angles = compress_v_matrix(v)
        assert np.all(angles.phi >= 0.0) and np.all(angles.phi < 2.0 * np.pi)
        assert np.all(angles.psi >= 0.0) and np.all(angles.psi <= np.pi / 2.0)

    def test_column_phase_invariance(self, rng):
        # V and V * diag(e^{j a}) produce the same V~ (the per-column phase
        # of the last row is never transmitted).
        v = random_unitary_columns(rng, 8, 3, 2)
        phases = np.exp(1j * rng.uniform(0, 2 * np.pi, size=(8, 1, 2)))
        rotated = v * phases
        first = reconstruct_v_matrix(compress_v_matrix(v))
        second = reconstruct_v_matrix(compress_v_matrix(rotated))
        np.testing.assert_allclose(first, second, atol=1e-10)

    def test_compress_requires_3d_input(self):
        with pytest.raises(GivensError):
            compress_v_matrix(np.ones((4, 3)))

    def test_compression_error_requires_matching_shapes(self, rng):
        v = random_unitary_columns(rng, 4, 3, 2)
        with pytest.raises(GivensError):
            compression_error(v, v[:, :, :1])

    def test_feedback_angles_validation(self):
        with pytest.raises(GivensError):
            FeedbackAngles(
                phi=np.zeros((4, 2)), psi=np.zeros((4, 3)), num_tx=3, num_streams=2
            )
        with pytest.raises(GivensError):
            FeedbackAngles(
                phi=np.zeros((4, 3)), psi=np.zeros((5, 3)), num_tx=3, num_streams=2
            )

    def test_real_svd_derived_matrices_roundtrip(self, small_network, layout20):
        from repro.phy.mimo import beamforming_matrix, compute_cfr

        ap, bf, channel = small_network
        cfr = compute_cfr(ap, bf, channel, layout20, np.random.default_rng(0))
        v = beamforming_matrix(cfr, 2)
        reconstructed = reconstruct_v_matrix(compress_v_matrix(v))
        assert compression_error(v, reconstructed).max() < 1e-9


class TestGivensProperties:
    """Hypothesis property tests over random dimensions and matrices."""

    @staticmethod
    def _random_v(seed: int, num_sub: int, num_tx: int, num_streams: int) -> np.ndarray:
        rng = np.random.default_rng(seed)
        return random_unitary_columns(rng, num_sub, num_tx, num_streams)

    @given(
        seed=st.integers(0, 10_000),
        num_tx=st.integers(2, 4),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_is_lossless_for_any_dimension(self, seed, num_tx, data):
        num_streams = data.draw(st.integers(1, num_tx))
        v = self._random_v(seed, 8, num_tx, num_streams)
        reconstructed = reconstruct_v_matrix(compress_v_matrix(v))
        assert compression_error(v, reconstructed).max() < 1e-9

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_reconstruction_preserves_orthonormality(self, seed):
        v = self._random_v(seed, 8, 3, 2)
        reconstructed = reconstruct_v_matrix(compress_v_matrix(v))
        assert orthonormality_error(reconstructed) < 1e-9

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_compression_is_idempotent(self, seed):
        # Compressing an already-reconstructed V~ returns the same angles.
        v = self._random_v(seed, 4, 3, 2)
        angles = compress_v_matrix(v)
        again = compress_v_matrix(reconstruct_v_matrix(angles))
        np.testing.assert_allclose(
            np.mod(angles.phi, 2 * np.pi), np.mod(again.phi, 2 * np.pi), atol=1e-7
        )
        np.testing.assert_allclose(angles.psi, again.psi, atol=1e-7)
