"""End-to-end integration tests across the full DeepCSI pipeline.

These tests exercise the complete data path the paper describes:
channel + impairments -> SVD -> Givens angles -> quantisation -> frame on the
air -> monitor capture -> V~ reconstruction -> CNN classification.
"""

import numpy as np
import pytest

from repro.core.classifier import ClassifierConfig, DeepCsiClassifier
from repro.core.model import DeepCsiModelConfig
from repro.datasets.containers import FeedbackSample
from repro.datasets.features import FeatureConfig, strided_subcarriers
from repro.feedback.capture import MonitorCapture, SoundingSimulator, station_mac
from repro.feedback.frames import parse_feedback_frame
from repro.feedback.givens import compress_v_matrix, compression_error, reconstruct_v_matrix
from repro.feedback.quantization import dequantize_angles
from repro.nn.training import TrainingConfig
from repro.phy.channel import MultipathChannel
from repro.phy.devices import AccessPoint, make_beamformee, make_module_population
from repro.phy.geometry import AP_POSITION_A, beamformee_positions
from repro.phy.mimo import beamforming_matrix, compute_cfr
from repro.phy.ofdm import sounding_layout


class TestFeedbackPathEndToEnd:
    def test_captured_frame_reconstructs_v_within_quantisation_error(
        self, small_modules, layout20
    ):
        """The V~ parsed from the sniffed frame matches the beamformee's V."""
        access_point = AccessPoint(module=small_modules[0], position=AP_POSITION_A)
        bf_pos, _ = beamformee_positions(4)
        beamformee = make_beamformee(1, bf_pos, num_antennas=2, num_streams=2)
        channel = MultipathChannel(environment_seed=3)
        rng = np.random.default_rng(0)

        # What the beamformee computes.
        cfr = compute_cfr(access_point, beamformee, channel, layout20, rng,
                          snr_db=35.0, fading_jitter=0.0)
        v_matrix = beamforming_matrix(cfr, 2)

        # What goes over the air and what the observer recovers.
        simulator = SoundingSimulator(
            access_point=access_point,
            beamformees=[beamformee],
            channel=channel,
            layout=layout20,
        )
        capture = MonitorCapture()
        simulator.sound_once(np.random.default_rng(0), capture=capture)
        frame = capture.filter(source_address=station_mac(1))[0]
        _, quantized = parse_feedback_frame(frame.payload)
        v_tilde = reconstruct_v_matrix(dequantize_angles(quantized))

        # The observer's matrix equals a fresh compression of a V computed
        # from the same geometry up to quantisation error plus the random
        # per-packet differences (noise, fading); bound it loosely.
        error = compression_error(v_matrix, v_tilde)
        assert error.mean() < 0.3

    def test_quantisation_is_the_only_loss_for_identical_input(self, rng, layout20):
        """Compress -> quantise -> frame -> parse -> reconstruct is consistent."""
        from tests.conftest import random_unitary_columns
        from repro.feedback.frames import VhtMimoControl, pack_feedback_frame
        from repro.feedback.quantization import QuantizationConfig, quantize_angles

        v = random_unitary_columns(rng, layout20.num_subcarriers, 3, 2)
        angles = compress_v_matrix(v)
        quantized = quantize_angles(angles, QuantizationConfig())
        control = VhtMimoControl(2, 3, 20, 1, layout20.num_subcarriers)
        payload = pack_feedback_frame(quantized, control)
        _, parsed = parse_feedback_frame(payload)
        v_tilde = reconstruct_v_matrix(dequantize_angles(parsed))
        error = compression_error(v, v_tilde)
        # Pure quantisation error with b_phi = 9 / b_psi = 7 stays small.
        assert error.max() < 0.05


class TestClassificationEndToEnd:
    def test_classifier_identifies_modules_from_captured_frames(self, layout80=None):
        """Train on captured frames from 3 modules, test on fresh captures."""
        layout = sounding_layout(80)
        modules = make_module_population(num_modules=3, seed=77)
        bf_pos, _ = beamformee_positions(3)
        channel = MultipathChannel(num_scatterers=6, environment_seed=21)

        def capture_samples(seed, num_soundings):
            samples = []
            for module in modules:
                access_point = AccessPoint(module=module, position=AP_POSITION_A)
                beamformee = make_beamformee(1, bf_pos, num_antennas=2, num_streams=2)
                simulator = SoundingSimulator(
                    access_point=access_point,
                    beamformees=[beamformee],
                    channel=channel,
                    layout=layout,
                    pa_flip_probability=0.0,
                )
                capture = MonitorCapture()
                simulator.sound_many(
                    num_soundings, np.random.default_rng(seed + module.module_id),
                    capture=capture,
                )
                for feedback in capture.reconstruct(source_address=station_mac(1)):
                    samples.append(
                        FeedbackSample(
                            v_tilde=feedback.v_tilde,
                            module_id=module.module_id,
                            beamformee_id=1,
                        )
                    )
            return samples

        train_samples = capture_samples(seed=0, num_soundings=12)
        test_samples = capture_samples(seed=100, num_soundings=4)

        classifier = DeepCsiClassifier(
            ClassifierConfig(
                num_classes=3,
                feature=FeatureConfig(
                    stream_indices=(0,),
                    subcarrier_positions=strided_subcarriers(234, 8),
                ),
                model=DeepCsiModelConfig(
                    num_filters=8,
                    kernel_widths=(5, 3),
                    pool_width=2,
                    dense_units=(16,),
                    dropout_retain=(0.8,),
                    attention_kernel_width=3,
                ),
                training=TrainingConfig(
                    epochs=12, batch_size=16, validation_split=0.2,
                    early_stopping_patience=None, seed=0,
                ),
                learning_rate=3e-3,
            )
        )
        classifier.fit(train_samples)
        report = classifier.evaluate(test_samples)
        # Same-position, same-beamformee identification must be well above
        # the 1/3 chance level even with this miniature setup.
        assert report.accuracy > 0.7
