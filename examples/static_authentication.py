"""Spectrum-monitoring scenario: authenticate an AP from sniffed frames.

The paper's motivating use case (Section I) is a spectrum observer that must
verify *which* Wi-Fi device is using the spectrum without holding any
cryptographic material.  This example plays that scenario end to end on the
simulated network:

1. **Enrollment** -- the observer collects compressed-beamforming frames for
   every known AP module (monitor mode, no association needed), reconstructs
   the ``V~`` matrices and trains the DeepCSI classifier.
2. **Online authentication** -- a device claiming to be module 0 starts
   transmitting.  The observer sniffs a handful of fresh sounding exchanges,
   runs per-frame inference and fuses the decisions with a majority vote.
   The experiment is repeated with a legitimate transmitter (module 0) and
   with an impersonator (module 3 claiming to be module 0).

Run it with::

    python examples/static_authentication.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.classifier import ClassifierConfig, DeepCsiClassifier
from repro.core.model import FAST_MODEL_CONFIG
from repro.core.pipeline import AuthenticationPipeline
from repro.datasets.containers import FeedbackSample
from repro.datasets.features import FeatureConfig, strided_subcarriers
from repro.feedback.capture import MonitorCapture, SoundingSimulator, station_mac
from repro.nn.training import TrainingConfig
from repro.phy.channel import MultipathChannel
from repro.phy.devices import AccessPoint, make_beamformee, make_module_population
from repro.phy.geometry import AP_POSITION_A, beamformee_positions
from repro.phy.ofdm import sounding_layout

NUM_MODULES = 5
ENROLL_SOUNDINGS = 25
ONLINE_SOUNDINGS = 8


def build_network(module, layout, environment_seed=11):
    """The monitored Wi-Fi network: one AP and one associated station."""
    access_point = AccessPoint(module=module, position=AP_POSITION_A)
    bf_position, _ = beamformee_positions(3)
    beamformee = make_beamformee(1, bf_position, num_antennas=2, num_streams=2)
    channel = MultipathChannel(num_scatterers=8, environment_seed=environment_seed)
    return SoundingSimulator(
        access_point=access_point,
        beamformees=[beamformee],
        channel=channel,
        layout=layout,
        pa_flip_probability=0.0,
    )


def sniff_samples(module, layout, num_soundings, seed):
    """Capture frames from the network of ``module`` and label them."""
    simulator = build_network(module, layout)
    capture = MonitorCapture()
    simulator.sound_many(num_soundings, np.random.default_rng(seed), capture=capture)
    samples = []
    for feedback in capture.reconstruct(source_address=station_mac(1)):
        samples.append(
            FeedbackSample(
                v_tilde=feedback.v_tilde,
                module_id=module.module_id,
                beamformee_id=1,
            )
        )
    return samples


def main() -> None:
    layout = sounding_layout(80)
    modules = make_module_population(num_modules=NUM_MODULES)

    # ------------------------------------------------------------------ #
    # 1. Enrollment: sniff every known module and train the classifier.
    # ------------------------------------------------------------------ #
    print(f"Enrolling {NUM_MODULES} Wi-Fi modules from sniffed feedback frames...")
    start = time.time()
    enrollment_samples = []
    for module in modules:
        enrollment_samples.extend(
            sniff_samples(module, layout, ENROLL_SOUNDINGS, seed=module.module_id)
        )
    print(
        f"  captured {len(enrollment_samples)} feedback frames in "
        f"{time.time() - start:.1f} s"
    )

    classifier = DeepCsiClassifier(
        ClassifierConfig(
            num_classes=NUM_MODULES,
            feature=FeatureConfig(
                stream_indices=(0,),
                subcarrier_positions=strided_subcarriers(234, 4),
            ),
            model=FAST_MODEL_CONFIG,
            training=TrainingConfig(epochs=12, batch_size=32),
            learning_rate=2e-3,
        )
    )
    pipeline = AuthenticationPipeline(classifier, confidence_threshold=0.5)
    start = time.time()
    pipeline.enroll(enrollment_samples)
    print(f"  enrolled in {time.time() - start:.1f} s\n")

    # ------------------------------------------------------------------ #
    # 2. Online authentication of a legitimate transmitter.
    # ------------------------------------------------------------------ #
    claimed_id = 0
    print(f"Scenario A - legitimate transmitter (module {claimed_id}) claims ID {claimed_id}")
    capture = MonitorCapture()
    build_network(modules[claimed_id], layout).sound_many(
        ONLINE_SOUNDINGS, np.random.default_rng(1000), capture=capture
    )
    results = pipeline.authenticate_capture(
        capture, source_address=station_mac(1), claimed_module_id=claimed_id
    )
    verdict = pipeline.majority_vote(results)
    print(
        f"  per-frame votes: "
        f"{[result.predicted_module_id for result in results]}"
    )
    print(
        f"  verdict: predicted module {verdict.predicted_module_id} "
        f"(confidence {verdict.confidence:.2f}) -> "
        f"{'ACCEPTED' if verdict.accepted else 'REJECTED'}\n"
    )

    # ------------------------------------------------------------------ #
    # 3. Online authentication of an impersonator.
    # ------------------------------------------------------------------ #
    impostor_id = 3
    print(
        f"Scenario B - impersonator (module {impostor_id}) claims ID {claimed_id}"
    )
    capture = MonitorCapture()
    build_network(modules[impostor_id], layout).sound_many(
        ONLINE_SOUNDINGS, np.random.default_rng(2000), capture=capture
    )
    results = pipeline.authenticate_capture(
        capture, source_address=station_mac(1), claimed_module_id=claimed_id
    )
    verdict = pipeline.majority_vote(results)
    print(
        f"  per-frame votes: "
        f"{[result.predicted_module_id for result in results]}"
    )
    print(
        f"  verdict: predicted module {verdict.predicted_module_id} "
        f"(confidence {verdict.confidence:.2f}) -> "
        f"{'ACCEPTED' if verdict.accepted else 'REJECTED'}"
    )
    print(
        "\nThe legitimate transmitter should be ACCEPTED and the impersonator "
        "REJECTED: the RF fingerprint, not the claimed identity, drives the decision."
    )


if __name__ == "__main__":
    main()
