"""Guided tour of the MU-MIMO sounding substrate (no training involved).

This example walks through the physical-layer machinery the paper builds on,
printing what happens at every step of one DL MU-MIMO sounding:

1. the multipath channel between the AP and two beamformees (Eq. 2),
2. the per-module hardware fingerprint and how it perturbs the CFR,
3. the SVD beamforming matrix ``V`` (Eq. 3) and the zero-forcing MU-MIMO
   precoder, with the resulting inter-stream / inter-user interference,
4. the Givens-angle compression (Algorithm 1), the standard quantisation
   (Eq. 8) and the size of the resulting feedback frame,
5. the reconstruction error an observer incurs for both codebooks - the
   Fig. 13 effect in miniature.

Run it with::

    python examples/mu_mimo_sounding_tour.py
"""

from __future__ import annotations

import numpy as np

from repro.feedback.frames import VhtMimoControl, frame_size_bytes
from repro.feedback.givens import angle_counts, compress_v_matrix, compression_error, reconstruct_v_matrix
from repro.feedback.quantization import QuantizationConfig, quantization_roundtrip
from repro.phy.channel import MultipathChannel, delay_spread
from repro.phy.devices import AccessPoint, make_beamformee, make_module_population
from repro.phy.geometry import AP_POSITION_A, beamformee_positions
from repro.phy.impairments import PacketOffsets
from repro.phy.mimo import (
    beamforming_matrix,
    compute_cfr,
    interference_metrics,
    mu_mimo_precoder,
    steering_weights,
)
from repro.phy.ofdm import sounding_layout


def main() -> None:
    rng = np.random.default_rng(7)
    layout = sounding_layout(80)
    print(
        f"Channel 42: {layout.config.bandwidth_mhz} MHz around "
        f"{layout.config.carrier_frequency_hz / 1e9:.2f} GHz, "
        f"{layout.num_subcarriers} sounded sub-carriers\n"
    )

    # ------------------------------------------------------------------ #
    # 1. Network geometry and multipath channel.
    # ------------------------------------------------------------------ #
    modules = make_module_population(num_modules=2)
    access_point = AccessPoint(module=modules[0], position=AP_POSITION_A)
    bf1_pos, bf2_pos = beamformee_positions(3)
    beamformee1 = make_beamformee(1, bf1_pos, num_antennas=2, num_streams=2)
    beamformee2 = make_beamformee(2, bf2_pos, num_antennas=2, num_streams=1)
    channel = MultipathChannel(num_scatterers=8, environment_seed=11)

    realization = channel.realize(
        access_point.antenna_elements(),
        beamformee1.antenna_elements(),
        layout.config.carrier_frequency_hz,
    )
    print(
        f"Multipath towards beamformee 1: {len(realization.paths)} paths, "
        f"RMS delay spread {delay_spread(realization) * 1e9:.1f} ns"
    )

    # ------------------------------------------------------------------ #
    # 2. Device fingerprint on the CFR.
    # ------------------------------------------------------------------ #
    offsets = PacketOffsets.none(access_point.num_antennas)
    clean_cfr = compute_cfr(
        access_point.with_module(modules[1]), beamformee1, channel, layout, rng,
        packet_offsets=offsets, snr_db=60.0, fading_jitter=0.0,
    )
    impaired_cfr = compute_cfr(
        access_point, beamformee1, channel, layout, rng,
        packet_offsets=offsets, snr_db=60.0, fading_jitter=0.0,
    )
    relative_difference = np.mean(
        np.abs(impaired_cfr - clean_cfr) / (np.abs(clean_cfr) + 1e-12)
    )
    print(
        "Swapping the AP module changes the estimated CFR by "
        f"{100.0 * relative_difference:.1f}% on average - the fingerprint "
        "DeepCSI learns.\n"
    )

    # ------------------------------------------------------------------ #
    # 3. Beamforming and MU-MIMO interference.
    # ------------------------------------------------------------------ #
    cfr1 = compute_cfr(access_point, beamformee1, channel, layout, rng,
                       packet_offsets=offsets, snr_db=60.0)
    cfr2 = compute_cfr(access_point, beamformee2, channel, layout, rng,
                       packet_offsets=offsets, snr_db=60.0)
    v1 = beamforming_matrix(cfr1, beamformee1.num_streams)
    print(f"Beamforming matrix V for beamformee 1: shape {v1.shape}")

    su_weights = [
        steering_weights(beamforming_matrix(cfr1, 2)),
        steering_weights(beamforming_matrix(cfr2, 1)),
    ]
    su_report = interference_metrics([cfr1, cfr2], su_weights)
    zf_weights = mu_mimo_precoder([cfr1, cfr2], streams_per_user=[2, 1])
    zf_report = interference_metrics([cfr1, cfr2], zf_weights)
    print(
        "Inter-user interference power (user 1): "
        f"SU beamforming {su_report.inter_user_interference[0]:.3e} vs "
        f"zero-forcing {zf_report.inter_user_interference[0]:.3e}"
    )
    print(
        "The NDP used for sounding is never beamformed, so the feedback "
        "matrices below are unaffected by this interference.\n"
    )

    # ------------------------------------------------------------------ #
    # 4. Compression, quantisation and frame size.
    # ------------------------------------------------------------------ #
    angles = compress_v_matrix(v1)
    n_phi, n_psi = angle_counts(v1.shape[1], v1.shape[2])
    print(
        f"Algorithm 1 produces {n_phi} phi + {n_psi} psi angles per "
        f"sub-carrier ({angles.phi.size + angles.psi.size} angles per feedback)"
    )
    for b_psi, b_phi in ((5, 7), (7, 9)):
        config = QuantizationConfig(b_phi=b_phi, b_psi=b_psi)
        control = VhtMimoControl(
            num_columns=v1.shape[2], num_rows=v1.shape[1], bandwidth_mhz=80,
            codebook=0 if b_phi == 7 else 1, num_subcarriers=layout.num_subcarriers,
        )
        error = compression_error(
            v1, reconstruct_v_matrix(quantization_roundtrip(angles, config))
        )
        print(
            f"  codebook (b_psi={b_psi}, b_phi={b_phi}): frame size "
            f"{frame_size_bytes(control):5d} bytes, mean |V~| error "
            f"{error.mean():.4f} (stream 0: {error[:, :, 0].mean():.4f}, "
            f"stream 1: {error[:, :, 1].mean():.4f})"
        )
    print(
        "\nThe finer codebook shrinks the reconstruction error by roughly 4x "
        "for about 30% more feedback bytes.  Aggregated over many channel "
        "realisations the second spatial stream is reconstructed less "
        "accurately than the first (the Fig. 13 effect; run "
        "benchmarks/bench_fig13_quantization_error.py for the full statistics)."
    )


if __name__ == "__main__":
    main()
