"""Mobility scenario: fingerprinting an access point that moves (dataset D2).

The paper's second dataset evaluates DeepCSI while the AP is carried along
the A-B-C-D-B-A path of Fig. 6.  This example reproduces that scenario on a
small scale and contrasts the two training regimes of Fig. 17:

* training on *static* captures only and testing on mobility traces
  (split S5 - the fingerprint does not survive the channel change), and
* training on *mobility* captures and testing on static traces
  (split S6 - the variability in the training set makes the fingerprint
  robust).

Run it with::

    python examples/mobile_beamformer.py
"""

from __future__ import annotations

import time

from repro.core.classifier import ClassifierConfig, DeepCsiClassifier
from repro.core.model import FAST_MODEL_CONFIG
from repro.datasets.features import FeatureConfig, strided_subcarriers
from repro.datasets.generator import DatasetConfig, generate_dataset_d2
from repro.datasets.splits import D2_SPLITS, d2_split
from repro.nn.training import TrainingConfig

NUM_MODULES = 5


def train_and_report(split_name, dataset, description):
    """Train DeepCSI on one Table-II split and print the resulting report."""
    train_samples, test_samples = d2_split(
        dataset, D2_SPLITS[split_name], beamformee_id=1
    )
    classifier = DeepCsiClassifier(
        ClassifierConfig(
            num_classes=NUM_MODULES,
            feature=FeatureConfig(
                stream_indices=(0,),
                subcarrier_positions=strided_subcarriers(234, 4),
            ),
            model=FAST_MODEL_CONFIG,
            training=TrainingConfig(epochs=12, batch_size=32),
            learning_rate=2e-3,
        )
    )
    start = time.time()
    classifier.fit(train_samples)
    report = classifier.evaluate(test_samples, label=f"{split_name} ({description})")
    print(
        f"{split_name} - {description}: accuracy "
        f"{100.0 * report.accuracy:.2f}% "
        f"({len(train_samples)} train / {len(test_samples)} test samples, "
        f"{time.time() - start:.1f} s)"
    )
    return report


def main() -> None:
    print("Generating a miniature dynamic dataset (D2 structure)...")
    start = time.time()
    dataset = generate_dataset_d2(
        DatasetConfig(num_modules=NUM_MODULES, soundings_per_trace=16)
    )
    print(dataset.summary())
    print(f"  generated in {time.time() - start:.1f} s\n")

    print("Comparing the two training regimes of Fig. 17:\n")
    static_to_mobile = train_and_report(
        "S5", dataset, "train on static traces, test on mobility traces"
    )
    mobile_to_static = train_and_report(
        "S6", dataset, "train on mobility traces, test on static traces"
    )

    print()
    print("Confusion matrix for the mobility-trained model (S6):")
    print(mobile_to_static)
    print()
    gap = mobile_to_static.accuracy - static_to_mobile.accuracy
    print(
        "Training-set variability drives robustness: the mobility-trained "
        f"model outperforms the static-trained one by "
        f"{100.0 * gap:.1f} accuracy points, matching the qualitative "
        "finding of the paper (88.1% vs 20.5%)."
    )


if __name__ == "__main__":
    main()
