"""Open-set authentication: flagging Wi-Fi modules that were never enrolled.

The paper motivates radio fingerprinting with spectrum-access enforcement: a
monitor must not only recognise the enrolled transmitters but also flag
radios it has never seen.  This example builds that scenario on top of the
DeepCSI classifier:

1. generate a small static dataset with 8 Wi-Fi modules,
2. enrol (train on) the first 6 modules only,
3. calibrate an acceptance threshold on the enrolled modules' feedback,
4. evaluate how well the monitor accepts enrolled modules, classifies them
   correctly, and rejects the 2 never-seen modules.

Run it with::

    python examples/openset_authentication.py

It completes in about a minute on a laptop CPU.
"""

from __future__ import annotations

import time

from repro.analysis.ascii_plots import bar_chart
from repro.core.classifier import ClassifierConfig, DeepCsiClassifier
from repro.core.model import FAST_MODEL_CONFIG
from repro.core.openset import (
    OpenSetAuthenticator,
    calibrate_threshold,
    evaluate_open_set,
)
from repro.datasets.features import FeatureConfig, strided_subcarriers
from repro.datasets.generator import DatasetConfig, generate_dataset_d1
from repro.datasets.splits import D1_SPLITS, d1_split
from repro.nn.training import TrainingConfig
from repro.phy.ofdm import sounding_layout

#: Modules the monitor is allowed to authenticate.
ENROLLED_MODULES = (0, 1, 2, 3, 4, 5)
#: Modules that show up on the air but were never enrolled.
UNKNOWN_MODULES = (6, 7)


def main() -> None:
    start = time.time()
    print("Generating a small D1-style dataset with 8 Wi-Fi modules...")
    config = DatasetConfig(num_modules=8, soundings_per_trace=10)
    dataset = generate_dataset_d1(config)

    layout = sounding_layout(config.bandwidth_mhz)
    feature = FeatureConfig(
        stream_indices=(0,),
        subcarrier_positions=strided_subcarriers(layout.num_subcarriers, 4),
    )

    # Enrolled modules follow the S1 protocol (train on the first 80 % of
    # every trace, test on the rest); unknown modules are test-only.
    enrolled = dataset.filter(module_ids=ENROLLED_MODULES)
    unknown = dataset.filter(module_ids=UNKNOWN_MODULES)
    train, known_test = d1_split(enrolled, D1_SPLITS["S1"], beamformee_id=1)
    unknown_test = unknown.samples(beamformee_id=1)

    print(f"Training the DeepCSI classifier on {len(train)} enrolled samples...")
    classifier = DeepCsiClassifier(
        ClassifierConfig(
            num_classes=len(ENROLLED_MODULES),
            feature=feature,
            model=FAST_MODEL_CONFIG,
            training=TrainingConfig(epochs=12, batch_size=32),
            learning_rate=2e-3,
        )
    )
    classifier.fit(train)

    print("Calibrating the acceptance threshold on enrolled-device feedback...")
    authenticator = OpenSetAuthenticator(classifier, scoring="max_softmax")
    threshold = calibrate_threshold(
        authenticator, train, target_false_reject_rate=0.05
    )
    print(f"  threshold = {threshold:.3f} (targets <= 5% false rejections)")

    metrics = evaluate_open_set(authenticator, known_test, unknown_test)
    print()
    print("Open-set authentication results")
    print("-------------------------------")
    print(
        bar_chart(
            ["enrolled accepted", "enrolled correctly identified", "unknown accepted"],
            [
                100.0 * (1.0 - metrics.false_reject_rate),
                100.0 * metrics.known_accuracy,
                100.0 * metrics.false_accept_rate,
            ],
            width=40,
            unit="%",
            max_value=100.0,
        )
    )
    print(f"score separation (AUROC): {metrics.auroc:.3f}")
    print()
    print(
        "A deployment would alert on the rejected transmissions: they either "
        "come from a radio outside the enrolled population or from an enrolled "
        "radio observed under heavy channel mismatch."
    )
    print(f"done in {time.time() - start:.0f} s")


if __name__ == "__main__":
    main()
