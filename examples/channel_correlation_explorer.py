"""Explore how the synthetic channel decorrelates with position.

DESIGN.md substitutes the paper's over-the-air measurements with a
spatially-correlated fading channel; the correlation length of that channel is
what makes the S1/S2/S3 position splits behave as in the paper.  This example
makes that substitution tangible:

1. plot (in ASCII) the channel correlation versus beamformee displacement for
   three correlation lengths,
2. show the corresponding quantised ``V~`` magnitude across sub-carriers for
   two beamformee positions 10 cm apart and two positions 80 cm apart, and
3. report the training-free separability (Fisher ratio) of the resulting
   fingerprint features at adjacent vs. distant positions.

Run it with::

    python examples/channel_correlation_explorer.py

It needs no CNN training and completes in a few seconds.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.ascii_plots import heatmap, line_plot
from repro.analysis.separability import centroid_separability
from repro.datasets.generator import DatasetConfig, generate_position_trace
from repro.phy.fading import SpatiallyCorrelatedChannel, spatial_correlation
from repro.phy.geometry import BEAMFORMEE1_START

#: Correlation lengths compared in step 1 [m].
CORRELATION_LENGTHS = (0.10, 0.25, 0.50)
#: Displacements probed in step 1 [m].
DISPLACEMENTS = tuple(np.round(np.arange(0.0, 0.85, 0.05), 2))


def explore_correlation_curves() -> None:
    print("1. Channel correlation versus beamformee displacement")
    print("   (one 10 cm step separates adjacent D1 positions)")
    for length in CORRELATION_LENGTHS:
        channel = SpatiallyCorrelatedChannel(
            correlation_length_m=length, environment_seed=11
        )
        curve = spatial_correlation(
            channel, BEAMFORMEE1_START, DISPLACEMENTS, 5.21e9
        )
        values = [value for _, value in curve]
        print(f"   correlation length {length:.2f} m "
              f"(x axis: 0 to {DISPLACEMENTS[-1]:.2f} m displacement)")
        print("   " + line_plot(values, height=6, width=len(values)).replace("\n", "\n   "))
        print()


def explore_v_matrices() -> None:
    print("2. |V~| across sub-carriers for the same module at different positions")
    config = DatasetConfig(num_modules=2, soundings_per_trace=1)
    module = config.modules()[0]
    traces = {
        position: generate_position_trace(module, position, config)
        for position in (1, 2, 9)
    }
    maps = {}
    for position, trace in traces.items():
        sample = next(s for s in trace if s.beamformee_id == 1)
        maps[position] = np.abs(sample.v_tilde[:64, :, 0]).T  # (M, 64 tones)
    for position in (1, 2, 9):
        print(f"   position {position} (rows = TX antennas, columns = sub-carriers)")
        print("   " + heatmap(maps[position]).replace("\n", "\n   "))
    difference_near = np.mean(np.abs(maps[1] - maps[2]))
    difference_far = np.mean(np.abs(maps[1] - maps[9]))
    print(
        f"   mean |V~| difference: positions 1 vs 2 (10 cm apart) = "
        f"{difference_near:.3f}, positions 1 vs 9 (80 cm apart) = {difference_far:.3f}"
    )
    print()


def explore_separability() -> None:
    print("3. Training-free separability of the fingerprint features")
    config = DatasetConfig(num_modules=5, soundings_per_trace=6)
    adjacent_samples = []
    distant_samples = []
    for module in config.modules():
        for position in (1, 2):
            adjacent_samples.extend(
                s
                for s in generate_position_trace(module, position, config)
                if s.beamformee_id == 1
            )
        for position in (1, 9):
            distant_samples.extend(
                s
                for s in generate_position_trace(module, position, config)
                if s.beamformee_id == 1
            )
    adjacent = centroid_separability(adjacent_samples)
    distant = centroid_separability(distant_samples)
    print(
        f"   adjacent positions (1, 2): Fisher ratio {adjacent.fisher_ratio:.2f}, "
        f"nearest-centroid accuracy {100 * adjacent.nearest_centroid_accuracy:.1f}%"
    )
    print(
        f"   distant positions (1, 9):  Fisher ratio {distant.fisher_ratio:.2f}, "
        f"nearest-centroid accuracy {100 * distant.nearest_centroid_accuracy:.1f}%"
    )
    print(
        "   The fingerprint classes stay separable when the channel is shared "
        "or similar; mixing distant positions blurs them, which is exactly why "
        "spatial diversity in the training set matters (Fig. 10)."
    )


def main() -> None:
    explore_correlation_curves()
    explore_v_matrices()
    explore_separability()


if __name__ == "__main__":
    main()
