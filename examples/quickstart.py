"""Quickstart: fingerprint MU-MIMO Wi-Fi modules from beamforming feedback.

This example walks through the minimal DeepCSI workflow:

1. generate a small synthetic static dataset (the D1 structure of the paper:
   one AP whose radio module is swapped between acquisitions, two
   beamformees, nine beamformee positions),
2. split it with the paper's S1 protocol (train and test share the positions,
   80/20 in time),
3. train the DeepCSI CNN on the feedback of beamformee 1, and
4. evaluate the beamformer-identification accuracy and print the confusion
   matrix.

Run it with::

    python examples/quickstart.py

The example uses a reduced configuration (5 modules, few soundings, a small
CNN) so it completes in about a minute on a laptop CPU.  See
``examples/static_authentication.py`` and ``examples/mobile_beamformer.py``
for the full-scale scenarios.
"""

from __future__ import annotations

import time

from repro.core.classifier import ClassifierConfig, DeepCsiClassifier
from repro.core.model import FAST_MODEL_CONFIG
from repro.datasets.features import FeatureConfig, strided_subcarriers
from repro.datasets.generator import DatasetConfig, generate_dataset_d1
from repro.datasets.splits import D1_SPLITS, d1_split
from repro.nn.training import TrainingConfig


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Generate a miniature D1 dataset.
    # ------------------------------------------------------------------ #
    print("Generating a miniature static dataset (D1 structure)...")
    start = time.time()
    dataset_config = DatasetConfig(num_modules=5, soundings_per_trace=12)
    dataset = generate_dataset_d1(dataset_config)
    print(dataset.summary())
    print(f"  generated in {time.time() - start:.1f} s\n")

    # ------------------------------------------------------------------ #
    # 2. Apply the S1 split (Table I) for beamformee 1.
    # ------------------------------------------------------------------ #
    train_samples, test_samples = d1_split(
        dataset, D1_SPLITS["S1"], beamformee_id=1
    )
    print(f"S1 split: {len(train_samples)} training / {len(test_samples)} test samples\n")

    # ------------------------------------------------------------------ #
    # 3. Train the DeepCSI classifier.
    # ------------------------------------------------------------------ #
    classifier = DeepCsiClassifier(
        ClassifierConfig(
            num_classes=dataset_config.num_modules,
            feature=FeatureConfig(
                stream_indices=(0,),  # spatial stream 0, as in the paper
                subcarrier_positions=strided_subcarriers(234, 4),
            ),
            model=FAST_MODEL_CONFIG,
            training=TrainingConfig(epochs=12, batch_size=32, verbose=True),
            learning_rate=2e-3,
        )
    )
    print("Training DeepCSI...")
    start = time.time()
    history = classifier.fit(train_samples)
    print(
        f"  trained {classifier.num_parameters} parameters in "
        f"{time.time() - start:.1f} s "
        f"(best validation accuracy {100 * history.best_val_accuracy:.1f}%)\n"
    )

    # ------------------------------------------------------------------ #
    # 4. Evaluate on the held-out feedback.
    # ------------------------------------------------------------------ #
    report = classifier.evaluate(test_samples, label="S1 / beamformee 1 / stream 0")
    print(report)


if __name__ == "__main__":
    main()
