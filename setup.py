"""Setup shim for environments without PEP 517 build isolation (offline)."""
from setuptools import setup

setup()
