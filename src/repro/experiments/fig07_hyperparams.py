"""Fig. 7: DNN hyper-parameter selection (conv layers and filter count).

The paper sweeps the number of convolutional layers (Fig. 7a, 2..7 layers at
128 filters) and the number of filters per layer (Fig. 7b, 16..256 filters at
5 layers), reporting the S1 validation accuracy against the number of
trainable parameters.  The reproduction target is the observed behaviour:
accuracy is nearly flat in the layer count and grows (with diminishing
returns) with the filter count, while the parameter count grows steeply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.datasets.splits import D1_SPLITS, d1_split
from repro.experiments.common import (
    cached_dataset_d1,
    default_feature_config,
    train_and_evaluate,
)
from repro.experiments.profiles import ExperimentProfile, get_profile

#: Sweep values used by the fast profile (subset of the paper's sweep).
FAST_LAYER_SWEEP = (2, 3, 5)
FAST_FILTER_SWEEP = (8, 24, 48)
#: Sweep values used by the full profile (the paper's sweep).
FULL_LAYER_SWEEP = (2, 3, 4, 5, 6, 7)
FULL_FILTER_SWEEP = (16, 32, 64, 128, 256)


@dataclass(frozen=True)
class HyperparamPoint:
    """One point of a hyper-parameter sweep."""

    value: int
    num_parameters: int
    validation_accuracy: float
    test_accuracy: float


@dataclass(frozen=True)
class HyperparamResult:
    """Results of the Fig. 7 sweeps."""

    layer_sweep: Tuple[HyperparamPoint, ...]
    filter_sweep: Tuple[HyperparamPoint, ...]


def _sweep_values(profile: ExperimentProfile) -> Tuple[Sequence[int], Sequence[int]]:
    if profile.name == "full":
        return FULL_LAYER_SWEEP, FULL_FILTER_SWEEP
    return FAST_LAYER_SWEEP, FAST_FILTER_SWEEP


def run(profile: Optional[ExperimentProfile] = None) -> HyperparamResult:
    """Run both hyper-parameter sweeps on the S1 split (beamformee 1)."""
    profile = profile if profile is not None else get_profile()
    dataset = cached_dataset_d1(profile)
    train, test = d1_split(dataset, D1_SPLITS["S1"], beamformee_id=1)
    feature_config = default_feature_config(profile)
    layer_values, filter_values = _sweep_values(profile)

    layer_points: List[HyperparamPoint] = []
    for num_layers in layer_values:
        model_config = profile.model.with_conv_layers(num_layers)
        evaluation = train_and_evaluate(
            train,
            test,
            profile,
            feature_config=feature_config,
            model_config=model_config,
            label=f"S1 / {num_layers} conv layers",
        )
        layer_points.append(
            HyperparamPoint(
                value=num_layers,
                num_parameters=evaluation.num_parameters,
                validation_accuracy=evaluation.history.best_val_accuracy,
                test_accuracy=evaluation.accuracy,
            )
        )

    filter_points: List[HyperparamPoint] = []
    for num_filters in filter_values:
        model_config = profile.model.with_filters(num_filters)
        evaluation = train_and_evaluate(
            train,
            test,
            profile,
            feature_config=feature_config,
            model_config=model_config,
            label=f"S1 / {num_filters} filters",
        )
        filter_points.append(
            HyperparamPoint(
                value=num_filters,
                num_parameters=evaluation.num_parameters,
                validation_accuracy=evaluation.history.best_val_accuracy,
                test_accuracy=evaluation.accuracy,
            )
        )
    return HyperparamResult(
        layer_sweep=tuple(layer_points), filter_sweep=tuple(filter_points)
    )


def format_report(result: HyperparamResult) -> str:
    """Text report mirroring Fig. 7a/7b."""
    lines = ["Fig. 7a - accuracy vs. number of convolutional layers (S1 validation)"]
    lines.append(f"{'layers':>8s} {'params':>10s} {'val acc':>9s} {'test acc':>9s}")
    for point in result.layer_sweep:
        lines.append(
            f"{point.value:>8d} {point.num_parameters:>10d} "
            f"{100.0 * point.validation_accuracy:>8.2f}% "
            f"{100.0 * point.test_accuracy:>8.2f}%"
        )
    lines.append("")
    lines.append("Fig. 7b - accuracy vs. number of filters per layer (S1 validation)")
    lines.append(f"{'filters':>8s} {'params':>10s} {'val acc':>9s} {'test acc':>9s}")
    for point in result.filter_sweep:
        lines.append(
            f"{point.value:>8d} {point.num_parameters:>10d} "
            f"{100.0 * point.validation_accuracy:>8.2f}% "
            f"{100.0 * point.test_accuracy:>8.2f}%"
        )
    return "\n".join(lines)
