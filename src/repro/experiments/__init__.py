"""Reproduction of every figure of the paper's evaluation section.

Each ``figNN_*`` module exposes:

* a ``run(profile)`` function returning a result dataclass, and
* a ``format_report(result)`` function rendering the same rows/series the
  paper reports as plain text.

``profile`` selects between the CPU-friendly ``fast`` configuration (default)
and the paper-scale ``full`` configuration; see
:mod:`repro.experiments.profiles`.
"""

from repro.experiments.profiles import (
    ExperimentProfile,
    FAST_PROFILE,
    FULL_PROFILE,
    get_profile,
)
from repro.experiments import (
    fig07_hyperparams,
    fig08_static_splits,
    fig09_mixed_beamformees,
    fig10_training_positions,
    fig11_cross_beamformee,
    fig12_phy_parameters,
    fig13_quantization_error,
    fig14_v_time_evolution,
    fig15_second_stream,
    fig16_offset_correction,
    fig17_mobility,
)

__all__ = [
    "ExperimentProfile",
    "FAST_PROFILE",
    "FULL_PROFILE",
    "get_profile",
    "fig07_hyperparams",
    "fig08_static_splits",
    "fig09_mixed_beamformees",
    "fig10_training_positions",
    "fig11_cross_beamformee",
    "fig12_phy_parameters",
    "fig13_quantization_error",
    "fig14_v_time_evolution",
    "fig15_second_stream",
    "fig16_offset_correction",
    "fig17_mobility",
]
