"""Fig. 16: DeepCSI vs. learning from a phase-offset-corrected input.

The comparison applies the CSI phase-cleaning algorithm of ref. [36] to the
``V~`` matrices before feature extraction.  Because most of the cleaned phase
terms originate in the transmitter hardware, cleaning removes part of the
fingerprint and the accuracy drops on every split (paper: S1 drops from
98.02 % to 83.10 %).  The reproduction target is that the raw-input DeepCSI
outperforms the offset-corrected variant on every split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.offset_correction import correct_samples
from repro.datasets.splits import D1_SPLITS, d1_split
from repro.experiments.common import (
    TrainedEvaluation,
    cached_dataset_d1,
    default_feature_config,
    train_and_evaluate,
)
from repro.experiments.profiles import ExperimentProfile, get_profile

#: Paper accuracies on S1 [%]: raw DeepCSI vs. offset-corrected input.
PAPER_S1_ACCURACY = {"deepcsi": 98.02, "offset_corrected": 83.10}


@dataclass(frozen=True)
class OffsetCorrectionResult:
    """Raw vs. offset-corrected accuracy per split."""

    raw: Dict[str, TrainedEvaluation]
    corrected: Dict[str, TrainedEvaluation]

    def accuracy_gap(self, split_name: str) -> float:
        """Raw-minus-corrected accuracy difference for a split."""
        return self.raw[split_name].accuracy - self.corrected[split_name].accuracy


def run(
    profile: Optional[ExperimentProfile] = None,
    beamformee_id: int = 1,
    split_names: Tuple[str, ...] = ("S1", "S2", "S3"),
) -> OffsetCorrectionResult:
    """Train on raw and on offset-corrected inputs for every split."""
    profile = profile if profile is not None else get_profile()
    dataset = cached_dataset_d1(profile)
    feature_config = default_feature_config(profile)

    raw: Dict[str, TrainedEvaluation] = {}
    corrected: Dict[str, TrainedEvaluation] = {}
    for split_name in split_names:
        split = D1_SPLITS[split_name]
        train, test = d1_split(dataset, split, beamformee_id=beamformee_id)
        raw[split_name] = train_and_evaluate(
            train,
            test,
            profile,
            feature_config=feature_config,
            label=f"{split_name} / raw",
        )
        corrected[split_name] = train_and_evaluate(
            correct_samples(train),
            correct_samples(test),
            profile,
            feature_config=feature_config,
            label=f"{split_name} / offset corrected",
        )
    return OffsetCorrectionResult(raw=raw, corrected=corrected)


def format_report(result: OffsetCorrectionResult) -> str:
    """Text report mirroring Fig. 16a."""
    lines = ["Fig. 16 - DeepCSI vs. offset-corrected input (beamformee 1, stream 0)"]
    lines.append(f"{'split':>6s} {'DeepCSI':>10s} {'offs. corr.':>12s} {'gap':>8s}")
    for split_name in sorted(result.raw):
        raw_acc = result.raw[split_name].accuracy
        corr_acc = result.corrected[split_name].accuracy
        lines.append(
            f"{split_name:>6s} {100.0 * raw_acc:>9.2f}% {100.0 * corr_acc:>11.2f}% "
            f"{100.0 * (raw_acc - corr_acc):>7.2f}%"
        )
    lines.append(
        "expected shape: the raw-input DeepCSI outperforms the "
        "offset-corrected variant on every split "
        f"(paper S1: {PAPER_S1_ACCURACY['deepcsi']:.1f}% vs "
        f"{PAPER_S1_ACCURACY['offset_corrected']:.1f}%)"
    )
    return "\n".join(lines)
