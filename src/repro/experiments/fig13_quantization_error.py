"""Fig. 13: PDF of the ``V~`` quantisation error per matrix entry.

The paper simulates 100,000 MU-MIMO channel realisations (TGac ray-tracing
model), derives ``V`` via SVD, quantises the Givens angles with the two
standard codebooks and measures the per-entry reconstruction error of ``V~``.
The key observations to reproduce:

* the error of the *second* spatial stream (second column of ``V~``) is
  larger than the error of the first, for every transmit antenna, because
  Algorithm 1 is recursive and the quantisation error of the first stream
  propagates to the next ones;
* the finer codebook (bψ = 7, bφ = 9) reduces the error by roughly the ratio
  of the quantisation steps (a factor of 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.feedback.givens import compress_v_matrix, compression_error, reconstruct_v_matrix
from repro.feedback.quantization import QuantizationConfig, quantization_roundtrip
from repro.phy.channel import MultipathChannel
from repro.phy.devices import AccessPoint, make_beamformee, make_module_population
from repro.phy.geometry import AP_POSITION_A, beamformee_positions
from repro.phy.mimo import beamforming_matrix, compute_cfr
from repro.phy.ofdm import sounding_layout

#: The two standard codebooks compared in Fig. 13 (b_psi, b_phi).
CODEBOOKS = ((5, 7), (7, 9))


@dataclass(frozen=True)
class QuantizationErrorStats:
    """Error statistics for one codebook.

    ``mean_error`` and ``percentile_90`` are indexed ``[antenna, stream]``
    (i.e. the six curves of each Fig. 13 panel for M = 3, N_SS = 2);
    ``histograms`` maps ``(antenna, stream)`` to ``(bin_edges, density)``.
    """

    b_psi: int
    b_phi: int
    mean_error: np.ndarray
    percentile_90: np.ndarray
    histograms: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]]


@dataclass(frozen=True)
class QuantizationErrorResult:
    """Per-codebook quantisation error statistics."""

    stats: Dict[Tuple[int, int], QuantizationErrorStats]
    num_realizations: int

    def mean_error(self, b_psi: int, b_phi: int) -> np.ndarray:
        """Mean per-entry error for a given codebook, shape ``(M, N_SS)``."""
        return self.stats[(b_psi, b_phi)].mean_error


def run(
    profile: Optional[ExperimentProfile] = None,
    num_realizations: Optional[int] = None,
    num_streams: int = 2,
) -> QuantizationErrorResult:
    """Measure the quantisation error over random channel realisations.

    ``num_realizations`` counts independent sounding packets; every packet
    contributes ``K`` per-sub-carrier matrices, so the fast default already
    aggregates tens of thousands of ``V`` matrices.
    """
    profile = profile if profile is not None else get_profile()
    if num_realizations is None:
        num_realizations = 40 if profile.name == "fast" else 400

    layout = sounding_layout(80)
    modules = make_module_population(num_modules=2, seed=profile.base_seed)
    access_point = AccessPoint(module=modules[0], position=AP_POSITION_A)
    bf_pos, _ = beamformee_positions(5)
    beamformee = make_beamformee(1, bf_pos, num_antennas=2, num_streams=num_streams)
    rng = np.random.default_rng(profile.base_seed)

    errors = {codebook: [] for codebook in CODEBOOKS}
    for index in range(num_realizations):
        channel = MultipathChannel(environment_seed=profile.base_seed + index)
        cfr = compute_cfr(access_point, beamformee, channel, layout, rng)
        v_matrix = beamforming_matrix(cfr, num_streams)
        angles = compress_v_matrix(v_matrix)
        for b_psi, b_phi in CODEBOOKS:
            config = QuantizationConfig(b_phi=b_phi, b_psi=b_psi)
            reconstructed = reconstruct_v_matrix(
                quantization_roundtrip(angles, config)
            )
            errors[(b_psi, b_phi)].append(compression_error(v_matrix, reconstructed))

    stats: Dict[Tuple[int, int], QuantizationErrorStats] = {}
    for codebook, error_list in errors.items():
        stacked = np.concatenate(error_list, axis=0)  # (num_realizations*K, M, N_SS)
        histograms: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}
        for antenna in range(stacked.shape[1]):
            for stream in range(stacked.shape[2]):
                density, edges = np.histogram(
                    stacked[:, antenna, stream], bins=50, density=True
                )
                histograms[(antenna, stream)] = (edges, density)
        stats[codebook] = QuantizationErrorStats(
            b_psi=codebook[0],
            b_phi=codebook[1],
            mean_error=stacked.mean(axis=0),
            percentile_90=np.percentile(stacked, 90, axis=0),
            histograms=histograms,
        )
    return QuantizationErrorResult(stats=stats, num_realizations=num_realizations)


def format_report(result: QuantizationErrorResult) -> str:
    """Text report mirroring Fig. 13a/13b."""
    lines = [
        "Fig. 13 - per-entry quantisation error of V~ "
        f"({result.num_realizations} sounding realisations)"
    ]
    for (b_psi, b_phi), stats in sorted(result.stats.items()):
        lines.append(f"  codebook b_psi={b_psi}, b_phi={b_phi}:")
        num_antennas, num_streams = stats.mean_error.shape
        for stream in range(num_streams):
            for antenna in range(num_antennas):
                lines.append(
                    f"    [V~]_{antenna + 1},{stream + 1}: "
                    f"mean={stats.mean_error[antenna, stream]:.5f}  "
                    f"p90={stats.percentile_90[antenna, stream]:.5f}"
                )
    lines.append(
        "expected shape: stream 2 errors exceed stream 1 errors; the "
        "(7, 9) codebook shrinks the error by roughly 4x"
    )
    return "\n".join(lines)
