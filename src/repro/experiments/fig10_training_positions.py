"""Fig. 10: accuracy as a function of the number of training positions.

For every split the paper progressively reduces the number of beamformee
positions available at training time (from 9 to 1 for S1, from 5 to 1 for
S2/S3) and observes that accuracy grows monotonically (on average) with the
number of training positions - the fingerprint benefits from spatial
diversity in the training data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datasets.splits import D1_SPLITS, d1_split
from repro.experiments.common import (
    cached_dataset_d1,
    default_feature_config,
    train_and_evaluate,
)
from repro.experiments.profiles import ExperimentProfile, get_profile

#: Number-of-position sweeps per split for the two profiles.
FAST_SWEEPS: Dict[str, Tuple[int, ...]] = {
    "S1": (1, 3, 6, 9),
    "S2": (1, 3, 5),
    "S3": (1, 3, 5),
}
FULL_SWEEPS: Dict[str, Tuple[int, ...]] = {
    "S1": tuple(range(1, 10)),
    "S2": tuple(range(1, 6)),
    "S3": tuple(range(1, 6)),
}


@dataclass(frozen=True)
class PositionSweepPoint:
    """Accuracy obtained with a given number of training positions."""

    num_positions: int
    accuracy: float


@dataclass(frozen=True)
class TrainingPositionsResult:
    """Per-split accuracy-vs-positions series."""

    series: Dict[str, Tuple[PositionSweepPoint, ...]]

    def accuracies(self, split_name: str) -> List[float]:
        """Accuracy series of one split, ordered by number of positions."""
        return [point.accuracy for point in self.series[split_name]]


def run(
    profile: Optional[ExperimentProfile] = None, beamformee_id: int = 1
) -> TrainingPositionsResult:
    """Sweep the number of training positions for every Table-I split."""
    profile = profile if profile is not None else get_profile()
    dataset = cached_dataset_d1(profile)
    feature_config = default_feature_config(profile)
    sweeps = FULL_SWEEPS if profile.name == "full" else FAST_SWEEPS

    series: Dict[str, Tuple[PositionSweepPoint, ...]] = {}
    for split_name, split in D1_SPLITS.items():
        points: List[PositionSweepPoint] = []
        for num_positions in sweeps[split_name]:
            train, test = d1_split(
                dataset,
                split,
                beamformee_id=beamformee_id,
                num_train_positions=num_positions,
            )
            evaluation = train_and_evaluate(
                train,
                test,
                profile,
                feature_config=feature_config,
                label=f"{split_name} / {num_positions} training positions",
            )
            points.append(
                PositionSweepPoint(
                    num_positions=num_positions, accuracy=evaluation.accuracy
                )
            )
        series[split_name] = tuple(points)
    return TrainingPositionsResult(series=series)


def format_report(result: TrainingPositionsResult) -> str:
    """Text report mirroring Fig. 10."""
    lines = ["Fig. 10 - accuracy vs. number of training positions (beamformee 1)"]
    for split_name in sorted(result.series):
        lines.append(f"  {split_name}:")
        for point in result.series[split_name]:
            lines.append(
                f"    {point.num_positions:2d} positions -> "
                f"{100.0 * point.accuracy:6.2f}%"
            )
    lines.append(
        "expected shape: accuracy increases with more training positions "
        "in every split"
    )
    return "\n".join(lines)
