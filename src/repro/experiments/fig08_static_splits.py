"""Fig. 8: confusion matrices for the S1/S2/S3 splits (beamformee 1, stream 0).

Paper results: S1 = 98.02 %, S2 = 75.41 %, S3 = 42.97 %.  The reproduction
target is the ordering S1 >> S2 >> S3: accuracy degrades as the beamformee
positions seen at test time depart from those seen at training time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.evaluation import ClassificationReport
from repro.datasets.splits import D1_SPLITS, d1_split
from repro.experiments.common import (
    TrainedEvaluation,
    cached_dataset_d1,
    default_feature_config,
    format_accuracy_table,
    train_and_evaluate,
)
from repro.experiments.profiles import ExperimentProfile, get_profile

#: Accuracies reported by the paper [%].
PAPER_ACCURACY = {"S1": 98.02, "S2": 75.41, "S3": 42.97}


@dataclass(frozen=True)
class StaticSplitResult:
    """Per-split evaluation results."""

    evaluations: Dict[str, TrainedEvaluation]
    beamformee_id: int
    stream_index: int

    def accuracy(self, split_name: str) -> float:
        """Test accuracy of one split in ``[0, 1]``."""
        return self.evaluations[split_name].accuracy

    def report(self, split_name: str) -> ClassificationReport:
        """Full classification report (confusion matrix) of one split."""
        return self.evaluations[split_name].report


def run(
    profile: Optional[ExperimentProfile] = None,
    beamformee_id: int = 1,
    stream_index: int = 0,
) -> StaticSplitResult:
    """Train and evaluate DeepCSI on the three Table-I splits."""
    profile = profile if profile is not None else get_profile()
    dataset = cached_dataset_d1(profile)
    feature_config = default_feature_config(profile, stream_indices=(stream_index,))

    evaluations: Dict[str, TrainedEvaluation] = {}
    for split_name, split in D1_SPLITS.items():
        train, test = d1_split(dataset, split, beamformee_id=beamformee_id)
        evaluations[split_name] = train_and_evaluate(
            train,
            test,
            profile,
            feature_config=feature_config,
            label=f"{split_name} / beamformee {beamformee_id} / stream {stream_index}",
        )
    return StaticSplitResult(
        evaluations=evaluations,
        beamformee_id=beamformee_id,
        stream_index=stream_index,
    )


def format_report(result: StaticSplitResult) -> str:
    """Text report mirroring Fig. 8 (accuracies plus confusion matrices)."""
    rows = [(name, ev.accuracy) for name, ev in sorted(result.evaluations.items())]
    lines = [
        format_accuracy_table(
            rows,
            title=(
                f"Fig. 8 - static splits, beamformee {result.beamformee_id}, "
                f"spatial stream {result.stream_index}"
            ),
            paper_values=PAPER_ACCURACY,
        )
    ]
    for name, evaluation in sorted(result.evaluations.items()):
        lines.append("")
        lines.append(str(evaluation.report))
    return "\n".join(lines)
