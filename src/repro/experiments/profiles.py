"""Experiment profiles: fast (CPU-friendly) and full (paper-scale) settings.

Training the DeepCSI CNN in pure numpy is the bottleneck of the benchmark
suite, so every experiment can be scaled through a profile:

* ``fast`` (default): 10 modules, fewer soundings per trace, every fourth
  sub-carrier, a reduced convolution stack and few epochs.  The complete
  benchmark suite runs on a laptop CPU while preserving the *shape* of every
  paper result (orderings, crossovers, relative gaps).
* ``full``: paper-scale inputs (all 234 sub-carriers, the 5x128 CNN) and more
  soundings; expect hours of CPU time.

Select the profile with the ``REPRO_PROFILE`` environment variable
(``fast`` / ``full``) or pass a profile object explicitly to ``run()``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.core.model import DeepCsiModelConfig, FAST_MODEL_CONFIG, PAPER_MODEL_CONFIG
from repro.datasets.generator import DatasetConfig
from repro.nn.training import TrainingConfig

#: Environment variable selecting the default profile.
PROFILE_ENV_VAR = "REPRO_PROFILE"


@dataclass(frozen=True)
class ExperimentProfile:
    """Scaling knobs shared by every experiment.

    Attributes
    ----------
    name:
        ``"fast"`` or ``"full"`` (free-form for custom profiles).
    num_modules:
        Number of Wi-Fi modules (classes).
    d1_soundings_per_trace / d2_soundings_per_trace:
        Soundings per trace per beamformee for datasets D1 and D2.
    subcarrier_stride:
        Keep every ``stride``-th sounded sub-carrier as CNN input (1 keeps
        all 234).
    model:
        CNN architecture configuration.
    epochs / batch_size / early_stopping_patience / learning_rate:
        Training-loop parameters.
    base_seed:
        Seed shared by dataset generation and model initialisation.
    """

    name: str = "fast"
    num_modules: int = 10
    d1_soundings_per_trace: int = 16
    d2_soundings_per_trace: int = 24
    subcarrier_stride: int = 4
    model: DeepCsiModelConfig = field(default_factory=lambda: FAST_MODEL_CONFIG)
    epochs: int = 15
    batch_size: int = 32
    early_stopping_patience: Optional[int] = 5
    learning_rate: float = 2e-3
    base_seed: int = 2022

    def dataset_config(self, soundings_per_trace: Optional[int] = None) -> DatasetConfig:
        """Dataset-generation configuration implied by the profile."""
        return DatasetConfig(
            num_modules=self.num_modules,
            soundings_per_trace=(
                soundings_per_trace
                if soundings_per_trace is not None
                else self.d1_soundings_per_trace
            ),
            base_seed=self.base_seed,
        )

    def d1_config(self) -> DatasetConfig:
        """Dataset configuration for D1."""
        return self.dataset_config(self.d1_soundings_per_trace)

    def d2_config(self) -> DatasetConfig:
        """Dataset configuration for D2."""
        return self.dataset_config(self.d2_soundings_per_trace)

    def training_config(self, seed: int = 0, verbose: bool = False) -> TrainingConfig:
        """Training-loop configuration implied by the profile."""
        return TrainingConfig(
            epochs=self.epochs,
            batch_size=self.batch_size,
            validation_split=0.15,
            shuffle=True,
            early_stopping_patience=self.early_stopping_patience,
            verbose=verbose,
            seed=seed,
        )

    def scaled(self, **changes) -> "ExperimentProfile":
        """Return a copy of the profile with some fields replaced."""
        return replace(self, **changes)


#: Default CPU-friendly profile.
FAST_PROFILE = ExperimentProfile(name="fast")

#: Paper-scale profile (expect long numpy training times).
FULL_PROFILE = ExperimentProfile(
    name="full",
    num_modules=10,
    d1_soundings_per_trace=50,
    d2_soundings_per_trace=60,
    subcarrier_stride=1,
    model=PAPER_MODEL_CONFIG,
    epochs=30,
    batch_size=64,
    early_stopping_patience=6,
    learning_rate=1e-3,
)

_PROFILES = {"fast": FAST_PROFILE, "full": FULL_PROFILE}


def get_profile(name: Optional[str] = None) -> ExperimentProfile:
    """Resolve a profile by name or from the ``REPRO_PROFILE`` variable."""
    if name is None:
        name = os.environ.get(PROFILE_ENV_VAR, "fast")
    try:
        return _PROFILES[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown profile {name!r}; expected one of {sorted(_PROFILES)}"
        ) from exc
