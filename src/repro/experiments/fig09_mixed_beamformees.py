"""Fig. 9: S1/S2/S3 with the feedback of *both* beamformees mixed.

Paper results: S1 = 97.62 %, S2 = 77.38 %, S3 = 47.28 %.  Mixing the two
beamformees slightly improves the harder splits (S2/S3) with respect to
Fig. 8 because the training set contains more spatial diversity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.datasets.splits import D1_SPLITS, d1_split
from repro.experiments.common import (
    TrainedEvaluation,
    cached_dataset_d1,
    default_feature_config,
    format_accuracy_table,
    train_and_evaluate,
)
from repro.experiments.profiles import ExperimentProfile, get_profile

#: Accuracies reported by the paper [%].
PAPER_ACCURACY = {"S1": 97.62, "S2": 77.38, "S3": 47.28}


@dataclass(frozen=True)
class MixedBeamformeeResult:
    """Per-split evaluation results using both beamformees."""

    evaluations: Dict[str, TrainedEvaluation]

    def accuracy(self, split_name: str) -> float:
        """Test accuracy of one split in ``[0, 1]``."""
        return self.evaluations[split_name].accuracy


def run(profile: Optional[ExperimentProfile] = None) -> MixedBeamformeeResult:
    """Train/evaluate on the three splits without filtering by beamformee."""
    profile = profile if profile is not None else get_profile()
    dataset = cached_dataset_d1(profile)
    feature_config = default_feature_config(profile)

    evaluations: Dict[str, TrainedEvaluation] = {}
    for split_name, split in D1_SPLITS.items():
        train, test = d1_split(dataset, split, beamformee_id=None)
        evaluations[split_name] = train_and_evaluate(
            train,
            test,
            profile,
            feature_config=feature_config,
            label=f"{split_name} / mixed beamformees / stream 0",
        )
    return MixedBeamformeeResult(evaluations=evaluations)


def format_report(result: MixedBeamformeeResult) -> str:
    """Text report mirroring Fig. 9."""
    rows = [(name, ev.accuracy) for name, ev in sorted(result.evaluations.items())]
    return format_accuracy_table(
        rows,
        title="Fig. 9 - mixed beamformees, 3 TX antennas, spatial stream 0",
        paper_values=PAPER_ACCURACY,
    )
