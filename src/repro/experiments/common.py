"""Shared helpers for the figure-reproduction experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.classifier import ClassifierConfig, DeepCsiClassifier
from repro.core.evaluation import ClassificationReport
from repro.core.model import DeepCsiModelConfig
from repro.datasets.containers import FeedbackDataset, FeedbackSample
from repro.datasets.features import FeatureConfig, strided_subcarriers
from repro.datasets.generator import generate_dataset_d1, generate_dataset_d2
from repro.experiments.profiles import ExperimentProfile
from repro.nn.training import History
from repro.phy.ofdm import sounding_layout

#: Process-wide dataset cache so the benchmark suite generates D1/D2 once.
_DATASET_CACHE: Dict[Tuple[str, str], FeedbackDataset] = {}


def cached_dataset_d1(profile: ExperimentProfile) -> FeedbackDataset:
    """Dataset D1 for the given profile (generated once per process)."""
    key = ("D1", profile.name)
    if key not in _DATASET_CACHE:
        _DATASET_CACHE[key] = generate_dataset_d1(profile.d1_config())
    return _DATASET_CACHE[key]


def cached_dataset_d2(profile: ExperimentProfile) -> FeedbackDataset:
    """Dataset D2 for the given profile (generated once per process)."""
    key = ("D2", profile.name)
    if key not in _DATASET_CACHE:
        _DATASET_CACHE[key] = generate_dataset_d2(profile.d2_config())
    return _DATASET_CACHE[key]


def clear_dataset_cache() -> None:
    """Drop every cached dataset (useful in tests)."""
    _DATASET_CACHE.clear()


def default_subcarrier_positions(profile: ExperimentProfile) -> Tuple[int, ...]:
    """Sub-carrier positions retained by the profile's stride."""
    layout = sounding_layout(80)
    return strided_subcarriers(layout.num_subcarriers, profile.subcarrier_stride)


def default_feature_config(
    profile: ExperimentProfile,
    stream_indices: Tuple[int, ...] = (0,),
    antenna_indices: Optional[Tuple[int, ...]] = None,
    subcarrier_positions: Optional[Tuple[int, ...]] = None,
) -> FeatureConfig:
    """Feature configuration used by the classification experiments."""
    positions = (
        subcarrier_positions
        if subcarrier_positions is not None
        else default_subcarrier_positions(profile)
    )
    return FeatureConfig(
        antenna_indices=antenna_indices,
        stream_indices=stream_indices,
        subcarrier_positions=positions,
    )


@dataclass(frozen=True)
class TrainedEvaluation:
    """Outcome of one train-and-evaluate run."""

    report: ClassificationReport
    history: History
    num_parameters: int

    @property
    def accuracy(self) -> float:
        """Test accuracy in ``[0, 1]``."""
        return self.report.accuracy


def train_and_evaluate(
    train_samples: Sequence[FeedbackSample],
    test_samples: Sequence[FeedbackSample],
    profile: ExperimentProfile,
    feature_config: Optional[FeatureConfig] = None,
    model_config: Optional[DeepCsiModelConfig] = None,
    label: str = "",
    seed: int = 0,
) -> TrainedEvaluation:
    """Train a DeepCSI classifier on ``train_samples`` and test it.

    The classifier configuration (architecture, epochs, learning rate) comes
    from the profile unless overridden explicitly.
    """
    classifier_config = ClassifierConfig(
        num_classes=profile.num_modules,
        feature=feature_config
        if feature_config is not None
        else default_feature_config(profile),
        model=model_config if model_config is not None else profile.model,
        training=profile.training_config(seed=seed),
        learning_rate=profile.learning_rate,
        seed=seed,
    )
    classifier = DeepCsiClassifier(classifier_config)
    history = classifier.fit(list(train_samples))
    report = classifier.evaluate(list(test_samples), label=label)
    return TrainedEvaluation(
        report=report,
        history=history,
        num_parameters=classifier.num_parameters,
    )


def format_accuracy_table(
    rows: Sequence[Tuple[str, float]], title: str, paper_values: Optional[Dict[str, float]] = None
) -> str:
    """Render ``(label, accuracy)`` rows as a small text table."""
    lines = [title, "-" * len(title)]
    for label, accuracy in rows:
        line = f"{label:<28s} {100.0 * accuracy:6.2f}%"
        if paper_values and label in paper_values:
            line += f"   (paper: {paper_values[label]:.2f}%)"
        lines.append(line)
    return "\n".join(lines)
