"""Fig. 15: classification from the *second* spatial stream.

The second column of ``V~`` suffers a larger quantisation error (Fig. 13),
so using it as the classifier input degrades the accuracy, dramatically so on
the harder splits.  Paper results: S1 = 97.03 %, S2 = 13.32 %, S3 = 5.63 %.
The reproduction target is the ordering and the collapse of S2/S3 relative to
the stream-0 results of Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.experiments import fig08_static_splits
from repro.experiments.common import TrainedEvaluation, format_accuracy_table
from repro.experiments.profiles import ExperimentProfile, get_profile

#: Accuracies reported by the paper [%].
PAPER_ACCURACY = {"S1": 97.03, "S2": 13.32, "S3": 5.63}


@dataclass(frozen=True)
class SecondStreamResult:
    """Per-split evaluation results using spatial stream 1."""

    evaluations: Dict[str, TrainedEvaluation]

    def accuracy(self, split_name: str) -> float:
        """Test accuracy of one split in ``[0, 1]``."""
        return self.evaluations[split_name].accuracy


def run(
    profile: Optional[ExperimentProfile] = None, beamformee_id: int = 1
) -> SecondStreamResult:
    """Rerun the Fig. 8 protocol with the second spatial stream as input."""
    profile = profile if profile is not None else get_profile()
    stream_result = fig08_static_splits.run(
        profile, beamformee_id=beamformee_id, stream_index=1
    )
    return SecondStreamResult(evaluations=stream_result.evaluations)


def format_report(result: SecondStreamResult) -> str:
    """Text report mirroring Fig. 15."""
    rows = [(name, ev.accuracy) for name, ev in sorted(result.evaluations.items())]
    return format_accuracy_table(
        rows,
        title="Fig. 15 - beamformee 1, 3 TX antennas, spatial stream 1",
        paper_values=PAPER_ACCURACY,
    )
