"""Fig. 17: beamformer identification under mobility (dataset D2).

Four evaluations, all with beamformee 1, 3 TX antennas, stream 0:

* **S4 (full path)** -- train and test on different traces of the same
  A-B-C-D-B-A mobility path (paper: 82.56 %).
* **S4 (sub-paths)** -- train on the A-B-C-B half of ``mob1``, test on the
  B-D-B half of ``mob2`` (paper: 41.15 %).
* **S5** -- train on static traces only, test on mobility traces
  (paper: 20.50 %).
* **S6** -- train on mobility traces, test on static traces (paper: 88.12 %).

Reproduction target: S4-full and S6 succeed, S4-sub-path degrades and S5
collapses -- i.e. training-set variability drives robustness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.datasets.splits import D2_SPLITS, d2_split, d2_subpath_split
from repro.experiments.common import (
    TrainedEvaluation,
    cached_dataset_d2,
    default_feature_config,
    format_accuracy_table,
    train_and_evaluate,
)
from repro.experiments.profiles import ExperimentProfile, get_profile

#: Accuracies reported by the paper [%].
PAPER_ACCURACY = {
    "S4 full path": 82.56,
    "S4 sub-paths": 41.15,
    "S5 static->mobile": 20.50,
    "S6 mobile->static": 88.12,
}


@dataclass(frozen=True)
class MobilityResult:
    """Evaluation results of the four mobility scenarios."""

    evaluations: Dict[str, TrainedEvaluation]
    beamformee_id: int

    def accuracy(self, scenario: str) -> float:
        """Test accuracy of one scenario in ``[0, 1]``."""
        return self.evaluations[scenario].accuracy


def run(
    profile: Optional[ExperimentProfile] = None, beamformee_id: int = 1
) -> MobilityResult:
    """Run the four Fig. 17 evaluations on dataset D2."""
    profile = profile if profile is not None else get_profile()
    dataset = cached_dataset_d2(profile)
    feature_config = default_feature_config(profile)
    evaluations: Dict[str, TrainedEvaluation] = {}

    scenarios = {
        "S4 full path": lambda: d2_split(
            dataset, D2_SPLITS["S4"], beamformee_id=beamformee_id
        ),
        "S4 sub-paths": lambda: d2_subpath_split(
            dataset, beamformee_id=beamformee_id
        ),
        "S5 static->mobile": lambda: d2_split(
            dataset, D2_SPLITS["S5"], beamformee_id=beamformee_id
        ),
        "S6 mobile->static": lambda: d2_split(
            dataset, D2_SPLITS["S6"], beamformee_id=beamformee_id
        ),
    }
    for name, splitter in scenarios.items():
        train, test = splitter()
        evaluations[name] = train_and_evaluate(
            train,
            test,
            profile,
            feature_config=feature_config,
            label=f"{name} / beamformee {beamformee_id}",
        )
    return MobilityResult(evaluations=evaluations, beamformee_id=beamformee_id)


def format_report(result: MobilityResult) -> str:
    """Text report mirroring Fig. 17a-17d."""
    rows = [(name, ev.accuracy) for name, ev in result.evaluations.items()]
    lines = [
        format_accuracy_table(
            rows,
            title=f"Fig. 17 - mobility (dataset D2, beamformee {result.beamformee_id})",
            paper_values=PAPER_ACCURACY,
        ),
        "expected shape: S4-full and S6 succeed, S4-sub-paths degrades, "
        "S5 collapses",
    ]
    return "\n".join(lines)
