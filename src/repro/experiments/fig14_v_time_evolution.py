"""Fig. 14: time evolution of ``V~`` in static conditions.

The paper plots the magnitude of every (antenna, stream) entry of the
reconstructed ``V~`` over time and sub-carrier for a static capture, showing
that the second spatial stream is visibly noisier (quantisation error) while
the overall structure is stable over time.  The reproduction produces the
same time-frequency maps and summarises them with two statistics:

* the temporal standard deviation (averaged over sub-carriers) per
  (antenna, stream) entry -- larger for stream 2 than stream 1;
* the temporal correlation between consecutive soundings -- close to one in
  static conditions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.datasets.generator import DatasetConfig, generate_position_trace
from repro.experiments.profiles import ExperimentProfile, get_profile


@dataclass(frozen=True)
class TimeEvolutionResult:
    """Time-frequency magnitude maps of ``V~`` and summary statistics.

    Attributes
    ----------
    magnitude_maps:
        ``maps[(antenna, stream)]`` is a ``(num_soundings, num_subcarriers)``
        array of ``|V~|`` values (the Fig. 14 panels).
    temporal_std:
        Standard deviation over time, averaged over sub-carriers, indexed
        ``[antenna, stream]``.
    temporal_correlation:
        Mean correlation coefficient between consecutive soundings, indexed
        ``[antenna, stream]``.
    """

    magnitude_maps: Dict[Tuple[int, int], np.ndarray]
    temporal_std: np.ndarray
    temporal_correlation: np.ndarray


def run(
    profile: Optional[ExperimentProfile] = None,
    num_soundings: Optional[int] = None,
    num_subcarriers: int = 75,
    beamformee_id: int = 1,
) -> TimeEvolutionResult:
    """Generate a static trace and build the Fig. 14 maps.

    ``num_subcarriers`` limits the plot to the first sub-carriers, as the
    paper does (first 75 OFDM sub-carriers).
    """
    profile = profile if profile is not None else get_profile()
    if num_soundings is None:
        num_soundings = 30 if profile.name == "fast" else 60

    config = DatasetConfig(
        num_modules=2,
        soundings_per_trace=num_soundings,
        base_seed=profile.base_seed,
    )
    module = config.modules()[0]
    trace = generate_position_trace(module, position_id=3, config=config)
    samples = [s for s in trace if s.beamformee_id == beamformee_id]
    if not samples:
        raise ValueError(f"the trace contains no samples for beamformee {beamformee_id}")

    v_stack = np.stack([s.v_tilde for s in samples], axis=0)  # (T, K, M, N_SS)
    v_stack = v_stack[:, :num_subcarriers]
    magnitude = np.abs(v_stack)

    num_antennas = magnitude.shape[2]
    num_streams = magnitude.shape[3]
    maps: Dict[Tuple[int, int], np.ndarray] = {}
    temporal_std = np.zeros((num_antennas, num_streams))
    temporal_corr = np.zeros((num_antennas, num_streams))
    for antenna in range(num_antennas):
        for stream in range(num_streams):
            panel = magnitude[:, :, antenna, stream]  # (T, K')
            maps[(antenna, stream)] = panel
            temporal_std[antenna, stream] = float(np.mean(panel.std(axis=0)))
            correlations = []
            for t in range(panel.shape[0] - 1):
                first, second = panel[t], panel[t + 1]
                if np.std(first) > 0 and np.std(second) > 0:
                    correlations.append(np.corrcoef(first, second)[0, 1])
            temporal_corr[antenna, stream] = (
                float(np.mean(correlations)) if correlations else 1.0
            )
    return TimeEvolutionResult(
        magnitude_maps=maps,
        temporal_std=temporal_std,
        temporal_correlation=temporal_corr,
    )


def format_report(result: TimeEvolutionResult) -> str:
    """Text report mirroring Fig. 14 (summary statistics of the panels)."""
    num_antennas, num_streams = result.temporal_std.shape
    lines = ["Fig. 14 - time evolution of |V~| in static conditions"]
    lines.append(f"{'entry':>10s} {'temporal std':>14s} {'consecutive corr':>18s}")
    for stream in range(num_streams):
        for antenna in range(num_antennas):
            lines.append(
                f"  [V~]_{antenna + 1},{stream + 1:<3d} "
                f"{result.temporal_std[antenna, stream]:>12.5f} "
                f"{result.temporal_correlation[antenna, stream]:>18.4f}"
            )
    lines.append(
        "expected shape: stream 2 entries fluctuate more over time "
        "(quantisation error) while all entries stay highly correlated "
        "across consecutive soundings"
    )
    return "\n".join(lines)
