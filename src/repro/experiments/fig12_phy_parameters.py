"""Fig. 12: impact of the channel bandwidth and the number of TX antennas.

* Fig. 12a: restricting the classifier input to the sub-carriers of the
  nested 40 MHz (110 tones) or 20 MHz (54 tones) channels reduces accuracy,
  especially on the harder S2/S3 splits.
* Fig. 12b: using fewer transmit-antenna rows of ``V~`` (1 or 2 instead of 3)
  also reduces accuracy on S2/S3 while S1 stays roughly constant.

The reproduction target is the monotone trend: more spectrum / more antennas
=> equal or better accuracy, with the largest gains on S2/S3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.datasets.features import strided_subcarriers
from repro.datasets.splits import D1_SPLITS, d1_split
from repro.experiments.common import (
    TrainedEvaluation,
    cached_dataset_d1,
    default_feature_config,
    train_and_evaluate,
)
from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.phy.ofdm import sounding_layout, subband_indices

#: Bandwidths evaluated in Fig. 12a [MHz].
BANDWIDTHS = (80, 40, 20)
#: Antenna selections evaluated in Fig. 12b (rows of the feedback matrix).
ANTENNA_SELECTIONS = ((0, 1, 2), (0, 1), (0,))


@dataclass(frozen=True)
class PhyParameterResult:
    """Accuracy per (split, bandwidth) and per (split, antenna count)."""

    bandwidth_accuracy: Dict[Tuple[str, int], float]
    antenna_accuracy: Dict[Tuple[str, int], float]


def _bandwidth_positions(
    profile: ExperimentProfile, bandwidth_mhz: int
) -> Tuple[int, ...]:
    """Sub-carrier positions of a nested channel, thinned by the profile stride."""
    layout = sounding_layout(80)
    nested = subband_indices(layout, bandwidth_mhz)
    strided = nested[:: profile.subcarrier_stride]
    return tuple(int(p) for p in strided)


def run(
    profile: Optional[ExperimentProfile] = None,
    beamformee_id: int = 1,
    split_names: Tuple[str, ...] = ("S1", "S2", "S3"),
) -> PhyParameterResult:
    """Evaluate every (split, bandwidth) and (split, antennas) combination."""
    profile = profile if profile is not None else get_profile()
    dataset = cached_dataset_d1(profile)

    bandwidth_accuracy: Dict[Tuple[str, int], float] = {}
    antenna_accuracy: Dict[Tuple[str, int], float] = {}
    for split_name in split_names:
        split = D1_SPLITS[split_name]
        train, test = d1_split(dataset, split, beamformee_id=beamformee_id)

        for bandwidth in BANDWIDTHS:
            feature_config = default_feature_config(
                profile,
                subcarrier_positions=_bandwidth_positions(profile, bandwidth),
            )
            evaluation = train_and_evaluate(
                train,
                test,
                profile,
                feature_config=feature_config,
                label=f"{split_name} / {bandwidth} MHz",
            )
            bandwidth_accuracy[(split_name, bandwidth)] = evaluation.accuracy

        for antennas in ANTENNA_SELECTIONS:
            feature_config = default_feature_config(
                profile, antenna_indices=antennas
            )
            evaluation = train_and_evaluate(
                train,
                test,
                profile,
                feature_config=feature_config,
                label=f"{split_name} / {len(antennas)} TX antennas",
            )
            antenna_accuracy[(split_name, len(antennas))] = evaluation.accuracy
    return PhyParameterResult(
        bandwidth_accuracy=bandwidth_accuracy, antenna_accuracy=antenna_accuracy
    )


def format_report(result: PhyParameterResult) -> str:
    """Text report mirroring Fig. 12a and Fig. 12b."""
    splits = sorted({key[0] for key in result.bandwidth_accuracy})
    lines = ["Fig. 12a - accuracy vs. channel bandwidth"]
    header = f"{'split':>6s}" + "".join(f" {bw:>8d}MHz" for bw in BANDWIDTHS)
    lines.append(header)
    for split_name in splits:
        cells = "".join(
            f" {100.0 * result.bandwidth_accuracy[(split_name, bw)]:>10.2f}%"
            for bw in BANDWIDTHS
        )
        lines.append(f"{split_name:>6s}{cells}")
    lines.append("")
    lines.append("Fig. 12b - accuracy vs. number of TX antennas")
    counts = sorted({key[1] for key in result.antenna_accuracy}, reverse=True)
    header = f"{'split':>6s}" + "".join(f" {c:>8d} ant" for c in counts)
    lines.append(header)
    for split_name in splits:
        cells = "".join(
            f" {100.0 * result.antenna_accuracy[(split_name, c)]:>10.2f}%"
            for c in counts
        )
        lines.append(f"{split_name:>6s}{cells}")
    return "\n".join(lines)
