"""Fig. 11: training on one beamformee and testing on the other.

The beamforming feedback carries the hardware imperfections of *both* ends of
the link, so a fingerprint learned from the feedback of beamformee 1 does not
transfer to the feedback of beamformee 2 (and vice versa).  Paper results:
25.86 % and 25.02 % - close to chance level (10 %) and far below the 98 %
same-beamformee accuracy of Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.datasets.splits import D1_SPLITS, d1_cross_beamformee_split
from repro.experiments.common import (
    TrainedEvaluation,
    cached_dataset_d1,
    default_feature_config,
    format_accuracy_table,
    train_and_evaluate,
)
from repro.experiments.profiles import ExperimentProfile, get_profile

#: Accuracies reported by the paper [%].
PAPER_ACCURACY = {"train bf1 / test bf2": 25.86, "train bf2 / test bf1": 25.02}


@dataclass(frozen=True)
class CrossBeamformeeResult:
    """Cross-beamformee evaluation results (both directions)."""

    evaluations: Dict[str, TrainedEvaluation]

    def accuracy(self, direction: str) -> float:
        """Accuracy for ``"train bf1 / test bf2"`` or the reverse."""
        return self.evaluations[direction].accuracy


def run(profile: Optional[ExperimentProfile] = None) -> CrossBeamformeeResult:
    """Train on beamformee 1 / test on 2 and vice versa (S1 positions)."""
    profile = profile if profile is not None else get_profile()
    dataset = cached_dataset_d1(profile)
    feature_config = default_feature_config(profile)
    split = D1_SPLITS["S1"]

    evaluations: Dict[str, TrainedEvaluation] = {}
    for train_bf, test_bf in ((1, 2), (2, 1)):
        train, test = d1_cross_beamformee_split(
            dataset, split, train_beamformee_id=train_bf, test_beamformee_id=test_bf
        )
        label = f"train bf{train_bf} / test bf{test_bf}"
        evaluations[label] = train_and_evaluate(
            train, test, profile, feature_config=feature_config, label=label
        )
    return CrossBeamformeeResult(evaluations=evaluations)


def format_report(result: CrossBeamformeeResult) -> str:
    """Text report mirroring Fig. 11."""
    rows = [(name, ev.accuracy) for name, ev in sorted(result.evaluations.items())]
    return format_accuracy_table(
        rows,
        title="Fig. 11 - swapping the beamformee between training and testing (S1)",
        paper_values=PAPER_ACCURACY,
    )
