"""Weight (de)serialisation for :class:`~repro.nn.model.Sequential` models."""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.nn.model import ModelError, Sequential


def save_weights(model: Sequential, path: Union[str, Path]) -> Path:
    """Save every trainable parameter of ``model`` to an ``.npz`` archive.

    Parameters are stored under their qualified names (``"03_conv/weight"``),
    so the archive is self-describing and robust against accidental loading
    into an architecture with a different layer layout.
    """
    path = Path(path)
    arrays = {name: param for name, param, _ in model.parameters()}
    if not arrays:
        raise ModelError("the model has no trainable parameters to save")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_weights(model: Sequential, path: Union[str, Path]) -> None:
    """Load parameters saved by :func:`save_weights` into ``model``.

    Raises
    ------
    ModelError
        If the archive does not contain exactly the parameters the model
        expects or if any shape differs.
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as archive:
        stored = {name: archive[name] for name in archive.files}
    expected = {name: param for name, param, _ in model.parameters()}
    missing = sorted(set(expected) - set(stored))
    unexpected = sorted(set(stored) - set(expected))
    if missing or unexpected:
        raise ModelError(
            f"weight archive does not match the model: missing={missing}, "
            f"unexpected={unexpected}"
        )
    for name, param in expected.items():
        value = stored[name]
        if value.shape != param.shape:
            raise ModelError(
                f"shape mismatch for {name!r}: expected {param.shape}, "
                f"got {value.shape}"
            )
        param[...] = value
