"""Weight (de)serialisation for :class:`~repro.nn.model.Sequential` models."""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.nn.model import ModelError, Sequential


def save_weights(model: Sequential, path: Union[str, Path]) -> Path:
    """Save every trainable parameter of ``model`` to an ``.npz`` archive.

    Parameters are stored under their qualified names (``"03_conv/weight"``),
    so the archive is self-describing and robust against accidental loading
    into an architecture with a different layer layout.
    """
    path = Path(path)
    arrays = {name: param for name, param, _ in model.parameters()}
    if not arrays:
        raise ModelError("the model has no trainable parameters to save")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_weights(model: Sequential, path: Union[str, Path]) -> None:
    """Load parameters saved by :func:`save_weights` into ``model``.

    Raises
    ------
    ModelError
        If the archive does not contain exactly the parameters the model
        expects or if any shape differs.
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as archive:
        stored = {name: archive[name] for name in archive.files}
    expected = {name: param for name, param, _ in model.parameters()}
    missing = sorted(set(expected) - set(stored))
    unexpected = sorted(set(stored) - set(expected))
    if missing or unexpected:
        raise ModelError(
            f"weight archive does not match the model: missing={missing}, "
            f"unexpected={unexpected}"
        )
    for name, param in expected.items():
        value = stored[name]
        if value.shape != param.shape:
            raise ModelError(
                f"shape mismatch for {name!r}: expected {param.shape}, "
                f"got {value.shape}"
            )
        param[...] = value
    if model.compute is not None:
        model.compute.prepare(model)


#: Archive key holding the compute-backend registry name.
_COMPUTE_NAME_KEY = "__compute__"


def save_compute_state(model: Sequential, path: Union[str, Path]) -> Path:
    """Save the attached compute backend (name + quantised state) to ``.npz``.

    For the ``int8`` backend this persists the per-layer int8 weight
    tensors, their per-output-channel scales and the calibrated activation
    scales, so a restored classifier can serve quantised inference without
    re-calibrating.  ``exact``/``fp32`` backends only record their name.
    """
    backend = model.compute
    if backend is None:
        raise ModelError("the model has no compute backend attached")
    path = Path(path)
    arrays = {_COMPUTE_NAME_KEY: np.asarray(backend.name)}
    arrays.update(backend.state_dict())
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_compute_state(model: Sequential, path: Union[str, Path]):
    """Attach the compute backend saved by :func:`save_compute_state`.

    The backend is re-created from its registry name, prepared against the
    model's current weights, and its serialised state (e.g. int8 tensors and
    calibration scales) is restored.  Returns the attached backend.
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as archive:
        stored = {name: archive[name] for name in archive.files}
    if _COMPUTE_NAME_KEY not in stored:
        raise ModelError(f"{path} is not a compute-state archive")
    name = str(stored.pop(_COMPUTE_NAME_KEY))
    backend = model.set_compute(name)
    backend.load_state_dict(stored)
    return backend
