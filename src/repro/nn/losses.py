"""Loss functions with analytic gradients."""

from __future__ import annotations

from typing import Tuple

import numpy as np


class LossError(ValueError):
    """Raised for invalid loss inputs."""


class SoftmaxCrossEntropy:
    """Softmax + categorical cross-entropy on integer class labels.

    Operating on logits (rather than on explicit softmax outputs) keeps the
    gradient numerically stable: ``d loss / d logits = softmax - onehot``.
    """

    def __init__(self, label_smoothing: float = 0.0) -> None:
        if not 0.0 <= label_smoothing < 1.0:
            raise LossError("label_smoothing must be in [0, 1)")
        self.label_smoothing = label_smoothing
        self._probabilities: np.ndarray | None = None
        self._targets: np.ndarray | None = None

    @staticmethod
    def softmax(logits: np.ndarray) -> np.ndarray:
        """Numerically stable softmax over the last axis."""
        shifted = logits - np.max(logits, axis=-1, keepdims=True)
        exp = np.exp(shifted)
        return exp / np.sum(exp, axis=-1, keepdims=True)

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        """Mean cross-entropy of a batch.

        Parameters
        ----------
        logits:
            Array of shape ``(batch, num_classes)``.
        labels:
            Integer class labels of shape ``(batch,)``.
        """
        logits = np.asarray(logits, dtype=float)
        labels = np.asarray(labels)
        if logits.ndim != 2:
            raise LossError("logits must have shape (batch, num_classes)")
        if labels.shape != (logits.shape[0],):
            raise LossError("labels must have shape (batch,)")
        if labels.min() < 0 or labels.max() >= logits.shape[1]:
            raise LossError("labels out of range for the given logits")

        num_classes = logits.shape[1]
        probabilities = self.softmax(logits)
        targets = np.zeros_like(probabilities)
        targets[np.arange(len(labels)), labels] = 1.0
        if self.label_smoothing > 0.0:
            targets = (
                targets * (1.0 - self.label_smoothing)
                + self.label_smoothing / num_classes
            )
        self._probabilities = probabilities
        self._targets = targets
        log_probs = np.log(np.clip(probabilities, 1e-12, None))
        return float(-np.mean(np.sum(targets * log_probs, axis=1)))

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss with respect to the logits."""
        if self._probabilities is None or self._targets is None:
            raise LossError("backward called before forward")
        batch = self._probabilities.shape[0]
        return (self._probabilities - self._targets) / batch

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> float:
        return self.forward(logits, labels)


class MeanSquaredError:
    """Mean squared error, used by regression-style unit tests."""

    def __init__(self) -> None:
        self._difference: np.ndarray | None = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions = np.asarray(predictions, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if predictions.shape != targets.shape:
            raise LossError("predictions and targets must have the same shape")
        self._difference = predictions - targets
        return float(np.mean(self._difference ** 2))

    def backward(self) -> np.ndarray:
        if self._difference is None:
            raise LossError("backward called before forward")
        return 2.0 * self._difference / self._difference.size

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)


def accuracy(logits_or_probs: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 classification accuracy."""
    predictions = np.argmax(np.asarray(logits_or_probs), axis=-1)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise LossError("predictions and labels must have the same shape")
    return float(np.mean(predictions == labels))
