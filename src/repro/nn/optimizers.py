"""First-order optimisers updating parameters in place."""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np

#: A parameter triple: (qualified name, parameter array, gradient array).
ParameterTriple = Tuple[str, np.ndarray, np.ndarray]


class OptimizerError(ValueError):
    """Raised for invalid optimiser configurations."""


class Optimizer:
    """Base optimiser: keeps per-parameter state keyed by qualified name."""

    def __init__(self, learning_rate: float) -> None:
        if learning_rate <= 0:
            raise OptimizerError("learning_rate must be positive")
        self.learning_rate = learning_rate
        self._state: Dict[str, Dict[str, np.ndarray]] = {}

    def step(self, parameters: Iterable[ParameterTriple]) -> None:
        """Update every parameter in place using its gradient."""
        for name, param, grad in parameters:
            state = self._state.setdefault(name, {})
            self._update(param, grad, state)

    def _update(
        self, param: np.ndarray, grad: np.ndarray, state: Dict[str, np.ndarray]
    ) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        """Drop all accumulated state (momentum, moments, ...)."""
        self._state.clear()


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        learning_rate: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise OptimizerError("momentum must be in [0, 1)")
        if weight_decay < 0.0:
            raise OptimizerError("weight_decay must be non-negative")
        self.momentum = momentum
        self.weight_decay = weight_decay

    def _update(
        self, param: np.ndarray, grad: np.ndarray, state: Dict[str, np.ndarray]
    ) -> None:
        effective = grad
        if self.weight_decay > 0.0:
            effective = effective + self.weight_decay * param
        if self.momentum > 0.0:
            velocity = state.setdefault("velocity", np.zeros_like(param))
            velocity *= self.momentum
            velocity -= self.learning_rate * effective
            param += velocity
        else:
            param -= self.learning_rate * effective


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise OptimizerError("beta coefficients must be in [0, 1)")
        if epsilon <= 0.0:
            raise OptimizerError("epsilon must be positive")
        if weight_decay < 0.0:
            raise OptimizerError("weight_decay must be non-negative")
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.weight_decay = weight_decay

    def _update(
        self, param: np.ndarray, grad: np.ndarray, state: Dict[str, np.ndarray]
    ) -> None:
        effective = grad
        if self.weight_decay > 0.0:
            effective = effective + self.weight_decay * param
        m = state.setdefault("m", np.zeros_like(param))
        v = state.setdefault("v", np.zeros_like(param))
        t = state.setdefault("t", np.zeros(1))
        t += 1.0
        m *= self.beta1
        m += (1.0 - self.beta1) * effective
        v *= self.beta2
        v += (1.0 - self.beta2) * effective ** 2
        m_hat = m / (1.0 - self.beta1 ** t[0])
        v_hat = v / (1.0 - self.beta2 ** t[0])
        param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
