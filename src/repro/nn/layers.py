"""Neural-network layers with analytic forward and backward passes.

Every layer follows the same small protocol:

* ``forward(x, training=False)`` stores whatever it needs for the backward
  pass and returns the output,
* ``backward(grad_output)`` returns the gradient with respect to the input
  and accumulates the parameter gradients,
* ``parameters()`` / ``gradients()`` expose the trainable tensors.

The data layout is ``NCHW`` for image-like tensors and ``(batch, features)``
for dense layers.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.nn.initializers import get_initializer

#: SELU constants from Klambauer et al., "Self-Normalizing Neural Networks".
SELU_ALPHA = 1.6732632423543772
SELU_SCALE = 1.0507009873554805


class LayerError(ValueError):
    """Raised for invalid layer configurations or input shapes."""


class Layer:
    """Base class of all layers."""

    #: Human-readable layer name (overridden per instance).
    name: str = "layer"

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output for input ``x``."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate ``grad_output`` and return the input gradient."""
        raise NotImplementedError

    def parameters(self) -> Dict[str, np.ndarray]:
        """Trainable parameters of the layer (may be empty)."""
        return {}

    def gradients(self) -> Dict[str, np.ndarray]:
        """Gradients matching :meth:`parameters` (may be empty)."""
        return {}

    @property
    def num_parameters(self) -> int:
        """Total number of trainable scalars."""
        return int(sum(p.size for p in self.parameters().values()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class Dense(Layer):
    """Fully connected layer: ``y = x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        initializer: str = "lecun_normal",
        rng: Optional[np.random.Generator] = None,
        name: str = "dense",
    ) -> None:
        if in_features < 1 or out_features < 1:
            raise LayerError("in_features and out_features must be >= 1")
        rng = rng if rng is not None else np.random.default_rng()
        init = get_initializer(initializer)
        self.name = name
        self.weight = init((in_features, out_features), rng)
        self.bias = np.zeros(out_features)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.weight.shape[0]:
            raise LayerError(
                f"{self.name}: expected input of shape (batch, "
                f"{self.weight.shape[0]}), got {x.shape}"
            )
        # The input is only needed by backward; retaining it at inference
        # would pin a full batch of activations alive inside long-lived
        # engine shards.
        self._input = x if training else None
        return x @ self.weight + self.bias

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise LayerError(f"{self.name}: backward called before forward")
        self.grad_weight[...] = self._input.T @ grad_output
        self.grad_bias[...] = np.sum(grad_output, axis=0)
        return grad_output @ self.weight.T

    def parameters(self) -> Dict[str, np.ndarray]:
        return {"weight": self.weight, "bias": self.bias}

    def gradients(self) -> Dict[str, np.ndarray]:
        return {"weight": self.grad_weight, "bias": self.grad_bias}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Dense(in={self.weight.shape[0]}, out={self.weight.shape[1]}, "
            f"name={self.name!r})"
        )


def _pad_same(height: int, width: int, kernel: Tuple[int, int]) -> Tuple[int, int, int, int]:
    """Per-side padding for 'same' convolution with stride 1."""
    pad_h = kernel[0] - 1
    pad_w = kernel[1] - 1
    top = pad_h // 2
    left = pad_w // 2
    return top, pad_h - top, left, pad_w - left


class Conv2D(Layer):
    """2-D convolution (cross-correlation) with stride 1.

    Parameters
    ----------
    in_channels / out_channels:
        Number of input and output feature maps.
    kernel_size:
        ``(kh, kw)`` kernel dimensions.  DeepCSI uses ``(1, 7)``, ``(1, 5)``
        and ``(1, 3)`` kernels, i.e. one-dimensional convolutions along the
        sub-carrier axis.
    padding:
        ``"same"`` (output spatial size equals input size) or ``"valid"``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: Tuple[int, int],
        padding: str = "same",
        initializer: str = "lecun_normal",
        rng: Optional[np.random.Generator] = None,
        name: str = "conv",
    ) -> None:
        if in_channels < 1 or out_channels < 1:
            raise LayerError("channel counts must be >= 1")
        kh, kw = int(kernel_size[0]), int(kernel_size[1])
        if kh < 1 or kw < 1:
            raise LayerError("kernel dimensions must be >= 1")
        if padding not in ("same", "valid"):
            raise LayerError("padding must be 'same' or 'valid'")
        rng = rng if rng is not None else np.random.default_rng()
        init = get_initializer(initializer)
        self.name = name
        self.kernel_size = (kh, kw)
        self.padding = padding
        self.weight = init((out_channels, in_channels, kh, kw), rng)
        self.bias = np.zeros(out_channels)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._padded_input: Optional[np.ndarray] = None
        self._input_shape: Optional[Tuple[int, ...]] = None

    def _pad(self, x: np.ndarray) -> np.ndarray:
        if self.padding == "valid":
            return x
        top, bottom, left, right = _pad_same(x.shape[2], x.shape[3], self.kernel_size)
        return np.pad(x, ((0, 0), (0, 0), (top, bottom), (left, right)))

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.weight.shape[1]:
            raise LayerError(
                f"{self.name}: expected input (batch, {self.weight.shape[1]}, H, W), "
                f"got {x.shape}"
            )
        kh, kw = self.kernel_size
        if self.padding == "valid" and (x.shape[2] < kh or x.shape[3] < kw):
            raise LayerError(
                f"{self.name}: input spatial size {x.shape[2:]} smaller than "
                f"kernel {self.kernel_size}"
            )
        self._input_shape = x.shape
        padded = self._pad(x)
        self._padded_input = padded if training else None
        # im2col: gather every (kh, kw) window as a view, then contract the
        # (channel, kh, kw) axes against the kernel in one BLAS matmul.
        windows = np.lib.stride_tricks.sliding_window_view(
            padded, (kh, kw), axis=(2, 3)
        )  # (batch, c, out_h, out_w, kh, kw)
        out = np.tensordot(windows, self.weight, axes=([1, 4, 5], [1, 2, 3]))
        out = np.ascontiguousarray(np.moveaxis(out, 3, 1))
        out += self.bias[np.newaxis, :, np.newaxis, np.newaxis]
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._padded_input is None or self._input_shape is None:
            raise LayerError(f"{self.name}: backward called before forward")
        padded = self._padded_input
        kh, kw = self.kernel_size
        out_h = grad_output.shape[2]
        out_w = grad_output.shape[3]
        self.grad_bias[...] = np.sum(grad_output, axis=(0, 2, 3))
        grad_padded = np.zeros_like(padded)
        for i in range(kh):
            for j in range(kw):
                patch = padded[:, :, i : i + out_h, j : j + out_w]
                self.grad_weight[:, :, i, j] = np.einsum(
                    "bohw,bchw->oc", grad_output, patch
                )
                grad_padded[:, :, i : i + out_h, j : j + out_w] += np.einsum(
                    "bohw,oc->bchw", grad_output, self.weight[:, :, i, j]
                )
        if self.padding == "valid":
            return grad_padded
        top, bottom, left, right = _pad_same(
            self._input_shape[2], self._input_shape[3], self.kernel_size
        )
        height = self._input_shape[2]
        width = self._input_shape[3]
        return grad_padded[:, :, top : top + height, left : left + width]

    def parameters(self) -> Dict[str, np.ndarray]:
        return {"weight": self.weight, "bias": self.bias}

    def gradients(self) -> Dict[str, np.ndarray]:
        return {"weight": self.grad_weight, "bias": self.grad_bias}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Conv2D(in={self.weight.shape[1]}, out={self.weight.shape[0]}, "
            f"kernel={self.kernel_size}, padding={self.padding!r}, name={self.name!r})"
        )


class MaxPool2D(Layer):
    """Non-overlapping max pooling.

    The input is cropped (not padded) when the spatial dimensions are not a
    multiple of the pool size, matching the common 'valid' pooling behaviour.
    """

    def __init__(self, pool_size: Tuple[int, int] = (1, 2), name: str = "maxpool") -> None:
        ph, pw = int(pool_size[0]), int(pool_size[1])
        if ph < 1 or pw < 1:
            raise LayerError("pool dimensions must be >= 1")
        self.pool_size = (ph, pw)
        self.name = name
        self._windows: Optional[np.ndarray] = None
        self._out: Optional[np.ndarray] = None
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4:
            raise LayerError(f"{self.name}: expected a 4-D input, got {x.shape}")
        ph, pw = self.pool_size
        if x.shape[2] < ph or x.shape[3] < pw:
            raise LayerError(
                f"{self.name}: input spatial size {x.shape[2:]} smaller than "
                f"pool {self.pool_size}"
            )
        self._input_shape = x.shape
        out_h = x.shape[2] // ph
        out_w = x.shape[3] // pw
        cropped = x[:, :, : out_h * ph, : out_w * pw]
        windows = cropped.reshape(x.shape[0], x.shape[1], out_h, ph, out_w, pw)
        out = windows.max(axis=(3, 5))
        # The winner mask is only needed by backward; keep the (view-backed)
        # windows and the output so it can be built lazily there instead of
        # paying for the comparison on every forward.  The windows view keeps
        # the whole input batch alive, so it is not retained at inference.
        self._windows = windows if training else None
        self._out = out if training else None
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._windows is None or self._input_shape is None:
            raise LayerError(f"{self.name}: backward called before forward")
        ph, pw = self.pool_size
        # Mask of the maxima within each window (ties normalised below).
        mask = self._windows == self._out[:, :, :, np.newaxis, :, np.newaxis]
        # Normalise ties so the gradient sums to the output gradient.
        counts = mask.sum(axis=(3, 5), keepdims=True)
        weights = mask / counts
        grad_windows = (
            weights * grad_output[:, :, :, np.newaxis, :, np.newaxis]
        )
        b, c, out_h, _, out_w, _ = grad_windows.shape
        grad_cropped = grad_windows.reshape(b, c, out_h * ph, out_w * pw)
        grad_input = np.zeros(self._input_shape)
        grad_input[:, :, : out_h * ph, : out_w * pw] = grad_cropped
        return grad_input

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MaxPool2D(pool={self.pool_size}, name={self.name!r})"


class Flatten(Layer):
    """Flatten a 4-D tensor into ``(batch, features)``."""

    def __init__(self, name: str = "flatten") -> None:
        self.name = name
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise LayerError(f"{self.name}: backward called before forward")
        return grad_output.reshape(self._input_shape)


class Activation(Layer):
    """Base class of parameter-free element-wise activations."""

    def _activate(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _derivative(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = self._activate(x)
        self._input = x if training else None
        self._output = out if training else None
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None or self._output is None:
            raise LayerError(f"{self.name}: backward requires forward(training=True)")
        return grad_output * self._derivative(self._input, self._output)


class Selu(Activation):
    """Scaled exponential linear unit (the paper's activation of choice)."""

    name = "selu"

    def _activate(self, x: np.ndarray) -> np.ndarray:
        return SELU_SCALE * np.where(x > 0, x, SELU_ALPHA * (np.exp(x) - 1.0))

    def _derivative(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return SELU_SCALE * np.where(x > 0, 1.0, SELU_ALPHA * np.exp(x))


class Relu(Activation):
    """Rectified linear unit."""

    name = "relu"

    def _activate(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)

    def _derivative(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return (x > 0).astype(x.dtype)


class Sigmoid(Activation):
    """Logistic sigmoid."""

    name = "sigmoid"

    def _activate(self, x: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))

    def _derivative(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return y * (1.0 - y)


class Softmax(Layer):
    """Softmax over the last axis.

    Training uses :class:`repro.nn.losses.SoftmaxCrossEntropy` on logits for
    numerical stability; this layer exists for inference-time probability
    outputs and for testing.
    """

    name = "softmax"

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        shifted = x - np.max(x, axis=-1, keepdims=True)
        exp = np.exp(shifted)
        out = exp / np.sum(exp, axis=-1, keepdims=True)
        self._output = out if training else None
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise LayerError(f"{self.name}: backward requires forward(training=True)")
        y = self._output
        dot = np.sum(grad_output * y, axis=-1, keepdims=True)
        return y * (grad_output - dot)


class Dropout(Layer):
    """Standard (inverted) dropout."""

    def __init__(
        self,
        rate: float,
        rng: Optional[np.random.Generator] = None,
        name: str = "dropout",
    ) -> None:
        if not 0.0 <= rate < 1.0:
            raise LayerError("dropout rate must be in [0, 1)")
        self.rate = rate
        self.rng = rng if rng is not None else np.random.default_rng()
        self.name = name
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


class AlphaDropout(Layer):
    """Alpha-dropout, the SELU-compatible dropout of Klambauer et al.

    Dropped activations are set to the SELU saturation value
    ``alpha' = -scale * alpha`` and the result is rescaled so that mean and
    variance are preserved; the paper interposes alpha-dropout between the
    dense layers with retain probabilities 0.5 and 0.2.

    Parameters
    ----------
    retain_probability:
        Probability of *keeping* an activation (the paper quotes retain
        probabilities, so this class follows that convention).
    """

    _ALPHA_PRIME = -SELU_SCALE * SELU_ALPHA

    def __init__(
        self,
        retain_probability: float,
        rng: Optional[np.random.Generator] = None,
        name: str = "alpha_dropout",
    ) -> None:
        if not 0.0 < retain_probability <= 1.0:
            raise LayerError("retain_probability must be in (0, 1]")
        self.retain_probability = retain_probability
        self.rng = rng if rng is not None else np.random.default_rng()
        self.name = name
        self._mask: Optional[np.ndarray] = None
        self._scale_a: float = 1.0

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        keep = self.retain_probability
        if not training or keep >= 1.0:
            self._mask = None
            return x
        alpha_p = self._ALPHA_PRIME
        mask = self.rng.random(x.shape) < keep
        a = (keep + alpha_p ** 2 * keep * (1.0 - keep)) ** -0.5
        b = -a * alpha_p * (1.0 - keep)
        self._mask = mask
        self._scale_a = a
        dropped = np.where(mask, x, alpha_p)
        return a * dropped + b

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask * self._scale_a
