"""Learning-rate schedules for the numpy training substrate.

A scheduler maps an epoch index to a learning rate and can be attached to any
:class:`~repro.nn.optimizers.Optimizer` by calling :meth:`Scheduler.apply`
before each epoch (the :class:`~repro.nn.training.Trainer` accepts one via
its ``fit`` keyword or the schedule can be driven manually).

All schedules are stateless dataclasses: the learning rate for epoch ``e`` is
a pure function of ``e`` and the configuration, which keeps training runs
reproducible and the schedules trivially serialisable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.nn.optimizers import Optimizer


class SchedulerError(ValueError):
    """Raised for invalid scheduler configurations."""


class Scheduler:
    """Base class: maps an epoch index to a learning rate."""

    def learning_rate(self, epoch: int) -> float:
        """Learning rate to use for the given (zero-based) epoch."""
        raise NotImplementedError

    def apply(self, optimizer: Optimizer, epoch: int) -> float:
        """Set the optimiser's learning rate for ``epoch`` and return it."""
        rate = self.learning_rate(epoch)
        optimizer.learning_rate = rate
        return rate


@dataclass(frozen=True)
class ConstantSchedule(Scheduler):
    """A constant learning rate (the default behaviour of the trainer)."""

    base_rate: float

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise SchedulerError("base_rate must be positive")

    def learning_rate(self, epoch: int) -> float:
        if epoch < 0:
            raise SchedulerError("epoch must be non-negative")
        return self.base_rate


@dataclass(frozen=True)
class StepDecay(Scheduler):
    """Multiply the rate by ``gamma`` every ``step_size`` epochs."""

    base_rate: float
    step_size: int
    gamma: float = 0.5

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise SchedulerError("base_rate must be positive")
        if self.step_size < 1:
            raise SchedulerError("step_size must be >= 1")
        if not 0.0 < self.gamma <= 1.0:
            raise SchedulerError("gamma must be in (0, 1]")

    def learning_rate(self, epoch: int) -> float:
        if epoch < 0:
            raise SchedulerError("epoch must be non-negative")
        return self.base_rate * self.gamma ** (epoch // self.step_size)


@dataclass(frozen=True)
class ExponentialDecay(Scheduler):
    """Continuous exponential decay ``base_rate * decay**epoch``."""

    base_rate: float
    decay: float = 0.95

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise SchedulerError("base_rate must be positive")
        if not 0.0 < self.decay <= 1.0:
            raise SchedulerError("decay must be in (0, 1]")

    def learning_rate(self, epoch: int) -> float:
        if epoch < 0:
            raise SchedulerError("epoch must be non-negative")
        return self.base_rate * self.decay ** epoch


@dataclass(frozen=True)
class CosineAnnealing(Scheduler):
    """Cosine annealing from ``base_rate`` down to ``min_rate``.

    The rate reaches ``min_rate`` at ``total_epochs - 1`` and stays there for
    any later epoch (useful when early stopping ends training sooner or the
    run is extended a little).
    """

    base_rate: float
    total_epochs: int
    min_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise SchedulerError("base_rate must be positive")
        if self.total_epochs < 1:
            raise SchedulerError("total_epochs must be >= 1")
        if self.min_rate < 0 or self.min_rate > self.base_rate:
            raise SchedulerError("min_rate must be in [0, base_rate]")

    def learning_rate(self, epoch: int) -> float:
        if epoch < 0:
            raise SchedulerError("epoch must be non-negative")
        if self.total_epochs == 1 or epoch >= self.total_epochs - 1:
            return self.min_rate
        progress = epoch / (self.total_epochs - 1)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_rate + (self.base_rate - self.min_rate) * cosine


@dataclass(frozen=True)
class WarmupSchedule(Scheduler):
    """Linear warm-up for a few epochs, then delegate to another schedule."""

    warmup_epochs: int
    after: Scheduler

    def __post_init__(self) -> None:
        if self.warmup_epochs < 1:
            raise SchedulerError("warmup_epochs must be >= 1")

    def learning_rate(self, epoch: int) -> float:
        if epoch < 0:
            raise SchedulerError("epoch must be non-negative")
        target = self.after.learning_rate(0)
        if epoch < self.warmup_epochs:
            return target * (epoch + 1) / self.warmup_epochs
        return self.after.learning_rate(epoch - self.warmup_epochs)


@dataclass(frozen=True)
class PiecewiseSchedule(Scheduler):
    """Explicit per-milestone learning rates.

    ``milestones`` are epoch indices at which the rate changes to the
    corresponding entry of ``rates``; before the first milestone the
    ``base_rate`` applies.
    """

    base_rate: float
    milestones: Sequence[int]
    rates: Sequence[float]

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise SchedulerError("base_rate must be positive")
        if len(self.milestones) != len(self.rates):
            raise SchedulerError("milestones and rates must have the same length")
        if list(self.milestones) != sorted(self.milestones):
            raise SchedulerError("milestones must be sorted")
        if any(rate <= 0 for rate in self.rates):
            raise SchedulerError("all rates must be positive")

    def learning_rate(self, epoch: int) -> float:
        if epoch < 0:
            raise SchedulerError("epoch must be non-negative")
        rate = self.base_rate
        for milestone, milestone_rate in zip(self.milestones, self.rates):
            if epoch >= milestone:
                rate = milestone_rate
        return rate
