"""Weight initialisation schemes.

The DeepCSI architecture uses SELU activations, whose self-normalising
property requires LeCun-normal initialisation; the other schemes are provided
for completeness and for the baselines.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def _fan_in_out(shape: Sequence[int]) -> Tuple[int, int]:
    """Fan-in / fan-out of a weight tensor.

    Dense weights have shape ``(in, out)``; convolution kernels have shape
    ``(out_channels, in_channels, kh, kw)``.
    """
    shape = tuple(int(s) for s in shape)
    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 4:
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    if len(shape) == 1:
        return shape[0], shape[0]
    raise ValueError(f"unsupported weight shape {shape}")


def lecun_normal(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """LeCun normal initialisation: ``N(0, 1/fan_in)`` (for SELU networks)."""
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(1.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=tuple(shape))


def he_normal(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """He normal initialisation: ``N(0, 2/fan_in)`` (for ReLU networks)."""
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=tuple(shape))


def glorot_uniform(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Glorot (Xavier) uniform initialisation."""
    fan_in, fan_out = _fan_in_out(shape)
    limit = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-limit, limit, size=tuple(shape))


def zeros(shape: Sequence[int], rng: np.random.Generator = None) -> np.ndarray:
    """All-zeros initialisation (biases)."""
    return np.zeros(tuple(shape))


INITIALIZERS = {
    "lecun_normal": lecun_normal,
    "he_normal": he_normal,
    "glorot_uniform": glorot_uniform,
    "zeros": zeros,
}


def get_initializer(name: str):
    """Look up an initialiser by name."""
    try:
        return INITIALIZERS[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown initializer {name!r}; expected one of {sorted(INITIALIZERS)}"
        ) from exc
