"""Pluggable compute backends for the inference forward pass.

Training always runs through the layers' own fp64 ``forward``/``backward``
methods.  *Inference* additionally dispatches through a
:class:`ComputeBackend` attached to the model
(:meth:`repro.nn.model.Sequential.set_compute`), so the always-on streaming
hot path can trade numerics for throughput without touching the layer code:

* ``exact`` (:class:`ExactBackend`) -- delegates to ``layer.forward``;
  bitwise identical to the historical fp64 path.
* ``fp32`` (:class:`Fp32ArenaBackend`) -- float32 weights and activations.
  Every intermediate tensor (padded inputs, im2col patch matrices, GEMM
  outputs, activation maps) lives in a grow-only per-shape *arena* that is
  reused across batches, so steady-state inference performs zero large
  allocations; SELU/sigmoid are computed with fused in-place kernels that
  avoid the ``np.where``/``np.exp`` temporaries of the training path.
* ``int8`` (:class:`Int8Backend`) -- post-training quantisation, the
  thematic twin of the paper's Fig. 13 result that the fingerprints survive
  aggressive quantisation of the beamforming feedback itself.  ``Conv2D``
  and ``Dense`` weights are quantised per *output channel* with symmetric
  int8 scales; activation scales come from a calibration pass over a
  training split.  The im2col matmul runs on the integer-valued quantised
  operands (held in float32 so NumPy can use its BLAS sgemm -- NumPy has no
  int8 GEMM kernel; every product and accumulated sum of the paper's
  geometry stays below 2^24, so the arithmetic is exact integer math), and
  the accumulators are dequantised in fp32 before bias + SELU.  The tiny
  spatial-attention convolution (2 -> 1 channels) deliberately stays fp32,
  the usual mixed-precision treatment of sensitivity-critical layers.

Backends are picklable and deepcopy-able: arenas are dropped from the state
(they are rebuilt lazily), while the prepared weights -- including the int8
tensors and their scales -- travel with the model.  That is how the process
execution backend (:mod:`repro.core.backends`) ships the compute choice and
the quantised weights to its shard workers inside the one-time classifier
startup payload.
"""

from __future__ import annotations

# lint: dtype-strict

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.annotations import hot_path
from repro.arena import ArenaPool
from repro.nn.attention import SpatialAttention
from repro.nn.layers import (
    AlphaDropout,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    Relu,
    SELU_ALPHA,
    SELU_SCALE,
    Selu,
    Sigmoid,
    Softmax,
    _pad_same,
)

#: Quantised integer range of the int8 backend (symmetric, zero-point free).
INT8_LEVELS = 127.0


class ComputeError(ValueError):
    """Raised for invalid compute-backend configurations or usage."""


# ``ArenaPool`` started life here and was promoted to :mod:`repro.arena` so
# the pre-NN preprocessing stages can share it; re-exported for back-compat.


# --------------------------------------------------------------------------- #
# Prepared per-layer states
# --------------------------------------------------------------------------- #
@dataclass
class _DenseState:
    """Float32 copy of a Dense layer's parameters."""

    weight: np.ndarray  # (in_features, out_features) float32
    bias: np.ndarray  # (out_features,) float32

    def gemm_input(self, backend: "Fp32ArenaBackend", key: tuple, x: np.ndarray) -> np.ndarray:
        return x

    def finish(self, accumulator: np.ndarray) -> np.ndarray:
        accumulator += self.bias
        return accumulator


@dataclass
class _QuantDenseState(_DenseState):
    """Int8 per-output-channel quantised Dense parameters.

    ``weight`` holds the *quantised levels* as float32 (integer-valued) so
    the matmul runs on BLAS; ``weight_q``/``weight_scale`` are the canonical
    int8 tensors used for serialisation, ``act_scale`` comes from
    calibration and ``dequant`` is the fused per-channel output factor
    ``act_scale * weight_scale``.
    """

    weight_q: np.ndarray = None  # int8, original parameter shape
    weight_scale: np.ndarray = None  # (out_features,) float32
    act_scale: Optional[float] = None
    dequant: Optional[np.ndarray] = None  # (out_features,) float32

    def set_act_scale(self, act_scale: float) -> None:
        self.act_scale = float(act_scale)
        self.dequant = (self.act_scale * self.weight_scale).astype(np.float32)

    def gemm_input(self, backend: "Fp32ArenaBackend", key: tuple, x: np.ndarray) -> np.ndarray:
        if self.act_scale is None:
            raise ComputeError(
                "the int8 backend has not been calibrated; run "
                "Int8Backend.calibrate() (or pass calibration data to "
                "DeepCsiClassifier.set_compute('int8', calibration=...))"
            )
        quantized = backend._arena.get(key + ("quant",), x.shape)
        np.multiply(x, np.float32(1.0 / self.act_scale), out=quantized)
        np.rint(quantized, out=quantized)
        np.clip(quantized, -INT8_LEVELS, INT8_LEVELS, out=quantized)
        return quantized

    def finish(self, accumulator: np.ndarray) -> np.ndarray:
        accumulator *= self.dequant
        accumulator += self.bias
        return accumulator


@dataclass
class _ConvState:
    """Float32 copy of a Conv2D layer, reshaped for the im2col GEMM."""

    weight2d: np.ndarray  # (kh * kw * in_channels, out_channels) float32
    bias: np.ndarray  # (out_channels,) float32
    kernel: Tuple[int, int]
    padding: str
    in_channels: int
    out_channels: int

    gemm_input = _DenseState.gemm_input
    finish = _DenseState.finish

    def fill_padded(self, interior: np.ndarray, x: np.ndarray) -> None:
        """Write the GEMM input into the interior of the padding arena."""
        np.copyto(interior, x)


@dataclass
class _QuantConvState(_ConvState):
    """Int8 per-output-channel quantised Conv2D parameters."""

    weight_q: np.ndarray = None  # int8, (out_channels, in_channels, kh, kw)
    weight_scale: np.ndarray = None  # (out_channels,) float32
    act_scale: Optional[float] = None
    dequant: Optional[np.ndarray] = None

    set_act_scale = _QuantDenseState.set_act_scale
    gemm_input = _QuantDenseState.gemm_input
    finish = _QuantDenseState.finish

    def fill_padded(self, interior: np.ndarray, x: np.ndarray) -> None:
        # Quantise straight into the padding arena: one multiply replaces
        # the separate quantisation buffer plus its copy (the zero margins
        # quantise to zero, so they need no rescaling).
        if self.act_scale is None:
            raise ComputeError(
                "the int8 backend has not been calibrated; run "
                "Int8Backend.calibrate() (or pass calibration data to "
                "DeepCsiClassifier.set_compute('int8', calibration=...))"
            )
        np.multiply(x, np.float32(1.0 / self.act_scale), out=interior)
        np.rint(interior, out=interior)
        np.clip(interior, -INT8_LEVELS, INT8_LEVELS, out=interior)


@dataclass
class _AttentionState:
    """Prepared state of a SpatialAttention block (its conv stays fp32)."""

    conv: _ConvState


def _per_channel_scales(weight: np.ndarray, channel_axis: int) -> np.ndarray:
    """Symmetric per-output-channel int8 scales (zero channels get scale 1)."""
    reduce_axes = tuple(a for a in range(weight.ndim) if a != channel_axis)
    magnitudes = np.max(np.abs(weight), axis=reduce_axes)
    scales = magnitudes / INT8_LEVELS
    scales[scales == 0.0] = 1.0
    return scales.astype(np.float32)


def _quantize_weight(weight: np.ndarray, channel_axis: int) -> Tuple[np.ndarray, np.ndarray]:
    """Quantise ``weight`` to int8 levels along ``channel_axis``."""
    scales = _per_channel_scales(weight, channel_axis)
    broadcast = [1] * weight.ndim
    broadcast[channel_axis] = -1
    levels = np.clip(
        np.rint(weight / scales.reshape(broadcast)), -INT8_LEVELS, INT8_LEVELS
    )
    return levels.astype(np.int8), scales


def _conv_weight2d(weight: np.ndarray) -> np.ndarray:
    """Reshape a (cout, cin, kh, kw) kernel to the (kh*kw*cin, cout) GEMM form.

    The row order matches the backend's internal NHWC activation layout, so
    the im2col gather copies near-contiguous (kw, cin) blocks.
    """
    cout = weight.shape[0]
    return np.ascontiguousarray(
        weight.transpose(2, 3, 1, 0).reshape(-1, cout), dtype=np.float32
    )


# --------------------------------------------------------------------------- #
# Fused element-wise kernels
# --------------------------------------------------------------------------- #
def fused_selu(x: np.ndarray, out: np.ndarray, scratch: np.ndarray) -> np.ndarray:
    """SELU into ``out`` using one preallocated ``scratch``, no temporaries.

    Identical (up to dtype rounding) to
    ``SELU_SCALE * np.where(x > 0, x, SELU_ALPHA * (np.exp(x) - 1))``:
    ``exp(min(x, 0)) - 1`` is exactly the negative branch for ``x <= 0`` and
    exactly zero for ``x > 0``, so no boolean mask is materialised.
    """
    np.minimum(x, 0.0, out=scratch)
    np.exp(scratch, out=scratch)
    scratch -= 1.0
    scratch *= SELU_ALPHA
    np.maximum(x, 0.0, out=out)
    out += scratch
    out *= SELU_SCALE
    return out


def _fused_sigmoid_inplace(x: np.ndarray) -> np.ndarray:
    """Logistic sigmoid computed in place on ``x``."""
    np.clip(x, -60.0, 60.0, out=x)
    np.negative(x, out=x)
    np.exp(x, out=x)
    x += 1.0
    np.reciprocal(x, out=x)
    return x


# --------------------------------------------------------------------------- #
# Backend base + registry
# --------------------------------------------------------------------------- #
class ComputeBackend:
    """Base class of the pluggable inference compute backends."""

    #: Registry name of the backend.
    name: str = "base"
    #: Whether the backend is the bitwise-exact fp64 delegate.
    is_exact: bool = False

    def prepare(self, model) -> None:
        """One-time preparation for ``model`` (cast/quantise weights)."""

    def forward_layer(self, index: int, layer, x: np.ndarray) -> np.ndarray:
        """Inference forward of one layer."""
        raise NotImplementedError

    def finalize(self, out: np.ndarray) -> np.ndarray:
        """Detach the final output from any internal buffer."""
        return out

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Serialisable backend state (empty for stateless backends)."""
        return {}

    def load_state_dict(self, arrays: Dict[str, np.ndarray]) -> None:
        """Restore state produced by :meth:`state_dict`."""
        if arrays:
            raise ComputeError(
                f"the {self.name!r} backend has no serialisable state, got "
                f"{sorted(arrays)}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class ExactBackend(ComputeBackend):
    """Delegates to the layers' own fp64 forwards (bitwise-preserved)."""

    name = "exact"
    is_exact = True

    def forward_layer(self, index: int, layer, x: np.ndarray) -> np.ndarray:
        return layer.forward(x, training=False)


class Fp32ArenaBackend(ComputeBackend):
    """Float32 forward with preallocated, batch-reusable arenas.

    Internally, 4-d activations flow in NHWC layout: the im2col gather then
    copies near-contiguous ``(kw, channels)`` blocks and the conv GEMM output
    *is* the next layer's input, with no NCHW transpose copy per layer.  The
    model input (NCHW, the reference layout of the fp64 layers) is transposed
    once on ingest and the ``Flatten`` boundary restores the fp64 NCHW
    flattening order, so results stay comparable with the exact backend.
    """

    name = "fp32"
    dtype = np.float32

    def __init__(self) -> None:
        self.model = None
        self._states: List[object] = []
        self._arena = ArenaPool()
        #: Optional hook ``observer(state, x)`` called with every GEMM layer's
        #: fp32 input (used by the int8 calibration pass).
        self.observer: Optional[Callable[[object, np.ndarray], None]] = None

    # -- pickling / deepcopy: arenas are scratch, rebuild them lazily ---- #
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_arena"] = None
        state["observer"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._arena = ArenaPool()

    @property
    def arena_allocations(self) -> int:
        """Number of arena buffer (re)allocations performed so far."""
        return self._arena.allocations

    # -- preparation ----------------------------------------------------- #
    def prepare(self, model) -> None:
        self.model = model
        self._states = [self._prepare_layer(layer) for layer in model.layers]

    def _prepare_layer(self, layer) -> Optional[object]:
        if isinstance(layer, Dense):
            return self._make_dense_state(layer)
        if isinstance(layer, Conv2D):
            return self._make_conv_state(layer)
        if isinstance(layer, SpatialAttention):
            return _AttentionState(conv=self._fp32_conv_state(layer.conv))
        return None

    @staticmethod
    def _fp32_dense_state(layer: Dense) -> _DenseState:
        return _DenseState(
            weight=np.ascontiguousarray(layer.weight, dtype=np.float32),
            bias=layer.bias.astype(np.float32),
        )

    @staticmethod
    def _fp32_conv_state(layer: Conv2D) -> _ConvState:
        return _ConvState(
            weight2d=_conv_weight2d(layer.weight),
            bias=layer.bias.astype(np.float32),
            kernel=layer.kernel_size,
            padding=layer.padding,
            in_channels=layer.weight.shape[1],
            out_channels=layer.weight.shape[0],
        )

    # Overridden by the int8 backend to build quantised states.
    def _make_dense_state(self, layer: Dense) -> _DenseState:
        return self._fp32_dense_state(layer)

    def _make_conv_state(self, layer: Conv2D) -> _ConvState:
        return self._fp32_conv_state(layer)

    @hot_path
    # -- dispatch --------------------------------------------------------- #
    def forward_layer(self, index: int, layer, x: np.ndarray) -> np.ndarray:
        if index == 0:
            x = self._ingest(index, x)
        elif x.dtype != self.dtype:
            cast = self._arena.get((index, "cast"), x.shape, dtype=self.dtype)
            np.copyto(cast, x)
            x = cast
        if isinstance(layer, Conv2D):
            return self._conv((index,), self._states[index], x)
        if isinstance(layer, Dense):
            return self._dense((index,), self._states[index], x)
        if isinstance(layer, Selu):
            return self._selu(index, x)
        if isinstance(layer, Relu):
            out = self._arena.get((index, "out"), x.shape)
            return np.maximum(x, 0.0, out=out)
        if isinstance(layer, Sigmoid):
            out = self._arena.get((index, "out"), x.shape)
            np.copyto(out, x)
            return _fused_sigmoid_inplace(out)
        if isinstance(layer, Softmax) and x.ndim == 2:
            return self._softmax(index, x)
        if isinstance(layer, MaxPool2D):
            return self._maxpool(index, layer, x)
        if isinstance(layer, Flatten):
            return self._flatten(index, x)
        if isinstance(layer, (Dropout, AlphaDropout)):
            return x
        if isinstance(layer, SpatialAttention):
            return self._attention(index, self._states[index], x)
        # Unknown layer types (and axis-sensitive ops on 4-d activations,
        # e.g. a spatial Softmax) fall back to the layer's own fp64 forward
        # in the reference NCHW layout.
        return self._reference_forward(layer, x)

    @hot_path
    def _ingest(self, index: int, x: np.ndarray) -> np.ndarray:
        """Cast the model input to fp32; 4-d NCHW inputs become NHWC."""
        if x.ndim == 4:
            batch, channels, height, width = x.shape
            cast = self._arena.get(
                (index, "ingest"), (batch, height, width, channels)
            )
            np.copyto(cast, x.transpose(0, 2, 3, 1))
            return cast
        if x.dtype != self.dtype:
            cast = self._arena.get((index, "ingest"), x.shape, dtype=self.dtype)
            np.copyto(cast, x)
            return cast
        return x

    def _reference_forward(self, layer, x: np.ndarray) -> np.ndarray:
        reference = x.transpose(0, 3, 1, 2) if x.ndim == 4 else x
        # lint: disable=dtype/float64 -- deliberate exact-fp64 fallback for unsupported layer types
        out = layer.forward(np.asarray(reference, dtype=np.float64), training=False)
        out = np.asarray(out, dtype=self.dtype)
        if out.ndim == 4:
            out = np.ascontiguousarray(out.transpose(0, 2, 3, 1))
        return out

    @hot_path
    def finalize(self, out: np.ndarray) -> np.ndarray:
        # The output aliases an arena buffer that the next batch overwrites.
        return np.array(out, copy=True)  # lint: disable=hot-path/banned-alloc -- the result must escape the arena; one (B, C) copy per batch

    # -- kernels ---------------------------------------------------------- #
    @hot_path
    def _dense(self, key: tuple, state: _DenseState, x: np.ndarray) -> np.ndarray:
        if self.observer is not None:
            self.observer(state, x)
        gemm_in = state.gemm_input(self, key, x)
        out = self._arena.get(key + ("mm",), (x.shape[0], state.weight.shape[1]))
        np.matmul(gemm_in, state.weight, out=out)
        return state.finish(out)

    @hot_path
    def _conv(self, key: tuple, state: _ConvState, x: np.ndarray) -> np.ndarray:
        if self.observer is not None:
            self.observer(state, x)
        batch, height, width, channels = x.shape
        kh, kw = state.kernel
        if state.padding == "same":
            top, bottom, left, right = _pad_same(height, width, state.kernel)
            padded = self._arena.get(
                key + ("pad",),
                (batch, height + top + bottom, width + left + right, channels),
                zero=True,
            )
            state.fill_padded(padded[:, top : top + height, left : left + width], x)
        else:
            padded = state.gemm_input(self, key, x)
        out_h = padded.shape[1] - kh + 1
        out_w = padded.shape[2] - kw + 1
        windows = np.lib.stride_tricks.sliding_window_view(
            padded, (kh, kw), axis=(1, 2)
        )  # (batch, out_h, out_w, c, kh, kw) -- a view, no copy
        col = self._arena.get(
            key + ("col",), (batch, out_h, out_w, kh, kw, channels)
        )
        np.copyto(col, windows.transpose(0, 1, 2, 4, 5, 3))
        rows = batch * out_h * out_w
        accumulator = self._arena.get(key + ("mm",), (rows, state.out_channels))
        np.matmul(
            col.reshape(rows, kh * kw * channels), state.weight2d, out=accumulator
        )
        accumulator = state.finish(accumulator)
        # The GEMM output already is the NHWC activation: no transpose copy.
        return accumulator.reshape(batch, out_h, out_w, state.out_channels)

    @hot_path
    def _selu(self, index: int, x: np.ndarray) -> np.ndarray:
        out = self._arena.get((index, "out"), x.shape)
        scratch = self._arena.get((index, "scratch"), x.shape)
        return fused_selu(x, out, scratch)

    @hot_path
    def _softmax(self, index: int, x: np.ndarray) -> np.ndarray:
        out = self._arena.get((index, "out"), x.shape)
        np.subtract(x, np.max(x, axis=-1, keepdims=True), out=out)
        np.exp(out, out=out)
        out /= np.sum(out, axis=-1, keepdims=True)
        return out

    @hot_path
    def _maxpool(self, index: int, layer: MaxPool2D, x: np.ndarray) -> np.ndarray:
        ph, pw = layer.pool_size
        batch, channels = x.shape[0], x.shape[3]
        out_h = x.shape[1] // ph
        out_w = x.shape[2] // pw
        if out_h < 1 or out_w < 1:
            raise ComputeError(
                f"input spatial size {x.shape[1:3]} smaller than pool {layer.pool_size}"
            )
        cropped = x[:, : out_h * ph, : out_w * pw, :]
        out = self._arena.get((index, "out"), (batch, out_h, out_w, channels))
        # Non-overlapping pooling: the (di, dj) offset grids partition every
        # window, so ph*pw strided maximums replace the generic reduction.
        np.copyto(out, cropped[:, ::ph, ::pw, :])
        for di in range(ph):
            for dj in range(pw):
                if di == 0 and dj == 0:
                    continue
                np.maximum(out, cropped[:, di::ph, dj::pw, :], out=out)
        return out

    @hot_path
    def _flatten(self, index: int, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            return x.reshape(x.shape[0], -1)
        # Restore the fp64 reference flattening order (channel-major NCHW).
        batch, height, width, channels = x.shape
        out = self._arena.get((index, "out"), (batch, channels * height * width))
        np.copyto(
            out.reshape(batch, channels, height, width), x.transpose(0, 3, 1, 2)
        )
        return out

    @hot_path
    def _attention(self, index: int, state: _AttentionState, x: np.ndarray) -> np.ndarray:
        batch, height, width, channels = x.shape
        stacked = self._arena.get((index, "att_in"), (batch, height, width, 2))
        np.max(x, axis=3, out=stacked[..., 0])
        np.mean(x, axis=3, out=stacked[..., 1])
        logits = self._conv((index, "att"), state.conv, stacked)
        weights = _fused_sigmoid_inplace(logits)  # in place on the conv arena
        out = self._arena.get((index, "out"), x.shape)
        np.multiply(x, weights, out=out)
        out += x  # skip connection
        return out


class Int8Backend(Fp32ArenaBackend):
    """Post-training int8 quantised inference (weights + activations).

    ``prepare`` quantises every ``Conv2D``/``Dense`` weight tensor
    per output channel; :meth:`calibrate` then runs a full-precision fp32
    pass over calibration batches, recording the absolute input range of
    each quantised GEMM to derive the symmetric activation scales.  Until
    calibration (or a restored serialised state) provides those scales, the
    backend refuses to run.

    Re-preparation (e.g. after ``set_weights``) re-quantises the weights but
    carries the existing activation scales over by layer position, so a
    fine-tuned model only needs re-calibration when its activation
    distributions actually changed.
    """

    name = "int8"

    def prepare(self, model) -> None:
        previous_scales: Dict[int, float] = {
            index: state.act_scale
            for index, state in enumerate(getattr(self, "_states", []))
            if isinstance(state, (_QuantDenseState, _QuantConvState))
            and state.act_scale is not None
        }
        super().prepare(model)
        for index, scale in previous_scales.items():
            state = self._states[index] if index < len(self._states) else None
            if isinstance(state, (_QuantDenseState, _QuantConvState)):
                state.set_act_scale(scale)

    def _make_dense_state(self, layer: Dense) -> _QuantDenseState:
        weight_q, scales = _quantize_weight(layer.weight, channel_axis=1)
        return _QuantDenseState(
            weight=np.ascontiguousarray(weight_q, dtype=np.float32),
            bias=layer.bias.astype(np.float32),
            weight_q=weight_q,
            weight_scale=scales,
        )

    def _make_conv_state(self, layer: Conv2D) -> _QuantConvState:
        weight_q, scales = _quantize_weight(layer.weight, channel_axis=0)
        return _QuantConvState(
            # lint: disable=dtype/float64 -- prepare-time im2col weights; int8 values round-trip fp64 exactly
            weight2d=_conv_weight2d(weight_q.astype(np.float64)),
            bias=layer.bias.astype(np.float32),
            kernel=layer.kernel_size,
            padding=layer.padding,
            in_channels=layer.weight.shape[1],
            out_channels=layer.weight.shape[0],
            weight_q=weight_q,
            weight_scale=scales,
        )

    @property
    def quantized_states(self) -> Dict[int, object]:
        """Per-layer-index quantised states (serialisation + tests)."""
        return {
            index: state
            for index, state in enumerate(self._states)
            if isinstance(state, (_QuantDenseState, _QuantConvState))
        }

    @property
    def calibrated(self) -> bool:
        """Whether every quantised layer has an activation scale."""
        states = self.quantized_states
        return bool(states) and all(
            state.act_scale is not None for state in states.values()
        )

    def calibrate(self, features: np.ndarray, batch_size: int = 256) -> "Int8Backend":
        """Derive activation scales from a calibration feature batch.

        ``features`` is a (normalised) model-input array, e.g. the training
        split of the Table-I dataset after feature extraction.  A throwaway
        fp32 backend replays it through the model, recording the max
        absolute input of every quantised GEMM; the symmetric activation
        scale of each layer is ``max_abs / 127``.
        """
        if self.model is None:
            raise ComputeError("prepare() must run before calibrate()")
        features = np.asarray(features)
        if features.shape[0] == 0:
            raise ComputeError("calibration requires at least one sample")
        reference = Fp32ArenaBackend()
        reference.prepare(self.model)
        max_abs: Dict[int, float] = {}
        fp32_to_index = {
            id(state): index for index, state in enumerate(reference._states)
        }

        def observe(state: object, x: np.ndarray) -> None:
            index = fp32_to_index.get(id(state))
            if index is not None and index in self.quantized_states:
                magnitude = float(np.max(np.abs(x))) if x.size else 0.0
                max_abs[index] = max(max_abs.get(index, 0.0), magnitude)

        reference.observer = observe
        for start in range(0, features.shape[0], batch_size):
            batch = features[start : start + batch_size]
            out = batch
            for index, layer in enumerate(self.model.layers):
                out = reference.forward_layer(index, layer, out)
        for index, state in self.quantized_states.items():
            magnitude = max_abs.get(index, 0.0)
            state.set_act_scale(magnitude / INT8_LEVELS if magnitude > 0.0 else 1.0)
        return self

    # -- serialisation of the quantised state ---------------------------- #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Quantised weights, weight scales and activation scales by index."""
        arrays: Dict[str, np.ndarray] = {}
        for index, state in self.quantized_states.items():
            if state.act_scale is None:
                raise ComputeError(
                    "cannot serialise an uncalibrated int8 backend; run "
                    "calibrate() first"
                )
            prefix = f"{index:02d}"
            arrays[f"{prefix}/weight_q"] = state.weight_q
            arrays[f"{prefix}/weight_scale"] = state.weight_scale
            arrays[f"{prefix}/act_scale"] = np.asarray(state.act_scale)
        return arrays

    def load_state_dict(self, arrays: Dict[str, np.ndarray]) -> None:
        """Restore quantised weights and scales saved by :meth:`state_dict`."""
        stored = {int(key.split("/", 1)[0]) for key in arrays}
        expected = set(self.quantized_states)
        if stored != expected:
            raise ComputeError(
                f"int8 state does not match the model: stored layer indices "
                f"{sorted(stored)}, expected {sorted(expected)}"
            )
        for index, state in self.quantized_states.items():
            prefix = f"{index:02d}"
            weight_q = np.asarray(arrays[f"{prefix}/weight_q"], dtype=np.int8)
            if weight_q.shape != state.weight_q.shape:
                raise ComputeError(
                    f"int8 weight shape mismatch at layer {index}: stored "
                    f"{weight_q.shape}, expected {state.weight_q.shape}"
                )
            state.weight_q = weight_q
            state.weight_scale = np.asarray(
                arrays[f"{prefix}/weight_scale"], dtype=np.float32
            )
            if isinstance(state, _QuantConvState):
                # lint: disable=dtype/float64 -- prepare-time im2col weights; int8 values round-trip fp64 exactly
                state.weight2d = _conv_weight2d(weight_q.astype(np.float64))
            else:
                state.weight = np.ascontiguousarray(weight_q, dtype=np.float32)
            state.set_act_scale(float(arrays[f"{prefix}/act_scale"]))


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
_REGISTRY: Dict[str, Callable[[], ComputeBackend]] = {}

#: Names accepted by ``--compute`` / ``set_compute`` (registration order).
COMPUTE_NAMES: Tuple[str, ...] = ()


def register_compute_backend(name: str, factory: Callable[[], ComputeBackend]) -> None:
    """Register a backend factory under ``name`` (latest registration wins)."""
    global COMPUTE_NAMES
    _REGISTRY[name] = factory
    if name not in COMPUTE_NAMES:
        COMPUTE_NAMES = COMPUTE_NAMES + (name,)


def compute_backend_names() -> Tuple[str, ...]:
    """Names of every registered compute backend.

    >>> compute_backend_names()
    ('exact', 'fp32', 'int8')
    """
    return COMPUTE_NAMES


def create_compute_backend(compute) -> ComputeBackend:
    """Instantiate a backend from a registry name (or pass one through)."""
    if isinstance(compute, ComputeBackend):
        return compute
    factory = _REGISTRY.get(compute)
    if factory is None:
        raise ComputeError(
            f"unknown compute backend {compute!r}; expected one of {COMPUTE_NAMES}"
        )
    return factory()


register_compute_backend("exact", ExactBackend)
register_compute_backend("fp32", Fp32ArenaBackend)
register_compute_backend("int8", Int8Backend)


__all__ = [
    "COMPUTE_NAMES",
    "ArenaPool",
    "ComputeBackend",
    "ComputeError",
    "ExactBackend",
    "Fp32ArenaBackend",
    "Int8Backend",
    "compute_backend_names",
    "create_compute_backend",
    "fused_selu",
    "register_compute_backend",
]
