"""Sequential model container."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.layers import Layer
from repro.nn.optimizers import ParameterTriple


class ModelError(ValueError):
    """Raised for invalid model operations."""


@dataclass(frozen=True)
class LayerProfile:
    """Accumulated forward-pass timing of one layer."""

    index: int
    name: str
    calls: int
    total_ns: int

    @property
    def mean_ms(self) -> float:
        """Mean forward time per call, in milliseconds."""
        return self.total_ns / self.calls / 1e6 if self.calls else 0.0


class Sequential:
    """A plain feed-forward stack of layers.

    The model simply chains the layers' ``forward``/``backward`` methods and
    exposes the trainable parameters with qualified names such as
    ``"03_conv/weight"`` so the optimiser can keep per-parameter state.

    Inference forwards can additionally be routed through a pluggable
    :mod:`compute backend <repro.nn.compute>` (:meth:`set_compute`) and
    timed per layer (:meth:`enable_profiling`); both are inference-only --
    ``forward(training=True)`` always uses the layers' own fp64 math.
    """

    def __init__(self, layers: Optional[Sequence[Layer]] = None) -> None:
        self.layers: List[Layer] = list(layers) if layers is not None else []
        self._compute = None
        self._profiling = False
        self._profile_calls: List[int] = []
        self._profile_ns: List[int] = []

    def add(self, layer: Layer) -> "Sequential":
        """Append a layer and return ``self`` (for chaining)."""
        self.layers.append(layer)
        if self._compute is not None:
            self._compute.prepare(self)
        return self

    # -- compute backend ------------------------------------------------- #
    @property
    def compute(self):
        """The attached compute backend, or ``None`` for the fp64 default."""
        return self._compute

    def set_compute(self, compute):
        """Route inference forwards through a compute backend.

        ``compute`` is a registry name (``"exact"``, ``"fp32"``, ``"int8"``),
        a :class:`~repro.nn.compute.ComputeBackend` instance, or ``None`` to
        detach and restore the plain fp64 path.  The backend is prepared
        against the current weights and returned.
        """
        if compute is None:
            self._compute = None
            return None
        from repro.nn.compute import create_compute_backend

        backend = create_compute_backend(compute)
        backend.prepare(self)
        self._compute = backend
        return backend

    # -- per-layer profiling --------------------------------------------- #
    def enable_profiling(self) -> None:
        """Accumulate per-layer forward timings (ns + call counts)."""
        self._profiling = True

    def disable_profiling(self) -> None:
        """Stop timing forwards; accumulated counters are kept."""
        self._profiling = False

    def reset_profile(self) -> None:
        """Zero the accumulated per-layer timing counters."""
        self._profile_calls = []
        self._profile_ns = []

    def profile(self) -> Tuple[LayerProfile, ...]:
        """Accumulated per-layer forward timings."""
        return tuple(
            LayerProfile(
                index=index,
                name=layer.name,
                calls=self._profile_calls[index]
                if index < len(self._profile_calls)
                else 0,
                total_ns=self._profile_ns[index]
                if index < len(self._profile_ns)
                else 0,
            )
            for index, layer in enumerate(self.layers)
        )

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the full forward pass.

        Training always uses the layers' own fp64 ``forward``; inference
        dispatches through the attached compute backend when one is set.
        """
        if not self.layers:
            raise ModelError("the model has no layers")
        compute = None if training else self._compute
        if self._profiling:
            return self._forward_profiled(x, training, compute)
        out = x
        if compute is None:
            for layer in self.layers:
                out = layer.forward(out, training=training)
            return out
        for index, layer in enumerate(self.layers):
            out = compute.forward_layer(index, layer, out)
        return compute.finalize(out)

    def _forward_profiled(self, x: np.ndarray, training: bool, compute) -> np.ndarray:
        if len(self._profile_calls) < len(self.layers):
            grow = len(self.layers) - len(self._profile_calls)
            self._profile_calls.extend([0] * grow)
            self._profile_ns.extend([0] * grow)
        out = x
        for index, layer in enumerate(self.layers):
            start = time.perf_counter_ns()
            if compute is None:
                out = layer.forward(out, training=training)
            else:
                out = compute.forward_layer(index, layer, out)
            self._profile_ns[index] += time.perf_counter_ns() - start
            self._profile_calls[index] += 1
        return out if compute is None else compute.finalize(out)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Run the full backward pass and return the input gradient."""
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Forward pass in inference mode, processed in mini-batches."""
        if batch_size < 1:
            raise ModelError("batch_size must be >= 1")
        outputs = []
        for start in range(0, len(x), batch_size):
            outputs.append(self.forward(x[start : start + batch_size], training=False))
        return np.concatenate(outputs, axis=0)

    def parameters(self) -> List[ParameterTriple]:
        """All trainable parameters as ``(name, param, grad)`` triples."""
        triples: List[ParameterTriple] = []
        for index, layer in enumerate(self.layers):
            params = layer.parameters()
            grads = layer.gradients()
            for key, value in params.items():
                triples.append((f"{index:02d}_{layer.name}/{key}", value, grads[key]))
        return triples

    @property
    def num_parameters(self) -> int:
        """Total number of trainable scalars in the model."""
        return int(sum(p.size for _, p, _ in self.parameters()))

    def get_weights(self) -> List[np.ndarray]:
        """Copies of every parameter array, in a deterministic order."""
        return [np.array(param, copy=True) for _, param, _ in self.parameters()]

    def set_weights(self, weights: Sequence[np.ndarray]) -> None:
        """Load parameter values previously produced by :meth:`get_weights`."""
        triples = self.parameters()
        if len(weights) != len(triples):
            raise ModelError(
                f"expected {len(triples)} weight arrays, got {len(weights)}"
            )
        for (_, param, _), value in zip(triples, weights):
            value = np.asarray(value)
            if value.shape != param.shape:
                raise ModelError(
                    f"weight shape mismatch: expected {param.shape}, got {value.shape}"
                )
            param[...] = value
        if self._compute is not None:
            self._compute.prepare(self)

    def summary(self) -> str:
        """Human-readable description of the model."""
        lines = ["Sequential model"]
        for index, layer in enumerate(self.layers):
            lines.append(f"  [{index:02d}] {layer!r}  params={layer.num_parameters}")
        lines.append(f"Total trainable parameters: {self.num_parameters}")
        return "\n".join(lines)
