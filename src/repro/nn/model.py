"""Sequential model container."""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.layers import Layer
from repro.nn.optimizers import ParameterTriple


class ModelError(ValueError):
    """Raised for invalid model operations."""


class Sequential:
    """A plain feed-forward stack of layers.

    The model simply chains the layers' ``forward``/``backward`` methods and
    exposes the trainable parameters with qualified names such as
    ``"03_conv/weight"`` so the optimiser can keep per-parameter state.
    """

    def __init__(self, layers: Optional[Sequence[Layer]] = None) -> None:
        self.layers: List[Layer] = list(layers) if layers is not None else []

    def add(self, layer: Layer) -> "Sequential":
        """Append a layer and return ``self`` (for chaining)."""
        self.layers.append(layer)
        return self

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the full forward pass."""
        if not self.layers:
            raise ModelError("the model has no layers")
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Run the full backward pass and return the input gradient."""
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Forward pass in inference mode, processed in mini-batches."""
        if batch_size < 1:
            raise ModelError("batch_size must be >= 1")
        outputs = []
        for start in range(0, len(x), batch_size):
            outputs.append(self.forward(x[start : start + batch_size], training=False))
        return np.concatenate(outputs, axis=0)

    def parameters(self) -> List[ParameterTriple]:
        """All trainable parameters as ``(name, param, grad)`` triples."""
        triples: List[ParameterTriple] = []
        for index, layer in enumerate(self.layers):
            params = layer.parameters()
            grads = layer.gradients()
            for key, value in params.items():
                triples.append((f"{index:02d}_{layer.name}/{key}", value, grads[key]))
        return triples

    @property
    def num_parameters(self) -> int:
        """Total number of trainable scalars in the model."""
        return int(sum(p.size for _, p, _ in self.parameters()))

    def get_weights(self) -> List[np.ndarray]:
        """Copies of every parameter array, in a deterministic order."""
        return [np.array(param, copy=True) for _, param, _ in self.parameters()]

    def set_weights(self, weights: Sequence[np.ndarray]) -> None:
        """Load parameter values previously produced by :meth:`get_weights`."""
        triples = self.parameters()
        if len(weights) != len(triples):
            raise ModelError(
                f"expected {len(triples)} weight arrays, got {len(weights)}"
            )
        for (_, param, _), value in zip(triples, weights):
            value = np.asarray(value)
            if value.shape != param.shape:
                raise ModelError(
                    f"weight shape mismatch: expected {param.shape}, got {value.shape}"
                )
            param[...] = value

    def summary(self) -> str:
        """Human-readable description of the model."""
        lines = ["Sequential model"]
        for index, layer in enumerate(self.layers):
            lines.append(f"  [{index:02d}] {layer!r}  params={layer.num_parameters}")
        lines.append(f"Total trainable parameters: {self.num_parameters}")
        return "\n".join(lines)
