"""Spatial attention block with skip connection (Fig. 4 of the paper).

The block follows the spatial-attention module of CBAM (Woo et al., ECCV
2018), as adapted by DeepCSI:

1. compute the per-position maximum and mean of the input feature maps over
   the channel dimension,
2. concatenate the two maps and pass them through a convolutional layer with
   a sigmoid activation, producing one attention weight per spatial position,
3. multiply the input by the attention weights,
4. add the block input to the result (skip connection).

The backward pass propagates gradients through all four steps, including the
channel-max (routed to the arg-max channels) and the channel-mean (spread
uniformly over channels).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.nn.layers import Conv2D, Layer, LayerError


class SpatialAttention(Layer):
    """CBAM-style spatial attention with a residual (skip) connection.

    Parameters
    ----------
    kernel_size:
        Kernel of the internal convolution that turns the concatenated
        max/mean maps into attention logits.  DeepCSI operates on
        ``1 x Ncol`` feature maps, so a ``(1, 7)`` kernel is the default.
    rng:
        Random generator for weight initialisation.
    """

    def __init__(
        self,
        kernel_size: Tuple[int, int] = (1, 7),
        rng: Optional[np.random.Generator] = None,
        name: str = "spatial_attention",
    ) -> None:
        self.name = name
        self.conv = Conv2D(
            in_channels=2,
            out_channels=1,
            kernel_size=kernel_size,
            padding="same",
            rng=rng,
            name=f"{name}_conv",
        )
        self._cache: Optional[dict] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4:
            raise LayerError(f"{self.name}: expected a 4-D input, got {x.shape}")
        max_map = np.max(x, axis=1, keepdims=True)  # (B, 1, H, W)
        mean_map = np.mean(x, axis=1, keepdims=True)
        stacked = np.concatenate([max_map, mean_map], axis=1)  # (B, 2, H, W)
        logits = self.conv.forward(stacked, training=training)
        weights = 1.0 / (1.0 + np.exp(-np.clip(logits, -60.0, 60.0)))  # sigmoid
        attended = x * weights
        output = attended + x  # skip connection
        # The cache is only needed by backward; dropping it at inference
        # avoids pinning the input batch alive between engine micro-batches.
        self._cache = (
            {"x": x, "max_map": max_map, "weights": weights} if training else None
        )
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise LayerError(f"{self.name}: backward called before forward")
        x = self._cache["x"]
        max_map = self._cache["max_map"]
        weights = self._cache["weights"]
        num_channels = x.shape[1]

        # y = x * s + x  ->  dy/dx (direct paths) = s + 1.
        grad_x = grad_output * (weights + 1.0)

        # Gradient reaching the attention weights s: sum over channels of
        # grad_output * x (because s is broadcast across channels).
        grad_weights = np.sum(grad_output * x, axis=1, keepdims=True)
        grad_logits = grad_weights * weights * (1.0 - weights)
        grad_stacked = self.conv.backward(grad_logits)  # (B, 2, H, W)
        grad_max = grad_stacked[:, 0:1]
        grad_mean = grad_stacked[:, 1:2]

        # Mean path: spread uniformly over the channels.
        grad_x = grad_x + grad_mean / num_channels

        # Max path: route the gradient to the channels attaining the maximum
        # (ties share the gradient equally).
        is_max = x == max_map
        counts = np.sum(is_max, axis=1, keepdims=True)
        grad_x = grad_x + grad_max * is_max / counts
        return grad_x

    def parameters(self) -> Dict[str, np.ndarray]:
        return {f"conv_{k}": v for k, v in self.conv.parameters().items()}

    def gradients(self) -> Dict[str, np.ndarray]:
        return {f"conv_{k}": v for k, v in self.conv.gradients().items()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SpatialAttention(kernel={self.conv.kernel_size}, name={self.name!r})"
