"""Classification metrics beyond plain accuracy.

These helpers complement :mod:`repro.core.evaluation` (which focuses on the
confusion matrices the paper reports) with the metrics a practitioner would
want when deploying DeepCSI as an authentication system: top-k accuracy,
per-class precision/recall/F1, macro averages, negative log-likelihood and
expected calibration error of the softmax confidences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np


class MetricError(ValueError):
    """Raised for invalid metric inputs."""


def _as_labels(values: Sequence[int]) -> np.ndarray:
    labels = np.asarray(values, dtype=int)
    if labels.ndim != 1 or labels.size == 0:
        raise MetricError("labels must be a non-empty one-dimensional array")
    return labels


def _as_probabilities(values: np.ndarray) -> np.ndarray:
    probabilities = np.asarray(values, dtype=float)
    if probabilities.ndim != 2 or probabilities.size == 0:
        raise MetricError("probabilities must have shape (num_samples, num_classes)")
    if np.any(probabilities < -1e-9):
        raise MetricError("probabilities must be non-negative")
    return probabilities


def top_k_accuracy(
    true_labels: Sequence[int], probabilities: np.ndarray, k: int = 1
) -> float:
    """Fraction of samples whose true class is among the ``k`` most likely."""
    labels = _as_labels(true_labels)
    probabilities = _as_probabilities(probabilities)
    if labels.shape[0] != probabilities.shape[0]:
        raise MetricError("labels and probabilities must have the same length")
    if not 1 <= k <= probabilities.shape[1]:
        raise MetricError(f"k must be in 1..{probabilities.shape[1]}")
    top_k = np.argsort(probabilities, axis=1)[:, -k:]
    hits = np.any(top_k == labels[:, np.newaxis], axis=1)
    return float(np.mean(hits))


def negative_log_likelihood(
    true_labels: Sequence[int], probabilities: np.ndarray, epsilon: float = 1e-12
) -> float:
    """Mean negative log-likelihood of the true class."""
    labels = _as_labels(true_labels)
    probabilities = _as_probabilities(probabilities)
    if labels.shape[0] != probabilities.shape[0]:
        raise MetricError("labels and probabilities must have the same length")
    if labels.max() >= probabilities.shape[1] or labels.min() < 0:
        raise MetricError("labels exceed the number of classes")
    picked = probabilities[np.arange(len(labels)), labels]
    return float(-np.mean(np.log(np.clip(picked, epsilon, None))))


def expected_calibration_error(
    true_labels: Sequence[int], probabilities: np.ndarray, num_bins: int = 10
) -> float:
    """Expected calibration error of the winning-class confidence.

    Samples are binned by confidence; the ECE is the confidence-weighted mean
    absolute gap between per-bin accuracy and per-bin mean confidence.
    """
    labels = _as_labels(true_labels)
    probabilities = _as_probabilities(probabilities)
    if labels.shape[0] != probabilities.shape[0]:
        raise MetricError("labels and probabilities must have the same length")
    if num_bins < 1:
        raise MetricError("num_bins must be >= 1")
    confidences = probabilities.max(axis=1)
    predictions = probabilities.argmax(axis=1)
    correct = (predictions == labels).astype(float)
    edges = np.linspace(0.0, 1.0, num_bins + 1)
    total = len(labels)
    error = 0.0
    for low, high in zip(edges[:-1], edges[1:]):
        in_bin = (confidences > low) & (confidences <= high)
        if low == 0.0:
            in_bin |= confidences == 0.0
        count = int(np.sum(in_bin))
        if count == 0:
            continue
        bin_accuracy = float(np.mean(correct[in_bin]))
        bin_confidence = float(np.mean(confidences[in_bin]))
        error += (count / total) * abs(bin_accuracy - bin_confidence)
    return float(error)


@dataclass(frozen=True)
class ClassMetrics:
    """Precision / recall / F1 of one class."""

    precision: float
    recall: float
    f1: float
    support: int


def per_class_metrics(
    true_labels: Sequence[int],
    predicted_labels: Sequence[int],
    num_classes: Optional[int] = None,
) -> Dict[int, ClassMetrics]:
    """Precision, recall and F1 score for every class."""
    truth = _as_labels(true_labels)
    predictions = _as_labels(predicted_labels)
    if truth.shape != predictions.shape:
        raise MetricError("label arrays must have the same shape")
    if num_classes is None:
        num_classes = int(max(truth.max(), predictions.max())) + 1
    metrics: Dict[int, ClassMetrics] = {}
    for cls in range(num_classes):
        true_positive = int(np.sum((truth == cls) & (predictions == cls)))
        false_positive = int(np.sum((truth != cls) & (predictions == cls)))
        false_negative = int(np.sum((truth == cls) & (predictions != cls)))
        support = int(np.sum(truth == cls))
        precision = (
            true_positive / (true_positive + false_positive)
            if true_positive + false_positive > 0
            else 0.0
        )
        recall = (
            true_positive / (true_positive + false_negative)
            if true_positive + false_negative > 0
            else 0.0
        )
        f1 = (
            2.0 * precision * recall / (precision + recall)
            if precision + recall > 0
            else 0.0
        )
        metrics[cls] = ClassMetrics(
            precision=precision, recall=recall, f1=f1, support=support
        )
    return metrics


def macro_f1(
    true_labels: Sequence[int],
    predicted_labels: Sequence[int],
    num_classes: Optional[int] = None,
) -> float:
    """Unweighted mean of the per-class F1 scores."""
    metrics = per_class_metrics(true_labels, predicted_labels, num_classes)
    return float(np.mean([m.f1 for m in metrics.values()]))


def balanced_accuracy(
    true_labels: Sequence[int],
    predicted_labels: Sequence[int],
    num_classes: Optional[int] = None,
) -> float:
    """Mean per-class recall (robust to class imbalance)."""
    metrics = per_class_metrics(true_labels, predicted_labels, num_classes)
    supported = [m.recall for m in metrics.values() if m.support > 0]
    if not supported:
        raise MetricError("no class has any support")
    return float(np.mean(supported))


def format_metric_report(
    true_labels: Sequence[int],
    predicted_labels: Sequence[int],
    num_classes: Optional[int] = None,
) -> str:
    """Text table with per-class precision / recall / F1 and macro averages."""
    metrics = per_class_metrics(true_labels, predicted_labels, num_classes)
    lines = [f"{'class':>5s} {'precision':>10s} {'recall':>8s} {'f1':>7s} {'support':>8s}"]
    for cls, m in sorted(metrics.items()):
        lines.append(
            f"{cls:>5d} {m.precision:>10.3f} {m.recall:>8.3f} {m.f1:>7.3f} {m.support:>8d}"
        )
    lines.append(
        f"macro F1 {macro_f1(true_labels, predicted_labels, num_classes):.3f}, "
        f"balanced accuracy "
        f"{balanced_accuracy(true_labels, predicted_labels, num_classes):.3f}"
    )
    return "\n".join(lines)
