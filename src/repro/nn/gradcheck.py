"""Numerical gradient checking utilities (used by the test suite)."""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from repro.nn.layers import Layer


def numerical_gradient(
    func: Callable[[np.ndarray], float], x: np.ndarray, epsilon: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of a scalar function of an array."""
    x = np.asarray(x, dtype=float)
    grad = np.zeros_like(x)
    iterator = np.nditer(x, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = x[index]
        x[index] = original + epsilon
        plus = func(x)
        x[index] = original - epsilon
        minus = func(x)
        x[index] = original
        grad[index] = (plus - minus) / (2.0 * epsilon)
        iterator.iternext()
    return grad


def check_layer_input_gradient(
    layer: Layer,
    input_array: np.ndarray,
    epsilon: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-6,
) -> Tuple[np.ndarray, np.ndarray]:
    """Compare the analytic input gradient of a layer with finite differences.

    The scalar objective is ``sum(forward(x) * R)`` where ``R`` is a fixed
    random projection; its analytic gradient is ``backward(R)``.

    Returns
    -------
    (analytic, numerical):
        The two gradients; an ``AssertionError`` is raised when they differ.
    """
    rng = np.random.default_rng(0)
    # training=True so the layer retains its backward caches (inference
    # forwards deliberately drop them).
    output = layer.forward(np.array(input_array, copy=True), training=True)
    projection = rng.standard_normal(output.shape)

    analytic = layer.backward(projection)

    def objective(x: np.ndarray) -> float:
        return float(np.sum(layer.forward(x, training=False) * projection))

    numerical = numerical_gradient(objective, np.array(input_array, copy=True), epsilon)
    np.testing.assert_allclose(analytic, numerical, rtol=rtol, atol=atol)
    return analytic, numerical


def check_layer_parameter_gradients(
    layer: Layer,
    input_array: np.ndarray,
    epsilon: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-6,
) -> Dict[str, np.ndarray]:
    """Compare analytic parameter gradients with finite differences."""
    rng = np.random.default_rng(1)
    output = layer.forward(np.array(input_array, copy=True), training=True)
    projection = rng.standard_normal(output.shape)

    layer.forward(np.array(input_array, copy=True), training=True)
    layer.backward(projection)
    analytic = {k: np.array(v, copy=True) for k, v in layer.gradients().items()}

    for name, param in layer.parameters().items():
        def objective(values: np.ndarray, _name=name, _param=param) -> float:
            original = np.array(_param, copy=True)
            _param[...] = values
            result = float(
                np.sum(layer.forward(np.array(input_array, copy=True), training=False) * projection)
            )
            _param[...] = original
            return result

        numerical = numerical_gradient(objective, np.array(param, copy=True), epsilon)
        np.testing.assert_allclose(
            analytic[name], numerical, rtol=rtol, atol=atol,
            err_msg=f"parameter gradient mismatch for {name!r}",
        )
    return analytic
