"""Mini-batch training loop with validation and early stopping."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.losses import SoftmaxCrossEntropy, accuracy
from repro.nn.model import Sequential
from repro.nn.optimizers import Adam, Optimizer


class TrainingError(ValueError):
    """Raised for invalid training configurations or inputs."""


@dataclass
class TrainingConfig:
    """Hyper-parameters of a training run.

    Attributes
    ----------
    epochs:
        Maximum number of passes over the training data.
    batch_size:
        Mini-batch size.
    validation_split:
        Fraction of the *last* part of the training data held out for
        validation when no explicit validation set is supplied (the paper
        holds out the last 20 % of the training traces).
    shuffle:
        Whether to reshuffle the training data every epoch.
    early_stopping_patience:
        Stop when the validation loss has not improved for this many epochs;
        ``None`` disables early stopping.
    verbose:
        Print a one-line summary after every epoch.
    seed:
        Seed of the shuffling / dropout random generator.
    """

    epochs: int = 20
    batch_size: int = 64
    validation_split: float = 0.2
    shuffle: bool = True
    early_stopping_patience: Optional[int] = 5
    verbose: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise TrainingError("epochs must be >= 1")
        if self.batch_size < 1:
            raise TrainingError("batch_size must be >= 1")
        if not 0.0 <= self.validation_split < 1.0:
            raise TrainingError("validation_split must be in [0, 1)")
        if (
            self.early_stopping_patience is not None
            and self.early_stopping_patience < 1
        ):
            raise TrainingError("early_stopping_patience must be >= 1 or None")


@dataclass
class History:
    """Per-epoch metrics collected during training."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)

    @property
    def num_epochs(self) -> int:
        """Number of completed epochs."""
        return len(self.train_loss)

    @property
    def best_val_accuracy(self) -> float:
        """Best validation accuracy seen during training (NaN if no val set)."""
        return max(self.val_accuracy) if self.val_accuracy else float("nan")

    def as_dict(self) -> Dict[str, List[float]]:
        """Plain-dict view of the history (useful for serialisation)."""
        return {
            "train_loss": list(self.train_loss),
            "train_accuracy": list(self.train_accuracy),
            "val_loss": list(self.val_loss),
            "val_accuracy": list(self.val_accuracy),
        }


class Trainer:
    """Trains a :class:`~repro.nn.model.Sequential` classifier."""

    def __init__(
        self,
        model: Sequential,
        optimizer: Optional[Optimizer] = None,
        loss: Optional[SoftmaxCrossEntropy] = None,
        config: Optional[TrainingConfig] = None,
    ) -> None:
        self.model = model
        self.optimizer = optimizer if optimizer is not None else Adam()
        self.loss = loss if loss is not None else SoftmaxCrossEntropy()
        self.config = config if config is not None else TrainingConfig()

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        validation_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> History:
        """Train the model and return the training history.

        Parameters
        ----------
        features:
            Training inputs; first axis is the sample axis.
        labels:
            Integer class labels.
        validation_data:
            Optional ``(features, labels)`` pair; when omitted the last
            ``validation_split`` fraction of the training data is held out.
        """
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels)
        if len(features) != len(labels):
            raise TrainingError("features and labels must have the same length")
        if len(features) == 0:
            raise TrainingError("cannot train on an empty dataset")

        cfg = self.config
        rng = np.random.default_rng(cfg.seed)

        if validation_data is None and cfg.validation_split > 0.0:
            # Shuffle before holding out the validation fraction so the split
            # is stratified-in-expectation even when the caller passes the
            # samples grouped by class (as the dataset containers do).
            permutation = rng.permutation(len(features))
            features, labels = features[permutation], labels[permutation]
            split = int(round(len(features) * (1.0 - cfg.validation_split)))
            split = max(1, min(split, len(features) - 1)) if len(features) > 1 else 1
            val_features, val_labels = features[split:], labels[split:]
            features, labels = features[:split], labels[:split]
            if len(val_features) == 0:
                val_features, val_labels = None, None
        elif validation_data is not None:
            val_features, val_labels = validation_data
            val_features = np.asarray(val_features, dtype=float)
            val_labels = np.asarray(val_labels)
        else:
            val_features, val_labels = None, None

        history = History()
        best_val_loss = np.inf
        best_weights = None
        patience_left = cfg.early_stopping_patience

        for epoch in range(cfg.epochs):
            order = np.arange(len(features))
            if cfg.shuffle:
                rng.shuffle(order)
            epoch_losses = []
            epoch_accuracies = []
            for start in range(0, len(order), cfg.batch_size):
                batch_idx = order[start : start + cfg.batch_size]
                batch_x = features[batch_idx]
                batch_y = labels[batch_idx]
                logits = self.model.forward(batch_x, training=True)
                loss_value = self.loss.forward(logits, batch_y)
                grad = self.loss.backward()
                self.model.backward(grad)
                self.optimizer.step(self.model.parameters())
                epoch_losses.append(loss_value)
                epoch_accuracies.append(accuracy(logits, batch_y))

            history.train_loss.append(float(np.mean(epoch_losses)))
            history.train_accuracy.append(float(np.mean(epoch_accuracies)))

            if val_features is not None and len(val_features) > 0:
                val_loss, val_acc = self.evaluate(val_features, val_labels)
                history.val_loss.append(val_loss)
                history.val_accuracy.append(val_acc)
                if cfg.verbose:
                    print(
                        f"epoch {epoch + 1:3d}/{cfg.epochs}: "
                        f"loss={history.train_loss[-1]:.4f} "
                        f"acc={history.train_accuracy[-1]:.3f} "
                        f"val_loss={val_loss:.4f} val_acc={val_acc:.3f}"
                    )
                if cfg.early_stopping_patience is not None:
                    if val_loss < best_val_loss - 1e-6:
                        best_val_loss = val_loss
                        best_weights = self.model.get_weights()
                        patience_left = cfg.early_stopping_patience
                    else:
                        patience_left -= 1
                        if patience_left <= 0:
                            if best_weights is not None:
                                self.model.set_weights(best_weights)
                            break
            elif cfg.verbose:
                print(
                    f"epoch {epoch + 1:3d}/{cfg.epochs}: "
                    f"loss={history.train_loss[-1]:.4f} "
                    f"acc={history.train_accuracy[-1]:.3f}"
                )

        if (
            cfg.early_stopping_patience is not None
            and best_weights is not None
            and val_features is not None
            and history.val_loss
            and history.val_loss[-1] > best_val_loss
        ):
            self.model.set_weights(best_weights)
        return history

    def evaluate(
        self, features: np.ndarray, labels: np.ndarray
    ) -> Tuple[float, float]:
        """Return ``(loss, accuracy)`` of the model on the given data."""
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels)
        if len(features) != len(labels):
            raise TrainingError("features and labels must have the same length")
        if len(features) == 0:
            raise TrainingError("cannot evaluate on an empty dataset")
        losses = []
        correct = 0
        for start in range(0, len(features), self.config.batch_size):
            batch_x = features[start : start + self.config.batch_size]
            batch_y = labels[start : start + self.config.batch_size]
            logits = self.model.forward(batch_x, training=False)
            losses.append(self.loss.forward(logits, batch_y) * len(batch_x))
            correct += int(np.sum(np.argmax(logits, axis=1) == batch_y))
        return float(np.sum(losses) / len(features)), correct / len(features)

    def predict_labels(self, features: np.ndarray) -> np.ndarray:
        """Predicted class label for every input sample."""
        logits = self.model.predict(np.asarray(features, dtype=float),
                                    batch_size=self.config.batch_size)
        return np.argmax(logits, axis=1)
