"""Minimal-but-complete deep-learning substrate written on top of numpy.

The paper trains its classifier with a mainstream deep-learning framework;
none is available in this offline environment, so this package implements the
required functionality from scratch:

* :mod:`repro.nn.layers` -- 2-D convolution, dense, max-pooling, flatten,
  activation (SELU / ReLU / sigmoid / softmax) and (alpha-)dropout layers,
  each with an analytic backward pass.
* :mod:`repro.nn.attention` -- the spatial-attention block (CBAM style) with
  the skip connection used by the DeepCSI architecture.
* :mod:`repro.nn.initializers` -- LeCun/He/Glorot initialisation.
* :mod:`repro.nn.losses` -- softmax cross-entropy and mean-squared error.
* :mod:`repro.nn.optimizers` -- SGD (with momentum) and Adam.
* :mod:`repro.nn.model` -- a ``Sequential`` container.
* :mod:`repro.nn.training` -- mini-batch training loop with validation and
  early stopping.
* :mod:`repro.nn.gradcheck` -- numerical gradient checking (used heavily in
  the test suite).
* :mod:`repro.nn.serialization` -- ``.npz`` weight (de)serialisation.

Data layout is ``NCHW``: ``(batch, channels, height, width)``.
"""

from repro.nn.layers import (
    Layer,
    Dense,
    Conv2D,
    MaxPool2D,
    Flatten,
    Activation,
    Selu,
    Relu,
    Sigmoid,
    Softmax,
    Dropout,
    AlphaDropout,
)
from repro.nn.attention import SpatialAttention
from repro.nn.losses import SoftmaxCrossEntropy, MeanSquaredError
from repro.nn.optimizers import SGD, Adam
from repro.nn.model import Sequential
from repro.nn.training import Trainer, TrainingConfig, History
from repro.nn.serialization import save_weights, load_weights
from repro.nn.schedulers import (
    ConstantSchedule,
    StepDecay,
    ExponentialDecay,
    CosineAnnealing,
    WarmupSchedule,
)
from repro.nn.metrics import top_k_accuracy, per_class_metrics, macro_f1

__all__ = [
    "Layer",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "Flatten",
    "Activation",
    "Selu",
    "Relu",
    "Sigmoid",
    "Softmax",
    "Dropout",
    "AlphaDropout",
    "SpatialAttention",
    "SoftmaxCrossEntropy",
    "MeanSquaredError",
    "SGD",
    "Adam",
    "Sequential",
    "Trainer",
    "TrainingConfig",
    "History",
    "save_weights",
    "load_weights",
    "ConstantSchedule",
    "StepDecay",
    "ExponentialDecay",
    "CosineAnnealing",
    "WarmupSchedule",
    "top_k_accuracy",
    "per_class_metrics",
    "macro_f1",
]
