"""DeepCSI reproduction: MU-MIMO Wi-Fi radio fingerprinting from compressed
beamforming feedback.

The package is organised as the paper's system is:

* :mod:`repro.phy` -- Wi-Fi PHY substrate (OFDM, multipath channel, hardware
  impairments, MIMO beamforming, mobility).
* :mod:`repro.feedback` -- the IEEE 802.11ac/ax compressed beamforming
  feedback path (Givens compression, quantisation, frames, capture).
* :mod:`repro.datasets` -- synthetic counterparts of the paper's D1/D2
  datasets, feature extraction and the S1..S6 train/test splits.
* :mod:`repro.nn` -- a from-scratch numpy deep-learning library.
* :mod:`repro.core` -- the DeepCSI classifier, baselines, evaluation and the
  end-to-end authentication pipeline.
* :mod:`repro.experiments` -- one module per figure of the paper's
  evaluation section.

Quickstart::

    from repro.datasets import DatasetConfig, generate_dataset_d1, d1_split, D1_SPLITS
    from repro.core import DeepCsiClassifier, ClassifierConfig

    dataset = generate_dataset_d1(DatasetConfig(num_modules=5, soundings_per_trace=10))
    train, test = d1_split(dataset, D1_SPLITS["S1"], beamformee_id=1)
    classifier = DeepCsiClassifier(ClassifierConfig(num_classes=5))
    classifier.fit(train)
    report = classifier.evaluate(test)
    print(report)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
