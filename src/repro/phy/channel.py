"""Geometric multipath channel model (substitute for the paper's testbed).

The paper measures the channel frequency response (CFR) of Eq. (2) over the
air; here the CFR is synthesised from a geometric multipath model:

* a line-of-sight (direct) path between every TX/RX antenna pair,
* first-order specular reflections off the four walls of the room (image
  method), and
* a configurable number of random point scatterers (furniture, bodies, ...)
  whose positions are drawn once per *environment* so that different
  beamformee positions observe different - but reproducible - channels.

Every path ``p`` contributes ``A_p * exp(-j*2*pi*(f_c + k/T) * tau_p)`` to the
CFR of sub-carrier ``k``, exactly the Eq. (2) structure.  Antenna geometry is
handled exactly (per-element distances), which creates the position-dependent
beam patterns that differentiate the S1/S2/S3 splits.

Temporal variability (people moving near the AP during the D2 mobility
captures) is modelled by per-packet perturbations of the scatterer gains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.phy.geometry import Position, RoomGeometry
from repro.phy.ofdm import SPEED_OF_LIGHT, SubcarrierLayout


@dataclass(frozen=True)
class PropagationPath:
    """A single propagation path between the TX and RX antenna arrays.

    Attributes
    ----------
    distances_m:
        Exact path length for every TX/RX antenna pair, shape ``(M, N)``.
    gain:
        Complex path gain (common to all antenna pairs).
    kind:
        ``"los"``, ``"wall"`` or ``"scatter"`` - useful for diagnostics.
    """

    distances_m: np.ndarray
    gain: complex
    kind: str = "scatter"

    @property
    def mean_distance_m(self) -> float:
        """Average path length across antenna pairs [m]."""
        return float(np.mean(self.distances_m))


@dataclass
class ChannelRealization:
    """A concrete set of propagation paths between a TX and an RX array."""

    paths: List[PropagationPath]
    carrier_frequency_hz: float

    def __post_init__(self) -> None:
        if not self.paths:
            raise ValueError("a channel realization needs at least one path")
        shape = self.paths[0].distances_m.shape
        for path in self.paths:
            if path.distances_m.shape != shape:
                raise ValueError("all paths must share the same antenna geometry")

    @property
    def num_tx_antennas(self) -> int:
        """Number of transmit antennas ``M``."""
        return self.paths[0].distances_m.shape[0]

    @property
    def num_rx_antennas(self) -> int:
        """Number of receive antennas ``N``."""
        return self.paths[0].distances_m.shape[1]

    def cfr(self, layout: SubcarrierLayout) -> np.ndarray:
        """Channel frequency response ``H`` of shape ``(K, M, N)`` (Eq. 2)."""
        frequencies = layout.frequencies_hz  # (K,)
        delays = (
            np.stack([path.distances_m for path in self.paths]) / SPEED_OF_LIGHT
        )  # (P, M, N)
        gains = np.array([path.gain for path in self.paths])  # (P,)
        # phase[p, k, m, n] = -2*pi*f_k*tau[p, m, n]
        phase = -2.0 * np.pi * frequencies[np.newaxis, :, np.newaxis, np.newaxis] * (
            delays[:, np.newaxis, :, :]
        )
        contributions = gains[:, np.newaxis, np.newaxis, np.newaxis] * np.exp(1j * phase)
        return np.sum(contributions, axis=0)

    def perturbed(
        self, rng: np.random.Generator, gain_jitter: float = 0.05, phase_jitter: float = 0.1
    ) -> "ChannelRealization":
        """Return a copy with small random per-path gain/phase perturbations.

        Models packet-to-packet small-scale fading (e.g. the person moving
        next to the AP during the D2 captures).  The line-of-sight path is
        perturbed less than the scattered paths.
        """
        perturbed_paths = []
        for path in self.paths:
            scale = 0.3 if path.kind == "los" else 1.0
            amplitude = 1.0 + scale * gain_jitter * rng.standard_normal()
            phase = scale * phase_jitter * rng.standard_normal()
            perturbed_paths.append(
                PropagationPath(
                    distances_m=path.distances_m,
                    gain=path.gain * amplitude * np.exp(1j * phase),
                    kind=path.kind,
                )
            )
        return ChannelRealization(
            paths=perturbed_paths, carrier_frequency_hz=self.carrier_frequency_hz
        )


@dataclass
class MultipathChannel:
    """Factory of :class:`ChannelRealization` objects for a given environment.

    Attributes
    ----------
    room:
        Room geometry used for wall reflections and scatterer placement.
    num_scatterers:
        Number of random point scatterers in the environment.
    wall_reflection_loss:
        Multiplicative amplitude loss of a wall reflection (0..1).
    scatterer_gain:
        Average amplitude of a scattered path relative to the direct path.
    environment_seed:
        Seed controlling the scatterer placement; two channels built with the
        same seed share the same environment (as the two indoor environments
        of the paper share the same layout).
    """

    room: RoomGeometry = field(default_factory=RoomGeometry)
    num_scatterers: int = 6
    wall_reflection_loss: float = 0.45
    scatterer_gain: float = 0.35
    environment_seed: int = 0

    def __post_init__(self) -> None:
        if self.num_scatterers < 0:
            raise ValueError("num_scatterers must be non-negative")
        if not 0.0 <= self.wall_reflection_loss <= 1.0:
            raise ValueError("wall_reflection_loss must be in [0, 1]")
        rng = np.random.default_rng(self.environment_seed)
        margin = 0.15
        xs = rng.uniform(self.room.x_min + margin, self.room.x_max - margin, self.num_scatterers)
        ys = rng.uniform(self.room.y_min + margin, self.room.y_max - margin, self.num_scatterers)
        self._scatterers = [Position(float(x), float(y)) for x, y in zip(xs, ys)]
        self._scatterer_phases = rng.uniform(0.0, 2.0 * np.pi, self.num_scatterers)
        self._scatterer_amplitudes = self.scatterer_gain * (
            0.5 + rng.uniform(0.0, 1.0, self.num_scatterers)
        )

    @property
    def scatterers(self) -> List[Position]:
        """Positions of the environment scatterers."""
        return list(self._scatterers)

    def realize(
        self,
        tx_elements: np.ndarray,
        rx_elements: np.ndarray,
        carrier_frequency_hz: float,
        rng: Optional[np.random.Generator] = None,
    ) -> ChannelRealization:
        """Build the set of propagation paths for the given antenna arrays.

        Parameters
        ----------
        tx_elements:
            TX antenna element coordinates, shape ``(M, 2)`` [m].
        rx_elements:
            RX antenna element coordinates, shape ``(N, 2)`` [m].
        carrier_frequency_hz:
            Carrier frequency (only stored for reference).
        rng:
            Optional generator used to randomise the scattered-path phases
            slightly; if omitted the deterministic environment phases are
            used.
        """
        tx_elements = np.asarray(tx_elements, dtype=float)
        rx_elements = np.asarray(rx_elements, dtype=float)
        if tx_elements.ndim != 2 or tx_elements.shape[1] != 2:
            raise ValueError("tx_elements must have shape (M, 2)")
        if rx_elements.ndim != 2 or rx_elements.shape[1] != 2:
            raise ValueError("rx_elements must have shape (N, 2)")

        paths: List[PropagationPath] = []

        # Line of sight.
        los_distances = _pairwise_distances(tx_elements, rx_elements)
        los_gain = 1.0 / max(float(np.mean(los_distances)), 1e-3)
        paths.append(
            PropagationPath(distances_m=los_distances, gain=los_gain, kind="los")
        )

        # First-order wall reflections via image sources of the TX array.
        tx_centre = Position(*np.mean(tx_elements, axis=0))
        for image in self.room.wall_images(tx_centre):
            offset = image.as_array() - tx_centre.as_array()
            image_elements = tx_elements + offset[np.newaxis, :]
            distances = _pairwise_distances(image_elements, rx_elements)
            mean_d = max(float(np.mean(distances)), 1e-3)
            gain = self.wall_reflection_loss / mean_d
            # A reflection flips the phase (perfect-conductor approximation).
            paths.append(
                PropagationPath(distances_m=distances, gain=-gain, kind="wall")
            )

        # Random scatterers: TX -> scatterer -> RX.
        for idx, scatterer in enumerate(self._scatterers):
            point = scatterer.as_array()
            d_tx = np.linalg.norm(tx_elements - point[np.newaxis, :], axis=1)  # (M,)
            d_rx = np.linalg.norm(rx_elements - point[np.newaxis, :], axis=1)  # (N,)
            distances = d_tx[:, np.newaxis] + d_rx[np.newaxis, :]
            mean_d = max(float(np.mean(distances)), 1e-3)
            phase = self._scatterer_phases[idx]
            if rng is not None:
                phase = phase + rng.normal(0.0, 0.05)
            gain = self._scatterer_amplitudes[idx] / mean_d * np.exp(1j * phase)
            paths.append(
                PropagationPath(distances_m=distances, gain=gain, kind="scatter")
            )

        return ChannelRealization(
            paths=paths, carrier_frequency_hz=carrier_frequency_hz
        )


def _pairwise_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Distances between every row of ``a`` (shape (M,2)) and ``b`` (shape (N,2))."""
    diff = a[:, np.newaxis, :] - b[np.newaxis, :, :]
    return np.linalg.norm(diff, axis=2)


def delay_spread(realization: ChannelRealization) -> float:
    """Root-mean-square delay spread of a channel realization [s].

    A convenience diagnostic used by the examples: it quantifies how
    frequency-selective a given TX/RX placement is.
    """
    delays = np.array([p.mean_distance_m for p in realization.paths]) / SPEED_OF_LIGHT
    powers = np.array([abs(p.gain) ** 2 for p in realization.paths])
    powers = powers / np.sum(powers)
    mean_delay = float(np.sum(powers * delays))
    return float(np.sqrt(np.sum(powers * (delays - mean_delay) ** 2)))
