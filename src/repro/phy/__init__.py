"""Wi-Fi PHY substrate for the DeepCSI reproduction.

This package simulates every physical-layer component the paper's testbed
relied on:

* :mod:`repro.phy.ofdm` -- IEEE 802.11ac OFDM sub-carrier layouts for the
  80 / 40 / 20 MHz channels used in the evaluation.
* :mod:`repro.phy.geometry` -- the indoor geometry of Fig. 6 (room, the nine
  beamformee positions, the A-B-C-D-B-A mobility path of the AP).
* :mod:`repro.phy.channel` -- a geometric multipath channel model producing
  the channel frequency response (CFR) of Eq. (2).
* :mod:`repro.phy.fading` -- a spatially-correlated tapped-delay channel
  whose position dependence has a tunable correlation length (used for
  dataset generation).
* :mod:`repro.phy.impairments` -- per-device RF-chain imperfection models
  (the radio "fingerprint") and per-packet phase offsets (Eq. (9)).
* :mod:`repro.phy.devices` -- Wi-Fi module / access-point / beamformee
  abstractions and population factories.
* :mod:`repro.phy.mimo` -- MIMO CFR assembly, SVD-based beamforming-matrix
  computation (Eq. (3)) and MU-MIMO precoding with ISI/IUI metrics.
* :mod:`repro.phy.mobility` -- waypoint mobility traces for dataset D2.
"""

from repro.phy.ofdm import (
    OfdmConfig,
    SubcarrierLayout,
    sounding_layout,
    subband_indices,
)
from repro.phy.geometry import (
    Position,
    RoomGeometry,
    beamformee_positions,
    mobility_waypoints,
)
from repro.phy.impairments import (
    RfChainImpairment,
    DeviceFingerprint,
    PacketOffsets,
    BeamformeeImpairment,
)
from repro.phy.channel import MultipathChannel, ChannelRealization
from repro.phy.fading import (
    GaussianRandomField,
    SpatiallyCorrelatedChannel,
    TappedDelayRealization,
    spatial_correlation,
)
from repro.phy.devices import WiFiModule, AccessPoint, Beamformee, make_module_population
from repro.phy.mimo import (
    compute_cfr,
    beamforming_matrix,
    steering_weights,
    mu_mimo_precoder,
    interference_metrics,
)
from repro.phy.mobility import MobilityTrace, waypoint_path

__all__ = [
    "OfdmConfig",
    "SubcarrierLayout",
    "sounding_layout",
    "subband_indices",
    "Position",
    "RoomGeometry",
    "beamformee_positions",
    "mobility_waypoints",
    "RfChainImpairment",
    "DeviceFingerprint",
    "PacketOffsets",
    "BeamformeeImpairment",
    "MultipathChannel",
    "ChannelRealization",
    "GaussianRandomField",
    "SpatiallyCorrelatedChannel",
    "TappedDelayRealization",
    "spatial_correlation",
    "WiFiModule",
    "AccessPoint",
    "Beamformee",
    "make_module_population",
    "compute_cfr",
    "beamforming_matrix",
    "steering_weights",
    "mu_mimo_precoder",
    "interference_metrics",
    "MobilityTrace",
    "waypoint_path",
]
