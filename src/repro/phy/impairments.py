"""RF-chain impairment models: the radio fingerprint and per-packet offsets.

DeepCSI's core intuition is that the imperfections of the transmitter's radio
circuitry percolate into the CFR estimated at the beamformee and therefore
into the compressed beamforming feedback.  In the paper these imperfections
come from ten physical Compex Wi-Fi modules; here they are modelled
parametrically so that a synthetic dataset exhibits the same structure:

* :class:`RfChainImpairment` -- the *stable*, device-unique frequency response
  of a single RF chain: gain offset, smooth gain ripple, constant phase
  offset, group-delay skew (a linear phase slope over frequency), smooth
  phase ripple and a small IQ imbalance.
* :class:`DeviceFingerprint` -- one impairment per transmit chain of a Wi-Fi
  module.  Applying it to a clean CFR yields the CFR a beamformee would
  actually estimate for that module.
* :class:`BeamformeeImpairment` -- the receive-chain counterpart.  It explains
  why a model trained on the feedback of one beamformee does not transfer to
  another beamformee (Fig. 11): the feedback carries the imperfections of
  *both* ends of the link.
* :class:`PacketOffsets` -- the *per-packet random* phase offsets of Eq. (9)
  (CFO, SFO, packet-detection delay, PLL offset, phase ambiguity).  These are
  not useful as a fingerprint on their own because they change packet by
  packet, but they are part of the measured CFR and the offset-correction
  baseline of Fig. 16 attempts to remove them (taking part of the device
  fingerprint with them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

#: Default strength (relative magnitude) of the device-unique impairments.
DEFAULT_FINGERPRINT_STRENGTH = 1.0


@dataclass(frozen=True)
class RfChainImpairment:
    """Stable frequency response of one RF chain.

    The complex response applied to sub-carrier ``k`` (index relative to the
    channel centre, spacing ``delta_f``) is::

        g(k) = (1 + gain_offset + sum_i gain_ripple[i] * cos(2*pi*f_i*k + p_i))
               * exp(j * (phase_offset + 2*pi*k*delta_f*delay_skew_s
                          + sum_i phase_ripple[i] * sin(2*pi*f_i*k + q_i)))

    plus a small IQ-imbalance term that mixes in the conjugate response.

    Attributes
    ----------
    gain_offset:
        Broadband gain error (relative, e.g. ``0.05`` for +5 %).
    gain_ripple_amplitudes / gain_ripple_periods / gain_ripple_phases:
        Amplitudes, periods (in sub-carriers) and phases of the slowly-varying
        gain ripple components.
    phase_offset_rad:
        Constant phase rotation of the chain.
    delay_skew_s:
        Group-delay difference of the chain relative to the reference chain;
        produces a phase slope ``2*pi*k*delta_f*delay_skew_s`` across
        sub-carriers.
    phase_ripple_amplitudes / phase_ripple_periods / phase_ripple_phases:
        Slowly-varying phase ripple components [rad].
    iq_amplitude_imbalance / iq_phase_imbalance_rad:
        Amplitude and phase imbalance between the I and Q branches.
    """

    gain_offset: float = 0.0
    gain_ripple_amplitudes: tuple = ()
    gain_ripple_periods: tuple = ()
    gain_ripple_phases: tuple = ()
    phase_offset_rad: float = 0.0
    delay_skew_s: float = 0.0
    phase_ripple_amplitudes: tuple = ()
    phase_ripple_periods: tuple = ()
    phase_ripple_phases: tuple = ()
    iq_amplitude_imbalance: float = 0.0
    iq_phase_imbalance_rad: float = 0.0

    def response(
        self, subcarrier_indices: np.ndarray, subcarrier_spacing_hz: float
    ) -> np.ndarray:
        """Complex chain response evaluated on the given sub-carriers.

        Parameters
        ----------
        subcarrier_indices:
            Integer sub-carrier indices ``k``.
        subcarrier_spacing_hz:
            Sub-carrier spacing ``delta_f`` [Hz].

        Returns
        -------
        numpy.ndarray
            Complex array with one response sample per sub-carrier.
        """
        k = np.asarray(subcarrier_indices, dtype=float)
        gain = np.full_like(k, 1.0 + self.gain_offset)
        for amp, period, phase in zip(
            self.gain_ripple_amplitudes,
            self.gain_ripple_periods,
            self.gain_ripple_phases,
        ):
            gain = gain + amp * np.cos(2.0 * np.pi * k / period + phase)

        phase = np.full_like(k, self.phase_offset_rad)
        phase = phase + 2.0 * np.pi * k * subcarrier_spacing_hz * self.delay_skew_s
        for amp, period, offset in zip(
            self.phase_ripple_amplitudes,
            self.phase_ripple_periods,
            self.phase_ripple_phases,
        ):
            phase = phase + amp * np.sin(2.0 * np.pi * k / period + offset)

        direct = gain * np.exp(1j * phase)
        if self.iq_amplitude_imbalance == 0.0 and self.iq_phase_imbalance_rad == 0.0:
            return direct
        # A (small) IQ imbalance leaks a scaled conjugate image into the
        # response; modelled to first order.
        epsilon = self.iq_amplitude_imbalance
        theta = self.iq_phase_imbalance_rad
        leakage = 0.5 * (epsilon + 1j * theta)
        return direct * (1.0 + leakage) + np.conj(direct) * leakage

    @staticmethod
    def random(
        rng: np.random.Generator,
        strength: float = DEFAULT_FINGERPRINT_STRENGTH,
        num_ripple_components: int = 3,
    ) -> "RfChainImpairment":
        """Draw a random but *stable* chain impairment.

        The draw is deterministic given ``rng``'s state, so a fingerprint
        seeded from a module identifier is reproducible across runs.
        """
        if strength < 0:
            raise ValueError("strength must be non-negative")
        n = int(num_ripple_components)
        # The amplitude terms (broadband gain error, gain ripple, IQ
        # imbalance) are the most channel-robust part of the fingerprint and
        # are what lets the classifier generalise to unseen positions; the
        # phase terms are highly discriminative but channel-entangled.
        return RfChainImpairment(
            gain_offset=float(rng.normal(0.0, 0.10 * strength)),
            gain_ripple_amplitudes=tuple(
                np.abs(rng.normal(0.0, 0.045 * strength, size=n))
            ),
            gain_ripple_periods=tuple(rng.uniform(40.0, 200.0, size=n)),
            gain_ripple_phases=tuple(rng.uniform(0.0, 2.0 * np.pi, size=n)),
            phase_offset_rad=float(rng.uniform(-np.pi, np.pi) * min(strength, 1.0)),
            delay_skew_s=float(rng.normal(0.0, 4e-9 * strength)),
            phase_ripple_amplitudes=tuple(
                np.abs(rng.normal(0.0, 0.03 * strength, size=n))
            ),
            phase_ripple_periods=tuple(rng.uniform(40.0, 200.0, size=n)),
            phase_ripple_phases=tuple(rng.uniform(0.0, 2.0 * np.pi, size=n)),
            iq_amplitude_imbalance=float(rng.normal(0.0, 0.02 * strength)),
            iq_phase_imbalance_rad=float(rng.normal(0.0, 0.015 * strength)),
        )


@dataclass(frozen=True)
class DeviceFingerprint:
    """Per-transmit-chain impairments of a Wi-Fi module (the fingerprint)."""

    chains: tuple

    def __post_init__(self) -> None:
        if not self.chains:
            raise ValueError("a device fingerprint needs at least one chain")

    @property
    def num_chains(self) -> int:
        """Number of transmit chains covered by this fingerprint."""
        return len(self.chains)

    def response_matrix(
        self, subcarrier_indices: np.ndarray, subcarrier_spacing_hz: float
    ) -> np.ndarray:
        """Complex response of every chain: shape ``(K, num_chains)``."""
        responses = [
            chain.response(subcarrier_indices, subcarrier_spacing_hz)
            for chain in self.chains
        ]
        return np.stack(responses, axis=1)

    def apply(
        self,
        cfr: np.ndarray,
        subcarrier_indices: np.ndarray,
        subcarrier_spacing_hz: float,
    ) -> np.ndarray:
        """Apply the fingerprint to a clean CFR.

        Parameters
        ----------
        cfr:
            Clean channel frequency response of shape ``(K, M, N)`` where
            ``M`` is the number of transmit antennas.
        subcarrier_indices:
            Sub-carrier indices matching the first axis of ``cfr``.
        subcarrier_spacing_hz:
            Sub-carrier spacing [Hz].

        Returns
        -------
        numpy.ndarray
            Impaired CFR of the same shape as ``cfr``.
        """
        cfr = np.asarray(cfr)
        if cfr.ndim != 3:
            raise ValueError("cfr must have shape (K, M, N)")
        if cfr.shape[1] > self.num_chains:
            raise ValueError(
                f"CFR uses {cfr.shape[1]} TX antennas but the fingerprint "
                f"only covers {self.num_chains} chains"
            )
        response = self.response_matrix(subcarrier_indices, subcarrier_spacing_hz)
        return cfr * response[:, : cfr.shape[1], np.newaxis]

    @staticmethod
    def random(
        rng: np.random.Generator,
        num_chains: int,
        strength: float = DEFAULT_FINGERPRINT_STRENGTH,
    ) -> "DeviceFingerprint":
        """Draw a random fingerprint with ``num_chains`` transmit chains."""
        if num_chains < 1:
            raise ValueError("num_chains must be >= 1")
        chains = tuple(
            RfChainImpairment.random(rng, strength=strength) for _ in range(num_chains)
        )
        return DeviceFingerprint(chains=chains)


@dataclass(frozen=True)
class BeamformeeImpairment:
    """Per-receive-chain impairments of a beamformee (station)."""

    chains: tuple

    def __post_init__(self) -> None:
        if not self.chains:
            raise ValueError("a beamformee impairment needs at least one chain")

    @property
    def num_chains(self) -> int:
        """Number of receive chains covered by this impairment."""
        return len(self.chains)

    def apply(
        self,
        cfr: np.ndarray,
        subcarrier_indices: np.ndarray,
        subcarrier_spacing_hz: float,
    ) -> np.ndarray:
        """Apply the receive-chain responses to a CFR of shape ``(K, M, N)``."""
        cfr = np.asarray(cfr)
        if cfr.ndim != 3:
            raise ValueError("cfr must have shape (K, M, N)")
        if cfr.shape[2] > self.num_chains:
            raise ValueError(
                f"CFR uses {cfr.shape[2]} RX antennas but the impairment "
                f"only covers {self.num_chains} chains"
            )
        responses = [
            chain.response(subcarrier_indices, subcarrier_spacing_hz)
            for chain in self.chains[: cfr.shape[2]]
        ]
        response = np.stack(responses, axis=1)  # (K, N)
        return cfr * response[:, np.newaxis, :]

    @staticmethod
    def random(
        rng: np.random.Generator,
        num_chains: int,
        strength: float = 0.6,
    ) -> "BeamformeeImpairment":
        """Draw a random receive-chain impairment."""
        if num_chains < 1:
            raise ValueError("num_chains must be >= 1")
        chains = tuple(
            RfChainImpairment.random(rng, strength=strength) for _ in range(num_chains)
        )
        return BeamformeeImpairment(chains=chains)


@dataclass(frozen=True)
class PacketOffsets:
    """Per-packet random phase offsets of Eq. (9).

    Attributes
    ----------
    cfo_phase_rad:
        Residual carrier-frequency-offset phase :math:`\\theta_{CFO}`.
    sfo_delay_s:
        Sampling-frequency-offset equivalent delay :math:`\\tau_{SFO}`.
    pdd_delay_s:
        Packet-detection delay :math:`\\tau_{PDD}`.
    pll_phase_rad:
        Phase-locked-loop initial phase :math:`\\theta_{PPO}`.
    antenna_phase_ambiguity_rad:
        Per-transmit-antenna phase ambiguity :math:`\\theta_{PA}` (multiples
        of :math:`\\pi` in the paper's model).
    """

    cfo_phase_rad: float
    sfo_delay_s: float
    pdd_delay_s: float
    pll_phase_rad: float
    antenna_phase_ambiguity_rad: tuple

    def phase(
        self,
        subcarrier_indices: np.ndarray,
        symbol_duration_s: float,
        num_tx_antennas: int,
    ) -> np.ndarray:
        """Total phase offset per (sub-carrier, TX antenna): shape ``(K, M)``.

        Implements Eq. (9):
        ``theta = theta_CFO - 2*pi*k*(tau_SFO + tau_PDD)/T + theta_PPO + theta_PA``.
        """
        if num_tx_antennas > len(self.antenna_phase_ambiguity_rad):
            raise ValueError(
                "not enough per-antenna phase-ambiguity terms for the CFR"
            )
        k = np.asarray(subcarrier_indices, dtype=float)
        common = (
            self.cfo_phase_rad
            - 2.0 * np.pi * k * (self.sfo_delay_s + self.pdd_delay_s) / symbol_duration_s
            + self.pll_phase_rad
        )
        per_antenna = np.asarray(
            self.antenna_phase_ambiguity_rad[:num_tx_antennas], dtype=float
        )
        return common[:, np.newaxis] + per_antenna[np.newaxis, :]

    def apply(
        self,
        cfr: np.ndarray,
        subcarrier_indices: np.ndarray,
        symbol_duration_s: float,
    ) -> np.ndarray:
        """Rotate a CFR of shape ``(K, M, N)`` by the packet offsets (Eq. 10)."""
        cfr = np.asarray(cfr)
        if cfr.ndim != 3:
            raise ValueError("cfr must have shape (K, M, N)")
        phase = self.phase(subcarrier_indices, symbol_duration_s, cfr.shape[1])
        return cfr * np.exp(1j * phase)[:, :, np.newaxis]

    @staticmethod
    def random(
        rng: np.random.Generator,
        num_tx_antennas: int,
        cfo_std_rad: float = np.pi / 4,
        sfo_std_s: float = 20e-9,
        pdd_std_s: float = 50e-9,
        pa_flip_probability: float = 0.5,
    ) -> "PacketOffsets":
        """Draw the random offsets affecting a single sounding packet.

        ``pa_flip_probability`` is the probability that the phase-ambiguity
        term of a transmit antenna takes the value ``pi`` instead of ``0``;
        set it to zero to model a transmitter whose PLL phase ambiguity is
        stable over the observation window.
        """
        if not 0.0 <= pa_flip_probability <= 1.0:
            raise ValueError("pa_flip_probability must be in [0, 1]")
        ambiguities = tuple(
            float(np.pi) if rng.random() < pa_flip_probability else 0.0
            for _ in range(num_tx_antennas)
        )
        return PacketOffsets(
            cfo_phase_rad=float(rng.normal(0.0, cfo_std_rad)),
            sfo_delay_s=float(abs(rng.normal(0.0, sfo_std_s))),
            pdd_delay_s=float(abs(rng.normal(0.0, pdd_std_s))),
            pll_phase_rad=float(rng.uniform(-np.pi, np.pi)),
            antenna_phase_ambiguity_rad=ambiguities,
        )

    @staticmethod
    def none(num_tx_antennas: int) -> "PacketOffsets":
        """Offsets that leave the CFR untouched (useful in tests)."""
        return PacketOffsets(
            cfo_phase_rad=0.0,
            sfo_delay_s=0.0,
            pdd_delay_s=0.0,
            pll_phase_rad=0.0,
            antenna_phase_ambiguity_rad=tuple(0.0 for _ in range(num_tx_antennas)),
        )


def thermal_noise(
    rng: np.random.Generator, shape: Sequence[int], snr_db: float, signal_power: float
) -> np.ndarray:
    """Complex Gaussian estimation noise for a target SNR.

    The beamformee estimates the CFR from the VHT-LTFs of the NDP; the
    estimate is corrupted by thermal noise.  ``signal_power`` is the average
    power of the CFR entries and ``snr_db`` the estimation SNR.
    """
    if signal_power < 0:
        raise ValueError("signal_power must be non-negative")
    noise_power = signal_power / (10.0 ** (snr_db / 10.0))
    scale = np.sqrt(noise_power / 2.0)
    return scale * (
        rng.standard_normal(tuple(shape)) + 1j * rng.standard_normal(tuple(shape))
    )
