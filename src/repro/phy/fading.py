"""Spatially-correlated tapped-delay channel model.

The purely geometric model of :mod:`repro.phy.channel` is physically faithful
but decorrelates almost completely between beamformee positions that are only
10 cm apart: at 5.21 GHz a 10 cm displacement changes every reflected-path
phase by several wavelengths.  The paper's measurements behave differently --
the feedback features that the classifier relies on vary *smoothly* enough
with position that training on the odd positions lets the network interpolate
to the even ones (split S2), while positions far outside the training range
(split S3) or a moving AP (dataset D2) look like a different channel.

This module provides a channel whose position dependence has an explicit,
tunable **correlation length**:

* :class:`GaussianRandomField` -- a smooth complex random field over TX/RX
  positions built from random Fourier features; its autocorrelation is
  approximately a squared exponential with the requested correlation length.
* :class:`ChannelTap` -- one tap of a tapped-delay-line channel: a delay, a
  departure/arrival direction and a gain field evaluated at the current
  TX/RX placement.
* :class:`SpatiallyCorrelatedChannel` -- the environment: a line-of-sight tap
  (delay and directions from the actual geometry) plus a configurable number
  of diffuse taps.  ``realize()`` produces a :class:`TappedDelayRealization`
  that exposes the same ``cfr()`` / ``perturbed()`` interface as
  :class:`repro.phy.channel.ChannelRealization`, so it can be used as a
  drop-in substitute everywhere a channel model is expected.

The trade-off between the two models is documented in DESIGN.md: the
geometric model is used for the physics-level unit tests, the correlated
model for dataset generation because its correlation length is the knob that
reproduces the paper's position-generalisation results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.phy.geometry import Position
from repro.phy.ofdm import SPEED_OF_LIGHT, SubcarrierLayout

#: Default correlation length of the diffuse-gain fields [m].
DEFAULT_CORRELATION_LENGTH_M = 0.25
#: Default Rician K-factor (line-of-sight to diffuse power ratio), linear.
DEFAULT_RICIAN_K = 2.0
#: Default number of diffuse taps.
DEFAULT_NUM_TAPS = 8
#: Default maximum excess delay of the diffuse taps [s].
DEFAULT_MAX_EXCESS_DELAY_S = 80e-9


class FadingModelError(ValueError):
    """Raised for invalid fading-model configurations."""


@dataclass(frozen=True)
class GaussianRandomField:
    """Smooth complex random field over a low-dimensional position space.

    The field is a sum of ``num_features`` complex plane waves whose spatial
    frequencies are drawn from a zero-mean normal distribution with standard
    deviation ``1 / correlation_length``; by Bochner's theorem the resulting
    field has (approximately) a squared-exponential autocorrelation
    ``exp(-|dp|^2 / (2 L^2))`` and unit average power.

    Attributes
    ----------
    frequencies:
        Spatial frequencies, shape ``(num_features, dims)`` [rad/m].
    phases:
        Per-feature phase offsets, shape ``(num_features,)``.
    weights:
        Complex per-feature weights, shape ``(num_features,)``.
    """

    frequencies: np.ndarray
    phases: np.ndarray
    weights: np.ndarray

    def __post_init__(self) -> None:
        if self.frequencies.ndim != 2:
            raise FadingModelError("frequencies must have shape (num_features, dims)")
        num_features = self.frequencies.shape[0]
        if self.phases.shape != (num_features,) or self.weights.shape != (num_features,):
            raise FadingModelError("phases and weights must match the feature count")

    @property
    def dims(self) -> int:
        """Dimensionality of the position space."""
        return self.frequencies.shape[1]

    def value(self, point: np.ndarray) -> complex:
        """Field value at a single point of shape ``(dims,)``."""
        point = np.asarray(point, dtype=float)
        if point.shape != (self.dims,):
            raise FadingModelError(
                f"point must have shape ({self.dims},), got {point.shape}"
            )
        args = self.frequencies @ point + self.phases
        total = np.sum(self.weights * np.exp(1j * args))
        return complex(total / np.sqrt(len(self.weights)))

    def values(self, points: np.ndarray) -> np.ndarray:
        """Field values at many points, shape ``(num_points, dims)``."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        if points.shape[1] != self.dims:
            raise FadingModelError(
                f"points must have shape (num_points, {self.dims})"
            )
        args = points @ self.frequencies.T + self.phases[np.newaxis, :]
        return (np.exp(1j * args) @ self.weights) / np.sqrt(len(self.weights))

    @staticmethod
    def random(
        rng: np.random.Generator,
        dims: int,
        correlation_length_m: float,
        num_features: int = 48,
    ) -> "GaussianRandomField":
        """Draw a random field with the requested correlation length."""
        if dims < 1:
            raise FadingModelError("dims must be >= 1")
        if correlation_length_m <= 0:
            raise FadingModelError("correlation_length_m must be positive")
        if num_features < 1:
            raise FadingModelError("num_features must be >= 1")
        frequencies = rng.normal(
            0.0, 1.0 / correlation_length_m, size=(num_features, dims)
        )
        phases = rng.uniform(0.0, 2.0 * np.pi, size=num_features)
        weights = (
            rng.standard_normal(num_features) + 1j * rng.standard_normal(num_features)
        ) / np.sqrt(2.0)
        return GaussianRandomField(
            frequencies=frequencies, phases=phases, weights=weights
        )


@dataclass(frozen=True)
class ChannelTap:
    """One tap of the tapped-delay-line channel.

    Attributes
    ----------
    excess_delay_s:
        Delay of the tap in excess of the line-of-sight delay [s].
    amplitude:
        Average amplitude of the tap (relative to the line of sight).
    departure_direction:
        Unit vector of the departure direction in the room plane.
    arrival_direction:
        Unit vector of the arrival direction in the room plane.
    gain_field:
        Complex gain as a smooth function of the concatenated
        ``(tx_x, tx_y, rx_x, rx_y)`` placement.
    kind:
        ``"los"`` or ``"diffuse"``.
    """

    excess_delay_s: float
    amplitude: float
    departure_direction: np.ndarray
    arrival_direction: np.ndarray
    gain_field: Optional[GaussianRandomField]
    kind: str = "diffuse"

    def gain(self, tx_centre: np.ndarray, rx_centre: np.ndarray) -> complex:
        """Complex tap gain for the given TX/RX array centres."""
        if self.gain_field is None:
            return complex(self.amplitude)
        point = np.concatenate([tx_centre, rx_centre])
        return complex(self.amplitude * self.gain_field.value(point))


@dataclass(frozen=True)
class RealizedTap:
    """A tap bound to concrete antenna arrays (steering phases resolved)."""

    delay_s: float
    gain: complex
    tx_steering: np.ndarray
    rx_steering: np.ndarray
    kind: str = "diffuse"

    def __post_init__(self) -> None:
        if self.tx_steering.ndim != 1 or self.rx_steering.ndim != 1:
            raise FadingModelError("steering vectors must be one-dimensional")


@dataclass
class TappedDelayRealization:
    """A concrete tapped-delay channel between a TX and an RX antenna array.

    Interface-compatible with :class:`repro.phy.channel.ChannelRealization`:
    exposes ``cfr(layout)``, ``perturbed(rng, ...)`` and the antenna-count
    properties, so :func:`repro.phy.mimo.compute_cfr` can consume it without
    modification.
    """

    taps: List[RealizedTap]
    carrier_frequency_hz: float

    def __post_init__(self) -> None:
        if not self.taps:
            raise FadingModelError("a realization needs at least one tap")
        num_tx = len(self.taps[0].tx_steering)
        num_rx = len(self.taps[0].rx_steering)
        for tap in self.taps:
            if len(tap.tx_steering) != num_tx or len(tap.rx_steering) != num_rx:
                raise FadingModelError("all taps must share the antenna geometry")

    @property
    def num_tx_antennas(self) -> int:
        """Number of transmit antennas ``M``."""
        return len(self.taps[0].tx_steering)

    @property
    def num_rx_antennas(self) -> int:
        """Number of receive antennas ``N``."""
        return len(self.taps[0].rx_steering)

    def cfr(self, layout: SubcarrierLayout) -> np.ndarray:
        """Channel frequency response ``H`` of shape ``(K, M, N)``.

        Every tap contributes
        ``gain * a_tx(m) * a_rx(n) * exp(-j*2*pi*f_k*delay)`` -- the Eq. (2)
        structure with the per-antenna-pair delay replaced by a steering
        approximation (valid because the arrays are small compared to the
        propagation distances).
        """
        frequencies = layout.frequencies_hz  # (K,)
        gains = np.array([tap.gain for tap in self.taps])  # (T,)
        delays = np.array([tap.delay_s for tap in self.taps])  # (T,)
        tx_steering = np.stack([tap.tx_steering for tap in self.taps])  # (T, M)
        rx_steering = np.stack([tap.rx_steering for tap in self.taps])  # (T, N)
        # phase[t, k] = -2*pi*f_k*tau_t
        phase = -2.0 * np.pi * frequencies[np.newaxis, :] * delays[:, np.newaxis]
        per_tap = gains[:, np.newaxis] * np.exp(1j * phase)  # (T, K)
        spatial = tx_steering[:, :, np.newaxis] * rx_steering[:, np.newaxis, :]  # (T, M, N)
        return np.einsum("tk,tmn->kmn", per_tap, spatial)

    def perturbed(
        self,
        rng: np.random.Generator,
        gain_jitter: float = 0.05,
        phase_jitter: float = 0.1,
    ) -> "TappedDelayRealization":
        """Copy with per-packet gain/phase jitter (small-scale fading).

        The line-of-sight tap is perturbed less than the diffuse taps, as in
        the geometric model.
        """
        perturbed_taps = []
        for tap in self.taps:
            scale = 0.3 if tap.kind == "los" else 1.0
            amplitude = 1.0 + scale * gain_jitter * rng.standard_normal()
            phase = scale * phase_jitter * rng.standard_normal()
            perturbed_taps.append(
                RealizedTap(
                    delay_s=tap.delay_s,
                    gain=tap.gain * amplitude * np.exp(1j * phase),
                    tx_steering=tap.tx_steering,
                    rx_steering=tap.rx_steering,
                    kind=tap.kind,
                )
            )
        return TappedDelayRealization(
            taps=perturbed_taps, carrier_frequency_hz=self.carrier_frequency_hz
        )


def _unit_vector(angle_rad: float) -> np.ndarray:
    """Unit vector in the room plane for a given azimuth angle."""
    return np.array([np.cos(angle_rad), np.sin(angle_rad)], dtype=float)


def _steering_vector(
    elements: np.ndarray, direction: np.ndarray, carrier_frequency_hz: float
) -> np.ndarray:
    """Narrow-band steering vector of an arbitrary planar array.

    ``elements`` has shape ``(A, 2)`` (element coordinates in metres) and
    ``direction`` is a unit vector pointing *away* from the array.  The phase
    reference is the array centroid so a single-element array always returns
    ``[1.0]``.
    """
    elements = np.asarray(elements, dtype=float)
    centre = np.mean(elements, axis=0)
    offsets = elements - centre[np.newaxis, :]
    wavelength = SPEED_OF_LIGHT / carrier_frequency_hz
    projections = offsets @ np.asarray(direction, dtype=float)
    return np.exp(-2j * np.pi * projections / wavelength)


@dataclass
class SpatiallyCorrelatedChannel:
    """Tapped-delay channel whose taps fade smoothly with TX/RX position.

    Attributes
    ----------
    num_taps:
        Number of diffuse taps (the line of sight is added on top).
    rician_k:
        Line-of-sight to total-diffuse power ratio (linear).  Larger values
        make the channel more deterministic and position dependence weaker.
    correlation_length_m:
        Correlation length of every diffuse-tap gain field; the channel seen
        by a terminal decorrelates over displacements of roughly this size.
    max_excess_delay_s:
        Largest excess delay of the diffuse taps; controls how
        frequency-selective the channel is across the sounded band.
    delay_decay:
        Exponential power-decay constant of the diffuse taps (power of tap
        ``t`` is proportional to ``exp(-delay_decay * t / num_taps)``).
    environment_seed:
        Seed fixing the tap delays, directions and gain fields (the
        "environment").
    num_field_features:
        Number of random Fourier features per gain field.
    """

    num_taps: int = DEFAULT_NUM_TAPS
    rician_k: float = DEFAULT_RICIAN_K
    correlation_length_m: float = DEFAULT_CORRELATION_LENGTH_M
    max_excess_delay_s: float = DEFAULT_MAX_EXCESS_DELAY_S
    delay_decay: float = 2.0
    environment_seed: int = 0
    num_field_features: int = 48

    def __post_init__(self) -> None:
        if self.num_taps < 1:
            raise FadingModelError("num_taps must be >= 1")
        if self.rician_k < 0:
            raise FadingModelError("rician_k must be non-negative")
        if self.correlation_length_m <= 0:
            raise FadingModelError("correlation_length_m must be positive")
        if self.max_excess_delay_s <= 0:
            raise FadingModelError("max_excess_delay_s must be positive")
        rng = np.random.default_rng(self.environment_seed)
        # Diffuse-tap delays are spread over (0, max_excess_delay]; powers
        # decay exponentially with delay, as in standard indoor models.
        raw_delays = np.sort(rng.uniform(0.05, 1.0, size=self.num_taps))
        self._tap_delays = raw_delays * self.max_excess_delay_s
        powers = np.exp(-self.delay_decay * raw_delays)
        powers = powers / np.sum(powers)
        self._tap_amplitudes = np.sqrt(powers)
        self._tap_departures = rng.uniform(0.0, 2.0 * np.pi, size=self.num_taps)
        self._tap_arrivals = rng.uniform(0.0, 2.0 * np.pi, size=self.num_taps)
        self._tap_fields = [
            GaussianRandomField.random(
                rng,
                dims=4,
                correlation_length_m=self.correlation_length_m,
                num_features=self.num_field_features,
            )
            for _ in range(self.num_taps)
        ]

    def taps(self) -> List[ChannelTap]:
        """The diffuse taps of the environment (without the line of sight)."""
        taps = []
        for index in range(self.num_taps):
            taps.append(
                ChannelTap(
                    excess_delay_s=float(self._tap_delays[index]),
                    amplitude=float(self._tap_amplitudes[index]),
                    departure_direction=_unit_vector(self._tap_departures[index]),
                    arrival_direction=_unit_vector(self._tap_arrivals[index]),
                    gain_field=self._tap_fields[index],
                    kind="diffuse",
                )
            )
        return taps

    def realize(
        self,
        tx_elements: np.ndarray,
        rx_elements: np.ndarray,
        carrier_frequency_hz: float,
        rng: Optional[np.random.Generator] = None,
    ) -> TappedDelayRealization:
        """Resolve the channel for concrete TX/RX antenna arrays.

        Parameters
        ----------
        tx_elements / rx_elements:
            Antenna element coordinates, shapes ``(M, 2)`` and ``(N, 2)``.
        carrier_frequency_hz:
            Carrier frequency used for the steering phases.
        rng:
            Unused (accepted for interface compatibility with
            :class:`repro.phy.channel.MultipathChannel`).
        """
        tx_elements = np.asarray(tx_elements, dtype=float)
        rx_elements = np.asarray(rx_elements, dtype=float)
        if tx_elements.ndim != 2 or tx_elements.shape[1] != 2:
            raise FadingModelError("tx_elements must have shape (M, 2)")
        if rx_elements.ndim != 2 or rx_elements.shape[1] != 2:
            raise FadingModelError("rx_elements must have shape (N, 2)")
        tx_centre = np.mean(tx_elements, axis=0)
        rx_centre = np.mean(rx_elements, axis=0)

        separation = rx_centre - tx_centre
        distance = float(np.linalg.norm(separation))
        distance = max(distance, 1e-3)
        los_direction = separation / distance
        los_delay = distance / SPEED_OF_LIGHT
        # Total diffuse power is 1 by construction; the LoS amplitude follows
        # from the Rician K-factor.  A 1/distance spreading loss is applied to
        # everything, which only affects the absolute CFR scale.
        spreading = 1.0 / distance
        los_amplitude = np.sqrt(self.rician_k) * spreading

        realized: List[RealizedTap] = []
        realized.append(
            RealizedTap(
                delay_s=los_delay,
                gain=complex(los_amplitude),
                tx_steering=_steering_vector(
                    tx_elements, los_direction, carrier_frequency_hz
                ),
                rx_steering=_steering_vector(
                    rx_elements, -los_direction, carrier_frequency_hz
                ),
                kind="los",
            )
        )
        for tap in self.taps():
            gain = tap.gain(tx_centre, rx_centre) * spreading
            realized.append(
                RealizedTap(
                    delay_s=los_delay + tap.excess_delay_s,
                    gain=gain,
                    tx_steering=_steering_vector(
                        tx_elements, tap.departure_direction, carrier_frequency_hz
                    ),
                    rx_steering=_steering_vector(
                        rx_elements, tap.arrival_direction, carrier_frequency_hz
                    ),
                    kind="diffuse",
                )
            )
        return TappedDelayRealization(
            taps=realized, carrier_frequency_hz=carrier_frequency_hz
        )


def spatial_correlation(
    channel: SpatiallyCorrelatedChannel,
    reference: Position,
    displacements_m: Sequence[float],
    carrier_frequency_hz: float,
    probe: Optional[Position] = None,
    num_references: int = 12,
    reference_spread_m: float = 0.6,
) -> List[Tuple[float, float]]:
    """Empirical channel correlation versus RX displacement.

    For every displacement ``d`` the diffuse tap-gain vector is evaluated at a
    grid of reference RX positions around ``reference`` and at the same
    positions shifted laterally by ``d``; the reported value is the magnitude
    of the normalised inner product averaged over the reference grid (the
    averaging keeps the estimate stable even with few taps).  Useful to
    verify -- and to document in the benchmarks -- that the configured
    correlation length behaves as intended.
    """
    if num_references < 1:
        raise FadingModelError("num_references must be >= 1")
    tx_position = probe if probe is not None else Position(0.0, 0.0)
    tx_centre = tx_position.as_array()
    taps = channel.taps()

    def tap_gains(rx_position: Position) -> np.ndarray:
        rx_centre = rx_position.as_array()
        return np.array(
            [tap.gain(tx_centre, rx_centre) for tap in taps], dtype=complex
        )

    offsets = np.linspace(-reference_spread_m, reference_spread_m, num_references)
    references = [reference.translated(0.0, float(offset)) for offset in offsets]
    base_gains = [tap_gains(position) for position in references]

    results = []
    for displacement in displacements_m:
        values = []
        for position, base in zip(references, base_gains):
            shifted = tap_gains(position.translated(float(displacement), 0.0))
            denom = np.linalg.norm(base) * np.linalg.norm(shifted)
            values.append(
                np.abs(np.vdot(base, shifted)) / denom if denom > 0 else 0.0
            )
        results.append((float(displacement), float(np.mean(values))))
    return results
