"""Mobility traces for dataset D2: the AP moving along the Fig. 6 path.

The paper's dynamic dataset D2 is collected while the AP is *manually* moved
along the waypoint path A-B-C-D-B-A, so the realised trajectory differs
slightly from run to run and a person is always walking next to the AP.
:func:`waypoint_path` samples a polyline between waypoints at a constant
nominal speed and adds small per-sample jitter to model the manual movement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.phy.geometry import Position, path_length


@dataclass(frozen=True)
class MobilityTrace:
    """A sampled trajectory of the access point.

    Attributes
    ----------
    positions:
        Sequence of AP positions, one per sounding packet.
    timestamps_s:
        Sampling instant of every position.
    """

    positions: tuple
    timestamps_s: tuple

    def __post_init__(self) -> None:
        if len(self.positions) != len(self.timestamps_s):
            raise ValueError("positions and timestamps must have equal length")
        if len(self.positions) == 0:
            raise ValueError("a mobility trace cannot be empty")

    def __len__(self) -> int:
        return len(self.positions)

    def __getitem__(self, index: int) -> Position:
        return self.positions[index]

    @property
    def total_distance_m(self) -> float:
        """Length of the realised trajectory [m]."""
        return path_length(list(self.positions))


def static_trace(
    position: Position, num_samples: int, interval_s: float = 0.5
) -> MobilityTrace:
    """A trace that keeps the AP fixed (used for the 'fix' groups of D2)."""
    if num_samples < 1:
        raise ValueError("num_samples must be >= 1")
    positions = tuple(position for _ in range(num_samples))
    timestamps = tuple(i * interval_s for i in range(num_samples))
    return MobilityTrace(positions=positions, timestamps_s=timestamps)


def waypoint_path(
    waypoints: Sequence[Position],
    num_samples: int,
    interval_s: float = 0.5,
    jitter_std_m: float = 0.02,
    rng: Optional[np.random.Generator] = None,
) -> MobilityTrace:
    """Sample a trajectory along a waypoint polyline.

    Parameters
    ----------
    waypoints:
        Ordered list of waypoints (e.g. A, B, C, D, B, A).
    num_samples:
        Number of positions to produce (one per sounding packet).
    interval_s:
        Time between consecutive soundings.
    jitter_std_m:
        Standard deviation of the lateral jitter modelling the manual
        movement of the AP; set to ``0`` for an exact polyline.
    rng:
        Random generator used for the jitter.

    Returns
    -------
    MobilityTrace
        The sampled trajectory.
    """
    if len(waypoints) < 2:
        raise ValueError("at least two waypoints are required")
    if num_samples < 1:
        raise ValueError("num_samples must be >= 1")
    if jitter_std_m < 0:
        raise ValueError("jitter_std_m must be non-negative")
    rng = rng if rng is not None else np.random.default_rng()

    # Arc-length parametrisation of the polyline.
    points = np.array([w.as_array() for w in waypoints])
    segment_lengths = np.linalg.norm(np.diff(points, axis=0), axis=1)
    cumulative = np.concatenate([[0.0], np.cumsum(segment_lengths)])
    total_length = cumulative[-1]
    if total_length == 0:
        return static_trace(waypoints[0], num_samples, interval_s)

    targets = np.linspace(0.0, total_length, num_samples)
    positions: List[Position] = []
    for target in targets:
        segment = int(np.searchsorted(cumulative, target, side="right") - 1)
        segment = min(segment, len(segment_lengths) - 1)
        seg_len = segment_lengths[segment]
        fraction = 0.0 if seg_len == 0 else (target - cumulative[segment]) / seg_len
        point = points[segment] + fraction * (points[segment + 1] - points[segment])
        if jitter_std_m > 0:
            point = point + rng.normal(0.0, jitter_std_m, size=2)
        positions.append(Position(float(point[0]), float(point[1])))

    timestamps = tuple(i * interval_s for i in range(num_samples))
    return MobilityTrace(positions=tuple(positions), timestamps_s=timestamps)


def round_trip(trace: MobilityTrace) -> MobilityTrace:
    """Concatenate a trace with its time-reversed copy (out-and-back walk)."""
    positions = trace.positions + tuple(reversed(trace.positions))
    interval = (
        trace.timestamps_s[1] - trace.timestamps_s[0] if len(trace) > 1 else 0.5
    )
    timestamps = tuple(i * interval for i in range(len(positions)))
    return MobilityTrace(positions=positions, timestamps_s=timestamps)
