"""MIMO CFR assembly, SVD beamforming and MU-MIMO precoding.

This module ties the channel model, the device impairments and the OFDM
layout together:

* :func:`compute_cfr` builds the CFR a beamformee estimates from the NDP,
  including the beamformer fingerprint, the beamformee's own receive-chain
  response, the per-packet phase offsets of Eq. (9) and estimation noise.
* :func:`beamforming_matrix` computes the per-sub-carrier beamforming matrix
  ``V_k`` (first ``N_SS`` columns of the right-singular-vector matrix of
  ``H_k^T``, Eq. (3)).
* :func:`steering_weights` / :func:`mu_mimo_precoder` compute single-user and
  multi-user steering matrices; :func:`interference_metrics` quantifies the
  residual inter-stream (ISI) and inter-user (IUI) interference, which the
  paper argues never contaminates the feedback because the NDP is sent
  un-beamformed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.phy.channel import ChannelRealization, MultipathChannel
from repro.phy.devices import AccessPoint, Beamformee
from repro.phy.impairments import PacketOffsets, thermal_noise
from repro.phy.ofdm import SubcarrierLayout


@dataclass(frozen=True)
class SoundingResult:
    """Everything produced by a single NDP sounding towards one beamformee.

    Attributes
    ----------
    cfr:
        Estimated CFR ``H`` of shape ``(K, M, N)``.
    v_matrix:
        Beamforming matrix ``V`` of shape ``(K, M, N_SS)`` derived from the
        CFR through Eq. (3).
    """

    cfr: np.ndarray
    v_matrix: np.ndarray


def compute_cfr(
    access_point: AccessPoint,
    beamformee: Beamformee,
    channel: MultipathChannel,
    layout: SubcarrierLayout,
    rng: np.random.Generator,
    packet_offsets: Optional[PacketOffsets] = None,
    snr_db: float = 30.0,
    fading_jitter: float = 0.03,
    realization: Optional[ChannelRealization] = None,
    pa_flip_probability: float = 0.5,
) -> np.ndarray:
    """CFR estimated by ``beamformee`` from an NDP sent by ``access_point``.

    Parameters
    ----------
    access_point:
        The beamformer (module + antenna array + position).
    beamformee:
        The station estimating the channel.
    channel:
        Multipath environment model.
    layout:
        Sub-carrier layout of the sounded channel.
    rng:
        Random generator for fading, packet offsets and estimation noise.
    packet_offsets:
        Per-packet phase offsets; drawn randomly when omitted.
    snr_db:
        Channel-estimation SNR at the beamformee.
    fading_jitter:
        Standard deviation of the per-packet path-gain perturbation.
    realization:
        Pre-computed channel realization to reuse (avoids recomputing the
        geometry for every packet of a static trace).
    pa_flip_probability:
        Probability of a per-antenna ``pi`` phase ambiguity when the packet
        offsets are drawn internally (ignored when ``packet_offsets`` is
        given).

    Returns
    -------
    numpy.ndarray
        Complex CFR of shape ``(K, M, N)``.
    """
    cfg = layout.config
    if realization is None:
        realization = channel.realize(
            access_point.antenna_elements(),
            beamformee.antenna_elements(),
            cfg.carrier_frequency_hz,
        )
    perturbed = realization.perturbed(
        rng, gain_jitter=fading_jitter, phase_jitter=2.0 * fading_jitter
    )
    cfr = perturbed.cfr(layout)

    # Transmit-chain (beamformer) fingerprint: the quantity DeepCSI learns.
    cfr = access_point.module.fingerprint.apply(
        cfr, layout.indices, cfg.subcarrier_spacing_hz
    )
    # Receive-chain response of the beamformee.
    if beamformee.impairment is not None:
        cfr = beamformee.impairment.apply(
            cfr, layout.indices, cfg.subcarrier_spacing_hz
        )
    # Per-packet random offsets (Eq. 9 / Eq. 10).
    if packet_offsets is None:
        packet_offsets = PacketOffsets.random(
            rng, access_point.num_antennas, pa_flip_probability=pa_flip_probability
        )
    cfr = packet_offsets.apply(cfr, layout.indices, cfg.symbol_duration_s)

    # Channel-estimation noise.
    signal_power = float(np.mean(np.abs(cfr) ** 2))
    cfr = cfr + thermal_noise(rng, cfr.shape, snr_db, signal_power)
    return cfr


def beamforming_matrix(cfr: np.ndarray, num_streams: int) -> np.ndarray:
    """Per-sub-carrier beamforming matrix ``V`` from the CFR (Eq. 3).

    For every sub-carrier ``k`` the CFR sub-matrix ``H_k`` (``M x N``) is
    transposed and decomposed as ``H_k^T = U_k S_k Z_k^H``; the first
    ``num_streams`` columns of ``Z_k`` form ``V_k``.

    Parameters
    ----------
    cfr:
        CFR of shape ``(K, M, N)``.
    num_streams:
        Number of spatial streams ``N_SS`` (at most ``N``).

    Returns
    -------
    numpy.ndarray
        ``V`` of shape ``(K, M, num_streams)`` with orthonormal columns.
    """
    cfr = np.asarray(cfr)
    if cfr.ndim != 3:
        raise ValueError("cfr must have shape (K, M, N)")
    num_rx = cfr.shape[2]
    if not 1 <= num_streams <= num_rx:
        raise ValueError(
            f"num_streams must be in 1..{num_rx} (number of RX antennas)"
        )
    # H_k^T has shape (N, M); batched SVD over the K sub-carriers.
    h_t = np.transpose(cfr, (0, 2, 1))
    _, _, zh = np.linalg.svd(h_t, full_matrices=True)
    # zh has shape (K, M, M) and equals Z^H; Z's columns are rows of zh
    # conjugated.
    z = np.conj(np.transpose(zh, (0, 2, 1)))
    return z[:, :, :num_streams]


def steering_weights(v_matrix: np.ndarray) -> np.ndarray:
    """Single-user steering matrix: the beamformer simply applies ``V``.

    With ``W_k = V_k`` the effective channel ``H_k^T W_k`` becomes
    column-orthogonal, which removes inter-stream interference in the ideal
    (un-quantised, noise-free) case.
    """
    return np.array(v_matrix, copy=True)


def mu_mimo_precoder(
    cfrs: Sequence[np.ndarray], streams_per_user: Sequence[int]
) -> List[np.ndarray]:
    """Zero-forcing multi-user precoder for DL MU-MIMO.

    Given the CFR of every beamformee, compute per-user steering matrices
    that null the inter-user interference: the composite channel rows of the
    other users are projected out before applying the per-user SVD precoder.

    Parameters
    ----------
    cfrs:
        One CFR of shape ``(K, M, N_u)`` per beamformee ``u``.
    streams_per_user:
        Number of spatial streams for each beamformee.

    Returns
    -------
    list of numpy.ndarray
        Per-user steering matrices ``W_u`` of shape ``(K, M, N_SS,u)``.
    """
    if len(cfrs) != len(streams_per_user):
        raise ValueError("cfrs and streams_per_user must have the same length")
    if not cfrs:
        raise ValueError("at least one beamformee is required")
    num_subcarriers = cfrs[0].shape[0]
    num_tx = cfrs[0].shape[1]
    total_streams = int(sum(streams_per_user))
    if total_streams > num_tx:
        raise ValueError(
            f"cannot serve {total_streams} streams with {num_tx} TX antennas"
        )
    for cfr in cfrs:
        if cfr.shape[0] != num_subcarriers or cfr.shape[1] != num_tx:
            raise ValueError("all CFRs must share the (K, M) dimensions")

    weights: List[np.ndarray] = []
    for user, cfr in enumerate(cfrs):
        n_ss = streams_per_user[user]
        others = [
            np.transpose(other, (0, 2, 1))  # (K, N_v, M)
            for v, other in enumerate(cfrs)
            if v != user
        ]
        w_user = np.zeros((num_subcarriers, num_tx, n_ss), dtype=complex)
        for k in range(num_subcarriers):
            if others:
                interference = np.concatenate([o[k] for o in others], axis=0)
                # Null space of the other users' channel rows.
                _, s, vh = np.linalg.svd(interference, full_matrices=True)
                rank = int(np.sum(s > 1e-10 * (s[0] if len(s) else 1.0)))
                null_basis = np.conj(vh[rank:, :]).T  # (M, M - rank)
            else:
                null_basis = np.eye(num_tx, dtype=complex)
            if null_basis.shape[1] == 0:
                raise ValueError(
                    "zero-forcing infeasible: no null space left for user "
                    f"{user} on sub-carrier {k}"
                )
            effective = cfr[k].T @ null_basis  # (N_u, M-rank)
            _, _, vh_eff = np.linalg.svd(effective, full_matrices=False)
            precoder = np.conj(vh_eff[:n_ss, :]).T  # (M-rank, n_ss)
            w_user[k] = null_basis @ precoder
        weights.append(w_user)
    return weights


@dataclass(frozen=True)
class InterferenceReport:
    """Residual interference of a MU-MIMO transmission (linear power ratios).

    Attributes
    ----------
    signal_power:
        Mean useful signal power per user.
    inter_stream_interference:
        Mean ISI power per user (off-diagonal leakage of the effective
        per-user channel).
    inter_user_interference:
        Mean IUI power per user (leakage of other users' precoders).
    """

    signal_power: Tuple[float, ...]
    inter_stream_interference: Tuple[float, ...]
    inter_user_interference: Tuple[float, ...]

    def sinr_db(self, noise_power: float = 0.0) -> Tuple[float, ...]:
        """Per-user SINR in dB for a given noise power."""
        sinrs = []
        for sig, isi, iui in zip(
            self.signal_power,
            self.inter_stream_interference,
            self.inter_user_interference,
        ):
            denom = isi + iui + noise_power
            sinrs.append(10.0 * np.log10(sig / denom) if denom > 0 else np.inf)
        return tuple(sinrs)


def interference_metrics(
    cfrs: Sequence[np.ndarray], weights: Sequence[np.ndarray]
) -> InterferenceReport:
    """Measure residual ISI and IUI of a set of per-user precoders.

    For every user ``u`` the effective channel towards user ``u`` is
    ``E_{u,v} = H_u^T W_v``; the diagonal of ``E_{u,u}`` carries the useful
    signal, its off-diagonal entries the inter-stream interference and the
    ``E_{u,v}`` (``v != u``) blocks the inter-user interference.
    """
    if len(cfrs) != len(weights):
        raise ValueError("cfrs and weights must have the same length")
    signal, isi, iui = [], [], []
    for u, cfr in enumerate(cfrs):
        h_t = np.transpose(cfr, (0, 2, 1))  # (K, N_u, M)
        own = np.matmul(h_t, weights[u])  # (K, N_u, n_ss_u)
        n_ss = own.shape[2]
        diag = np.abs(np.stack([own[:, i, i] for i in range(min(n_ss, own.shape[1]))], axis=1)) ** 2
        diag_power = float(np.mean(np.sum(diag, axis=1)))
        total_own = float(np.mean(np.sum(np.abs(own) ** 2, axis=(1, 2))))
        isi_power = max(total_own - diag_power, 0.0)
        iui_power = 0.0
        for v, w in enumerate(weights):
            if v == u:
                continue
            cross = np.matmul(h_t, w)
            iui_power += float(np.mean(np.sum(np.abs(cross) ** 2, axis=(1, 2))))
        signal.append(diag_power)
        isi.append(isi_power)
        iui.append(iui_power)
    return InterferenceReport(
        signal_power=tuple(signal),
        inter_stream_interference=tuple(isi),
        inter_user_interference=tuple(iui),
    )


def sound_beamformee(
    access_point: AccessPoint,
    beamformee: Beamformee,
    channel: MultipathChannel,
    layout: SubcarrierLayout,
    rng: np.random.Generator,
    **cfr_kwargs,
) -> SoundingResult:
    """Run one complete sounding: CFR estimation plus ``V`` computation."""
    cfr = compute_cfr(access_point, beamformee, channel, layout, rng, **cfr_kwargs)
    v_matrix = beamforming_matrix(cfr, beamformee.num_streams)
    return SoundingResult(cfr=cfr, v_matrix=v_matrix)
