"""IEEE 802.11ac OFDM sub-carrier layouts and basic OFDM parameters.

The paper sounds channel 42 (centre frequency 5.21 GHz) with 80 MHz of
bandwidth.  The compressed beamforming feedback carries one set of angles per
*sounded* sub-carrier: for an 80 MHz VHT channel the standard defines 256
sub-carriers of which 234 are sounded (the DC/null and pilot sub-carriers are
excluded).  Narrower channels nested inside the 80 MHz channel sound 110
(40 MHz) and 54 (20 MHz) sub-carriers respectively; Fig. 12a of the paper
evaluates DeepCSI on exactly those nested subsets.

This module provides:

* :class:`OfdmConfig` -- carrier frequency, bandwidth, sub-carrier spacing and
  OFDM symbol duration.
* :class:`SubcarrierLayout` -- the set of sounded sub-carrier indices for a
  given bandwidth, with helpers to map to absolute frequencies.
* :func:`sounding_layout` -- standard-compliant layouts for 80/40/20 MHz.
* :func:`subband_indices` -- positions (within the 80 MHz sounding order) of
  the sub-carriers belonging to a nested 40/20 MHz channel, which is how the
  paper extracts the narrow-band subsets from the wide-band captures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

#: Speed of light [m/s], used to convert path lengths into delays.
SPEED_OF_LIGHT = 299_792_458.0

#: Sub-carrier spacing of 802.11ac OFDM [Hz].
SUBCARRIER_SPACING_HZ = 312_500.0

#: Number of sounded sub-carriers per bandwidth (MHz -> count), as reported in
#: Section IV / Fig. 12a of the paper.
SOUNDED_SUBCARRIERS = {80: 234, 40: 110, 20: 54}

#: Default centre frequency (channel 42) used in the paper's testbed [Hz].
DEFAULT_CARRIER_FREQUENCY_HZ = 5.21e9


class OfdmError(ValueError):
    """Raised for invalid OFDM configuration parameters."""


@dataclass(frozen=True)
class OfdmConfig:
    """Static OFDM parameters of the sounded channel.

    Attributes
    ----------
    carrier_frequency_hz:
        Centre frequency :math:`f_c` of the channel.
    bandwidth_mhz:
        Channel bandwidth in MHz (20, 40 or 80).
    subcarrier_spacing_hz:
        Spacing :math:`1/T` between adjacent OFDM sub-carriers.
    """

    carrier_frequency_hz: float = DEFAULT_CARRIER_FREQUENCY_HZ
    bandwidth_mhz: int = 80
    subcarrier_spacing_hz: float = SUBCARRIER_SPACING_HZ

    def __post_init__(self) -> None:
        if self.bandwidth_mhz not in SOUNDED_SUBCARRIERS:
            raise OfdmError(
                f"unsupported bandwidth {self.bandwidth_mhz} MHz; "
                f"expected one of {sorted(SOUNDED_SUBCARRIERS)}"
            )
        if self.carrier_frequency_hz <= 0:
            raise OfdmError("carrier frequency must be positive")
        if self.subcarrier_spacing_hz <= 0:
            raise OfdmError("sub-carrier spacing must be positive")

    @property
    def symbol_duration_s(self) -> float:
        """Useful OFDM symbol duration :math:`T` (without guard interval)."""
        return 1.0 / self.subcarrier_spacing_hz

    @property
    def num_sounded_subcarriers(self) -> int:
        """Number of sub-carriers sounded by the NDP for this bandwidth."""
        return SOUNDED_SUBCARRIERS[self.bandwidth_mhz]


def _sounded_indices_80mhz() -> np.ndarray:
    """Sounded sub-carrier indices for an 80 MHz VHT channel.

    The 802.11ac feedback for 80 MHz covers indices -122..-2 and 2..122,
    excluding the eight pilot sub-carriers (+/-11, +/-39, +/-75, +/-103);
    that yields the 234 sounded sub-carriers reported by the paper.
    """
    pilots = {-103, -75, -39, -11, 11, 39, 75, 103}
    negative = [k for k in range(-122, -1) if k not in pilots]
    positive = [k for k in range(2, 123) if k not in pilots]
    indices = np.array(negative + positive, dtype=int)
    return indices


def _sounded_indices_40mhz() -> np.ndarray:
    """Sounded sub-carrier indices for a 40 MHz VHT channel (110 tones).

    The feedback covers indices -58..-2 and 2..58 minus four excluded
    pilot tones, which yields the 110 sounded sub-carriers the paper
    reports for the 40 MHz channel 38.
    """
    excluded = {-53, -25, 25, 53}
    negative = [k for k in range(-58, -1) if k not in excluded]
    positive = [k for k in range(2, 59) if k not in excluded]
    return np.array(negative + positive, dtype=int)


def _sounded_indices_20mhz() -> np.ndarray:
    """Sounded sub-carrier indices for a 20 MHz VHT channel (54 tones).

    The feedback covers indices -28..-1 and 1..28 minus two excluded pilot
    tones, which yields the 54 sounded sub-carriers the paper reports for
    the 20 MHz channel 36.
    """
    excluded = {-21, 21}
    negative = [k for k in range(-28, 0) if k not in excluded]
    positive = [k for k in range(1, 29) if k not in excluded]
    return np.array(negative + positive, dtype=int)


_INDEX_BUILDERS = {
    80: _sounded_indices_80mhz,
    40: _sounded_indices_40mhz,
    20: _sounded_indices_20mhz,
}


@dataclass(frozen=True)
class SubcarrierLayout:
    """Set of sounded sub-carriers of a VHT channel.

    Attributes
    ----------
    config:
        OFDM configuration of the channel.
    indices:
        Integer sub-carrier indices :math:`k` relative to the channel centre,
        in ascending order.  ``len(indices)`` equals
        ``config.num_sounded_subcarriers``.
    """

    config: OfdmConfig
    indices: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        expected = self.config.num_sounded_subcarriers
        if len(self.indices) != expected:
            raise OfdmError(
                f"layout for {self.config.bandwidth_mhz} MHz must have "
                f"{expected} sub-carriers, got {len(self.indices)}"
            )

    def __len__(self) -> int:
        return len(self.indices)

    @property
    def num_subcarriers(self) -> int:
        """Number of sounded sub-carriers (``K`` in the paper)."""
        return len(self.indices)

    @property
    def frequencies_hz(self) -> np.ndarray:
        """Absolute frequency of every sounded sub-carrier [Hz]."""
        cfg = self.config
        return cfg.carrier_frequency_hz + self.indices * cfg.subcarrier_spacing_hz

    @property
    def baseband_offsets_hz(self) -> np.ndarray:
        """Baseband frequency offset ``k / T`` of every sub-carrier [Hz]."""
        return self.indices * self.config.subcarrier_spacing_hz


def sounding_layout(
    bandwidth_mhz: int = 80,
    carrier_frequency_hz: float = DEFAULT_CARRIER_FREQUENCY_HZ,
) -> SubcarrierLayout:
    """Build the standard sounding layout for the requested bandwidth.

    Parameters
    ----------
    bandwidth_mhz:
        20, 40 or 80.
    carrier_frequency_hz:
        Channel centre frequency; defaults to channel 42 (5.21 GHz).
    """
    if bandwidth_mhz not in _INDEX_BUILDERS:
        raise OfdmError(
            f"unsupported bandwidth {bandwidth_mhz} MHz; "
            f"expected one of {sorted(_INDEX_BUILDERS)}"
        )
    config = OfdmConfig(
        carrier_frequency_hz=carrier_frequency_hz, bandwidth_mhz=bandwidth_mhz
    )
    return SubcarrierLayout(config=config, indices=_INDEX_BUILDERS[bandwidth_mhz]())


def subband_indices(
    wide_layout: SubcarrierLayout, target_bandwidth_mhz: int
) -> np.ndarray:
    """Positions of a nested narrow channel inside a wide sounding layout.

    The paper extracts the 40 MHz (channel 38) and 20 MHz (channel 36)
    subsets from the 80 MHz channel-42 captures.  Channel 38 occupies the
    lower half of channel 42 and channel 36 the lower quarter, so the nested
    channel centre sits at a negative offset from the 80 MHz centre.

    Parameters
    ----------
    wide_layout:
        The layout the data was captured with (normally the 80 MHz layout).
    target_bandwidth_mhz:
        Bandwidth of the nested channel to extract (20, 40 or the same as
        the wide layout).

    Returns
    -------
    numpy.ndarray
        Integer positions into ``wide_layout.indices`` selecting the
        sub-carriers of the nested channel, with
        ``len(result) == SOUNDED_SUBCARRIERS[target_bandwidth_mhz]``.
    """
    wide_bw = wide_layout.config.bandwidth_mhz
    if target_bandwidth_mhz == wide_bw:
        return np.arange(wide_layout.num_subcarriers)
    if target_bandwidth_mhz not in SOUNDED_SUBCARRIERS:
        raise OfdmError(f"unsupported target bandwidth {target_bandwidth_mhz} MHz")
    if target_bandwidth_mhz > wide_bw:
        raise OfdmError("target bandwidth must not exceed the capture bandwidth")

    count = SOUNDED_SUBCARRIERS[target_bandwidth_mhz]
    # Centre offset of the nested channel relative to the wide channel, in
    # sub-carrier units.  Channel 38 (40 MHz) is centred 20 MHz below channel
    # 42; channel 36 (20 MHz) is centred 30 MHz below.
    if wide_bw == 80 and target_bandwidth_mhz == 40:
        centre_offset = -64
    elif wide_bw == 80 and target_bandwidth_mhz == 20:
        centre_offset = -96
    elif wide_bw == 40 and target_bandwidth_mhz == 20:
        centre_offset = -32
    else:  # pragma: no cover - exhaustively handled above
        raise OfdmError(
            f"no nesting rule for {target_bandwidth_mhz} MHz inside {wide_bw} MHz"
        )

    # Select the `count` sounded sub-carriers closest to the nested centre.
    distance = np.abs(wide_layout.indices - centre_offset)
    order = np.argsort(distance, kind="stable")[:count]
    return np.sort(order)


def ofdm_symbol(
    data: np.ndarray, layout: SubcarrierLayout, oversampling: int = 1
) -> Tuple[np.ndarray, np.ndarray]:
    """Synthesise the time-domain baseband OFDM symbol of Eq. (1).

    This is not required by the fingerprinting pipeline itself (DeepCSI works
    entirely in the frequency domain) but is provided for completeness of the
    PHY substrate and used by the PHY unit tests to validate the sub-carrier
    layout round-trips through an FFT.

    Parameters
    ----------
    data:
        Complex modulation symbols, one per sounded sub-carrier.
    layout:
        Sub-carrier layout describing where the symbols are mapped.
    oversampling:
        Integer oversampling factor for the IFFT grid.

    Returns
    -------
    (time, samples):
        Sample times [s] and complex baseband samples.
    """
    if len(data) != layout.num_subcarriers:
        raise OfdmError("data length must match the number of sounded sub-carriers")
    if oversampling < 1:
        raise OfdmError("oversampling factor must be >= 1")

    span = int(np.max(np.abs(layout.indices))) + 1
    fft_size = int(2 ** np.ceil(np.log2(2 * span))) * oversampling
    grid = np.zeros(fft_size, dtype=complex)
    grid[layout.indices % fft_size] = data
    samples = np.fft.ifft(grid) * fft_size
    duration = layout.config.symbol_duration_s
    time = np.arange(fft_size) * duration / fft_size
    return time, samples


def demodulate_symbol(
    samples: np.ndarray, layout: SubcarrierLayout
) -> np.ndarray:
    """Recover the per-sub-carrier symbols from a time-domain OFDM symbol."""
    fft_size = len(samples)
    grid = np.fft.fft(samples) / fft_size
    return grid[layout.indices % fft_size]
