"""Device abstractions: Wi-Fi modules, access points and beamformees.

The paper fingerprints ten Compex WLE1216v5-23 modules mounted one at a time
on the same Gateworks SBC + antennas, so the only thing that changes between
classes is the module's RF circuitry.  This module mirrors that setup:

* :class:`WiFiModule` -- a radio module identified by ``module_id`` carrying a
  :class:`~repro.phy.impairments.DeviceFingerprint`.
* :class:`AccessPoint` -- the beamformer: a module plugged into a fixed
  antenna array at a given position.
* :class:`Beamformee` -- a station with its own receive-chain impairments,
  antenna array and position.
* :func:`make_module_population` -- deterministic factory of a population of
  modules (default ten, like the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

import numpy as np

from repro.phy.geometry import Position, uniform_linear_array
from repro.phy.impairments import BeamformeeImpairment, DeviceFingerprint
from repro.phy.ofdm import SPEED_OF_LIGHT, DEFAULT_CARRIER_FREQUENCY_HZ

#: Number of TX antennas the AP uses for DL MU-MIMO sounding in the paper.
DEFAULT_NUM_TX_ANTENNAS = 3
#: Number of RX antennas enabled at each beamformee in dataset D1.
DEFAULT_NUM_RX_ANTENNAS = 2
#: Number of Wi-Fi modules in the paper's population.
DEFAULT_NUM_MODULES = 10


def half_wavelength_spacing(
    carrier_frequency_hz: float = DEFAULT_CARRIER_FREQUENCY_HZ,
) -> float:
    """Half-wavelength antenna spacing for the given carrier frequency [m]."""
    return SPEED_OF_LIGHT / carrier_frequency_hz / 2.0


@dataclass(frozen=True)
class WiFiModule:
    """A Wi-Fi radio module: the entity DeepCSI authenticates.

    Attributes
    ----------
    module_id:
        Integer identifier (the classification label).
    fingerprint:
        Stable per-chain hardware impairments of the module.
    name:
        Human-readable name, e.g. ``"compex-03"``.
    """

    module_id: int
    fingerprint: DeviceFingerprint
    name: str = ""

    def __post_init__(self) -> None:
        if self.module_id < 0:
            raise ValueError("module_id must be non-negative")

    @property
    def num_tx_chains(self) -> int:
        """Number of transmit chains of the module."""
        return self.fingerprint.num_chains


@dataclass(frozen=True)
class AccessPoint:
    """The DL MU-MIMO beamformer: a module on a fixed antenna array.

    Attributes
    ----------
    module:
        The Wi-Fi module currently plugged into the SBC.
    position:
        Array phase-centre position in the room.
    num_antennas:
        Number of TX antennas used for sounding (``M``); must not exceed the
        module's number of chains.
    antenna_spacing_m:
        Element spacing of the uniform linear array.
    orientation_rad:
        Azimuth of the array axis with respect to the room's ``x`` axis.
        ``0`` (the default) reproduces the static testbed; the D2 mobility
        traces add a small random yaw to model the AP being carried by hand.
    """

    module: WiFiModule
    position: Position
    num_antennas: int = DEFAULT_NUM_TX_ANTENNAS
    antenna_spacing_m: float = field(
        default_factory=half_wavelength_spacing
    )
    orientation_rad: float = 0.0

    def __post_init__(self) -> None:
        if self.num_antennas < 1:
            raise ValueError("num_antennas must be >= 1")
        if self.num_antennas > self.module.num_tx_chains:
            raise ValueError(
                f"AP uses {self.num_antennas} antennas but module "
                f"{self.module.module_id} only has {self.module.num_tx_chains} chains"
            )

    def antenna_elements(self) -> np.ndarray:
        """TX antenna element coordinates, shape ``(M, 2)``."""
        if self.orientation_rad == 0.0:
            return uniform_linear_array(
                self.position, self.num_antennas, self.antenna_spacing_m, axis="x"
            )
        offsets = (
            np.arange(self.num_antennas) - (self.num_antennas - 1) / 2.0
        ) * self.antenna_spacing_m
        direction = np.array(
            [np.cos(self.orientation_rad), np.sin(self.orientation_rad)]
        )
        return (
            self.position.as_array()[np.newaxis, :]
            + offsets[:, np.newaxis] * direction[np.newaxis, :]
        )

    def moved_to(self, position: Position) -> "AccessPoint":
        """Return a copy of the AP relocated to ``position`` (for D2)."""
        return replace(self, position=position)

    def rotated(self, orientation_rad: float) -> "AccessPoint":
        """Return a copy of the AP with the array yawed to ``orientation_rad``."""
        return replace(self, orientation_rad=orientation_rad)

    def with_module(self, module: WiFiModule) -> "AccessPoint":
        """Return a copy of the AP with a different module plugged in."""
        return replace(self, module=module)


@dataclass(frozen=True)
class Beamformee:
    """A station receiving DL MU-MIMO streams and sending the feedback.

    Attributes
    ----------
    station_id:
        Integer identifier (1 or 2 in the paper).
    position:
        Antenna array phase-centre position.
    num_antennas:
        Number of enabled RX antennas (``N``).
    num_streams:
        Number of spatial streams served to this station (``N_SS <= N``).
    impairment:
        Receive-chain impairments of the station.
    antenna_spacing_m:
        Element spacing of the station's array.
    """

    station_id: int
    position: Position
    num_antennas: int = DEFAULT_NUM_RX_ANTENNAS
    num_streams: int = DEFAULT_NUM_RX_ANTENNAS
    impairment: Optional[BeamformeeImpairment] = None
    antenna_spacing_m: float = field(default_factory=half_wavelength_spacing)

    def __post_init__(self) -> None:
        if self.num_antennas < 1:
            raise ValueError("num_antennas must be >= 1")
        if not 1 <= self.num_streams <= self.num_antennas:
            raise ValueError("num_streams must be in 1..num_antennas")
        if (
            self.impairment is not None
            and self.impairment.num_chains < self.num_antennas
        ):
            raise ValueError("impairment must cover every enabled RX antenna")

    def antenna_elements(self) -> np.ndarray:
        """RX antenna element coordinates, shape ``(N, 2)``."""
        return uniform_linear_array(
            self.position, self.num_antennas, self.antenna_spacing_m, axis="x"
        )

    def moved_to(self, position: Position) -> "Beamformee":
        """Return a copy of the station relocated to ``position``."""
        return replace(self, position=position)


def make_module_population(
    num_modules: int = DEFAULT_NUM_MODULES,
    num_chains: int = 4,
    fingerprint_strength: float = 1.0,
    seed: int = 2022,
) -> List[WiFiModule]:
    """Create a reproducible population of Wi-Fi modules.

    Parameters
    ----------
    num_modules:
        Number of modules (classes) to generate.
    num_chains:
        Number of TX chains per module.  The paper's Compex modules have four
        chains of which three are used for MU-MIMO sounding.
    fingerprint_strength:
        Relative magnitude of the hardware impairments; ``1.0`` corresponds
        to realistic consumer-grade hardware.
    seed:
        Base seed; module ``i`` uses ``seed + i`` so adding modules never
        changes existing fingerprints.
    """
    if num_modules < 1:
        raise ValueError("num_modules must be >= 1")
    modules = []
    for module_id in range(num_modules):
        rng = np.random.default_rng(seed + module_id)
        fingerprint = DeviceFingerprint.random(
            rng, num_chains=num_chains, strength=fingerprint_strength
        )
        modules.append(
            WiFiModule(
                module_id=module_id,
                fingerprint=fingerprint,
                name=f"compex-{module_id:02d}",
            )
        )
    return modules


def make_beamformee(
    station_id: int,
    position: Position,
    num_antennas: int = DEFAULT_NUM_RX_ANTENNAS,
    num_streams: Optional[int] = None,
    impairment_strength: float = 0.6,
    seed: int = 7_000,
) -> Beamformee:
    """Create a beamformee with reproducible receive-chain impairments."""
    rng = np.random.default_rng(seed + station_id)
    impairment = BeamformeeImpairment.random(
        rng, num_chains=num_antennas, strength=impairment_strength
    )
    return Beamformee(
        station_id=station_id,
        position=position,
        num_antennas=num_antennas,
        num_streams=num_streams if num_streams is not None else num_antennas,
        impairment=impairment,
    )
