"""Indoor geometry of the paper's experimental setup (Fig. 6).

The testbed places the access point (beamformer) at one end of a room and the
two beamformees roughly three metres away.  For dataset D1 the beamformees
are moved sideways in 10 cm steps over nine positions; for dataset D2 the
beamformees stay at position 3 while the AP is moved along the waypoint path
A - B - C - D - B - A (80 cm forward, 80 cm left, 160 cm right, back).

The geometry here reproduces those distances.  Coordinates are expressed in
metres in a right-handed frame where the AP's nominal position A is the
origin, ``x`` grows towards the right of Fig. 6 and ``y`` grows towards the
beamformees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Position:
    """A point in the horizontal plane of the room, in metres."""

    x: float
    y: float

    def as_array(self) -> np.ndarray:
        """Return the position as a ``(2,)`` numpy array."""
        return np.array([self.x, self.y], dtype=float)

    def distance_to(self, other: "Position") -> float:
        """Euclidean distance to another position [m]."""
        return float(np.hypot(self.x - other.x, self.y - other.y))

    def translated(self, dx: float, dy: float) -> "Position":
        """Return a copy shifted by ``(dx, dy)`` metres."""
        return Position(self.x + dx, self.y + dy)


#: Nominal AP position (yellow star A in Fig. 6).
AP_POSITION_A = Position(0.0, 0.0)
#: Mobility waypoints of Fig. 6: 0.8 m forward (B), 0.8 m left (C),
#: 1.6 m right of C i.e. 0.8 m right of B (D).
AP_POSITION_B = Position(0.0, 0.8)
AP_POSITION_C = Position(-0.8, 0.8)
AP_POSITION_D = Position(0.8, 0.8)

#: Distance from the AP to the beamformee row [m] (Fig. 6: 3 m).
BEAMFORMEE_ROW_DISTANCE = 3.0
#: Initial lateral offsets of the two beamformees from the room axis [m].
#: Beamformee 1 starts 0.75 m left of the axis, beamformee 2 0.75 m right
#: (1.5 m separation per Fig. 6) with a 0.1 m asymmetry.
BEAMFORMEE1_START = Position(-0.75, BEAMFORMEE_ROW_DISTANCE)
BEAMFORMEE2_START = Position(0.85, BEAMFORMEE_ROW_DISTANCE)
#: Lateral step between consecutive D1 positions [m].
POSITION_STEP = 0.10
#: Number of beamformee position pairs in dataset D1.
NUM_D1_POSITIONS = 9


@dataclass(frozen=True)
class RoomGeometry:
    """Rectangular room used by the multipath model for wall reflections.

    The room is axis-aligned; ``x_min``/``x_max`` bound the lateral extent
    and ``y_min``/``y_max`` the longitudinal extent.  The default matches the
    Fig. 6 footprint (3 m wide corridor-like area, about 6 m long) with the
    AP placed 1 m from the back wall.
    """

    x_min: float = -1.9
    x_max: float = 1.9
    y_min: float = -1.0
    y_max: float = 5.0

    def __post_init__(self) -> None:
        if self.x_min >= self.x_max or self.y_min >= self.y_max:
            raise ValueError("room bounds must be non-degenerate")

    @property
    def width(self) -> float:
        """Lateral extent of the room [m]."""
        return self.x_max - self.x_min

    @property
    def length(self) -> float:
        """Longitudinal extent of the room [m]."""
        return self.y_max - self.y_min

    def contains(self, position: Position, margin: float = 0.0) -> bool:
        """Whether ``position`` lies inside the room (within ``margin``)."""
        return (
            self.x_min - margin <= position.x <= self.x_max + margin
            and self.y_min - margin <= position.y <= self.y_max + margin
        )

    def wall_images(self, source: Position) -> List[Position]:
        """First-order image sources of ``source`` across the four walls.

        The image method models a single specular reflection off each wall as
        a virtual source mirrored across that wall; the multipath model uses
        these to build deterministic reflected paths.
        """
        return [
            Position(2 * self.x_min - source.x, source.y),
            Position(2 * self.x_max - source.x, source.y),
            Position(source.x, 2 * self.y_min - source.y),
            Position(source.x, 2 * self.y_max - source.y),
        ]


def beamformee_positions(position_id: int) -> Tuple[Position, Position]:
    """Positions of the two beamformees for D1 position ``position_id``.

    Position identifiers follow Fig. 6: ``1`` places both beamformees at
    their starting points (directly facing the AP); each subsequent position
    moves beamformee 1 a further 10 cm to the left and beamformee 2 a further
    10 cm to the right.

    Parameters
    ----------
    position_id:
        Integer in ``1..9``.

    Returns
    -------
    (beamformee1, beamformee2):
        Positions of the two stations.
    """
    if not 1 <= position_id <= NUM_D1_POSITIONS:
        raise ValueError(
            f"position_id must be in 1..{NUM_D1_POSITIONS}, got {position_id}"
        )
    offset = (position_id - 1) * POSITION_STEP
    bf1 = BEAMFORMEE1_START.translated(-offset, 0.0)
    bf2 = BEAMFORMEE2_START.translated(offset, 0.0)
    return bf1, bf2


def all_beamformee_positions() -> Dict[int, Tuple[Position, Position]]:
    """Mapping of every D1 position id to the two beamformee positions."""
    return {pid: beamformee_positions(pid) for pid in range(1, NUM_D1_POSITIONS + 1)}


def mobility_waypoints() -> List[Position]:
    """Waypoints of the D2 mobility path A-B-C-D-B-A (Fig. 6)."""
    return [
        AP_POSITION_A,
        AP_POSITION_B,
        AP_POSITION_C,
        AP_POSITION_D,
        AP_POSITION_B,
        AP_POSITION_A,
    ]


def mobility_subpath(name: str) -> List[Position]:
    """Waypoints of a named sub-path of the mobility route.

    ``"ABCB"`` is the first half of the route (used for training in the
    Fig. 17b experiment) and ``"BDB"`` the second half (used for testing).
    ``"full"`` returns the complete A-B-C-D-B-A route.
    """
    routes: Dict[str, List[Position]] = {
        "full": mobility_waypoints(),
        "ABCB": [AP_POSITION_A, AP_POSITION_B, AP_POSITION_C, AP_POSITION_B],
        "BDB": [AP_POSITION_B, AP_POSITION_D, AP_POSITION_B],
    }
    try:
        return list(routes[name])
    except KeyError as exc:
        raise ValueError(
            f"unknown sub-path {name!r}; expected one of {sorted(routes)}"
        ) from exc


def uniform_linear_array(
    centre: Position, num_antennas: int, spacing_m: float, axis: str = "x"
) -> np.ndarray:
    """Antenna element coordinates of a uniform linear array (ULA).

    Parameters
    ----------
    centre:
        Array phase centre.
    num_antennas:
        Number of elements.
    spacing_m:
        Inter-element spacing in metres (typically half a wavelength).
    axis:
        ``"x"`` (array parallel to the lateral axis) or ``"y"``.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(num_antennas, 2)`` with element positions.
    """
    if num_antennas < 1:
        raise ValueError("num_antennas must be >= 1")
    if spacing_m <= 0:
        raise ValueError("spacing_m must be positive")
    offsets = (np.arange(num_antennas) - (num_antennas - 1) / 2.0) * spacing_m
    coords = np.tile(centre.as_array(), (num_antennas, 1))
    if axis == "x":
        coords[:, 0] += offsets
    elif axis == "y":
        coords[:, 1] += offsets
    else:
        raise ValueError("axis must be 'x' or 'y'")
    return coords


def path_length(points: Sequence[Position]) -> float:
    """Total length of a polyline through ``points`` [m]."""
    if len(points) < 2:
        return 0.0
    total = 0.0
    for first, second in zip(points[:-1], points[1:]):
        total += first.distance_to(second)
    return total
