"""Grow-only scratch-buffer arena shared by the inference hot paths.

The streaming engine runs the same shapes batch after batch, so every hot
path (the fp32 NN backend in :mod:`repro.nn.compute`, the codeword-native
Givens reconstruction in :mod:`repro.feedback.givens`, the batch staging in
:mod:`repro.core.engine`) wants the same thing: per-shape scratch buffers
that are allocated once for the largest batch seen and reused as views for
every smaller batch afterwards.  :class:`ArenaPool` is that allocator; it
grew up inside the fp32 compute backend and was promoted here so the
pre-NN preprocessing stages can share the idiom without importing the
neural-network stack.
"""

from __future__ import annotations

# lint: dtype-strict

from typing import Dict, Tuple

import numpy as np

__all__ = ["ArenaPool"]


class ArenaPool:
    """Grow-only, per-shape scratch buffers reused across inference batches.

    Buffers are keyed by ``(key, trailing_shape)`` where ``key`` identifies
    the consumer (layer index + role) and the *leading* dimension is the
    batch: a request with a smaller batch returns a view of the existing
    buffer, a larger batch regrows it.  After the first batch of the largest
    size, steady-state inference therefore performs no large allocations.

    ``allocations`` counts buffer (re)allocations so tests and benchmarks
    can assert the steady state really is allocation-free.
    """

    def __init__(self) -> None:
        self._buffers: Dict[tuple, np.ndarray] = {}
        self.allocations = 0

    def get(
        self,
        key: tuple,
        shape: Tuple[int, ...],
        dtype=np.float32,
        zero: bool = False,
    ) -> np.ndarray:
        """A ``shape``-sized view of the arena buffer for ``key``."""
        slot = (key, shape[1:], np.dtype(dtype))
        buffer = self._buffers.get(slot)
        if buffer is None or buffer.shape[0] < shape[0]:
            buffer = (
                np.zeros(shape, dtype=dtype) if zero else np.empty(shape, dtype=dtype)
            )
            self._buffers[slot] = buffer
            self.allocations += 1
        return buffer[: shape[0]]

    def clear(self) -> None:
        self._buffers.clear()
