"""Command-line interface of the DeepCSI reproduction.

Seven sub-commands cover the everyday workflow without writing Python:

* ``repro-csi generate`` -- synthesise dataset D1 or D2 and store it as a
  compressed ``.npz`` archive.
* ``repro-csi info`` -- summarise a stored dataset.
* ``repro-csi train`` -- train a DeepCsiClassifier on a Table-I/II split of
  a stored dataset and persist the model.
* ``repro-csi evaluate`` -- evaluate a stored model on a stored dataset split
  and print the confusion matrix.
* ``repro-csi authenticate`` -- stream a dataset split through the batched
  :class:`~repro.core.engine.InferenceEngine` (micro-batched hot path) and
  report per-module verdicts plus throughput.
* ``repro-csi serve`` -- emulate the always-on observer: interleave the
  split's modules into one multi-source stream and push it through the
  sharded :class:`~repro.core.service.StreamingService` worker pool
  (async ingestion, periodic stats dumps, per-source verdicts); with
  ``--open-set`` frames are scored against a FAR-calibrated threshold so
  verdicts can resolve to UNKNOWN, per-source drift is monitored, and
  ``--swap-demo`` hot-swaps the model mid-stream without dropping a frame.
* ``repro-csi probe`` -- run the cheap linear separability probe on a split
  (useful to sanity-check a dataset before paying for CNN training).
* ``repro-csi lint`` -- run the repro-lint static-analysis suite (lock
  discipline, hot-path allocations, dtype contracts, shm/process safety)
  over the project sources; exits non-zero on any violation.

Every sub-command is a thin layer over the library API, so anything the CLI
does can also be scripted.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.analysis.separability import linear_probe_accuracy
from repro.core.backends import BACKEND_NAMES
from repro.core.classifier import ClassifierConfig, DeepCsiClassifier
from repro.core.engine import PRECISION_NAMES, UNKNOWN_MODULE_ID, InferenceEngine
from repro.core.lifecycle import DriftConfig
from repro.core.openset import (
    SCORING_RULES,
    OpenSetAuthenticator,
    calibrate_threshold_far,
)
from repro.core.service import ServiceError, StreamingService, resolve_num_workers
from repro.core.model import FAST_MODEL_CONFIG, PAPER_MODEL_CONFIG
from repro.datasets.containers import FeedbackDataset, FeedbackSample
from repro.datasets.features import FeatureConfig, strided_subcarriers
from repro.datasets.generator import (
    DatasetConfig,
    generate_dataset_d1,
    generate_dataset_d2,
)
from repro.datasets.io import load_dataset, save_dataset
from repro.datasets.adversarial import spoofed_feedback_samples
from repro.feedback.givens import compress_v_matrix
from repro.feedback.quantization import QuantizationConfig, quantize_angles
from repro.datasets.splits import (
    D1_SPLITS,
    D2_SPLITS,
    d1_split,
    d2_split,
)
from repro.nn.compute import COMPUTE_NAMES
from repro.nn.training import TrainingConfig

#: Names accepted by the ``--split`` options.
SPLIT_NAMES = tuple(D1_SPLITS) + tuple(D2_SPLITS)


class CliError(ValueError):
    """Raised for invalid command-line usage (converted to exit code 2)."""


def _dataset_config(args: argparse.Namespace) -> DatasetConfig:
    return DatasetConfig(
        num_modules=args.modules,
        soundings_per_trace=args.soundings,
        snr_db=args.snr_db,
        base_seed=args.seed,
        correlation_length_m=args.correlation_length,
        rician_k=args.rician_k,
    )


def _apply_split(
    dataset: FeedbackDataset, split_name: str, beamformee_id: int
) -> Tuple[List[FeedbackSample], List[FeedbackSample]]:
    if split_name in D1_SPLITS:
        return d1_split(dataset, D1_SPLITS[split_name], beamformee_id=beamformee_id)
    if split_name in D2_SPLITS:
        return d2_split(dataset, D2_SPLITS[split_name], beamformee_id=beamformee_id)
    raise CliError(f"unknown split {split_name!r}; expected one of {SPLIT_NAMES}")


def _feature_config(samples: Sequence[FeedbackSample], stride: int, stream: int) -> FeatureConfig:
    num_subcarriers = samples[0].num_subcarriers
    return FeatureConfig(
        stream_indices=(stream,),
        subcarrier_positions=strided_subcarriers(num_subcarriers, stride),
    )


# --------------------------------------------------------------------------- #
# Sub-command implementations
# --------------------------------------------------------------------------- #
def _cmd_generate(args: argparse.Namespace) -> int:
    config = _dataset_config(args)
    if args.dataset == "d1":
        dataset = generate_dataset_d1(config)
    else:
        dataset = generate_dataset_d2(config)
    path = save_dataset(dataset, args.output)
    print(dataset.summary())
    print(f"stored {dataset.num_samples} samples in {path}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset_path)
    print(dataset.summary())
    sample = dataset.traces[0].samples[0]
    print(
        f"  V~ shape:  K={sample.num_subcarriers}, M={sample.num_tx_antennas}, "
        f"N_SS={sample.num_streams}"
    )
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset_path)
    train, test = _apply_split(dataset, args.split, args.beamformee)
    feature = _feature_config(train, args.stride, args.stream)
    num_classes = max(s.module_id for s in train + test) + 1
    config = ClassifierConfig(
        num_classes=num_classes,
        feature=feature,
        model=PAPER_MODEL_CONFIG if args.paper_model else FAST_MODEL_CONFIG,
        training=TrainingConfig(epochs=args.epochs, batch_size=args.batch_size),
        learning_rate=args.learning_rate,
        seed=args.seed,
    )
    classifier = DeepCsiClassifier(config)
    history = classifier.fit(train)
    report = classifier.evaluate(test, label=f"{args.split} / beamformee {args.beamformee}")
    classifier.save(args.model_dir)
    summary = {
        "split": args.split,
        "train_samples": len(train),
        "test_samples": len(test),
        "epochs_run": history.num_epochs,
        "test_accuracy": report.accuracy,
    }
    (Path(args.model_dir) / "training_summary.json").write_text(
        json.dumps(summary, indent=2)
    )
    print(report)
    print(f"model stored in {args.model_dir}")
    return 0


def _load_classifier(
    args: argparse.Namespace, samples: Sequence[FeedbackSample]
) -> DeepCsiClassifier:
    """Restore the stored model for the geometry of ``samples``."""
    feature = _feature_config(samples, args.stride, args.stream)
    num_classes = max(s.module_id for s in samples) + 1
    config = ClassifierConfig(
        num_classes=max(num_classes, args.num_classes),
        feature=feature,
        model=PAPER_MODEL_CONFIG if args.paper_model else FAST_MODEL_CONFIG,
        seed=args.seed,
    )
    return DeepCsiClassifier(config).load(args.model_dir)


def _apply_compute(
    classifier: DeepCsiClassifier,
    compute: Optional[str],
    train: Sequence[FeedbackSample],
) -> None:
    """Attach the requested compute backend, calibrating int8 on ``train``."""
    if compute is None:
        return
    if compute == "int8" and not train:
        raise CliError(
            "--compute int8 needs training samples in the split for calibration"
        )
    classifier.set_compute(compute, calibration=train if compute == "int8" else None)


def _cmd_evaluate(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset_path)
    _, test = _apply_split(dataset, args.split, args.beamformee)
    classifier = _load_classifier(args, test)
    report = classifier.evaluate(test, label=f"{args.split} / beamformee {args.beamformee}")
    print(report)
    return 0


def _cmd_authenticate(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset_path)
    train, test = _apply_split(dataset, args.split, args.beamformee)
    classifier = _load_classifier(args, test)
    _apply_compute(classifier, args.compute, train)
    engine = InferenceEngine(
        classifier,
        batch_size=args.batch_size,
        max_latency_frames=args.max_latency_frames,
        vote_window=args.window,
        precision=args.precision,
        profile=args.profile,
    )
    results = []
    if args.codewords:
        # Exercise the codeword-native preprocessing path end to end: the
        # split's V~ matrices are Givens-compressed and quantised like an
        # 802.11ac beamformee would send them, and the engine reconstructs
        # from the integer codewords on its trig-LUT fast path.
        quantization = QuantizationConfig()
        observations = [
            quantize_angles(compress_v_matrix(sample.v_tilde), quantization)
            for sample in test
        ]
    else:
        observations = list(test)
    for sample, observation in zip(test, observations):
        results.extend(
            engine.submit(observation, source=f"module-{sample.module_id:02d}")
        )
    results.extend(engine.flush())

    labels = [sample.module_id for sample in test]
    correct = sum(
        result.predicted_module_id == labels[result.sequence] for result in results
    )
    stats = engine.stats
    print(
        f"authenticated {stats.frames_out} frames in {stats.batches} "
        f"micro-batches (batch size {args.batch_size}, "
        f"mean {stats.mean_batch_size:.1f}, compute {stats.compute}, "
        f"precision {stats.precision})"
    )
    print(
        f"  throughput: {stats.frames_per_second:.1f} frames/s "
        f"({stats.inference_seconds * 1000.0:.1f} ms inference)"
    )
    print(f"  frame accuracy: {100.0 * correct / len(results):.2f}%")
    for source in engine.sources:
        verdict = engine.verdict(source)
        print(
            f"  {source}: verdict module {verdict.module_id} "
            f"(confidence {verdict.confidence:.2f}, "
            f"{verdict.num_votes}/{verdict.window_size} votes in window)"
        )
    if args.profile:
        stage_total_ns = sum(entry.total_ns for entry in stats.stage_profile) or 1
        print("  per-stage preprocessing profile:")
        for stage in stats.stage_profile:
            print(
                f"    {stage.name:<12s} "
                f"{stage.calls:>5d} batches  "
                f"{stage.total_ns / 1e6:>9.2f} ms total  "
                f"{stage.mean_ms:>7.3f} ms/batch  "
                f"{100.0 * stage.total_ns / stage_total_ns:>5.1f}%"
            )
        total_ns = sum(entry.total_ns for entry in stats.layer_profile) or 1
        print("  per-layer forward profile:")
        for entry in stats.layer_profile:
            print(
                f"    [{entry.index:02d}] {entry.name:<20s} "
                f"{entry.calls:>5d} calls  "
                f"{entry.total_ns / 1e6:>9.2f} ms total  "
                f"{entry.mean_ms:>7.3f} ms/call  "
                f"{100.0 * entry.total_ns / total_ns:>5.1f}%"
            )
    return 0


def _interleave_by_module(
    samples: Sequence[FeedbackSample],
) -> List[Tuple[str, FeedbackSample]]:
    """Round-robin the samples of every module into one multi-source stream.

    Emulates the traffic an always-on observer sees: many beamformers sound
    concurrently, so consecutive captured frames usually belong to different
    sources.
    """
    groups: dict = {}
    for sample in samples:
        groups.setdefault(f"module-{sample.module_id:02d}", []).append(sample)
    names = sorted(groups)
    stream: List[Tuple[str, FeedbackSample]] = []
    position = 0
    while True:
        row = [
            (name, groups[name][position])
            for name in names
            if position < len(groups[name])
        ]
        if not row:
            return stream
        stream.extend(row)
        position += 1


def _build_open_set(
    args: argparse.Namespace,
    classifier: DeepCsiClassifier,
    train: Sequence[FeedbackSample],
) -> Optional[OpenSetAuthenticator]:
    """Calibrate the serve command's open-set authenticator (or ``None``)."""
    if args.open_set is None:
        return None
    if not 0.0 <= args.far < 1.0:
        raise CliError("--far must be in [0, 1)")
    authenticator = OpenSetAuthenticator(classifier, scoring=args.open_set)
    if args.open_set == "centroid_distance":
        authenticator.enroll(train)
    impostors = spoofed_feedback_samples(
        sorted({sample.module_id for sample in train}),
        shape=train[0].v_tilde.shape,
    )
    threshold = calibrate_threshold_far(
        authenticator, impostors, target_false_accept_rate=args.far
    )
    print(
        f"open-set: {args.open_set} scoring, threshold {threshold:.6f} "
        f"calibrated for {100.0 * args.far:.1f}% FAR on "
        f"{len(impostors)} synthetic spoofed frames"
    )
    # Surface the cost of that FAR target on legitimate traffic: when the
    # scoring rule cannot separate spoofed from enrolled frames (max_softmax
    # saturates on a confidently-trained model), hitting the FAR bound can
    # push the implied false-reject rate towards 100% -- the operator should
    # see that at calibration time, not discover it in the verdict stream.
    genuine = [float(score) for score in authenticator.scores(train)]
    implied_frr = sum(1 for score in genuine if score < threshold) / len(genuine)
    if implied_frr > 0.5:
        print(
            f"open-set: WARNING threshold rejects {100.0 * implied_frr:.1f}% "
            f"of enrolled training frames; the {args.open_set} scores do not "
            "separate spoofed traffic at this FAR target -- consider another "
            "scoring rule (--open-set) or a looser --far"
        )
    return authenticator


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.repeat < 1:
        raise CliError("--repeat must be >= 1")
    dataset = load_dataset(args.dataset_path)
    train, test = _apply_split(dataset, args.split, args.beamformee)
    classifier = _load_classifier(args, test)
    _apply_compute(classifier, args.compute, train)
    open_set = _build_open_set(args, classifier, train)
    stream = _interleave_by_module(test) * args.repeat
    labels = [sample.module_id for _, sample in stream]
    workers = resolve_num_workers(args.workers, args.backend)
    swap_at = len(stream) // 2 if args.swap_demo else 0
    print(
        f"serving {len(stream)} frames from "
        f"{len({source for source, _ in stream})} sources through "
        f"{workers} workers on the {args.backend} backend "
        f"(queue depth {args.queue_depth}, batch size {args.batch_size}, "
        f"compute {classifier.compute_name})"
    )
    with StreamingService(
        classifier,
        num_workers=workers,
        queue_depth=args.queue_depth,
        batch_size=args.batch_size,
        max_latency_frames=args.max_latency_frames,
        vote_window=args.window,
        open_set=open_set,
        drift=DriftConfig() if open_set is not None else None,
        backend=args.backend,
        precision=args.precision,
    ) as service:
        results = []
        for submitted, (source, sample) in enumerate(stream, start=1):
            service.submit(sample, source=source)
            results.extend(service.collect())
            if swap_at and submitted == swap_at:
                version = service.swap_model(classifier)
                print(
                    f"[swap] model version {version} installed at frame "
                    f"{submitted} with the stream still flowing; every later "
                    f"verdict carries the new version stamp"
                )
            if args.stats_every and submitted % args.stats_every == 0:
                stats = service.stats
                line = (
                    f"[stats] in={stats.frames_in} out={stats.frames_out} "
                    f"batches={stats.batches} "
                    f"inference_fps={stats.frames_per_second:.1f} "
                    f"wall_fps={stats.wall_frames_per_second:.1f} "
                    f"queue_full_waits={stats.queue_full_waits}"
                )
                if stats.open_set:
                    line += (
                        f" rejected={stats.frames_rejected} "
                        f"reject_rate={stats.rejection_rate:.2f}"
                    )
                    drifting = stats.drifting_sources
                    if drifting:
                        line += f" drifting={','.join(drifting)}"
                print(line)
        service.flush()
        results.extend(service.collect())
        stats = service.stats
        sources = service.sources
        verdicts = {source: service.verdict(source) for source in sources}

    correct = sum(
        result.predicted_module_id == labels[result.sequence] for result in results
    )
    print(
        f"served {stats.frames_out} frames in {stats.batches} micro-batches "
        f"across {stats.num_workers} workers ({stats.backend} backend, "
        f"compute {stats.compute}, precision {stats.precision}, "
        f"mean batch {stats.mean_batch_size:.1f})"
    )
    print(
        f"  throughput: {stats.frames_per_second:.1f} frames/s inference, "
        f"{stats.wall_frames_per_second:.1f} frames/s wall "
        f"({stats.queue_full_waits} backpressure stalls)"
    )
    for index, worker in enumerate(stats.worker_stats):
        print(
            f"  worker {index}: {worker.frames_out} frames in "
            f"{worker.batches} batches ({worker.frames_per_second:.1f} frames/s)"
        )
    print(f"  frame accuracy: {100.0 * correct / len(results):.2f}%")
    if stats.open_set:
        print(
            f"  open-set: {stats.frames_rejected} of {stats.frames_out} frames "
            f"rejected ({100.0 * stats.rejection_rate:.1f}%), "
            f"model version {stats.model_version}"
        )
        for status in stats.drift:
            print(
                f"  drift {status.source}: score {status.score:.3f} vs "
                f"baseline {status.baseline:.3f} over {status.samples} frames"
                f"{' ** DRIFTING **' if status.drifting else ''}"
            )
    for source in sources:
        verdict = verdicts[source]
        if verdict.module_id == UNKNOWN_MODULE_ID:
            print(
                f"  {source}: verdict UNKNOWN "
                f"(mean rejection {verdict.confidence:.2f}, "
                f"{verdict.num_rejected}/{verdict.window_size} rejected in window)"
            )
            continue
        line = (
            f"  {source}: verdict module {verdict.module_id} "
            f"(confidence {verdict.confidence:.2f}, "
            f"{verdict.num_votes}/{verdict.window_size} votes in window"
        )
        if stats.open_set or verdict.model_version:
            line += f", model v{verdict.model_version}"
        print(line + ")")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.lint.cli import run_lint_command

    return run_lint_command(args)


def _cmd_probe(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset_path)
    train, test = _apply_split(dataset, args.split, args.beamformee)
    feature = _feature_config(train, args.stride, args.stream)
    accuracy = linear_probe_accuracy(train, test, feature_config=feature)
    print(
        f"linear-probe accuracy on {args.split} (beamformee {args.beamformee}, "
        f"stream {args.stream}): {100.0 * accuracy:.2f}%"
    )
    return 0


# --------------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------------- #
def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("dataset_path", help="path of a dataset .npz archive")
    parser.add_argument("--split", default="S1", choices=SPLIT_NAMES)
    parser.add_argument("--beamformee", type=int, default=1, choices=(1, 2))
    parser.add_argument("--stride", type=int, default=4, help="keep every N-th sub-carrier")
    parser.add_argument("--stream", type=int, default=0, help="spatial stream used as input")
    parser.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for the tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-csi",
        description="DeepCSI reproduction command-line interface",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="synthesise dataset D1 or D2")
    generate.add_argument("dataset", choices=("d1", "d2"))
    generate.add_argument("output", help="target .npz path")
    generate.add_argument("--modules", type=int, default=10)
    generate.add_argument("--soundings", type=int, default=20)
    generate.add_argument("--snr-db", type=float, default=28.0)
    generate.add_argument("--seed", type=int, default=2022)
    generate.add_argument("--correlation-length", type=float, default=0.15)
    generate.add_argument("--rician-k", type=float, default=0.5)
    generate.set_defaults(handler=_cmd_generate)

    info = subparsers.add_parser("info", help="summarise a stored dataset")
    info.add_argument("dataset_path")
    info.set_defaults(handler=_cmd_info)

    train = subparsers.add_parser("train", help="train a DeepCSI classifier")
    _add_dataset_arguments(train)
    train.add_argument("model_dir", help="directory the trained model is stored in")
    train.add_argument("--epochs", type=int, default=15)
    train.add_argument("--batch-size", type=int, default=32)
    train.add_argument("--learning-rate", type=float, default=2e-3)
    train.add_argument(
        "--paper-model",
        action="store_true",
        help="use the full 5x128 paper architecture instead of the fast one",
    )
    train.set_defaults(handler=_cmd_train)

    evaluate = subparsers.add_parser("evaluate", help="evaluate a stored model")
    _add_dataset_arguments(evaluate)
    evaluate.add_argument("model_dir")
    evaluate.add_argument("--num-classes", type=int, default=10)
    evaluate.add_argument("--paper-model", action="store_true")
    evaluate.set_defaults(handler=_cmd_evaluate)

    authenticate = subparsers.add_parser(
        "authenticate",
        help="stream a dataset split through the batched inference engine",
    )
    _add_dataset_arguments(authenticate)
    authenticate.add_argument("model_dir")
    authenticate.add_argument("--num-classes", type=int, default=10)
    authenticate.add_argument("--paper-model", action="store_true")
    authenticate.add_argument(
        "--batch-size",
        type=int,
        default=64,
        help="micro-batch size of the inference engine",
    )
    authenticate.add_argument(
        "--max-latency-frames",
        type=int,
        default=None,
        help="force a partial batch after this many buffered frames",
    )
    authenticate.add_argument(
        "--window",
        type=int,
        default=16,
        help="per-source ring-buffer length for the windowed majority vote",
    )
    authenticate.add_argument(
        "--compute",
        default=None,
        choices=COMPUTE_NAMES,
        help="inference compute backend: exact (bitwise fp64), fp32 (arena "
        "float32), int8 (post-training quantised; calibrated on the split's "
        "training samples)",
    )
    authenticate.add_argument(
        "--precision",
        default="exact",
        choices=PRECISION_NAMES,
        help="preprocessing precision of the codeword fast path: exact "
        "(float64 trig LUTs, bitwise identical to the legacy pipeline) or "
        "fast (complex64/float32 tables)",
    )
    authenticate.add_argument(
        "--codewords",
        action="store_true",
        help="submit Givens-quantised integer codewords instead of ready V~ "
        "matrices, exercising the codeword-native preprocessing path",
    )
    authenticate.add_argument(
        "--profile",
        action="store_true",
        help="accumulate and print per-stage preprocessing and per-layer "
        "forward timings",
    )
    authenticate.set_defaults(handler=_cmd_authenticate)

    serve = subparsers.add_parser(
        "serve",
        help="run the sharded multi-worker streaming service on a split",
    )
    _add_dataset_arguments(serve)
    serve.add_argument("model_dir")
    serve.add_argument("--num-classes", type=int, default=10)
    serve.add_argument("--paper-model", action="store_true")
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="number of sharded inference workers (default: auto - 1 on a "
        "single core, up to 4 on multi-core hosts)",
    )
    serve.add_argument(
        "--backend",
        default="threads",
        choices=BACKEND_NAMES,
        help="execution backend of the worker shards: in-process threads, or "
        "processes fed through shared-memory ring buffers (multi-core)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=256,
        help="per-shard ingestion queue bound (backpressure beyond this)",
    )
    serve.add_argument(
        "--batch-size",
        type=int,
        default=64,
        help="micro-batch size of every shard's inference engine",
    )
    serve.add_argument(
        "--max-latency-frames",
        type=int,
        default=None,
        help="force a partial batch after this many buffered frames per shard",
    )
    serve.add_argument(
        "--window",
        type=int,
        default=16,
        help="per-source ring-buffer length for the windowed majority vote",
    )
    serve.add_argument(
        "--open-set",
        nargs="?",
        const="max_softmax",
        default=None,
        choices=SCORING_RULES,
        metavar="RULE",
        help="reject frames whose known-ness score falls below a calibrated "
        "threshold so windowed verdicts can resolve to UNKNOWN; the optional "
        f"value picks the scoring rule out of {SCORING_RULES} "
        "(default max_softmax); also enables the per-source drift monitor",
    )
    serve.add_argument(
        "--far",
        type=float,
        default=0.05,
        help="target false-accept rate the open-set threshold is calibrated "
        "for, against synthetic spoofed impostor traffic (default 0.05)",
    )
    serve.add_argument(
        "--swap-demo",
        action="store_true",
        help="hot-swap the model (same weights, bumped version) halfway "
        "through the stream to demonstrate the zero-downtime swap",
    )
    serve.add_argument(
        "--stats-every",
        type=int,
        default=0,
        help="dump service stats every N submitted frames (0 disables)",
    )
    serve.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="loop the interleaved stream this many times (sustained load)",
    )
    serve.add_argument(
        "--compute",
        default=None,
        choices=COMPUTE_NAMES,
        help="inference compute backend every shard runs (int8 is calibrated "
        "on the split's training samples before the shards copy the model)",
    )
    serve.add_argument(
        "--precision",
        default="exact",
        choices=PRECISION_NAMES,
        help="preprocessing precision every shard engine applies to "
        "quantised-codeword observations (exact = bitwise float64 LUTs, "
        "fast = complex64/float32)",
    )
    serve.set_defaults(handler=_cmd_serve)

    probe = subparsers.add_parser(
        "probe", help="linear separability probe on a dataset split"
    )
    _add_dataset_arguments(probe)
    probe.set_defaults(handler=_cmd_probe)

    from repro.analysis.lint.cli import build_lint_parser

    lint = subparsers.add_parser(
        "lint",
        help="run the repro-lint static-analysis suite over the sources",
    )
    build_lint_parser(lint)
    lint.set_defaults(handler=_cmd_lint)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (CliError, ServiceError, ValueError, FileNotFoundError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
