"""IEEE 802.11ax (HE) compressed beamforming feedback variant.

The paper collects 802.11ac (VHT) feedback but notes that the same mechanism
exists in 802.11ax, where the beamformee may additionally *group* sub-carriers
(parameter ``Ng``: report one set of angles every 4 or 16 tones) to reduce the
feedback airtime.  This module models that variant so the effect of sub-carrier
grouping on the fingerprint can be studied:

* :class:`HeFeedbackConfig` -- the HE quantisation/grouping parameters
  (``Ng`` in {4, 16}, SU vs MU codebooks).
* :func:`group_subcarriers` / :func:`expand_groups` -- the grouping applied by
  the beamformee and the interpolation the beamformer (or an observer) uses to
  recover a full-resolution ``V~``.
* :func:`he_feedback_roundtrip` -- the complete beamformee-side path: group,
  compress, quantise, and reconstruct what the observer sees.
* :func:`feedback_overhead_bits` -- feedback size in bits, used to quantify
  the airtime/fingerprint-quality trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.feedback.givens import angle_counts, compress_v_matrix, reconstruct_v_matrix
from repro.feedback.quantization import QuantizationConfig, quantization_roundtrip

#: Sub-carrier grouping factors allowed by 802.11ax.
ALLOWED_GROUPINGS = (1, 4, 16)
#: Codebook (b_psi, b_phi) pairs defined by 802.11ax for SU and MU feedback.
SU_CODEBOOKS = {0: (2, 4), 1: (4, 6)}
MU_CODEBOOKS = {0: (5, 7), 1: (7, 9)}


class HeFeedbackError(ValueError):
    """Raised for invalid HE feedback configurations."""


@dataclass(frozen=True)
class HeFeedbackConfig:
    """HE compressed-beamforming feedback parameters.

    Attributes
    ----------
    grouping:
        Sub-carrier grouping ``Ng``: angles are reported for every
        ``grouping``-th tone (1 reports every tone).
    codebook:
        Codebook index (0 or 1) selecting the angle bit-widths.
    mu:
        ``True`` for MU-MIMO feedback (the finer codebooks), ``False`` for
        SU-MIMO feedback.
    """

    grouping: int = 4
    codebook: int = 1
    mu: bool = True

    def __post_init__(self) -> None:
        if self.grouping not in ALLOWED_GROUPINGS:
            raise HeFeedbackError(
                f"grouping must be one of {ALLOWED_GROUPINGS}, got {self.grouping}"
            )
        if self.codebook not in (0, 1):
            raise HeFeedbackError("codebook must be 0 or 1")

    @property
    def quantization(self) -> QuantizationConfig:
        """The angle quantisation implied by the codebook selection.

        The MU codebooks coincide with the VHT ones; the coarser SU codebooks
        are outside the VHT set, so strict codebook checking is disabled for
        them.
        """
        table = MU_CODEBOOKS if self.mu else SU_CODEBOOKS
        b_psi, b_phi = table[self.codebook]
        return QuantizationConfig(b_phi=b_phi, b_psi=b_psi, strict=self.mu)


def group_subcarriers(v_matrix: np.ndarray, grouping: int) -> np.ndarray:
    """Keep every ``grouping``-th sub-carrier of a ``(K, M, N_SS)`` matrix.

    The first tone of each group represents the group, as in the standard's
    ``scidx`` enumeration.
    """
    v_matrix = np.asarray(v_matrix)
    if v_matrix.ndim != 3:
        raise HeFeedbackError("v_matrix must have shape (K, M, N_SS)")
    if grouping not in ALLOWED_GROUPINGS:
        raise HeFeedbackError(f"grouping must be one of {ALLOWED_GROUPINGS}")
    return v_matrix[::grouping]


def expand_groups(
    grouped: np.ndarray, num_subcarriers: int, grouping: int
) -> np.ndarray:
    """Linearly interpolate grouped feedback back to ``num_subcarriers`` tones.

    The beamformer interpolates between reported tones to steer the tones in
    between; an observer reconstructing ``V~`` for fingerprinting does the
    same, so the interpolation error becomes part of the effective
    quantisation noise.
    """
    grouped = np.asarray(grouped)
    if grouped.ndim != 3:
        raise HeFeedbackError("grouped must have shape (K_g, M, N_SS)")
    if grouping not in ALLOWED_GROUPINGS:
        raise HeFeedbackError(f"grouping must be one of {ALLOWED_GROUPINGS}")
    expected = int(np.ceil(num_subcarriers / grouping))
    if grouped.shape[0] != expected:
        raise HeFeedbackError(
            f"grouped feedback has {grouped.shape[0]} tones, expected {expected}"
        )
    if grouping == 1:
        return np.array(grouped[:num_subcarriers])
    source_positions = np.arange(grouped.shape[0]) * grouping
    target_positions = np.arange(num_subcarriers)
    flat = grouped.reshape(grouped.shape[0], -1)
    real = np.stack(
        [np.interp(target_positions, source_positions, flat[:, i].real) for i in range(flat.shape[1])],
        axis=1,
    )
    imaginary = np.stack(
        [np.interp(target_positions, source_positions, flat[:, i].imag) for i in range(flat.shape[1])],
        axis=1,
    )
    expanded = (real + 1j * imaginary).reshape(num_subcarriers, *grouped.shape[1:])
    return expanded


def he_feedback_roundtrip(
    v_matrix: np.ndarray, config: HeFeedbackConfig
) -> np.ndarray:
    """Full HE feedback path: group, compress, quantise, reconstruct, expand.

    Returns the ``V~`` matrix an observer reconstructs from the HE feedback,
    at the full sub-carrier resolution of the input.
    """
    v_matrix = np.asarray(v_matrix)
    if v_matrix.ndim != 3:
        raise HeFeedbackError("v_matrix must have shape (K, M, N_SS)")
    grouped = group_subcarriers(v_matrix, config.grouping)
    angles = compress_v_matrix(grouped)
    quantised = quantization_roundtrip(angles, config.quantization)
    reconstructed = reconstruct_v_matrix(quantised)
    return expand_groups(reconstructed, v_matrix.shape[0], config.grouping)


def feedback_overhead_bits(
    num_subcarriers: int,
    num_tx: int,
    num_streams: int,
    config: HeFeedbackConfig,
) -> int:
    """Size of the angle payload in bits for the given dimensions.

    ``n_phi`` and ``n_psi`` angles are reported per retained tone, using the
    codebook bit-widths; the (small) MIMO-control header is not counted.
    """
    if num_subcarriers < 1:
        raise HeFeedbackError("num_subcarriers must be >= 1")
    n_phi, n_psi = angle_counts(num_tx, num_streams)
    quantization = config.quantization
    reported_tones = int(np.ceil(num_subcarriers / config.grouping))
    per_tone = n_phi * quantization.b_phi + n_psi * quantization.b_psi
    return reported_tones * per_tone


def overhead_reduction(
    num_subcarriers: int, num_tx: int, num_streams: int, config: HeFeedbackConfig
) -> float:
    """Feedback-size ratio of the grouped configuration vs. ``Ng = 1``."""
    grouped = feedback_overhead_bits(num_subcarriers, num_tx, num_streams, config)
    full = feedback_overhead_bits(
        num_subcarriers,
        num_tx,
        num_streams,
        HeFeedbackConfig(grouping=1, codebook=config.codebook, mu=config.mu),
    )
    return grouped / full
