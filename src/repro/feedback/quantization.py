"""Quantisation of the beamforming feedback angles (Eq. 8).

The beamformee quantises every ``phi`` angle with ``b_phi`` bits and every
``psi`` angle with ``b_psi = b_phi - 2`` bits before packing them into the
compressed beamforming frame.  The beamformer recovers the angles via
Eq. (8)::

    phi = pi * (1 / 2**b_phi     + q_phi / 2**(b_phi - 1))
    psi = pi * (1 / 2**(b_psi+2) + q_psi / 2**(b_psi + 1))

so ``phi`` covers ``[0, 2*pi)`` and ``psi`` covers ``[0, pi/2)``.  The
quantisation error is the only information loss of the feedback path and is
studied in Figs. 13-15 of the paper.
"""

from __future__ import annotations

# lint: dtype-strict

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.analysis.annotations import hot_path
from repro.feedback.givens import FeedbackAngles

#: Codebook 0 of the VHT MU-MIMO feedback: (b_psi, b_phi) = (5, 7).
CODEBOOK_LOW = (5, 7)
#: Codebook 1 of the VHT MU-MIMO feedback: (b_psi, b_phi) = (7, 9) - the
#: configuration used by the paper's AP.
CODEBOOK_HIGH = (7, 9)


class QuantizationError(ValueError):
    """Raised for invalid quantisation configurations or inputs."""


@dataclass(frozen=True)
class QuantizationConfig:
    """Bit widths used to quantise the feedback angles.

    Attributes
    ----------
    b_phi:
        Number of bits for every ``phi`` angle.
    b_psi:
        Number of bits for every ``psi`` angle.  The standard mandates
        ``b_psi = b_phi - 2``; this is enforced unless ``strict=False``.
    strict:
        Whether to enforce the standard codebooks.
    """

    b_phi: int = 9
    b_psi: int = 7
    strict: bool = True

    def __post_init__(self) -> None:
        if self.b_phi < 1 or self.b_psi < 1:
            raise QuantizationError("bit widths must be >= 1")
        if self.strict:
            if (self.b_psi, self.b_phi) not in (CODEBOOK_LOW, CODEBOOK_HIGH):
                raise QuantizationError(
                    "standard-compliant codebooks are (b_psi, b_phi) in "
                    f"{{{CODEBOOK_LOW}, {CODEBOOK_HIGH}}}; got "
                    f"({self.b_psi}, {self.b_phi}). Pass strict=False to "
                    "experiment with non-standard widths."
                )

    @property
    def phi_levels(self) -> int:
        """Number of quantisation levels for ``phi``."""
        return 2 ** self.b_phi

    @property
    def psi_levels(self) -> int:
        """Number of quantisation levels for ``psi``."""
        return 2 ** self.b_psi

    @property
    def phi_step(self) -> float:
        """Quantisation step of ``phi`` [rad]."""
        return np.pi / (2 ** (self.b_phi - 1))

    @property
    def psi_step(self) -> float:
        """Quantisation step of ``psi`` [rad]."""
        return np.pi / (2 ** (self.b_psi + 1))

    def bits_per_subcarrier(self, n_phi: int, n_psi: int) -> int:
        """Total feedback bits per sub-carrier for a given angle count."""
        return n_phi * self.b_phi + n_psi * self.b_psi


@dataclass(frozen=True)
class QuantizedAngles:
    """Integer codewords of a quantised feedback.

    Attributes
    ----------
    q_phi / q_psi:
        Integer codewords with the same shapes as the original angle arrays.
    config:
        The quantisation configuration used.
    num_tx / num_streams:
        Dimensions of the associated beamforming matrix.
    """

    q_phi: np.ndarray
    q_psi: np.ndarray
    config: QuantizationConfig
    num_tx: int
    num_streams: int

    @property
    def num_subcarriers(self) -> int:
        """Number of sub-carriers covered by the quantised feedback."""
        return self.q_phi.shape[0]


def quantize_phi(phi: np.ndarray, config: QuantizationConfig) -> np.ndarray:
    """Quantise ``phi`` angles (radians) into ``int16`` codewords.

    ``int16`` is the wire dtype of :data:`repro.core.transport.RECORD_CODEWORDS`
    and covers both standard codebooks (at most ``2**9`` levels) with room for
    non-strict experiments up to ``b_phi = 14``.
    """
    # lint: disable=dtype/float64 -- Eq. (8) angles are defined in float64;
    phi = np.mod(np.asarray(phi, dtype=float), 2.0 * np.pi)
    levels = config.phi_levels
    q = np.round(phi / config.phi_step - 0.5).astype(np.int16)
    return np.clip(np.mod(q, levels), 0, levels - 1)


def quantize_psi(psi: np.ndarray, config: QuantizationConfig) -> np.ndarray:
    """Quantise ``psi`` angles (radians) into ``int16`` codewords."""
    # lint: disable=dtype/float64 -- Eq. (8) angles are defined in float64;
    psi = np.clip(np.asarray(psi, dtype=float), 0.0, np.pi / 2.0)
    levels = config.psi_levels
    q = np.round(psi / config.psi_step - 0.5).astype(np.int16)
    return np.clip(q, 0, levels - 1)


def dequantize_phi(q_phi: np.ndarray, config: QuantizationConfig) -> np.ndarray:
    """Recover ``phi`` angles from their codewords (Eq. 8)."""
    # lint: disable=dtype/float64 -- Eq. (8) reference values are float64;
    q = np.asarray(q_phi, dtype=float)
    return np.pi * (1.0 / config.phi_levels + q / (2 ** (config.b_phi - 1)))


def dequantize_psi(q_psi: np.ndarray, config: QuantizationConfig) -> np.ndarray:
    """Recover ``psi`` angles from their codewords (Eq. 8)."""
    # lint: disable=dtype/float64 -- Eq. (8) reference values are float64;
    q = np.asarray(q_psi, dtype=float)
    return np.pi * (1.0 / (2 ** (config.b_psi + 2)) + q / (2 ** (config.b_psi + 1)))


def quantize_angles(
    angles: FeedbackAngles, config: QuantizationConfig
) -> QuantizedAngles:
    """Quantise a full feedback (all sub-carriers, all angles)."""
    return QuantizedAngles(
        q_phi=quantize_phi(angles.phi, config),
        q_psi=quantize_psi(angles.psi, config),
        config=config,
        num_tx=angles.num_tx,
        num_streams=angles.num_streams,
    )


def dequantize_angles(quantized: QuantizedAngles) -> FeedbackAngles:
    """Recover (quantised) feedback angles from their codewords."""
    return FeedbackAngles(
        phi=dequantize_phi(quantized.q_phi, quantized.config),
        psi=dequantize_psi(quantized.q_psi, quantized.config),
        num_tx=quantized.num_tx,
        num_streams=quantized.num_streams,
    )


def stack_quantized_angles(
    quantized: Sequence[QuantizedAngles],
) -> Tuple[np.ndarray, np.ndarray, QuantizationConfig, int, int]:
    """Stack per-feedback codewords into ``(B, K, n_angles)`` batch arrays.

    All feedbacks must share the same quantisation configuration and the
    same ``(K, M, N_SS)`` geometry; the streaming engine groups frames by
    exactly this key before calling in here.

    Returns
    -------
    (q_phi, q_psi, config, num_tx, num_streams):
        Stacked codeword arrays plus the shared configuration and matrix
        dimensions, ready for :func:`dequantize_angles_batch`.
    """
    if not quantized:
        raise QuantizationError("cannot stack an empty list of quantised feedbacks")
    first = quantized[0]
    for item in quantized[1:]:
        if item.config != first.config:
            raise QuantizationError(
                "all feedbacks in a batch must share the same quantisation "
                "configuration"
            )
        if (
            item.num_tx != first.num_tx
            or item.num_streams != first.num_streams
            or item.num_subcarriers != first.num_subcarriers
        ):
            raise QuantizationError(
                "all feedbacks in a batch must share the same (K, M, N_SS) "
                "geometry"
            )
    q_phi = np.stack([item.q_phi for item in quantized], axis=0)
    q_psi = np.stack([item.q_psi for item in quantized], axis=0)
    return q_phi, q_psi, first.config, first.num_tx, first.num_streams


@hot_path
def dequantize_angles_batch(
    q_phi: np.ndarray, q_psi: np.ndarray, config: QuantizationConfig
) -> Tuple[np.ndarray, np.ndarray]:
    """Recover stacked ``(B, K, n_angles)`` angle arrays from codewords (Eq. 8).

    Eq. (8) is element-wise, so one vectorised evaluation covers the whole
    batch; combine with
    :func:`repro.feedback.givens.reconstruct_v_matrices` to rebuild the
    ``(B, K, M, N_SS)`` beamforming tensor in a single shot.
    """
    return dequantize_phi(q_phi, config), dequantize_psi(q_psi, config)


@dataclass(frozen=True)
class TrigLUT:
    """Trig lookup tables over the (tiny) codeword alphabets of one config.

    Eq. (8) maps the ``q``-th codeword to a fixed angle, so for codebook 1
    (``b_phi=9 / b_psi=7``) there are only 512 possible ``exp(1j*phi)``
    values and 128 possible ``(cos, sin)(psi)`` pairs.  The tables are built
    by evaluating the *exact same* NumPy expressions the legacy path applies
    per frame (:func:`dequantize_phi` / :func:`dequantize_psi` followed by
    ``np.exp`` / ``np.cos`` / ``np.sin``), so a float64 LUT gather is
    bitwise-identical to recomputing the trig per frame -- IEEE 754
    elementwise functions are deterministic per input value.  The
    ``complex64`` / ``float32`` variants feed the ``precision="fast"`` path
    and pair with the fp32 NN compute backend.

    Attributes
    ----------
    config:
        The quantisation configuration the tables were built for.
    exp_phi / cos_psi / sin_psi:
        Float64-precision tables indexed by codeword
        (``exp_phi[q] == exp(1j * dequantize_phi(q))`` and so on).
    exp_phi_c64 / cos_psi_f32 / sin_psi_f32:
        Downcast single-precision variants of the same tables.
    """

    config: QuantizationConfig
    exp_phi: np.ndarray
    cos_psi: np.ndarray
    sin_psi: np.ndarray
    exp_phi_c64: np.ndarray
    cos_psi_f32: np.ndarray
    sin_psi_f32: np.ndarray

    def tables(self, fast: bool = False) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The ``(exp_phi, cos_psi, sin_psi)`` tables for one precision."""
        if fast:
            return self.exp_phi_c64, self.cos_psi_f32, self.sin_psi_f32
        return self.exp_phi, self.cos_psi, self.sin_psi


def _build_trig_lut(config: QuantizationConfig) -> TrigLUT:
    phi = dequantize_phi(np.arange(config.phi_levels, dtype=np.int64), config)
    psi = dequantize_psi(np.arange(config.psi_levels, dtype=np.int64), config)
    exp_phi = np.exp(1j * phi)
    cos_psi = np.cos(psi)
    sin_psi = np.sin(psi)
    return TrigLUT(
        config=config,
        exp_phi=exp_phi,
        cos_psi=cos_psi,
        sin_psi=sin_psi,
        exp_phi_c64=exp_phi.astype(np.complex64),
        cos_psi_f32=cos_psi.astype(np.float32),
        sin_psi_f32=sin_psi.astype(np.float32),
    )


#: Per-config table cache; configs are tiny frozen dataclasses, so the cache
#: holds at most a handful of entries per process lifetime.
_TRIG_LUTS: Dict[QuantizationConfig, TrigLUT] = {}


def trig_lut_for(config: QuantizationConfig) -> TrigLUT:
    """The (cached) :class:`TrigLUT` for ``config``, built on first use."""
    lut = _TRIG_LUTS.get(config)
    if lut is None:
        lut = _build_trig_lut(config)
        _TRIG_LUTS[config] = lut
    return lut


def quantization_roundtrip(
    angles: FeedbackAngles, config: QuantizationConfig
) -> FeedbackAngles:
    """Quantise and immediately de-quantise a feedback.

    This is exactly what an observer of the sounding exchange sees: the
    angles after the lossy trip through the compressed beamforming frame.
    """
    return dequantize_angles(quantize_angles(angles, config))
