"""Simulated monitor-mode capture of the channel-sounding exchange.

In the paper the observer runs Wireshark on an off-the-shelf laptop set to
monitor mode, records every VHT compressed-beamforming frame in the air and
later groups them by the source MAC address (the beamformee that sent the
feedback).  This module reproduces that workflow against the simulated
network:

* :class:`SoundingSimulator` drives one sounding round: the AP sends an NDP,
  every beamformee estimates the CFR, computes ``V``, compresses and
  quantises it and transmits the feedback frame.
* :class:`MonitorCapture` is the passive observer: it stores frames, can
  filter them by source/destination address and reconstructs ``V~`` from the
  captured payloads - exactly the information DeepCSI has access to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.analysis.annotations import hot_path
from repro.feedback.frames import (
    FeedbackFrame,
    VhtMimoControl,
    pack_feedback_frame,
    parse_feedback_frame,
)
from repro.feedback.givens import compress_v_matrix, reconstruct_v_matrices
from repro.feedback.quantization import (
    QuantizationConfig,
    dequantize_angles_batch,
    quantize_angles,
    stack_quantized_angles,
)
from repro.phy.channel import MultipathChannel
from repro.phy.devices import AccessPoint, Beamformee
from repro.phy.mimo import beamforming_matrix, compute_cfr
from repro.phy.ofdm import SubcarrierLayout


def station_mac(station_id: int) -> str:
    """Deterministic MAC address for a simulated beamformee."""
    return f"02:00:00:00:00:{station_id:02x}"


def access_point_mac(module_id: int) -> str:
    """Deterministic MAC address for a simulated AP module."""
    return f"02:00:00:00:ap:{module_id:02x}".replace("ap", "aa")


@dataclass(frozen=True)
class CapturedFeedback:
    """A parsed feedback: what DeepCSI reconstructs from one captured frame.

    Attributes
    ----------
    v_tilde:
        Reconstructed beamforming matrix ``V~`` of shape ``(K, M, N_SS)``.
    source_address / destination_address:
        Addresses read from the captured frame.
    timestamp_s:
        Capture timestamp.
    """

    v_tilde: np.ndarray
    source_address: str
    destination_address: str
    timestamp_s: float


@hot_path
def reconstruct_quantized_batch(parsed: Sequence) -> List[np.ndarray]:
    """Rebuild ``V~`` for parsed feedbacks through the batched Givens path.

    The :class:`~repro.feedback.quantization.QuantizedAngles` are grouped by
    ``(K, M, N_SS)`` geometry and quantisation configuration, and each group
    is de-quantised and reconstructed in one vectorised call.  The returned
    matrices are in the input order.
    """
    groups: Dict[tuple, List[int]] = {}
    for index, quantized in enumerate(parsed):
        key = (
            quantized.config,
            quantized.num_tx,
            quantized.num_streams,
            quantized.num_subcarriers,
        )
        groups.setdefault(key, []).append(index)
    v_tildes: List[Optional[np.ndarray]] = [None] * len(parsed)
    for indices in groups.values():
        q_phi, q_psi, config, num_tx, num_streams = stack_quantized_angles(
            [parsed[index] for index in indices]
        )
        phi, psi = dequantize_angles_batch(q_phi, q_psi, config)
        v_batch = reconstruct_v_matrices(phi, psi, num_tx, num_streams)
        for position, index in enumerate(indices):
            v_tildes[index] = v_batch[position]
    return v_tildes


def reconstruct_frame_batch(frames: Sequence[FeedbackFrame]) -> List[np.ndarray]:
    """Parse and rebuild ``V~`` for every frame, in the input frame order."""
    return reconstruct_quantized_batch(
        [parse_feedback_frame(frame.payload)[1] for frame in frames]
    )


@dataclass
class MonitorCapture:
    """Passive monitor-mode capture buffer."""

    frames: List[FeedbackFrame] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.frames)

    def record(self, frame: FeedbackFrame) -> None:
        """Store a sniffed frame."""
        self.frames.append(frame)

    def filter(
        self,
        source_address: Optional[str] = None,
        destination_address: Optional[str] = None,
    ) -> List[FeedbackFrame]:
        """Frames matching the given source and/or destination address."""
        result = []
        for frame in self.frames:
            if source_address is not None and frame.source_address != source_address:
                continue
            if (
                destination_address is not None
                and frame.destination_address != destination_address
            ):
                continue
            result.append(frame)
        return result

    def source_addresses(self) -> List[str]:
        """Distinct source addresses seen in the capture, sorted.

        One entry per beamformee that transmitted feedback; the streaming
        service shards its workload by exactly these addresses.
        """
        return sorted({frame.source_address for frame in self.frames})

    def reconstruct(
        self,
        source_address: Optional[str] = None,
        destination_address: Optional[str] = None,
    ) -> List[CapturedFeedback]:
        """Parse and de-quantise every matching frame into ``V~`` matrices.

        The reconstruction runs through the batched Givens path: frames are
        grouped by geometry and quantisation configuration and every group is
        rebuilt in one vectorised call.
        """
        frames = self.filter(source_address, destination_address)
        v_tildes = reconstruct_frame_batch(frames)
        return [
            CapturedFeedback(
                v_tilde=v_tilde,
                source_address=frame.source_address,
                destination_address=frame.destination_address,
                timestamp_s=frame.timestamp_s,
            )
            for frame, v_tilde in zip(frames, v_tildes)
        ]

    def clear(self) -> None:
        """Drop every stored frame."""
        self.frames.clear()


@dataclass
class SoundingSimulator:
    """End-to-end simulator of the DL MU-MIMO channel-sounding procedure.

    Attributes
    ----------
    access_point:
        The beamformer under authentication.
    beamformees:
        Stations that reply with compressed beamforming feedback.
    channel:
        Multipath environment.
    layout:
        Sub-carrier layout of the sounded channel.
    quantization:
        Quantisation configuration announced in the VHT MIMO control field.
    snr_db:
        Channel-estimation SNR at the beamformees.
    sounding_interval_s:
        Time between consecutive soundings (used for frame timestamps).
    pa_flip_probability:
        Probability of a per-packet ``pi`` phase ambiguity on each transmit
        antenna (see :class:`repro.phy.impairments.PacketOffsets`).
    """

    access_point: AccessPoint
    beamformees: Sequence[Beamformee]
    channel: MultipathChannel
    layout: SubcarrierLayout
    quantization: QuantizationConfig = field(default_factory=QuantizationConfig)
    snr_db: float = 30.0
    sounding_interval_s: float = 0.5
    pa_flip_probability: float = 0.5
    _clock_s: float = 0.0

    def __post_init__(self) -> None:
        if not self.beamformees:
            raise ValueError("at least one beamformee is required")
        if self.quantization.b_phi == 7:
            self._codebook = 0
        elif self.quantization.b_phi == 9:
            self._codebook = 1
        else:
            raise ValueError(
                "frame packing requires a standard codebook (b_phi in {7, 9})"
            )

    def sound_once(
        self, rng: np.random.Generator, capture: Optional[MonitorCapture] = None
    ) -> List[FeedbackFrame]:
        """Run one sounding round and return the feedback frames on the air.

        If ``capture`` is given, every frame is also recorded there (the
        observer sniffing the channel).
        """
        frames: List[FeedbackFrame] = []
        for beamformee in self.beamformees:
            cfr = compute_cfr(
                self.access_point,
                beamformee,
                self.channel,
                self.layout,
                rng,
                snr_db=self.snr_db,
                pa_flip_probability=self.pa_flip_probability,
            )
            v_matrix = beamforming_matrix(cfr, beamformee.num_streams)
            angles = compress_v_matrix(v_matrix)
            quantized = quantize_angles(angles, self.quantization)
            control = VhtMimoControl(
                num_columns=beamformee.num_streams,
                num_rows=self.access_point.num_antennas,
                bandwidth_mhz=self.layout.config.bandwidth_mhz,
                codebook=self._codebook,
                num_subcarriers=self.layout.num_subcarriers,
            )
            payload = pack_feedback_frame(quantized, control)
            frame = FeedbackFrame(
                source_address=station_mac(beamformee.station_id),
                destination_address=access_point_mac(
                    self.access_point.module.module_id
                ),
                timestamp_s=self._clock_s,
                payload=payload,
            )
            frames.append(frame)
            if capture is not None:
                capture.record(frame)
        self._clock_s += self.sounding_interval_s
        return frames

    def sound_many(
        self,
        num_soundings: int,
        rng: np.random.Generator,
        capture: Optional[MonitorCapture] = None,
    ) -> List[FeedbackFrame]:
        """Run ``num_soundings`` consecutive sounding rounds."""
        if num_soundings < 1:
            raise ValueError("num_soundings must be >= 1")
        frames: List[FeedbackFrame] = []
        for _ in range(num_soundings):
            frames.extend(self.sound_once(rng, capture=capture))
        return frames
