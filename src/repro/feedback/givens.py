"""Givens-rotation compression of the beamforming matrix (Algorithm 1).

IEEE 802.11ac/ax beamformees do not feed the complex-valued beamforming
matrix ``V_k`` back to the beamformer.  Instead they decompose it into a set
of ``phi`` (column phase) and ``psi`` (Givens rotation) angles, quantise
those angles and transmit them.  The beamformer (and any observer such as
DeepCSI) rebuilds ``V~_k`` from the angles through Eq. (7):

    V~_k = prod_{i=1}^{min(N_SS, M-1)} ( D_{k,i} prod_{l=i+1}^{M} G_{k,l,i}^T ) I_{M x N_SS}

with ``D`` and ``G`` as in Eq. (4)/(5).  The matrix ``V~_k`` equals ``V_k``
up to a per-column phase on the last row (``V_k = V~_k D~_k``), which does
not affect the beamforming performance and is therefore never transmitted.

All functions operate on batched inputs: the leading axis indexes the ``K``
OFDM sub-carriers, so one call compresses or reconstructs the full
``(K, M, N_SS)`` beamforming tensor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.analysis.annotations import hot_path


class GivensError(ValueError):
    """Raised for invalid inputs to the Givens compression routines."""


def angle_counts(num_tx: int, num_streams: int) -> Tuple[int, int]:
    """Number of ``phi`` and ``psi`` angles for an ``M x N_SS`` feedback.

    For every ``i`` in ``1..min(N_SS, M-1)`` the decomposition produces
    ``M - i`` phi angles and ``M - i`` psi angles.
    """
    _validate_dims(num_tx, num_streams)
    limit = min(num_streams, num_tx - 1)
    count = sum(num_tx - i for i in range(1, limit + 1))
    return count, count


def angle_order(num_tx: int, num_streams: int) -> List[Tuple[str, int, int]]:
    """Transmission order of the angles, as ``(kind, l, i)`` 1-based tuples.

    The standard interleaves the angles per ``i``: first the column phases
    ``phi_{l,i}`` for ``l = i .. M-1``, then the rotations ``psi_{l,i}`` for
    ``l = i+1 .. M``.
    """
    _validate_dims(num_tx, num_streams)
    order: List[Tuple[str, int, int]] = []
    limit = min(num_streams, num_tx - 1)
    for i in range(1, limit + 1):
        for l in range(i, num_tx):
            order.append(("phi", l, i))
        for l in range(i + 1, num_tx + 1):
            order.append(("psi", l, i))
    return order


def _validate_dims(num_tx: int, num_streams: int) -> None:
    if num_tx < 2:
        raise GivensError("the feedback requires at least two TX antennas")
    if not 1 <= num_streams <= num_tx:
        raise GivensError("num_streams must be in 1..num_tx")


@dataclass(frozen=True)
class FeedbackAngles:
    """The ``phi`` / ``psi`` angles of a compressed beamforming feedback.

    Attributes
    ----------
    phi:
        Column-phase angles in radians, shape ``(K, n_phi)``, in the
        transmission order given by :func:`angle_order`.
    psi:
        Givens-rotation angles in radians, shape ``(K, n_psi)``.
    num_tx:
        Number of rows ``M`` of the beamforming matrix.
    num_streams:
        Number of columns ``N_SS`` of the beamforming matrix.
    """

    phi: np.ndarray
    psi: np.ndarray
    num_tx: int
    num_streams: int

    def __post_init__(self) -> None:
        n_phi, n_psi = angle_counts(self.num_tx, self.num_streams)
        if self.phi.ndim != 2 or self.phi.shape[1] != n_phi:
            raise GivensError(
                f"phi must have shape (K, {n_phi}), got {self.phi.shape}"
            )
        if self.psi.ndim != 2 or self.psi.shape[1] != n_psi:
            raise GivensError(
                f"psi must have shape (K, {n_psi}), got {self.psi.shape}"
            )
        if self.phi.shape[0] != self.psi.shape[0]:
            raise GivensError("phi and psi must cover the same sub-carriers")

    @property
    def num_subcarriers(self) -> int:
        """Number of sub-carriers ``K`` covered by the feedback."""
        return self.phi.shape[0]


def compress_v_matrix(v_matrix: np.ndarray) -> FeedbackAngles:
    """Decompose ``V`` into feedback angles (Algorithm 1 of the paper).

    Parameters
    ----------
    v_matrix:
        Beamforming matrix of shape ``(K, M, N_SS)`` with (approximately)
        orthonormal columns, e.g. the output of
        :func:`repro.phy.mimo.beamforming_matrix`.

    Returns
    -------
    FeedbackAngles
        The ``phi`` angles wrapped to ``[0, 2*pi)`` and the ``psi`` angles in
        ``[0, pi/2]``.
    """
    v_matrix = np.asarray(v_matrix, dtype=complex)
    if v_matrix.ndim != 3:
        raise GivensError("v_matrix must have shape (K, M, N_SS)")
    num_sub, num_tx, num_streams = v_matrix.shape
    _validate_dims(num_tx, num_streams)

    # Step 1: rotate every column so that the last row becomes real and
    # non-negative (the D~ matrix, never transmitted).
    last_row_phase = np.angle(v_matrix[:, num_tx - 1, :])  # (K, N_SS)
    omega = v_matrix * np.exp(-1j * last_row_phase)[:, np.newaxis, :]

    phi_columns: List[np.ndarray] = []
    psi_columns: List[np.ndarray] = []
    limit = min(num_streams, num_tx - 1)
    for i in range(limit):  # 0-based; paper index is i+1
        # Column phases of rows i .. M-2 of column i.
        phis = np.angle(omega[:, i : num_tx - 1, i])  # (K, M-1-i)
        phi_columns.extend(np.mod(phis[:, j], 2.0 * np.pi) for j in range(phis.shape[1]))
        # Apply D_i^H: de-rotate rows i .. M-2.
        omega[:, i : num_tx - 1, :] = (
            omega[:, i : num_tx - 1, :] * np.exp(-1j * phis)[:, :, np.newaxis]
        )
        # Givens rotations zeroing rows i+1 .. M-1 of column i.
        for l in range(i + 1, num_tx):
            x = np.real(omega[:, i, i])
            y = np.real(omega[:, l, i])
            psi = np.arctan2(y, x)
            psi = np.clip(psi, 0.0, np.pi / 2.0)
            psi_columns.append(psi)
            cos_psi = np.cos(psi)[:, np.newaxis]
            sin_psi = np.sin(psi)[:, np.newaxis]
            row_i = omega[:, i, :].copy()
            row_l = omega[:, l, :].copy()
            omega[:, i, :] = cos_psi * row_i + sin_psi * row_l
            omega[:, l, :] = -sin_psi * row_i + cos_psi * row_l

    phi = np.stack(phi_columns, axis=1) if phi_columns else np.zeros((num_sub, 0))
    psi = np.stack(psi_columns, axis=1) if psi_columns else np.zeros((num_sub, 0))
    return FeedbackAngles(
        phi=phi, psi=psi, num_tx=num_tx, num_streams=num_streams
    )


def _reconstruct_from_angles(
    phi: np.ndarray, psi: np.ndarray, num_tx: int, num_streams: int
) -> np.ndarray:
    """Eq. (7) over arbitrary leading axes.

    ``phi`` has shape ``(..., n_phi)`` and ``psi`` shape ``(..., n_psi)``;
    the result has shape ``(..., M, N_SS)``.  The structural loop over the
    ``(i, l)`` Givens indices is kept, but every operation inside it is a
    single broadcast over all leading axes (batch and sub-carrier alike).
    """
    lead = phi.shape[:-1]
    accumulator = np.broadcast_to(
        np.eye(num_tx, dtype=complex), lead + (num_tx, num_tx)
    ).copy()

    phi_cursor = 0
    psi_cursor = 0
    limit = min(num_streams, num_tx - 1)
    for i in range(limit):
        # Multiply on the right by D_i (a diagonal matrix): scales columns
        # i .. M-2 of the accumulator.
        num_phi = num_tx - 1 - i
        phis = phi[..., phi_cursor : phi_cursor + num_phi]  # (..., num_phi)
        phi_cursor += num_phi
        accumulator[..., :, i : num_tx - 1] = (
            accumulator[..., :, i : num_tx - 1]
            * np.exp(1j * phis)[..., np.newaxis, :]
        )
        # Multiply on the right by G_{l,i}^T for l = i+1 .. M-1 (0-based):
        # mixes columns i and l of the accumulator.
        for l in range(i + 1, num_tx):
            psi_li = psi[..., psi_cursor]
            psi_cursor += 1
            cos_psi = np.cos(psi_li)[..., np.newaxis]
            sin_psi = np.sin(psi_li)[..., np.newaxis]
            col_i = accumulator[..., :, i].copy()
            col_l = accumulator[..., :, l].copy()
            accumulator[..., :, i] = cos_psi * col_i + sin_psi * col_l
            accumulator[..., :, l] = -sin_psi * col_i + cos_psi * col_l

    return accumulator[..., :, :num_streams]


def reconstruct_v_matrix(angles: FeedbackAngles) -> np.ndarray:
    """Rebuild ``V~`` from the feedback angles (Eq. 7).

    Parameters
    ----------
    angles:
        The (possibly quantised) feedback angles.

    Returns
    -------
    numpy.ndarray
        ``V~`` of shape ``(K, M, N_SS)``.  Its columns are orthonormal and
        its last row consists of non-negative real numbers.
    """
    return _reconstruct_from_angles(
        angles.phi, angles.psi, angles.num_tx, angles.num_streams
    )


@hot_path
def reconstruct_v_matrices(
    phi: np.ndarray, psi: np.ndarray, num_tx: int, num_streams: int
) -> np.ndarray:
    """Rebuild a whole batch of ``V~`` matrices from stacked angles (Eq. 7).

    This is the batched hot path of the streaming inference engine: the
    Givens structure loop runs once while every arithmetic operation inside
    it broadcasts over the ``(B, K)`` axes.

    Parameters
    ----------
    phi / psi:
        Stacked angle arrays of shape ``(B, K, n_phi)`` / ``(B, K, n_psi)``,
        e.g. from :func:`repro.feedback.quantization.dequantize_angles_batch`.
    num_tx / num_streams:
        Dimensions ``M`` / ``N_SS`` shared by every feedback in the batch.

    Returns
    -------
    numpy.ndarray
        ``V~`` batch of shape ``(B, K, M, N_SS)``, matching
        :func:`reconstruct_v_matrix` applied per feedback.
    """
    phi = np.asarray(phi, dtype=float)
    psi = np.asarray(psi, dtype=float)
    n_phi, n_psi = angle_counts(num_tx, num_streams)
    if phi.ndim != 3 or phi.shape[2] != n_phi:
        raise GivensError(f"phi must have shape (B, K, {n_phi}), got {phi.shape}")
    if psi.ndim != 3 or psi.shape[2] != n_psi:
        raise GivensError(f"psi must have shape (B, K, {n_psi}), got {psi.shape}")
    if phi.shape[:2] != psi.shape[:2]:
        raise GivensError("phi and psi must cover the same batch and sub-carriers")
    return _reconstruct_from_angles(phi, psi, num_tx, num_streams)


def stack_feedback_angles(
    angles: Sequence[FeedbackAngles],
) -> Tuple[np.ndarray, np.ndarray, int, int]:
    """Stack per-feedback angles into ``(B, K, n_angles)`` batch arrays.

    All feedbacks must share the same ``(K, M, N_SS)`` geometry; mixed
    geometries must be grouped by the caller (see
    :class:`repro.core.engine.InferenceEngine`).

    Returns
    -------
    (phi, psi, num_tx, num_streams):
        Stacked angle arrays plus the shared matrix dimensions, ready for
        :func:`reconstruct_v_matrices`.
    """
    if not angles:
        raise GivensError("cannot stack an empty list of feedback angles")
    first = angles[0]
    for item in angles[1:]:
        if (
            item.num_tx != first.num_tx
            or item.num_streams != first.num_streams
            or item.num_subcarriers != first.num_subcarriers
        ):
            raise GivensError(
                "all feedbacks in a batch must share the same (K, M, N_SS) "
                "geometry"
            )
    phi = np.stack([item.phi for item in angles], axis=0)
    psi = np.stack([item.psi for item in angles], axis=0)
    return phi, psi, first.num_tx, first.num_streams


def compression_error(v_matrix: np.ndarray, reconstructed: np.ndarray) -> np.ndarray:
    """Per-entry reconstruction error between ``V~`` and the original ``V``.

    The comparison removes the (untransmitted) per-column phase of the last
    row of ``V`` before differencing, since ``V = V~ D~`` by construction.

    Returns
    -------
    numpy.ndarray
        Absolute error per entry, shape ``(K, M, N_SS)``.
    """
    v_matrix = np.asarray(v_matrix, dtype=complex)
    if v_matrix.shape != reconstructed.shape:
        raise GivensError("v_matrix and reconstructed must have the same shape")
    num_tx = v_matrix.shape[1]
    last_row_phase = np.angle(v_matrix[:, num_tx - 1, :])
    normalised = v_matrix * np.exp(-1j * last_row_phase)[:, np.newaxis, :]
    return np.abs(normalised - reconstructed)
