"""Givens-rotation compression of the beamforming matrix (Algorithm 1).

IEEE 802.11ac/ax beamformees do not feed the complex-valued beamforming
matrix ``V_k`` back to the beamformer.  Instead they decompose it into a set
of ``phi`` (column phase) and ``psi`` (Givens rotation) angles, quantise
those angles and transmit them.  The beamformer (and any observer such as
DeepCSI) rebuilds ``V~_k`` from the angles through Eq. (7):

    V~_k = prod_{i=1}^{min(N_SS, M-1)} ( D_{k,i} prod_{l=i+1}^{M} G_{k,l,i}^T ) I_{M x N_SS}

with ``D`` and ``G`` as in Eq. (4)/(5).  The matrix ``V~_k`` equals ``V_k``
up to a per-column phase on the last row (``V_k = V~_k D~_k``), which does
not affect the beamforming performance and is therefore never transmitted.

All functions operate on batched inputs: the leading axis indexes the ``K``
OFDM sub-carriers, so one call compresses or reconstructs the full
``(K, M, N_SS)`` beamforming tensor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.annotations import hot_path
from repro.arena import ArenaPool

if TYPE_CHECKING:  # pragma: no cover - import cycle: quantization imports us
    from repro.feedback.quantization import QuantizationConfig


class GivensError(ValueError):
    """Raised for invalid inputs to the Givens compression routines."""


def angle_counts(num_tx: int, num_streams: int) -> Tuple[int, int]:
    """Number of ``phi`` and ``psi`` angles for an ``M x N_SS`` feedback.

    For every ``i`` in ``1..min(N_SS, M-1)`` the decomposition produces
    ``M - i`` phi angles and ``M - i`` psi angles.
    """
    _validate_dims(num_tx, num_streams)
    limit = min(num_streams, num_tx - 1)
    count = sum(num_tx - i for i in range(1, limit + 1))
    return count, count


def angle_order(num_tx: int, num_streams: int) -> List[Tuple[str, int, int]]:
    """Transmission order of the angles, as ``(kind, l, i)`` 1-based tuples.

    The standard interleaves the angles per ``i``: first the column phases
    ``phi_{l,i}`` for ``l = i .. M-1``, then the rotations ``psi_{l,i}`` for
    ``l = i+1 .. M``.
    """
    _validate_dims(num_tx, num_streams)
    order: List[Tuple[str, int, int]] = []
    limit = min(num_streams, num_tx - 1)
    for i in range(1, limit + 1):
        for l in range(i, num_tx):
            order.append(("phi", l, i))
        for l in range(i + 1, num_tx + 1):
            order.append(("psi", l, i))
    return order


def _validate_dims(num_tx: int, num_streams: int) -> None:
    if num_tx < 2:
        raise GivensError("the feedback requires at least two TX antennas")
    if not 1 <= num_streams <= num_tx:
        raise GivensError("num_streams must be in 1..num_tx")


@dataclass(frozen=True)
class FeedbackAngles:
    """The ``phi`` / ``psi`` angles of a compressed beamforming feedback.

    Attributes
    ----------
    phi:
        Column-phase angles in radians, shape ``(K, n_phi)``, in the
        transmission order given by :func:`angle_order`.
    psi:
        Givens-rotation angles in radians, shape ``(K, n_psi)``.
    num_tx:
        Number of rows ``M`` of the beamforming matrix.
    num_streams:
        Number of columns ``N_SS`` of the beamforming matrix.
    """

    phi: np.ndarray
    psi: np.ndarray
    num_tx: int
    num_streams: int

    def __post_init__(self) -> None:
        n_phi, n_psi = angle_counts(self.num_tx, self.num_streams)
        if self.phi.ndim != 2 or self.phi.shape[1] != n_phi:
            raise GivensError(
                f"phi must have shape (K, {n_phi}), got {self.phi.shape}"
            )
        if self.psi.ndim != 2 or self.psi.shape[1] != n_psi:
            raise GivensError(
                f"psi must have shape (K, {n_psi}), got {self.psi.shape}"
            )
        if self.phi.shape[0] != self.psi.shape[0]:
            raise GivensError("phi and psi must cover the same sub-carriers")

    @property
    def num_subcarriers(self) -> int:
        """Number of sub-carriers ``K`` covered by the feedback."""
        return self.phi.shape[0]


def compress_v_matrix(v_matrix: np.ndarray) -> FeedbackAngles:
    """Decompose ``V`` into feedback angles (Algorithm 1 of the paper).

    Parameters
    ----------
    v_matrix:
        Beamforming matrix of shape ``(K, M, N_SS)`` with (approximately)
        orthonormal columns, e.g. the output of
        :func:`repro.phy.mimo.beamforming_matrix`.

    Returns
    -------
    FeedbackAngles
        The ``phi`` angles wrapped to ``[0, 2*pi)`` and the ``psi`` angles in
        ``[0, pi/2]``.
    """
    v_matrix = np.asarray(v_matrix, dtype=complex)
    if v_matrix.ndim != 3:
        raise GivensError("v_matrix must have shape (K, M, N_SS)")
    num_sub, num_tx, num_streams = v_matrix.shape
    _validate_dims(num_tx, num_streams)

    # Step 1: rotate every column so that the last row becomes real and
    # non-negative (the D~ matrix, never transmitted).
    last_row_phase = np.angle(v_matrix[:, num_tx - 1, :])  # (K, N_SS)
    omega = v_matrix * np.exp(-1j * last_row_phase)[:, np.newaxis, :]

    phi_blocks: List[np.ndarray] = []
    psi_columns: List[np.ndarray] = []
    limit = min(num_streams, num_tx - 1)
    for i in range(limit):  # 0-based; paper index is i+1
        # Column phases of rows i .. M-2 of column i, wrapped to [0, 2*pi)
        # in one vectorised np.mod per iteration block.
        phis = np.angle(omega[:, i : num_tx - 1, i])  # (K, M-1-i)
        phi_blocks.append(np.mod(phis, 2.0 * np.pi))
        # Apply D_i^H: de-rotate rows i .. M-2.
        omega[:, i : num_tx - 1, :] = (
            omega[:, i : num_tx - 1, :] * np.exp(-1j * phis)[:, :, np.newaxis]
        )
        # Givens rotations zeroing rows i+1 .. M-1 of column i.
        for l in range(i + 1, num_tx):
            x = np.real(omega[:, i, i])
            y = np.real(omega[:, l, i])
            psi = np.arctan2(y, x)
            psi = np.clip(psi, 0.0, np.pi / 2.0)
            psi_columns.append(psi)
            cos_psi = np.cos(psi)[:, np.newaxis]
            sin_psi = np.sin(psi)[:, np.newaxis]
            row_i = omega[:, i, :].copy()
            row_l = omega[:, l, :].copy()
            omega[:, i, :] = cos_psi * row_i + sin_psi * row_l
            omega[:, l, :] = -sin_psi * row_i + cos_psi * row_l

    phi = np.concatenate(phi_blocks, axis=1) if phi_blocks else np.zeros((num_sub, 0))
    psi = np.stack(psi_columns, axis=1) if psi_columns else np.zeros((num_sub, 0))
    return FeedbackAngles(
        phi=phi, psi=psi, num_tx=num_tx, num_streams=num_streams
    )


def _reconstruct_from_angles(
    phi: np.ndarray, psi: np.ndarray, num_tx: int, num_streams: int
) -> np.ndarray:
    """Eq. (7) over arbitrary leading axes.

    ``phi`` has shape ``(..., n_phi)`` and ``psi`` shape ``(..., n_psi)``;
    the result has shape ``(..., M, N_SS)``.  The structural loop over the
    ``(i, l)`` Givens indices is kept, but every operation inside it is a
    single broadcast over all leading axes (batch and sub-carrier alike).
    """
    lead = phi.shape[:-1]
    accumulator = np.broadcast_to(
        np.eye(num_tx, dtype=complex), lead + (num_tx, num_tx)
    ).copy()

    phi_cursor = 0
    psi_cursor = 0
    limit = min(num_streams, num_tx - 1)
    for i in range(limit):
        # Multiply on the right by D_i (a diagonal matrix): scales columns
        # i .. M-2 of the accumulator.
        num_phi = num_tx - 1 - i
        phis = phi[..., phi_cursor : phi_cursor + num_phi]  # (..., num_phi)
        phi_cursor += num_phi
        accumulator[..., :, i : num_tx - 1] = (
            accumulator[..., :, i : num_tx - 1]
            * np.exp(1j * phis)[..., np.newaxis, :]
        )
        # Multiply on the right by G_{l,i}^T for l = i+1 .. M-1 (0-based):
        # mixes columns i and l of the accumulator.
        for l in range(i + 1, num_tx):
            psi_li = psi[..., psi_cursor]
            psi_cursor += 1
            cos_psi = np.cos(psi_li)[..., np.newaxis]
            sin_psi = np.sin(psi_li)[..., np.newaxis]
            col_i = accumulator[..., :, i].copy()
            col_l = accumulator[..., :, l].copy()
            accumulator[..., :, i] = cos_psi * col_i + sin_psi * col_l
            accumulator[..., :, l] = -sin_psi * col_i + cos_psi * col_l

    return accumulator[..., :, :num_streams]


def reconstruct_v_matrix(angles: FeedbackAngles) -> np.ndarray:
    """Rebuild ``V~`` from the feedback angles (Eq. 7).

    Parameters
    ----------
    angles:
        The (possibly quantised) feedback angles.

    Returns
    -------
    numpy.ndarray
        ``V~`` of shape ``(K, M, N_SS)``.  Its columns are orthonormal and
        its last row consists of non-negative real numbers.
    """
    return _reconstruct_from_angles(
        angles.phi, angles.psi, angles.num_tx, angles.num_streams
    )


@hot_path
def reconstruct_v_matrices(
    phi: np.ndarray, psi: np.ndarray, num_tx: int, num_streams: int
) -> np.ndarray:
    """Rebuild a whole batch of ``V~`` matrices from stacked angles (Eq. 7).

    This is the batched hot path of the streaming inference engine: the
    Givens structure loop runs once while every arithmetic operation inside
    it broadcasts over the ``(B, K)`` axes.

    Parameters
    ----------
    phi / psi:
        Stacked angle arrays of shape ``(B, K, n_phi)`` / ``(B, K, n_psi)``,
        e.g. from :func:`repro.feedback.quantization.dequantize_angles_batch`.
    num_tx / num_streams:
        Dimensions ``M`` / ``N_SS`` shared by every feedback in the batch.

    Returns
    -------
    numpy.ndarray
        ``V~`` batch of shape ``(B, K, M, N_SS)``, matching
        :func:`reconstruct_v_matrix` applied per feedback.
    """
    phi = np.asarray(phi, dtype=float)
    psi = np.asarray(psi, dtype=float)
    n_phi, n_psi = angle_counts(num_tx, num_streams)
    if phi.ndim != 3 or phi.shape[2] != n_phi:
        raise GivensError(f"phi must have shape (B, K, {n_phi}), got {phi.shape}")
    if psi.ndim != 3 or psi.shape[2] != n_psi:
        raise GivensError(f"psi must have shape (B, K, {n_psi}), got {psi.shape}")
    if phi.shape[:2] != psi.shape[:2]:
        raise GivensError("phi and psi must cover the same batch and sub-carriers")
    return _reconstruct_from_angles(phi, psi, num_tx, num_streams)


def _validate_codeword_batch(
    q_phi: np.ndarray, q_psi: np.ndarray, num_tx: int, num_streams: int
) -> None:
    n_phi, n_psi = angle_counts(num_tx, num_streams)
    if q_phi.ndim != 3 or q_phi.shape[2] != n_phi:
        raise GivensError(
            f"q_phi must have shape (B, K, {n_phi}), got {q_phi.shape}"
        )
    if q_psi.ndim != 3 or q_psi.shape[2] != n_psi:
        raise GivensError(
            f"q_psi must have shape (B, K, {n_psi}), got {q_psi.shape}"
        )
    if q_phi.shape[:2] != q_psi.shape[:2]:
        raise GivensError(
            "q_phi and q_psi must cover the same batch and sub-carriers"
        )


@hot_path
def reconstruct_accumulator_quantized(
    q_phi: np.ndarray,
    q_psi: np.ndarray,
    config: "QuantizationConfig",
    num_tx: int,
    num_streams: int,
    *,
    fast: bool = False,
    arena: Optional[ArenaPool] = None,
) -> np.ndarray:
    """Eq. (7) straight from integer codewords into an arena accumulator.

    The codeword-native fast path of the streaming engine: instead of
    dequantizing to ``(B, K, n)`` float64 angle arrays and evaluating
    ``exp`` / ``cos`` / ``sin`` per frame, the per-config
    :class:`repro.feedback.quantization.TrigLUT` tables are gathered by
    codeword (``np.take`` into arena scratch), so the whole reconstruction
    performs integer gathers plus the Givens arithmetic and -- after warm-up
    -- zero allocations.

    Two structural properties of Eq. (7) are exploited:

    * iteration ``i = 0`` multiplies the identity by ``D_1``, which just
      writes ``exp(1j * phi_j)`` on the diagonal -- the accumulator is
      zero-filled and the diagonal assigned directly;
    * at Givens step ``(i, l)`` column ``i`` is filled down to row ``l - 1``
      and column ``l`` down to row ``l`` (provable by induction from the
      identity start), so the column rotation only touches rows
      ``0 .. l`` instead of all ``M`` rows, and the per-step column copies
      shrink to one ``(B, K, l+1)`` scratch view of the arena instead of the
      legacy pair of fresh ``(B, K, M)`` ``col.copy()`` allocations.

    The arithmetic inside the loop applies the exact operations of
    :func:`_reconstruct_from_angles` in an IEEE-equivalent order
    (``(-s)*x == -(s*x)``, ``a+b == b+a``, ``x+(-y) == x-y`` hold bitwise),
    so with ``fast=False`` every reconstructed element is bit-identical to
    the legacy dequantize+reconstruct path.

    Parameters
    ----------
    q_phi / q_psi:
        Integer codeword batches of shape ``(B, K, n_phi)`` / ``(B, K,
        n_psi)``, e.g. from
        :func:`repro.feedback.quantization.stack_quantized_angles`.
    config:
        The shared :class:`~repro.feedback.quantization.QuantizationConfig`.
    num_tx / num_streams:
        Dimensions ``M`` / ``N_SS`` shared by every feedback in the batch.
    fast:
        ``False`` gathers the float64/complex128 tables (bit-identical to
        the legacy path); ``True`` gathers the complex64/float32 variants.
    arena:
        The :class:`repro.arena.ArenaPool` holding the accumulator and
        scratch buffers; a private throw-away pool is used when ``None``.

    Returns
    -------
    numpy.ndarray
        The ``(B, K, M, M)`` Givens accumulator *view into the arena*; its
        first ``N_SS`` columns are ``V~``.  The buffer is reused by the next
        call with the same arena -- copy out (or consume immediately, e.g.
        via :func:`repro.datasets.features.FeatureExtractor.transform_accumulator`)
        before then.
    """
    from repro.feedback.quantization import trig_lut_for

    q_phi = np.asarray(q_phi)
    q_psi = np.asarray(q_psi)
    _validate_codeword_batch(q_phi, q_psi, num_tx, num_streams)
    if arena is None:
        arena = ArenaPool()
    exp_phi, cos_table, sin_table = trig_lut_for(config).tables(fast)
    cdtype = exp_phi.dtype
    rdtype = cos_table.dtype

    batch, num_sub = q_phi.shape[:2]
    m = num_tx
    accumulator = arena.get(("givens", "acc"), (batch, num_sub, m, m), dtype=cdtype)
    accumulator[...] = 0
    phase_full = arena.get(("givens", "phase"), (batch, num_sub, m - 1), dtype=cdtype)
    cos_buf = arena.get(("givens", "cos"), (batch, num_sub), dtype=rdtype)
    sin_buf = arena.get(("givens", "sin"), (batch, num_sub), dtype=rdtype)
    old_i_full = arena.get(("givens", "old_i"), (batch, num_sub, m), dtype=cdtype)
    mixed_full = arena.get(("givens", "mixed"), (batch, num_sub, m), dtype=cdtype)

    phi_cursor = 0
    psi_cursor = 0
    limit = min(num_streams, m - 1)
    for i in range(limit):
        num_phi = m - 1 - i
        phases = phase_full[..., :num_phi]
        np.take(exp_phi, q_phi[..., phi_cursor : phi_cursor + num_phi], out=phases)
        phi_cursor += num_phi
        if i == 0:
            # D_1 times the identity: the phases land on the diagonal.
            for j in range(num_phi):
                accumulator[..., j, j] = phases[..., j]
            accumulator[..., m - 1, m - 1] = 1.0
        else:
            # Column j is filled down to row j <= M-2 here, so row M-1 of
            # the scaled block is still structurally zero and can be skipped.
            block = accumulator[..., : m - 1, i : m - 1]
            np.multiply(block, phases[..., np.newaxis, :], out=block)
        for l in range(i + 1, m):
            np.take(cos_table, q_psi[..., psi_cursor], out=cos_buf)
            np.take(sin_table, q_psi[..., psi_cursor], out=sin_buf)
            psi_cursor += 1
            rows = slice(0, l + 1)
            col_i = accumulator[..., rows, i]
            col_l = accumulator[..., rows, l]
            old_i = old_i_full[..., : l + 1]
            mixed = mixed_full[..., : l + 1]
            np.copyto(old_i, col_i)
            cos_psi = cos_buf[..., np.newaxis]
            sin_psi = sin_buf[..., np.newaxis]
            np.multiply(col_i, cos_psi, out=col_i)
            np.multiply(col_l, sin_psi, out=mixed)
            np.add(col_i, mixed, out=col_i)  # cos*col_i + sin*col_l
            np.multiply(col_l, cos_psi, out=col_l)
            np.multiply(old_i, sin_psi, out=old_i)
            np.subtract(col_l, old_i, out=col_l)  # -sin*col_i + cos*col_l
    return accumulator


@hot_path
def reconstruct_v_matrices_quantized(
    q_phi: np.ndarray,
    q_psi: np.ndarray,
    config: "QuantizationConfig",
    num_tx: int,
    num_streams: int,
    *,
    fast: bool = False,
    arena: Optional[ArenaPool] = None,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Rebuild a ``(B, K, M, N_SS)`` batch of ``V~`` straight from codewords.

    Equivalent to :func:`repro.feedback.quantization.dequantize_angles_batch`
    followed by :func:`reconstruct_v_matrices` -- bit-identical with
    ``fast=False``, complex64 with ``fast=True`` -- but trig-free and
    allocation-free in steady state (see
    :func:`reconstruct_accumulator_quantized`).  The result is copied out of
    the arena accumulator; pass ``out`` to reuse a caller-owned buffer.
    """
    accumulator = reconstruct_accumulator_quantized(
        q_phi, q_psi, config, num_tx, num_streams, fast=fast, arena=arena
    )
    if out is None:
        # The result escapes the arena (the accumulator is scratch), so
        # this one allocation is unavoidable without a caller-owned out=.
        out = np.empty(
            accumulator.shape[:2] + (num_tx, num_streams), dtype=accumulator.dtype
        )
    np.copyto(out, accumulator[..., :num_streams])
    return out


def stack_feedback_angles(
    angles: Sequence[FeedbackAngles],
) -> Tuple[np.ndarray, np.ndarray, int, int]:
    """Stack per-feedback angles into ``(B, K, n_angles)`` batch arrays.

    All feedbacks must share the same ``(K, M, N_SS)`` geometry; mixed
    geometries must be grouped by the caller (see
    :class:`repro.core.engine.InferenceEngine`).

    Returns
    -------
    (phi, psi, num_tx, num_streams):
        Stacked angle arrays plus the shared matrix dimensions, ready for
        :func:`reconstruct_v_matrices`.
    """
    if not angles:
        raise GivensError("cannot stack an empty list of feedback angles")
    first = angles[0]
    for item in angles[1:]:
        if (
            item.num_tx != first.num_tx
            or item.num_streams != first.num_streams
            or item.num_subcarriers != first.num_subcarriers
        ):
            raise GivensError(
                "all feedbacks in a batch must share the same (K, M, N_SS) "
                "geometry"
            )
    phi = np.stack([item.phi for item in angles], axis=0)
    psi = np.stack([item.psi for item in angles], axis=0)
    return phi, psi, first.num_tx, first.num_streams


def compression_error(v_matrix: np.ndarray, reconstructed: np.ndarray) -> np.ndarray:
    """Per-entry reconstruction error between ``V~`` and the original ``V``.

    The comparison removes the (untransmitted) per-column phase of the last
    row of ``V`` before differencing, since ``V = V~ D~`` by construction.

    Returns
    -------
    numpy.ndarray
        Absolute error per entry, shape ``(K, M, N_SS)``.
    """
    v_matrix = np.asarray(v_matrix, dtype=complex)
    if v_matrix.shape != reconstructed.shape:
        raise GivensError("v_matrix and reconstructed must have the same shape")
    num_tx = v_matrix.shape[1]
    last_row_phase = np.angle(v_matrix[:, num_tx - 1, :])
    normalised = v_matrix * np.exp(-1j * last_row_phase)[:, np.newaxis, :]
    return np.abs(normalised - reconstructed)
