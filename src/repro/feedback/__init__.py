"""Compressed beamforming feedback substrate (IEEE 802.11ac/ax).

Implements the channel-sounding feedback path the paper exploits:

* :mod:`repro.feedback.givens` -- Algorithm 1 of the paper: decomposition of
  the beamforming matrix ``V_k`` into the ``phi``/``psi`` Givens-rotation
  angles, and the reconstruction of ``V~_k`` from those angles (Eq. 7).
* :mod:`repro.feedback.quantization` -- standard-compliant quantisation of
  the angles (Eq. 8) with ``b_phi`` / ``b_psi`` bits.
* :mod:`repro.feedback.frames` -- bit packing of the angles into a VHT
  compressed-beamforming action frame and the corresponding parser (what a
  monitor-mode observer such as Wireshark sees).
* :mod:`repro.feedback.capture` -- a simulated monitor-mode capture of the
  sounding exchange between an AP and its beamformees.
"""

from repro.feedback.givens import (
    FeedbackAngles,
    compress_v_matrix,
    reconstruct_v_matrix,
    reconstruct_v_matrices,
    stack_feedback_angles,
    angle_counts,
)
from repro.feedback.quantization import (
    QuantizationConfig,
    quantize_angles,
    dequantize_angles,
    dequantize_angles_batch,
    stack_quantized_angles,
    QuantizedAngles,
)
from repro.feedback.frames import (
    VhtMimoControl,
    FeedbackFrame,
    pack_feedback_frame,
    parse_feedback_frame,
)
from repro.feedback.capture import MonitorCapture, SoundingSimulator, CapturedFeedback
from repro.feedback.he_feedback import HeFeedbackConfig, he_feedback_roundtrip

__all__ = [
    "FeedbackAngles",
    "compress_v_matrix",
    "reconstruct_v_matrix",
    "reconstruct_v_matrices",
    "stack_feedback_angles",
    "angle_counts",
    "QuantizationConfig",
    "quantize_angles",
    "dequantize_angles",
    "dequantize_angles_batch",
    "stack_quantized_angles",
    "QuantizedAngles",
    "VhtMimoControl",
    "FeedbackFrame",
    "pack_feedback_frame",
    "parse_feedback_frame",
    "MonitorCapture",
    "SoundingSimulator",
    "CapturedFeedback",
    "HeFeedbackConfig",
    "he_feedback_roundtrip",
]
