"""VHT compressed beamforming frame packing and parsing.

The beamformee packs the quantised feedback angles into a *VHT Compressed
Beamforming* action frame.  The frame is transmitted unencrypted, so a
monitor-mode observer (Wireshark in the paper) can read:

* the **VHT MIMO control field**: number of columns (``N_SS``), number of
  rows (``M``), channel bandwidth and the codebook (i.e. ``b_phi``/``b_psi``),
* the **beamforming report**: the angle codewords, ``b_phi``/``b_psi`` bits
  each, packed little-endian bit-first in the standard transmission order
  (per sub-carrier: all angles of that sub-carrier).

This module implements a faithful (if simplified) binary layout plus the
parser DeepCSI's observer uses, so the whole pipeline exercises a realistic
capture path: angles -> bytes on air -> parsed bytes -> reconstructed ``V~``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.feedback.givens import FeedbackAngles, angle_counts
from repro.feedback.quantization import (
    QuantizationConfig,
    QuantizedAngles,
    dequantize_angles,
)

#: Frame-format magic marker (not part of the standard; guards the parser).
_FRAME_MAGIC = 0xBF
#: Map bandwidth in MHz <-> 2-bit field value used in the control field.
_BANDWIDTH_CODES = {20: 0, 40: 1, 80: 2, 160: 3}
_BANDWIDTH_FROM_CODE = {code: mhz for mhz, code in _BANDWIDTH_CODES.items()}


class FrameError(ValueError):
    """Raised when a feedback frame cannot be packed or parsed."""


@dataclass(frozen=True)
class VhtMimoControl:
    """Subset of the VHT MIMO control field relevant to DeepCSI.

    Attributes
    ----------
    num_columns:
        ``N_SS`` - number of columns of the beamforming matrix.
    num_rows:
        ``M`` - number of rows of the beamforming matrix.
    bandwidth_mhz:
        Channel bandwidth the feedback refers to.
    codebook:
        ``0`` for (b_psi, b_phi) = (5, 7), ``1`` for (7, 9); MU-MIMO feedback
        uses codebook 1 in the paper's testbed.
    num_subcarriers:
        Number of sub-carriers carried in the report.
    """

    num_columns: int
    num_rows: int
    bandwidth_mhz: int
    codebook: int
    num_subcarriers: int

    def __post_init__(self) -> None:
        if not 1 <= self.num_columns <= 8:
            raise FrameError("num_columns must be in 1..8")
        if not 2 <= self.num_rows <= 8:
            raise FrameError("num_rows must be in 2..8")
        if self.bandwidth_mhz not in _BANDWIDTH_CODES:
            raise FrameError(f"unsupported bandwidth {self.bandwidth_mhz} MHz")
        if self.codebook not in (0, 1):
            raise FrameError("codebook must be 0 or 1")
        if self.num_subcarriers < 1:
            raise FrameError("num_subcarriers must be >= 1")

    @property
    def quantization(self) -> QuantizationConfig:
        """Quantisation configuration implied by the codebook bit."""
        if self.codebook == 0:
            return QuantizationConfig(b_phi=7, b_psi=5)
        return QuantizationConfig(b_phi=9, b_psi=7)


@dataclass(frozen=True)
class FeedbackFrame:
    """A captured compressed-beamforming frame.

    Attributes
    ----------
    source_address:
        MAC address of the beamformee that sent the feedback.
    destination_address:
        MAC address of the beamformer (the AP under authentication).
    timestamp_s:
        Capture timestamp.
    payload:
        Raw frame bytes (control field + angle report).
    """

    source_address: str
    destination_address: str
    timestamp_s: float
    payload: bytes


class _BitWriter:
    """Append integers as fixed-width little-endian bit fields."""

    def __init__(self) -> None:
        self._bits: list = []

    def write(self, value: int, width: int) -> None:
        if value < 0 or value >= (1 << width):
            raise FrameError(f"value {value} does not fit in {width} bits")
        for bit in range(width):
            self._bits.append((value >> bit) & 1)

    def to_bytes(self) -> bytes:
        data = bytearray()
        for start in range(0, len(self._bits), 8):
            byte = 0
            for offset, bit in enumerate(self._bits[start : start + 8]):
                byte |= bit << offset
            data.append(byte)
        return bytes(data)


class _BitReader:
    """Read fixed-width little-endian bit fields from a byte string."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._cursor = 0

    def read(self, width: int) -> int:
        value = 0
        for bit in range(width):
            index = self._cursor + bit
            byte_index, bit_index = divmod(index, 8)
            if byte_index >= len(self._data):
                raise FrameError("frame truncated while reading angle report")
            value |= ((self._data[byte_index] >> bit_index) & 1) << bit
        self._cursor += width
        return value


def pack_feedback_frame(
    quantized: QuantizedAngles, control: VhtMimoControl
) -> bytes:
    """Serialise a quantised feedback into frame bytes.

    The layout is: one magic byte, the control field (5 bytes), then the
    angle report: for every sub-carrier, the angles in standard transmission
    order, ``b_phi``/``b_psi`` bits each.
    """
    if control.num_rows != quantized.num_tx:
        raise FrameError("control.num_rows must match the quantised feedback")
    if control.num_columns != quantized.num_streams:
        raise FrameError("control.num_columns must match the quantised feedback")
    if control.num_subcarriers != quantized.num_subcarriers:
        raise FrameError("control.num_subcarriers must match the quantised feedback")
    expected_cfg = control.quantization
    if (expected_cfg.b_phi, expected_cfg.b_psi) != (
        quantized.config.b_phi,
        quantized.config.b_psi,
    ):
        raise FrameError("codebook bit inconsistent with the quantisation config")

    writer = _BitWriter()
    writer.write(_FRAME_MAGIC, 8)
    writer.write(control.num_columns - 1, 3)
    writer.write(control.num_rows - 1, 3)
    writer.write(_BANDWIDTH_CODES[control.bandwidth_mhz], 2)
    writer.write(control.codebook, 1)
    writer.write(control.num_subcarriers, 12)
    writer.write(0, 3)  # reserved padding to a byte boundary

    n_phi, n_psi = angle_counts(control.num_rows, control.num_columns)
    b_phi, b_psi = quantized.config.b_phi, quantized.config.b_psi
    for k in range(quantized.num_subcarriers):
        phi_cursor = 0
        psi_cursor = 0
        limit = min(control.num_columns, control.num_rows - 1)
        for i in range(limit):
            for _ in range(control.num_rows - 1 - i):
                writer.write(int(quantized.q_phi[k, phi_cursor]), b_phi)
                phi_cursor += 1
            for _ in range(control.num_rows - 1 - i):
                writer.write(int(quantized.q_psi[k, psi_cursor]), b_psi)
                psi_cursor += 1
        if phi_cursor != n_phi or psi_cursor != n_psi:  # pragma: no cover
            raise FrameError("internal error: angle count mismatch while packing")
    return writer.to_bytes()


def parse_feedback_frame(payload: bytes) -> Tuple[VhtMimoControl, QuantizedAngles]:
    """Parse frame bytes back into the control field and angle codewords."""
    reader = _BitReader(payload)
    magic = reader.read(8)
    if magic != _FRAME_MAGIC:
        raise FrameError("not a compressed beamforming frame (bad magic)")
    num_columns = reader.read(3) + 1
    num_rows = reader.read(3) + 1
    bandwidth_mhz = _BANDWIDTH_FROM_CODE[reader.read(2)]
    codebook = reader.read(1)
    num_subcarriers = reader.read(12)
    reader.read(3)  # reserved

    control = VhtMimoControl(
        num_columns=num_columns,
        num_rows=num_rows,
        bandwidth_mhz=bandwidth_mhz,
        codebook=codebook,
        num_subcarriers=num_subcarriers,
    )
    config = control.quantization
    n_phi, n_psi = angle_counts(num_rows, num_columns)
    q_phi = np.zeros((num_subcarriers, n_phi), dtype=int)
    q_psi = np.zeros((num_subcarriers, n_psi), dtype=int)
    for k in range(num_subcarriers):
        phi_cursor = 0
        psi_cursor = 0
        limit = min(num_columns, num_rows - 1)
        for i in range(limit):
            for _ in range(num_rows - 1 - i):
                q_phi[k, phi_cursor] = reader.read(config.b_phi)
                phi_cursor += 1
            for _ in range(num_rows - 1 - i):
                q_psi[k, psi_cursor] = reader.read(config.b_psi)
                psi_cursor += 1

    quantized = QuantizedAngles(
        q_phi=q_phi,
        q_psi=q_psi,
        config=config,
        num_tx=num_rows,
        num_streams=num_columns,
    )
    return control, quantized


def frame_to_angles(payload: bytes) -> FeedbackAngles:
    """Parse a frame and de-quantise its angles in one step."""
    _, quantized = parse_feedback_frame(payload)
    return dequantize_angles(quantized)


def frame_size_bytes(control: VhtMimoControl) -> int:
    """Size of a packed frame for the given control configuration [bytes]."""
    n_phi, n_psi = angle_counts(control.num_rows, control.num_columns)
    config = control.quantization
    header_bits = 8 + 3 + 3 + 2 + 1 + 12 + 3
    report_bits = control.num_subcarriers * (
        n_phi * config.b_phi + n_psi * config.b_psi
    )
    total_bits = header_bits + report_bits
    return (total_bits + 7) // 8
