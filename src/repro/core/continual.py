"""Lifelong (continual) fingerprint learning.

The paper's concluding remarks propose accumulating knowledge as the
beamformer moves through the environment instead of retraining from scratch.
This module implements a simple but complete version of that extension:

* :class:`ReplayBuffer` -- a bounded, class-balanced reservoir of past
  feedback samples.
* :class:`ContinualDeepCsi` -- wraps a :class:`~repro.core.classifier.DeepCsiClassifier`
  and exposes ``observe()``: every batch of newly captured feedback is mixed
  with replayed samples and used to fine-tune the existing model, which
  counteracts catastrophic forgetting of earlier channel conditions.
* :func:`evaluate_forgetting` -- measures how much accuracy on earlier
  conditions is lost after adapting to new ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.classifier import DeepCsiClassifier
from repro.core.evaluation import ClassificationReport
from repro.datasets.containers import FeedbackSample
from repro.nn.training import History


class ContinualLearningError(ValueError):
    """Raised for invalid continual-learning usage."""


class ReplayBuffer:
    """Bounded, class-balanced reservoir of past feedback samples.

    Reservoir sampling is applied per class so that rare modules are not
    evicted by frequent ones; the buffer is what the fine-tuning batches are
    mixed with to avoid catastrophic forgetting.
    """

    def __init__(self, capacity: int = 512, seed: int = 0) -> None:
        if capacity < 1:
            raise ContinualLearningError("capacity must be >= 1")
        self.capacity = capacity
        self._rng = np.random.default_rng(seed)
        self._per_class: Dict[int, List[FeedbackSample]] = {}
        self._seen: Dict[int, int] = {}

    def __len__(self) -> int:
        return sum(len(samples) for samples in self._per_class.values())

    @property
    def classes(self) -> List[int]:
        """Module identifiers currently represented in the buffer."""
        return sorted(self._per_class)

    def _per_class_capacity(self, num_classes: int) -> int:
        return max(1, self.capacity // max(num_classes, 1))

    def add(self, samples: Sequence[FeedbackSample]) -> None:
        """Insert samples, evicting uniformly at random when a class is full."""
        for sample in samples:
            bucket = self._per_class.setdefault(sample.module_id, [])
            self._seen[sample.module_id] = self._seen.get(sample.module_id, 0) + 1
            limit = self._per_class_capacity(len(self._per_class))
            if len(bucket) < limit:
                bucket.append(sample)
            else:
                # Reservoir sampling keeps each seen sample with equal probability.
                index = int(self._rng.integers(0, self._seen[sample.module_id]))
                if index < limit:
                    bucket[index] = sample
        self._rebalance()

    def _rebalance(self) -> None:
        limit = self._per_class_capacity(len(self._per_class))
        for module_id, bucket in self._per_class.items():
            if len(bucket) > limit:
                keep = self._rng.choice(len(bucket), size=limit, replace=False)
                self._per_class[module_id] = [bucket[i] for i in sorted(keep)]

    def sample(self, count: int) -> List[FeedbackSample]:
        """Draw up to ``count`` samples, spread as evenly as possible over classes."""
        if count < 0:
            raise ContinualLearningError("count must be non-negative")
        if not self._per_class or count == 0:
            return []
        drawn: List[FeedbackSample] = []
        classes = self.classes
        per_class = max(1, count // len(classes))
        for module_id in classes:
            bucket = self._per_class[module_id]
            take = min(per_class, len(bucket))
            indices = self._rng.choice(len(bucket), size=take, replace=False)
            drawn.extend(bucket[i] for i in indices)
        self._rng.shuffle(drawn)
        return drawn[:count] if len(drawn) > count else drawn

    def all_samples(self) -> List[FeedbackSample]:
        """Every sample currently stored in the buffer."""
        result: List[FeedbackSample] = []
        for bucket in self._per_class.values():
            result.extend(bucket)
        return result


@dataclass
class ContinualConfig:
    """Hyper-parameters of the continual-learning loop.

    Attributes
    ----------
    replay_capacity:
        Size of the replay buffer.
    replay_ratio:
        Number of replayed samples per new sample in a fine-tuning batch.
    fine_tune_epochs:
        Epochs per ``observe()`` call.
    learning_rate:
        Fine-tuning learning rate (lower than the initial training rate).
    seed:
        Seed of the replay buffer.
    """

    replay_capacity: int = 512
    replay_ratio: float = 1.0
    fine_tune_epochs: int = 3
    learning_rate: float = 2e-4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.replay_capacity < 1:
            raise ContinualLearningError("replay_capacity must be >= 1")
        if self.replay_ratio < 0:
            raise ContinualLearningError("replay_ratio must be non-negative")
        if self.fine_tune_epochs < 1:
            raise ContinualLearningError("fine_tune_epochs must be >= 1")
        if self.learning_rate <= 0:
            raise ContinualLearningError("learning_rate must be positive")


class ContinualDeepCsi:
    """Replay-based continual learning on top of a trained classifier."""

    def __init__(
        self,
        classifier: DeepCsiClassifier,
        config: Optional[ContinualConfig] = None,
    ) -> None:
        self.classifier = classifier
        self.config = config if config is not None else ContinualConfig()
        self.buffer = ReplayBuffer(
            capacity=self.config.replay_capacity, seed=self.config.seed
        )
        self.num_updates = 0

    def bootstrap(self, samples: Sequence[FeedbackSample]) -> History:
        """Initial training phase; also seeds the replay buffer."""
        if not samples:
            raise ContinualLearningError("cannot bootstrap on an empty sample list")
        history = self.classifier.fit(list(samples))
        self.buffer.add(samples)
        return history

    def observe(self, samples: Sequence[FeedbackSample]) -> History:
        """Adapt the model to newly captured feedback.

        The new samples are mixed with ``replay_ratio`` times as many
        replayed samples before fine-tuning, then added to the buffer.
        """
        if not samples:
            raise ContinualLearningError("cannot observe an empty sample list")
        replay_count = int(round(self.config.replay_ratio * len(samples)))
        mixed = list(samples) + self.buffer.sample(replay_count)
        history = self.classifier.fine_tune(
            mixed,
            epochs=self.config.fine_tune_epochs,
            learning_rate=self.config.learning_rate,
        )
        self.buffer.add(samples)
        self.num_updates += 1
        return history

    def evaluate(
        self, samples: Sequence[FeedbackSample], label: str = ""
    ) -> ClassificationReport:
        """Accuracy of the current model on labelled samples."""
        return self.classifier.evaluate(list(samples), label=label)


@dataclass(frozen=True)
class ForgettingReport:
    """Accuracy on an earlier condition before and after adaptation.

    Attributes
    ----------
    before:
        Accuracy on the reference samples before adapting to the new data.
    after:
        Accuracy on the same reference samples after adaptation.
    forgetting:
        ``before - after`` (positive means knowledge was lost).
    """

    before: float
    after: float

    @property
    def forgetting(self) -> float:
        """Accuracy lost on the earlier condition."""
        return self.before - self.after


def evaluate_forgetting(
    learner: ContinualDeepCsi,
    reference_samples: Sequence[FeedbackSample],
    new_samples: Sequence[FeedbackSample],
) -> ForgettingReport:
    """Measure catastrophic forgetting caused by one adaptation step."""
    if not reference_samples or not new_samples:
        raise ContinualLearningError("both sample lists must be non-empty")
    before = learner.evaluate(reference_samples).accuracy
    learner.observe(new_samples)
    after = learner.evaluate(reference_samples).accuracy
    return ForgettingReport(before=before, after=after)
