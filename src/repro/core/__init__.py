"""DeepCSI core: the paper's primary contribution.

* :mod:`repro.core.model` -- the DeepCSI CNN architecture of Fig. 4
  (convolution stack, spatial attention, dense head with alpha-dropout).
* :mod:`repro.core.classifier` -- the high-level fingerprinting classifier:
  feature extraction + normalisation + training + inference + persistence.
* :mod:`repro.core.offset_correction` -- the phase-offset cleaning baseline
  the paper compares against (Fig. 16).
* :mod:`repro.core.evaluation` -- accuracy / confusion-matrix utilities and
  textual report rendering.
* :mod:`repro.core.engine` -- the batched streaming inference engine every
  consumer of per-frame classification routes through.
* :mod:`repro.core.service` -- the sharded multi-worker streaming service:
  a pool of engines behind bounded async ingestion queues, with stable
  source-to-shard routing and aggregated throughput counters.
* :mod:`repro.core.backends` -- the pluggable execution backends of the
  service: in-process worker threads, or worker processes fed through
  shared-memory ring buffers (:mod:`repro.core.transport`).
* :mod:`repro.core.pipeline` -- an end-to-end authentication pipeline built
  on the monitor-mode capture path.
* :mod:`repro.core.lifecycle` -- always-on model lifecycle: versioned
  weight snapshots for the zero-downtime swap and the per-source drift
  monitor.

See ``docs/ARCHITECTURE.md`` for the layer diagram and the data flow from
the PHY simulation down to the CLI.
"""

from repro.core.model import DeepCsiModelConfig, build_deepcsi_model, PAPER_MODEL_CONFIG
from repro.core.classifier import DeepCsiClassifier, ClassifierConfig
from repro.core.offset_correction import correct_phase_offsets, correct_sample
from repro.core.evaluation import (
    confusion_matrix,
    accuracy_score,
    per_class_accuracy,
    ClassificationReport,
    evaluate_predictions,
    format_confusion_matrix,
)
from repro.core.engine import (
    UNKNOWN_MODULE_ID,
    EngineResult,
    EngineStats,
    InferenceEngine,
    MajorityVerdict,
)
from repro.core.backends import BACKEND_NAMES
from repro.core.service import (
    ServiceError,
    ServiceStats,
    StreamingService,
    resolve_num_workers,
    shard_for_source,
)
from repro.core.pipeline import AuthenticationPipeline, AuthenticationResult
from repro.core.lifecycle import (
    DriftConfig,
    DriftMonitor,
    DriftStatus,
    LifecycleError,
    ModelVersion,
)
from repro.core.openset import (
    OpenSetAuthenticator,
    OpenSetMetrics,
    OpenSetPolicy,
    calibrate_threshold_far,
    evaluate_open_set,
)
from repro.core.continual import ContinualDeepCsi, ContinualConfig, ReplayBuffer

__all__ = [
    "DeepCsiModelConfig",
    "build_deepcsi_model",
    "PAPER_MODEL_CONFIG",
    "DeepCsiClassifier",
    "ClassifierConfig",
    "correct_phase_offsets",
    "correct_sample",
    "confusion_matrix",
    "accuracy_score",
    "per_class_accuracy",
    "ClassificationReport",
    "evaluate_predictions",
    "format_confusion_matrix",
    "EngineResult",
    "EngineStats",
    "InferenceEngine",
    "MajorityVerdict",
    "UNKNOWN_MODULE_ID",
    "BACKEND_NAMES",
    "ServiceError",
    "ServiceStats",
    "StreamingService",
    "resolve_num_workers",
    "shard_for_source",
    "AuthenticationPipeline",
    "AuthenticationResult",
    "DriftConfig",
    "DriftMonitor",
    "DriftStatus",
    "LifecycleError",
    "ModelVersion",
    "OpenSetAuthenticator",
    "OpenSetMetrics",
    "OpenSetPolicy",
    "calibrate_threshold_far",
    "evaluate_open_set",
    "ContinualDeepCsi",
    "ContinualConfig",
    "ReplayBuffer",
]
