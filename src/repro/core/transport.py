"""Shared-memory frame transport for the process execution backend.

When :class:`~repro.core.service.StreamingService` runs its shards in child
*processes*, every sniffed observation has to cross a process boundary on
the hot path.  Pickling a NumPy ``V~`` matrix per frame through a
``multiprocessing.Queue`` would pay serialisation, copy and pipe-write costs
per frame - exactly the per-frame dispatch overhead the batched engine was
built to avoid.

:class:`ShmRing` is a bounded single-producer/single-consumer ring buffer in
a ``multiprocessing.shared_memory`` segment:

* the ring is divided into fixed-size **slots**; one record occupies
  ``ceil(record_bytes / slot_bytes)`` *consecutive* slots, so arbitrarily
  large frames are supported without per-record allocation;
* each record is a compact binary layout (:data:`_HEADER` + UTF-8 source
  address + raw payload bytes): the dequantised angle/``V~`` payload is
  copied **once** from producer memory into the shared segment and **once**
  out on the consumer side - no pickling anywhere on the frame path;
* free/filled accounting uses two ``multiprocessing`` semaphores, which
  double as the backpressure mechanism: a full ring blocks the producer
  exactly like the bounded ``queue.Queue`` of the thread backend;
* the producer-side blocking wait takes a ``liveness`` callback so a dead
  consumer process surfaces as an error instead of a hang.

Record kinds:

========================  ====================================================
:data:`RECORD_VTILDE`     a ready ``V~`` array (dtype + shape + raw bytes)
:data:`RECORD_FRAME`      a raw VHT action-frame payload (quantised angles)
:data:`RECORD_FLUSH`      control: flush the shard engine, ack with the
                          echoed ``sequence`` (used as a flush generation id)
:data:`RECORD_STOP`       control: flush, ack and exit the worker loop
:data:`RECORD_CODEWORDS`  integer angle codewords + quantisation config
:data:`RECORD_MODEL_SWAP` control: install a serialised
                          :class:`~repro.core.lifecycle.ModelVersion`, ack
                          with the version number
========================  ====================================================

The payload of :data:`RECORD_FRAME` is the packed angle report exactly as it
was on the air, so the worker-side engine parses and de-quantises it through
the *same* batched Givens path as the thread backend - the bitwise
verdict-parity invariant holds by construction.

:data:`RECORD_CODEWORDS` is the codeword-native wire form: a 7-byte config
subheader (:data:`_CODEWORD_HEADER`: ``b_phi``, ``b_psi``, ``strict``,
``num_tx``, ``num_streams`` as ``u8`` and ``num_subcarriers`` as ``u16``)
followed by the little-endian ``int16`` ``q_phi`` then ``q_psi`` codeword
planes (their per-sub-carrier counts follow from the geometry via
:func:`repro.feedback.givens.angle_counts`).  For the paper's 80 MHz
``(K, M, N_SS) = (234, 3, 2)`` geometry that is 2 815 payload bytes against
the 22 464 bytes of the equivalent complex128 ``V~`` record - about 8x less
ring traffic - and reconstruction moves behind the ring onto the worker
side, where the engine's codeword fast path consumes the codewords without
ever materialising the angles.

:data:`RECORD_MODEL_SWAP` rides the same ring as the frames it must be
ordered against: because the ring is strictly FIFO, every frame enqueued
*before* the swap record is classified by the old model version and every
frame after it by the new one -- the per-shard epoch barrier of the
zero-downtime swap needs no extra synchronisation.  Its payload is a small
subheader (:data:`_SWAP_HEADER`: version ``u32``, has-threshold flag ``u8``,
threshold ``f64``, blob length ``u32``) followed by the ``.npz`` blob of
:meth:`~repro.core.lifecycle.ModelVersion.to_bytes`; the blob (hundreds of
KB for the paper model) simply spans as many consecutive slots as it needs.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Callable, Optional, Tuple

import numpy as np

from repro.feedback.givens import angle_counts
from repro.feedback.quantization import QuantizationConfig, QuantizedAngles


class TransportError(RuntimeError):
    """Raised for invalid transport configurations or records."""


#: Record kinds (see the module docstring).
RECORD_VTILDE = 0
RECORD_FRAME = 1
RECORD_FLUSH = 2
RECORD_STOP = 3
RECORD_CODEWORDS = 4
RECORD_MODEL_SWAP = 5

_CONTROL_KINDS = (RECORD_FLUSH, RECORD_STOP)

#: Fixed record header: kind (u8), ndim (u8), dtype string (8 bytes,
#: NUL-padded, e.g. ``<c16``), source length (u16), payload bytes (u32),
#: service-wide sequence (u64), capture timestamp (f64), shape (4 x u32).
#: ``<`` keeps the layout packed and platform-independent.
_HEADER = struct.Struct("<BB8sHIQd4I")

#: Largest ndarray rank the header's fixed shape field can carry.
MAX_NDIM = 4

#: Subheader of :data:`RECORD_CODEWORDS` payloads: b_phi (u8), b_psi (u8),
#: strict flag (u8), num_tx (u8), num_streams (u8), num_subcarriers (u16).
_CODEWORD_HEADER = struct.Struct("<BBBBBH")

#: Wire dtype of the codeword planes (matches ``quantize_phi``'s output).
_CODEWORD_DTYPE = np.dtype("<i2")

#: Subheader of :data:`RECORD_MODEL_SWAP` payloads: version (u32),
#: has-threshold flag (u8), open-set threshold (f64), blob length (u32).
_SWAP_HEADER = struct.Struct("<IBdI")


@dataclass(frozen=True)
class ModelSwap:
    """Decoded payload of one :data:`RECORD_MODEL_SWAP` record.

    The transport layer stays ignorant of the blob's structure: ``blob`` is
    the opaque :meth:`~repro.core.lifecycle.ModelVersion.to_bytes` archive,
    while ``version`` and ``open_set_threshold`` are lifted into the
    subheader so the consumer can ack (and the lifecycle layer cross-check)
    without decoding the weights first.
    """

    version: int
    blob: bytes
    open_set_threshold: Optional[float] = None


@dataclass(frozen=True)
class Record:
    """One decoded transport record."""

    kind: int
    sequence: int
    source: str
    timestamp_s: float
    #: Raw frame payload for :data:`RECORD_FRAME` records.
    payload: bytes = b""
    #: Decoded array for :data:`RECORD_VTILDE` records.
    array: Optional[np.ndarray] = None
    #: Decoded codewords for :data:`RECORD_CODEWORDS` records.
    quantized: Optional[QuantizedAngles] = None
    #: Decoded swap payload for :data:`RECORD_MODEL_SWAP` records.
    swap: Optional[ModelSwap] = None


def pack_array_record(
    sequence: int, source: str, timestamp_s: float, array: np.ndarray
) -> bytes:
    """Encode a ready ``V~`` array as one :data:`RECORD_VTILDE` record."""
    if array.ndim > MAX_NDIM:
        raise TransportError(
            f"cannot transport a {array.ndim}-dimensional array "
            f"(the record header carries at most {MAX_NDIM} dimensions)"
        )
    dtype_str = array.dtype.str.encode("ascii")
    if len(dtype_str) > 8:
        raise TransportError(f"unsupported dtype {array.dtype!r}")
    payload = np.ascontiguousarray(array).tobytes()
    return _pack(
        RECORD_VTILDE,
        array.ndim,
        dtype_str,
        source,
        payload,
        sequence,
        timestamp_s,
        array.shape,
    )


def pack_frame_record(
    sequence: int, source: str, timestamp_s: float, payload: bytes
) -> bytes:
    """Encode a raw feedback-frame payload as one :data:`RECORD_FRAME`."""
    return _pack(
        RECORD_FRAME, 0, b"", source, bytes(payload), sequence, timestamp_s, ()
    )


def pack_codeword_record(
    sequence: int, source: str, timestamp_s: float, quantized: QuantizedAngles
) -> bytes:
    """Encode quantised angle codewords as one :data:`RECORD_CODEWORDS`.

    The record carries the raw ``int16`` codeword planes plus the
    quantisation config and matrix geometry -- everything the worker-side
    engine needs to run the codeword-native reconstruction fast path.
    """
    num_sub = quantized.num_subcarriers
    for value, limit, what in (
        (quantized.config.b_phi, 0xFF, "b_phi"),
        (quantized.config.b_psi, 0xFF, "b_psi"),
        (quantized.num_tx, 0xFF, "num_tx"),
        (quantized.num_streams, 0xFF, "num_streams"),
        (num_sub, 0xFFFF, "num_subcarriers"),
    ):
        if not 0 <= value <= limit:
            raise TransportError(
                f"{what}={value} does not fit the codeword record subheader"
            )
    subheader = _CODEWORD_HEADER.pack(
        quantized.config.b_phi,
        quantized.config.b_psi,
        1 if quantized.config.strict else 0,
        quantized.num_tx,
        quantized.num_streams,
        num_sub,
    )
    q_phi = np.ascontiguousarray(quantized.q_phi, dtype=_CODEWORD_DTYPE)
    q_psi = np.ascontiguousarray(quantized.q_psi, dtype=_CODEWORD_DTYPE)
    payload = subheader + q_phi.tobytes() + q_psi.tobytes()
    return _pack(
        RECORD_CODEWORDS, 0, b"", source, payload, sequence, timestamp_s, ()
    )


def pack_model_swap_record(
    sequence: int,
    version: int,
    blob: bytes,
    open_set_threshold: Optional[float] = None,
) -> bytes:
    """Encode a model-version install as one :data:`RECORD_MODEL_SWAP`.

    ``version`` must fit the subheader's ``u32``; the blob is carried
    verbatim and may span as many ring slots as it needs.
    """
    if not 0 < version <= 0xFFFFFFFF:
        raise TransportError(
            f"model version {version} does not fit the swap record subheader"
        )
    subheader = _SWAP_HEADER.pack(
        version,
        0 if open_set_threshold is None else 1,
        0.0 if open_set_threshold is None else float(open_set_threshold),
        len(blob),
    )
    return _pack(
        RECORD_MODEL_SWAP, 0, b"", "", subheader + bytes(blob), sequence, 0.0, ()
    )


def pack_control_record(kind: int, sequence: int = 0) -> bytes:
    """Encode a flush/stop control token (``sequence`` echoes back in acks)."""
    if kind not in _CONTROL_KINDS:
        raise TransportError(f"not a control record kind: {kind}")
    return _pack(kind, 0, b"", "", b"", sequence, 0.0, ())


def _pack(
    kind: int,
    ndim: int,
    dtype_str: bytes,
    source: str,
    payload: bytes,
    sequence: int,
    timestamp_s: float,
    shape: Tuple[int, ...],
) -> bytes:
    source_bytes = source.encode("utf-8")
    if len(source_bytes) > 0xFFFF:
        raise TransportError("source address does not fit the record header")
    padded_shape = tuple(shape) + (0,) * (MAX_NDIM - len(shape))
    header = _HEADER.pack(
        kind,
        ndim,
        dtype_str,
        len(source_bytes),
        len(payload),
        sequence,
        timestamp_s,
        *padded_shape,
    )
    return header + source_bytes + payload


def unpack_record(data: bytes) -> Record:
    """Decode one record produced by the ``pack_*`` helpers."""
    (
        kind,
        ndim,
        dtype_str,
        source_len,
        payload_len,
        sequence,
        timestamp_s,
        *shape,
    ) = _HEADER.unpack_from(data)
    offset = _HEADER.size
    source = bytes(data[offset : offset + source_len]).decode("utf-8")
    offset += source_len
    payload = bytes(data[offset : offset + payload_len])
    if kind == RECORD_VTILDE:
        dtype = np.dtype(dtype_str.rstrip(b"\x00").decode("ascii"))
        array = np.frombuffer(bytearray(payload), dtype=dtype).reshape(
            shape[:ndim]
        )
        return Record(kind, sequence, source, timestamp_s, array=array)
    if kind == RECORD_CODEWORDS:
        return Record(
            kind,
            sequence,
            source,
            timestamp_s,
            quantized=_unpack_codewords(payload),
        )
    if kind == RECORD_MODEL_SWAP:
        return Record(
            kind,
            sequence,
            source,
            timestamp_s,
            swap=_unpack_model_swap(payload),
        )
    return Record(kind, sequence, source, timestamp_s, payload=payload)


def _unpack_model_swap(payload: bytes) -> ModelSwap:
    if len(payload) < _SWAP_HEADER.size:
        raise TransportError("truncated model-swap record subheader")
    version, has_threshold, threshold, blob_len = _SWAP_HEADER.unpack_from(payload)
    blob = payload[_SWAP_HEADER.size :]
    if len(blob) != blob_len:
        raise TransportError(
            f"model-swap record blob has {len(blob)} bytes, expected {blob_len}"
        )
    return ModelSwap(
        version=version,
        blob=bytes(blob),
        open_set_threshold=float(threshold) if has_threshold else None,
    )


def _unpack_codewords(payload: bytes) -> QuantizedAngles:
    if len(payload) < _CODEWORD_HEADER.size:
        raise TransportError("truncated codeword record subheader")
    b_phi, b_psi, strict, num_tx, num_streams, num_sub = _CODEWORD_HEADER.unpack_from(
        payload
    )
    config = QuantizationConfig(b_phi=b_phi, b_psi=b_psi, strict=bool(strict))
    n_phi, n_psi = angle_counts(num_tx, num_streams)
    expected = _CODEWORD_HEADER.size + 2 * num_sub * (n_phi + n_psi)
    if len(payload) != expected:
        raise TransportError(
            f"codeword record payload has {len(payload)} bytes, expected "
            f"{expected} for (K, M, N_SS) = ({num_sub}, {num_tx}, {num_streams})"
        )
    offset = _CODEWORD_HEADER.size
    phi_bytes = 2 * num_sub * n_phi
    # bytearray copies keep the arrays writable and independent of the
    # transport buffer; astype normalises the wire byte order to native.
    q_phi = (
        np.frombuffer(bytearray(payload[offset : offset + phi_bytes]), dtype=_CODEWORD_DTYPE)
        .reshape(num_sub, n_phi)
        .astype(np.int16, copy=False)
    )
    offset += phi_bytes
    q_psi = (
        np.frombuffer(bytearray(payload[offset:]), dtype=_CODEWORD_DTYPE)
        .reshape(num_sub, n_psi)
        .astype(np.int16, copy=False)
    )
    return QuantizedAngles(
        q_phi=q_phi,
        q_psi=q_psi,
        config=config,
        num_tx=num_tx,
        num_streams=num_streams,
    )


class ShmRing:
    """Bounded SPSC ring of fixed-size slots in shared memory.

    Parameters
    ----------
    context:
        The ``multiprocessing`` context whose semaphores synchronise the two
        sides (must be the same context the worker process is spawned from).
    num_slots:
        Ring capacity in slots; doubles as the backpressure bound (the
        process-backend analogue of the thread backend's ``queue_depth``).
    slot_bytes:
        Slot size.  Records larger than one slot span consecutive slots; a
        record may use at most ``num_slots`` of them.

    Notes
    -----
    Exactly one producer (the service's router, serialised by a per-shard
    lock) and one consumer (the worker process) may use a ring.  The head
    and tail indices are private to their side; the semaphores carry all
    cross-process synchronisation, so no index ever needs to be shared.
    """

    def __init__(self, context: Any, num_slots: int, slot_bytes: int) -> None:
        if num_slots < 1:
            raise TransportError("num_slots must be >= 1")
        if slot_bytes < _HEADER.size:
            raise TransportError(
                f"slot_bytes must be >= the {_HEADER.size}-byte record header"
            )
        self.num_slots = num_slots
        self.slot_bytes = slot_bytes
        self._shm = shared_memory.SharedMemory(
            create=True, size=num_slots * slot_bytes
        )
        try:
            self._free_slots = context.Semaphore(num_slots)
            self._filled_records = context.Semaphore(0)
        except BaseException:
            # Semaphore construction can fail (e.g. the host's named-semaphore
            # quota); without this the freshly created segment would outlive
            # the process under /dev/shm.
            self._shm.close()
            self._shm.unlink()
            raise
        self._head = 0
        self._tail = 0
        self._closed = False
        self._owner = True

    @property
    def name(self) -> str:
        """Name of the underlying shared-memory segment."""
        return self._shm.name

    def slots_needed(self, record_bytes: int) -> int:
        return max(1, -(-record_bytes // self.slot_bytes))

    # ------------------------------------------------------------------ #
    # Producer side
    # ------------------------------------------------------------------ #
    def put(
        self,
        record: bytes,
        on_wait: Optional[Callable[[], None]] = None,
        liveness: Optional[Callable[[], None]] = None,
    ) -> None:
        """Write one record, blocking while the ring is full (backpressure).

        ``on_wait`` fires once if the call had to block (the service counts
        these as ``queue_full_waits``); ``liveness`` is polled while blocked
        so a dead consumer raises instead of deadlocking the producer.
        """
        needed = self.slots_needed(len(record))
        if needed > self.num_slots:
            raise TransportError(
                f"a {len(record)}-byte record needs {needed} slots but the "
                f"ring only has {self.num_slots}; raise queue_depth or "
                f"slot_bytes"
            )
        blocked = False
        for _ in range(needed):
            if self._free_slots.acquire(block=False):
                continue
            if not blocked:
                blocked = True
                if on_wait is not None:
                    on_wait()
            while not self._free_slots.acquire(timeout=0.1):
                if liveness is not None:
                    liveness()
        view = self._shm.buf
        offset = 0
        for index in range(needed):
            slot = (self._head + index) % self.num_slots
            chunk = record[offset : offset + self.slot_bytes]
            start = slot * self.slot_bytes
            view[start : start + len(chunk)] = chunk
            offset += len(chunk)
        self._head = (self._head + needed) % self.num_slots
        self._filled_records.release()

    # ------------------------------------------------------------------ #
    # Consumer side
    # ------------------------------------------------------------------ #
    def get(self) -> Record:
        """Read the next record (blocks until one is available)."""
        self._filled_records.acquire()
        view = self._shm.buf
        start = self._tail * self.slot_bytes
        _, _, _, source_len, payload_len, *_ = _HEADER.unpack_from(view, start)
        total = _HEADER.size + source_len + payload_len
        needed = self.slots_needed(total)
        data = bytearray(total)
        offset = 0
        for index in range(needed):
            slot = (self._tail + index) % self.num_slots
            take = min(self.slot_bytes, total - offset)
            begin = slot * self.slot_bytes
            data[offset : offset + take] = view[begin : begin + take]
            offset += take
        self._tail = (self._tail + needed) % self.num_slots
        for _ in range(needed):
            self._free_slots.release()
        return unpack_record(data)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Detach from the segment (either side; idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (creator side only; idempotent)."""
        self.close()
        if not self._owner:
            return
        self._owner = False
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    # ------------------------------------------------------------------ #
    # Pickling (spawn start-method fallback)
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        return {
            "num_slots": self.num_slots,
            "slot_bytes": self.slot_bytes,
            "shm_name": self._shm.name,
            "free_slots": self._free_slots,
            "filled_records": self._filled_records,
        }

    def __setstate__(self, state: dict) -> None:
        self.num_slots = state["num_slots"]
        self.slot_bytes = state["slot_bytes"]
        self._shm = shared_memory.SharedMemory(name=state["shm_name"])
        self._free_slots = state["free_slots"]
        self._filled_records = state["filled_records"]
        self._head = 0
        self._tail = 0
        self._closed = False
        self._owner = False


def segment_exists(name: str) -> bool:
    """Whether a shared-memory segment with ``name`` still exists.

    Used by the leak tests: after :meth:`ShmRing.unlink` this must be
    ``False`` for every ring the service created.
    """
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    segment.close()
    return True


__all__ = [
    "MAX_NDIM",
    "ModelSwap",
    "RECORD_CODEWORDS",
    "RECORD_FLUSH",
    "RECORD_FRAME",
    "RECORD_MODEL_SWAP",
    "RECORD_STOP",
    "RECORD_VTILDE",
    "Record",
    "ShmRing",
    "TransportError",
    "pack_array_record",
    "pack_codeword_record",
    "pack_control_record",
    "pack_frame_record",
    "pack_model_swap_record",
    "segment_exists",
    "unpack_record",
]
