"""Sharded multi-worker streaming service on top of the inference engine.

One :class:`~repro.core.engine.InferenceEngine` is a single-threaded hot
path.  The deployment scenario of the paper (an always-on monitor-mode
observer in a dense network) has to fingerprint the beamforming feedback of
*many* concurrent beamformees, so :class:`StreamingService` scales the engine
out:

* the service owns a pool of ``num_workers`` shards, each with its own
  private :class:`~repro.core.engine.InferenceEngine` (and its own copy of
  the classifier, so forward-pass activation caches are never shared between
  workers);
* every observation is routed to a shard by a *stable hash* of its source
  address (:func:`shard_for_source`).  One source never spans two shards,
  which preserves the per-source ring-buffer and majority-verdict semantics
  of the single engine exactly;
* **where the shards run is pluggable** (:mod:`repro.core.backends`):
  ``backend="threads"`` keeps them as worker threads in this process,
  ``backend="processes"`` moves each shard into a child process fed through
  a shared-memory ring buffer (:mod:`repro.core.transport`), which breaks
  the GIL ceiling on multi-core hosts;
* ingestion is asynchronous: :meth:`StreamingService.submit` enqueues the
  observation into the shard's bounded queue/ring and returns immediately.
  When a shard is full the submitter blocks (backpressure) instead of
  growing memory without bound; the number of such stalls is counted in
  :attr:`ServiceStats.queue_full_waits`;
* frame parsing, Givens reconstruction, feature extraction and the CNN
  forward all run on the workers, in micro-batches, exactly as in the
  single engine;
* :attr:`StreamingService.stats` aggregates the per-shard
  :class:`~repro.core.engine.EngineStats` into service-level throughput and
  latency counters (for process shards, from the consistent snapshots the
  workers ship with their results).

Because each shard batches the traffic of *all* the sources hashed to it,
the service amortises the per-batch cost across sources: many low-rate
beamformees together still produce full micro-batches.  With thread shards
the workers additionally overlap their BLAS-heavy CNN forwards on multi-core
hardware; with process shards the whole hot path (parsing, feature
extraction, NumPy dispatch) runs in parallel.

Typical usage::

    with StreamingService(classifier, num_workers=4, backend="processes") as service:
        for frame in sniffer:
            service.submit(frame)          # returns immediately; workers batch
        service.flush()                    # barrier: classify partial batches
        for result in service.collect():   # completed EngineResults
            ...
        print(service.verdict(source))     # same semantics as the engine
        print(service.stats.wall_frames_per_second)
"""

from __future__ import annotations

import os
import threading
import time
import zlib
from dataclasses import dataclass, field
from types import TracebackType
from typing import TYPE_CHECKING, Iterable, Iterator, List, Optional, Tuple, Union

from repro.core.backends import BACKEND_NAMES, WorkerFailure, make_backend
from repro.core.classifier import DeepCsiClassifier
from repro.core.engine import (
    ANONYMOUS_SOURCE,
    PRECISION_NAMES,
    EngineResult,
    EngineStats,
    MajorityVerdict,
    Observation,
)
from repro.core.lifecycle import DriftConfig, DriftStatus, LifecycleError, ModelVersion
from repro.core.openset import OpenSetAuthenticator, OpenSetPolicy
from repro.core.transport import TransportError
from repro.feedback.capture import CapturedFeedback
from repro.feedback.frames import FeedbackFrame

if TYPE_CHECKING:
    from repro.nn.compute import ComputeBackend


class ServiceError(RuntimeError):
    """Raised for invalid service usage or when a worker shard failed."""


#: Worker-pool size used when the heuristic has more cores than it needs.
DEFAULT_MAX_WORKERS = 4


def resolve_num_workers(
    num_workers: Optional[int],
    backend: str = "threads",
    cpu_count: Optional[int] = None,
) -> int:
    """Pick a worker count when the caller did not force one.

    An explicit ``num_workers`` is always honoured.  ``None`` applies a
    heuristic that must never pick a configuration slower than one worker:

    * On a **single core** every backend collapses to 1 shard.  Measured on
      the scaling bench, 4 *thread* shards are slower than 1 on one core
      (~8.9k vs ~10.5k frames/s): the GIL already serialises the shards, so
      extra shards only add queue handshakes and splinter the cross-source
      micro-batches; extra *process* shards likewise just time-slice one
      core while paying the transport copies.  1 shard keeps the full
      batch-amortisation win and nothing contends.
    * On multi-core hosts the pool grows with the cores (capped at
      :data:`DEFAULT_MAX_WORKERS`): thread shards overlap their BLAS calls,
      process shards parallelise the whole hot path.

    >>> resolve_num_workers(None, "threads", cpu_count=1)
    1
    >>> resolve_num_workers(None, "processes", cpu_count=8)
    4
    >>> resolve_num_workers(2, "threads", cpu_count=1)  # explicit wins
    2
    """
    if num_workers is not None:
        return num_workers
    cores = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    if cores <= 1:
        return 1
    return min(DEFAULT_MAX_WORKERS, cores)


def shard_for_source(source: str, num_shards: int) -> int:
    """Stable shard index of a source address.

    The index is ``crc32(source) % num_shards``: deterministic across runs,
    processes and platforms, so a given source address is always handled by
    the same shard (the sharding invariant the per-source ring buffers rely
    on).

    >>> shard_for_source("02:00:00:00:00:01", 4) == shard_for_source("02:00:00:00:00:01", 4)
    True
    >>> all(0 <= shard_for_source(f"02:00:00:00:00:{i:02x}", 4) < 4 for i in range(256))
    True
    """
    if num_shards < 1:
        raise ServiceError("num_shards must be >= 1")
    return zlib.crc32(source.encode("utf-8")) % num_shards


@dataclass(frozen=True)
class ServiceStats:
    """Aggregated throughput counters of one :class:`StreamingService`.

    A snapshot: reading :attr:`StreamingService.stats` sums the per-shard
    :class:`~repro.core.engine.EngineStats` at that instant.

    Attributes
    ----------
    num_workers:
        Number of worker shards.
    backend:
        Execution backend the shards run on (``threads`` or ``processes``).
    frames_in:
        Observations accepted by :meth:`StreamingService.submit`.
    frames_out:
        Observations classified by the worker engines so far.
    batches:
        Micro-batches processed across all shards.
    inference_seconds:
        Summed in-batch processing time of all shards (on multi-core
        hardware this exceeds the wall-clock time because shards overlap).
    queue_full_waits:
        Number of times a submitter blocked on a full shard queue/ring
        (backpressure events).
    wall_seconds:
        Wall-clock seconds since the service started.
    worker_stats:
        Per-shard :class:`~repro.core.engine.EngineStats` snapshots.
    open_set:
        Whether the shard engines run with an open-set policy.
    frames_rejected:
        Frames whose open-set score fell below the threshold, across shards.
    score_histogram:
        Element-wise sum of the shards' open-set score histograms (empty
        when the service runs closed-set).
    model_version:
        Version of the last successfully installed model snapshot (0 until
        the first :meth:`StreamingService.swap_model`).
    drift:
        Per-source :class:`~repro.core.lifecycle.DriftStatus` snapshots,
        sorted by source (empty when drift monitoring is off).
    """

    num_workers: int
    backend: str = "threads"
    #: Compute backend the shard engines run (``"fp64"`` = default path).
    compute: str = "fp64"
    #: Preprocessing precision of the shard engines (``"exact"``/``"fast"``).
    precision: str = "exact"
    frames_in: int = 0
    frames_out: int = 0
    batches: int = 0
    inference_seconds: float = 0.0
    queue_full_waits: int = 0
    wall_seconds: float = 0.0
    worker_stats: Tuple[EngineStats, ...] = ()
    open_set: bool = False
    frames_rejected: int = 0
    score_histogram: Tuple[int, ...] = ()
    model_version: int = 0
    drift: Tuple[DriftStatus, ...] = ()

    @property
    def frames_per_second(self) -> float:
        """Classified frames per second of summed shard inference time."""
        if self.inference_seconds <= 0.0:
            return 0.0
        return self.frames_out / self.inference_seconds

    @property
    def wall_frames_per_second(self) -> float:
        """Classified frames per wall-clock second of service uptime."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.frames_out / self.wall_seconds

    @property
    def mean_batch_size(self) -> float:
        """Average frames per micro-batch across all shards."""
        if self.batches == 0:
            return 0.0
        return self.frames_out / self.batches

    @property
    def rejection_rate(self) -> float:
        """Fraction of classified frames the open-set policy rejected."""
        if self.frames_out == 0:
            return 0.0
        return self.frames_rejected / self.frames_out

    @property
    def drifting_sources(self) -> Tuple[str, ...]:
        """Source addresses currently flagged by the drift monitor."""
        return tuple(status.source for status in self.drift if status.drifting)


class StreamingService:
    """Sharded multi-worker streaming classification service.

    Parameters
    ----------
    classifier:
        A trained (or loaded) :class:`~repro.core.classifier.DeepCsiClassifier`.
        Each shard works on a private copy, so results are bitwise identical
        to the single-engine path while the workers never share mutable
        model state.
    num_workers:
        Number of worker shards.  ``None`` (the default) applies
        :func:`resolve_num_workers`: 1 shard on a single core (where more
        shards are measurably *slower*), up to 4 on multi-core hosts.
    backend:
        ``"threads"`` (shards as worker threads, the default) or
        ``"processes"`` (shards as child processes fed through shared-memory
        ring buffers; see :mod:`repro.core.backends`).
    queue_depth:
        Bound of each shard's ingestion queue (thread backend) or
        shared-memory ring, in slots (process backend).  A full shard blocks
        the submitter (backpressure) instead of buffering without limit.
    batch_size / max_latency_frames / vote_window / max_sources:
        Forwarded to every shard's :class:`~repro.core.engine.InferenceEngine`.
        ``max_sources`` bounds the ring buffers *per shard*, so the service
        keeps at most ``num_workers * max_sources`` source windows alive.
    open_set:
        Optional open-set policy (an
        :class:`~repro.core.openset.OpenSetPolicy` or a calibrated
        :class:`~repro.core.openset.OpenSetAuthenticator`) forwarded to
        every shard engine: frames below the threshold are rejected and
        verdicts can resolve to
        :data:`~repro.core.engine.UNKNOWN_MODULE_ID`.
    drift:
        Optional :class:`~repro.core.lifecycle.DriftConfig` enabling
        per-source drift monitoring on every shard (surfaced in
        :attr:`ServiceStats.drift`).
    reject_streak:
        Consecutive most-recent rejections that force a source's verdict to
        UNKNOWN (see :class:`~repro.core.engine.SourceWindows`).
    slot_bytes:
        Process backend only: size of one shared-memory ring slot.  Records
        larger than a slot transparently span consecutive slots.
    compute:
        Optional compute backend (registry name or instance) attached to the
        classifier *before* the shards copy it, so every shard inherits the
        same prepared backend -- including the int8 quantised weights, which
        the process backend ships to its workers inside the classifier
        startup payload.  The ``int8`` backend must be calibrated first.
    precision:
        Preprocessing precision of every shard engine: ``"exact"`` (the
        default float64/complex128 LUT path, bitwise identical to the
        legacy dequantise+reconstruct pipeline) or ``"fast"``
        (float32/complex64 tables; pairs naturally with ``compute="fp32"``).
        Only affects quantised-codeword observations; ready ``V~`` arrays
        keep their own dtype.

    Notes
    -----
    The service starts its workers on construction and is also a context
    manager; leaving the ``with`` block calls :meth:`close`.

    Results become available asynchronously: :meth:`collect` pops whatever
    completed, :meth:`drain` is the synchronous convenience wrapper, and
    :meth:`flush` is the barrier that forces partial batches through.
    Completed results preserve the submission order *per source* (one source
    never spans two shards); results of different sources may interleave in
    any order.  :attr:`EngineResult.sequence` carries the service-wide
    submission index, so a caller that needs the global order can sort on it
    (:meth:`drain` already does).
    """

    def __init__(
        self,
        classifier: DeepCsiClassifier,
        num_workers: Optional[int] = None,
        queue_depth: int = 256,
        batch_size: int = 64,
        max_latency_frames: Optional[int] = None,
        vote_window: int = 16,
        max_sources: int = 1024,
        open_set: Optional[Union[OpenSetPolicy, OpenSetAuthenticator]] = None,
        drift: Optional[DriftConfig] = None,
        reject_streak: int = 3,
        backend: str = "threads",
        slot_bytes: Optional[int] = None,
        compute: Optional[Union[str, "ComputeBackend"]] = None,
        precision: str = "exact",
    ) -> None:
        if backend not in BACKEND_NAMES:
            raise ServiceError(
                f"unknown backend {backend!r}; expected one of {BACKEND_NAMES}"
            )
        if precision not in PRECISION_NAMES:
            raise ServiceError(
                f"unknown precision {precision!r}; expected one of {PRECISION_NAMES}"
            )
        if compute is not None:
            # Attach before the backend copies the classifier so every shard
            # inherits the prepared (possibly quantised) backend.
            classifier.set_compute(compute)
        self.compute_name = classifier.compute_name
        self.precision = precision
        num_workers = resolve_num_workers(num_workers, backend)
        if num_workers < 1:
            raise ServiceError("num_workers must be >= 1")
        if queue_depth < 1:
            raise ServiceError("queue_depth must be >= 1")
        if isinstance(open_set, OpenSetAuthenticator):
            # Reduce to the picklable plain-data policy before the shards
            # copy it (the authenticator drags the whole classifier along).
            open_set = open_set.policy()
        self.num_workers = num_workers
        self.queue_depth = queue_depth
        self.backend_name = backend
        self.open_set_enabled = open_set is not None
        self._closed = False
        self._frames_in = 0  # guarded-by: _submit_lock
        self._model_version = 0  # guarded-by: _swap_lock
        self._submit_lock = threading.Lock()
        self._swap_lock = threading.Lock()
        self._started_monotonic = time.monotonic()
        engine_kwargs = dict(
            batch_size=batch_size,
            max_latency_frames=max_latency_frames,
            vote_window=vote_window,
            max_sources=max_sources,
            open_set=open_set,
            drift=drift,
            reject_streak=reject_streak,
            precision=precision,
        )
        try:
            self._backend = make_backend(
                backend,
                classifier,
                num_workers,
                queue_depth,
                engine_kwargs,
                slot_bytes=slot_bytes,
            )
        except ValueError as error:
            raise ServiceError(str(error)) from error

    @property
    def _shards(self) -> list:
        """Shard handles of the underlying backend (tests/introspection)."""
        return self._backend.shards

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    @staticmethod
    def _source_key(observation: Observation, source: Optional[str]) -> str:
        """Resolve the routing key exactly like the engine resolves sources."""
        if source is not None:
            return source
        if isinstance(observation, (FeedbackFrame, CapturedFeedback)):
            return observation.source_address
        return ANONYMOUS_SOURCE

    def submit(self, observation: Observation, source: Optional[str] = None) -> None:
        """Enqueue one observation for asynchronous classification.

        Routes by the stable hash of the source address (frames and captured
        feedbacks carry their own, ``source`` overrides it) and returns as
        soon as the observation sits in the shard's queue/ring.  Blocks only
        when that shard is full (backpressure).

        Safe to call from several producer threads at once (the service-wide
        sequence stamp is taken under a lock, and sources on the same shard
        still serialise through that shard's queue).  :meth:`flush` and
        :meth:`close` are barriers over *prior* submissions only, so don't
        race them against in-flight :meth:`submit` calls.
        """
        self._check_usable()
        key = self._source_key(observation, source)
        shard_index = shard_for_source(key, self.num_workers)
        with self._submit_lock:
            sequence = self._frames_in
            self._frames_in += 1
        try:
            self._backend.submit(shard_index, sequence, observation, key)
        except WorkerFailure as failure:
            raise ServiceError(f"a worker shard failed: {failure}") from failure

    def flush(self) -> None:
        """Barrier: classify every queued observation, partial batches included.

        Returns once every shard has processed everything submitted before
        the call; the results are then available through :meth:`collect`.
        """
        self._check_usable()
        try:
            self._backend.flush()
        except WorkerFailure as failure:
            raise ServiceError(f"a worker shard failed: {failure}") from failure
        self._check_failure()

    def collect(self) -> List[EngineResult]:
        """Pop every result completed so far (per-source submission order)."""
        self._check_failure()
        return self._backend.poll()

    # ------------------------------------------------------------------ #
    # Model lifecycle
    # ------------------------------------------------------------------ #
    def swap_model(
        self,
        replacement: Union[DeepCsiClassifier, ModelVersion],
        open_set_threshold: Optional[float] = None,
    ) -> int:
        """Install new model weights into every running shard, zero-downtime.

        Accepts either a trained classifier (snapshotted here as the next
        :class:`~repro.core.lifecycle.ModelVersion`) or a pre-built version
        whose number must be exactly the service's current version + 1.

        The swap is an epoch barrier per shard, not service-wide: each shard
        flushes its buffered frames under the old weights at its own batch
        boundary (thread shards via a queued control token, process shards
        via a :data:`~repro.core.transport.RECORD_MODEL_SWAP` ring record
        that is FIFO-ordered against in-flight frames).  No frame is dropped,
        every frame is classified entirely by one version, and the
        ``model_version`` stamped on results/verdicts never decreases.

        ``open_set_threshold`` optionally re-calibrates the open-set policy
        together with the weights (ignored by closed-set shards).  Returns
        the installed version number.  Concurrent :meth:`submit` calls are
        safe; concurrent :meth:`swap_model` calls serialise.
        """
        self._check_usable()
        with self._swap_lock:
            next_version = self._model_version + 1
            if isinstance(replacement, ModelVersion):
                version = replacement
                if version.version != next_version:
                    raise ServiceError(
                        f"model version must be {next_version} (current + 1), "
                        f"got {version.version}"
                    )
                if open_set_threshold is not None:
                    version = ModelVersion(
                        version=version.version,
                        weights=version.weights,
                        compute=version.compute,
                        compute_state=version.compute_state,
                        open_set_threshold=float(open_set_threshold),
                    )
            else:
                try:
                    version = ModelVersion.from_classifier(
                        replacement, next_version, open_set_threshold
                    )
                except LifecycleError as error:
                    raise ServiceError(f"model swap failed: {error}") from error
            try:
                self._backend.swap(version)
            except (WorkerFailure, TransportError, LifecycleError) as error:
                raise ServiceError(f"model swap failed: {error}") from error
            self._check_failure()
            self._model_version = version.version
            return version.version

    def stream(
        self,
        observations: Iterable[Observation],
        source: Optional[str] = None,
    ) -> Iterator[EngineResult]:
        """Submit an iterable, yielding results as the workers complete them.

        The final partial batches are flushed when the iterable is
        exhausted, so every submitted observation yields a result.  Results
        arrive in per-shard completion order; sort on
        :attr:`EngineResult.sequence` for the global submission order.
        """
        for observation in observations:
            self.submit(observation, source=source)
            yield from self.collect()
        self.flush()
        yield from self.collect()

    def drain(
        self,
        observations: Iterable[Observation],
        source: Optional[str] = None,
    ) -> List[EngineResult]:
        """Classify a whole iterable and return results in submission order."""
        results = list(self.stream(observations, source=source))
        results.sort(key=lambda result: result.sequence)
        return results

    # ------------------------------------------------------------------ #
    # Verdicts and introspection
    # ------------------------------------------------------------------ #
    def verdict(self, source: Optional[str] = None) -> MajorityVerdict:
        """Windowed majority vote for one source (see the engine method).

        The vote runs over the single shard that owns the source, so it is
        identical to the verdict a single shared engine would produce for
        the same per-source result stream (the process backend answers it
        from a parent-side replica of the shard's result windows).
        """
        key = ANONYMOUS_SOURCE if source is None else source
        shard_index = shard_for_source(key, self.num_workers)
        return self._backend.verdict(shard_index, key)

    @property
    def sources(self) -> List[str]:
        """Sources with at least one classified observation, across shards."""
        return self._backend.sources()

    @property
    def model_version(self) -> int:
        """Version of the last successfully installed model snapshot."""
        with self._swap_lock:
            return int(self._model_version)

    def drift_snapshot(self) -> Tuple[DriftStatus, ...]:
        """Per-source drift state across shards, sorted by source address."""
        return self._backend.drift_snapshot()

    @property
    def stats(self) -> ServiceStats:
        """Aggregated service-level counters (a point-in-time snapshot)."""
        worker_stats = self._backend.worker_stats()
        with self._submit_lock:
            frames_in = self._frames_in
        with self._swap_lock:
            model_version = self._model_version
        histograms = [stats.score_histogram for stats in worker_stats if stats.score_histogram]
        score_histogram: Tuple[int, ...] = ()
        if histograms:
            score_histogram = tuple(sum(column) for column in zip(*histograms))
        return ServiceStats(
            num_workers=self.num_workers,
            backend=self.backend_name,
            compute=self.compute_name,
            precision=self.precision,
            frames_in=frames_in,
            frames_out=sum(stats.frames_out for stats in worker_stats),
            batches=sum(stats.batches for stats in worker_stats),
            inference_seconds=sum(stats.inference_seconds for stats in worker_stats),
            queue_full_waits=self._backend.queue_full_waits,
            wall_seconds=time.monotonic() - self._started_monotonic,
            worker_stats=tuple(worker_stats),
            open_set=self.open_set_enabled,
            frames_rejected=sum(stats.frames_rejected for stats in worker_stats),
            score_histogram=score_histogram,
            model_version=model_version,
            drift=self._backend.drift_snapshot(),
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Flush every shard, stop the workers and release their resources.

        Idempotent; after closing, :meth:`submit` and :meth:`flush` raise
        :class:`ServiceError`.  Completed results remain available through
        :meth:`collect`.  The process backend additionally joins its child
        processes and unlinks every shared-memory segment, crash or not.
        """
        if self._closed:
            return
        self._closed = True
        self._backend.close()

    def __enter__(self) -> "StreamingService":
        return self

    def __exit__(
        self,
        exc_type: Optional[type],
        exc_value: Optional[BaseException],
        traceback: Optional[TracebackType],
    ) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _check_usable(self) -> None:
        if self._closed:
            raise ServiceError("the service is closed")
        self._check_failure()

    def _check_failure(self) -> None:
        try:
            self._backend.raise_if_failed()
        except WorkerFailure as failure:
            raise ServiceError(f"a worker shard failed: {failure}") from failure
