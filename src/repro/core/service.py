"""Sharded multi-worker streaming service on top of the inference engine.

One :class:`~repro.core.engine.InferenceEngine` is a single-threaded hot
path.  The deployment scenario of the paper (an always-on monitor-mode
observer in a dense network) has to fingerprint the beamforming feedback of
*many* concurrent beamformees, so :class:`StreamingService` scales the engine
out:

* the service owns a pool of ``num_workers`` shards, each with its own
  private :class:`~repro.core.engine.InferenceEngine` (and its own deep copy
  of the classifier, so forward-pass activation caches are never shared
  between threads);
* every observation is routed to a shard by a *stable hash* of its source
  address (:func:`shard_for_source`).  One source never spans two shards,
  which preserves the per-source ring-buffer and majority-verdict semantics
  of the single engine exactly;
* ingestion is asynchronous: :meth:`StreamingService.submit` enqueues the
  observation into the shard's bounded queue and returns immediately.  When
  a queue is full the submitter blocks (backpressure) instead of growing
  memory without bound; the number of such stalls is counted in
  :attr:`ServiceStats.queue_full_waits`;
* frame parsing, Givens reconstruction, feature extraction and the CNN
  forward all run on the worker threads, in micro-batches, exactly as in the
  single engine;
* :attr:`StreamingService.stats` aggregates the per-shard
  :class:`~repro.core.engine.EngineStats` into service-level throughput and
  latency counters.

Because each shard batches the traffic of *all* the sources hashed to it,
the service amortises the per-batch cost across sources: many low-rate
beamformees together still produce full micro-batches.  On multi-core
hardware the worker threads additionally overlap the BLAS-heavy CNN forwards
of different shards.

Typical usage::

    with StreamingService(classifier, num_workers=4) as service:
        for frame in sniffer:
            service.submit(frame)          # returns immediately; workers batch
        service.flush()                    # barrier: classify partial batches
        for result in service.collect():   # completed EngineResults
            ...
        print(service.verdict(source))     # same semantics as the engine
        print(service.stats.wall_frames_per_second)
"""

from __future__ import annotations

import copy
import queue
import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Deque, Iterable, Iterator, List, Optional, Tuple

from repro.core.classifier import DeepCsiClassifier
from repro.core.engine import (
    ANONYMOUS_SOURCE,
    EngineResult,
    EngineStats,
    InferenceEngine,
    MajorityVerdict,
    Observation,
)
from repro.feedback.capture import CapturedFeedback
from repro.feedback.frames import FeedbackFrame


class ServiceError(RuntimeError):
    """Raised for invalid service usage or when a worker shard failed."""


def shard_for_source(source: str, num_shards: int) -> int:
    """Stable shard index of a source address.

    The index is ``crc32(source) % num_shards``: deterministic across runs,
    processes and platforms, so a given source address is always handled by
    the same shard (the sharding invariant the per-source ring buffers rely
    on).

    >>> shard_for_source("02:00:00:00:00:01", 4) == shard_for_source("02:00:00:00:00:01", 4)
    True
    >>> all(0 <= shard_for_source(f"02:00:00:00:00:{i:02x}", 4) < 4 for i in range(256))
    True
    """
    if num_shards < 1:
        raise ServiceError("num_shards must be >= 1")
    return zlib.crc32(source.encode("utf-8")) % num_shards


@dataclass(frozen=True)
class ServiceStats:
    """Aggregated throughput counters of one :class:`StreamingService`.

    A snapshot: reading :attr:`StreamingService.stats` sums the per-shard
    :class:`~repro.core.engine.EngineStats` at that instant.

    Attributes
    ----------
    num_workers:
        Number of worker shards.
    frames_in:
        Observations accepted by :meth:`StreamingService.submit`.
    frames_out:
        Observations classified by the worker engines so far.
    batches:
        Micro-batches processed across all shards.
    inference_seconds:
        Summed in-batch processing time of all shards (on multi-core
        hardware this exceeds the wall-clock time because shards overlap).
    queue_full_waits:
        Number of times a submitter blocked on a full shard queue
        (backpressure events).
    wall_seconds:
        Wall-clock seconds since the service started.
    worker_stats:
        Per-shard :class:`~repro.core.engine.EngineStats` snapshots.
    """

    num_workers: int
    frames_in: int = 0
    frames_out: int = 0
    batches: int = 0
    inference_seconds: float = 0.0
    queue_full_waits: int = 0
    wall_seconds: float = 0.0
    worker_stats: Tuple[EngineStats, ...] = ()

    @property
    def frames_per_second(self) -> float:
        """Classified frames per second of summed shard inference time."""
        if self.inference_seconds <= 0.0:
            return 0.0
        return self.frames_out / self.inference_seconds

    @property
    def wall_frames_per_second(self) -> float:
        """Classified frames per wall-clock second of service uptime."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.frames_out / self.wall_seconds

    @property
    def mean_batch_size(self) -> float:
        """Average frames per micro-batch across all shards."""
        if self.batches == 0:
            return 0.0
        return self.frames_out / self.batches


@dataclass
class _FlushRequest:
    """Control token: flush the shard engine, then signal ``done``."""

    done: threading.Event = field(default_factory=threading.Event)
    stop: bool = False


@dataclass
class _Shard:
    """One worker: a private engine, its queue and its bookkeeping."""

    index: int
    engine: InferenceEngine
    queue: "queue.Queue"
    lock: threading.Lock = field(default_factory=threading.Lock)
    #: Global sequence numbers of the observations handed to the engine, in
    #: order; popped as the engine emits their results.
    sequences: Deque[int] = field(default_factory=deque)
    thread: Optional[threading.Thread] = None


class StreamingService:
    """Sharded multi-worker streaming classification service.

    Parameters
    ----------
    classifier:
        A trained (or loaded) :class:`~repro.core.classifier.DeepCsiClassifier`.
        Each shard works on a private deep copy, so results are bitwise
        identical to the single-engine path while the threads never share
        mutable model state.
    num_workers:
        Number of worker shards (and threads).
    queue_depth:
        Bound of each shard's ingestion queue.  A full queue blocks the
        submitter (backpressure) instead of buffering without limit.
    batch_size / max_latency_frames / vote_window / max_sources:
        Forwarded to every shard's :class:`~repro.core.engine.InferenceEngine`.
        ``max_sources`` bounds the ring buffers *per shard*, so the service
        keeps at most ``num_workers * max_sources`` source windows alive.

    Notes
    -----
    The service starts its worker threads on construction and is also a
    context manager; leaving the ``with`` block calls :meth:`close`.

    Results become available asynchronously: :meth:`collect` pops whatever
    completed, :meth:`drain` is the synchronous convenience wrapper, and
    :meth:`flush` is the barrier that forces partial batches through.
    Completed results preserve the submission order *per source* (one source
    never spans two shards); results of different sources may interleave in
    any order.  :attr:`EngineResult.sequence` carries the service-wide
    submission index, so a caller that needs the global order can sort on it
    (:meth:`drain` already does).
    """

    def __init__(
        self,
        classifier: DeepCsiClassifier,
        num_workers: int = 4,
        queue_depth: int = 256,
        batch_size: int = 64,
        max_latency_frames: Optional[int] = None,
        vote_window: int = 16,
        max_sources: int = 1024,
    ) -> None:
        if num_workers < 1:
            raise ServiceError("num_workers must be >= 1")
        if queue_depth < 1:
            raise ServiceError("queue_depth must be >= 1")
        self.num_workers = num_workers
        self.queue_depth = queue_depth
        self._shards: List[_Shard] = []
        self._completed: Deque[EngineResult] = deque()
        self._failure: Optional[BaseException] = None
        self._closed = False
        self._frames_in = 0
        self._queue_full_waits = 0
        self._submit_lock = threading.Lock()
        self._started_monotonic = time.monotonic()
        for index in range(num_workers):
            engine = InferenceEngine(
                copy.deepcopy(classifier),
                batch_size=batch_size,
                max_latency_frames=max_latency_frames,
                vote_window=vote_window,
                max_sources=max_sources,
            )
            shard = _Shard(
                index=index, engine=engine, queue=queue.Queue(maxsize=queue_depth)
            )
            shard.thread = threading.Thread(
                target=self._worker_loop,
                args=(shard,),
                name=f"repro-shard-{index}",
                daemon=True,
            )
            self._shards.append(shard)
        for shard in self._shards:
            shard.thread.start()

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    @staticmethod
    def _source_key(observation: Observation, source: Optional[str]) -> str:
        """Resolve the routing key exactly like the engine resolves sources."""
        if source is not None:
            return source
        if isinstance(observation, (FeedbackFrame, CapturedFeedback)):
            return observation.source_address
        return ANONYMOUS_SOURCE

    def submit(self, observation: Observation, source: Optional[str] = None) -> None:
        """Enqueue one observation for asynchronous classification.

        Routes by the stable hash of the source address (frames and captured
        feedbacks carry their own, ``source`` overrides it) and returns as
        soon as the observation sits in the shard's queue.  Blocks only when
        that queue is full (backpressure).

        Safe to call from several producer threads at once (the service-wide
        sequence stamp is taken under a lock, and sources on the same shard
        still serialise through that shard's queue).  :meth:`flush` and
        :meth:`close` are barriers over *prior* submissions only, so don't
        race them against in-flight :meth:`submit` calls.
        """
        self._check_usable()
        key = self._source_key(observation, source)
        shard = self._shards[shard_for_source(key, self.num_workers)]
        with self._submit_lock:
            item = (self._frames_in, observation, key)
            self._frames_in += 1
        try:
            shard.queue.put_nowait(item)
        except queue.Full:
            with self._submit_lock:
                self._queue_full_waits += 1
            shard.queue.put(item)

    def flush(self) -> None:
        """Barrier: classify every queued observation, partial batches included.

        Returns once every shard has processed everything submitted before
        the call; the results are then available through :meth:`collect`.
        """
        self._check_usable()
        requests = []
        for shard in self._shards:
            request = _FlushRequest()
            shard.queue.put(request)
            requests.append(request)
        for request in requests:
            request.done.wait()
        self._check_failure()

    def collect(self) -> List[EngineResult]:
        """Pop every result completed so far (per-source submission order)."""
        self._check_failure()
        results: List[EngineResult] = []
        while True:
            try:
                results.append(self._completed.popleft())
            except IndexError:
                return results

    def stream(
        self,
        observations: Iterable[Observation],
        source: Optional[str] = None,
    ) -> Iterator[EngineResult]:
        """Submit an iterable, yielding results as the workers complete them.

        The final partial batches are flushed when the iterable is
        exhausted, so every submitted observation yields a result.  Results
        arrive in per-shard completion order; sort on
        :attr:`EngineResult.sequence` for the global submission order.
        """
        for observation in observations:
            self.submit(observation, source=source)
            yield from self.collect()
        self.flush()
        yield from self.collect()

    def drain(
        self,
        observations: Iterable[Observation],
        source: Optional[str] = None,
    ) -> List[EngineResult]:
        """Classify a whole iterable and return results in submission order."""
        results = list(self.stream(observations, source=source))
        results.sort(key=lambda result: result.sequence)
        return results

    # ------------------------------------------------------------------ #
    # Verdicts and introspection
    # ------------------------------------------------------------------ #
    def verdict(self, source: Optional[str] = None) -> MajorityVerdict:
        """Windowed majority vote for one source (see the engine method).

        The vote runs on the single shard that owns the source, so it is
        identical to the verdict a single shared engine would produce for
        the same per-source result stream.
        """
        key = ANONYMOUS_SOURCE if source is None else source
        shard = self._shards[shard_for_source(key, self.num_workers)]
        with shard.lock:
            return shard.engine.verdict(key)

    @property
    def sources(self) -> List[str]:
        """Sources with at least one classified observation, across shards."""
        names: List[str] = []
        for shard in self._shards:
            with shard.lock:
                names.extend(shard.engine.sources)
        return sorted(names)

    @property
    def stats(self) -> ServiceStats:
        """Aggregated service-level counters (a point-in-time snapshot)."""
        worker_stats = []
        for shard in self._shards:
            with shard.lock:
                worker_stats.append(replace(shard.engine.stats))
        return ServiceStats(
            num_workers=self.num_workers,
            frames_in=self._frames_in,
            frames_out=sum(stats.frames_out for stats in worker_stats),
            batches=sum(stats.batches for stats in worker_stats),
            inference_seconds=sum(stats.inference_seconds for stats in worker_stats),
            queue_full_waits=self._queue_full_waits,
            wall_seconds=time.monotonic() - self._started_monotonic,
            worker_stats=tuple(worker_stats),
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Flush every shard, stop the worker threads and join them.

        Idempotent; after closing, :meth:`submit` and :meth:`flush` raise
        :class:`ServiceError`.  Completed results remain available through
        :meth:`collect`.
        """
        if self._closed:
            return
        self._closed = True
        requests = []
        for shard in self._shards:
            request = _FlushRequest(stop=True)
            shard.queue.put(request)
            requests.append(request)
        for request in requests:
            request.done.wait()
        for shard in self._shards:
            shard.thread.join()

    def __enter__(self) -> "StreamingService":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _check_usable(self) -> None:
        if self._closed:
            raise ServiceError("the service is closed")
        self._check_failure()

    def _check_failure(self) -> None:
        if self._failure is not None:
            raise ServiceError(
                f"a worker shard failed: {self._failure}"
            ) from self._failure

    def _worker_loop(self, shard: _Shard) -> None:
        while True:
            # Drain greedily: after the blocking get, grab everything already
            # queued so one thread wake-up handles a whole run of items (far
            # fewer queue handshakes and context switches per frame).
            items = [shard.queue.get()]
            while True:
                try:
                    items.append(shard.queue.get_nowait())
                except queue.Empty:
                    break
            for item in items:
                if self._handle(shard, item):
                    return

    def _handle(self, shard: _Shard, item: object) -> bool:
        """Process one queued item; returns True when the worker must stop."""
        if isinstance(item, _FlushRequest):
            try:
                if self._failure is None:
                    with shard.lock:
                        results = shard.engine.flush()
                    self._emit(shard, results)
            except BaseException as exc:  # noqa: BLE001 - reported at collect()
                self._failure = exc
                shard.sequences.clear()
            finally:
                item.done.set()
            return item.stop
        if self._failure is not None:
            # A shard already failed: keep draining so submitters never
            # deadlock on a full queue, but stop doing work.
            return False
        sequence, observation, source = item
        try:
            shard.sequences.append(sequence)
            with shard.lock:
                results = shard.engine.submit(observation, source=source)
            self._emit(shard, results)
        except BaseException as exc:  # noqa: BLE001 - reported at collect()
            self._failure = exc
            shard.sequences.clear()
        return False

    def _emit(self, shard: _Shard, results: List[EngineResult]) -> None:
        """Re-stamp engine-local sequences with the service-wide ones."""
        for result in results:
            self._completed.append(
                replace(result, sequence=shard.sequences.popleft())
            )
