"""The DeepCSI learning architecture (Fig. 4 of the paper).

The network consists of ``N_conv`` blocks of ``Conv2D -> SELU -> MaxPool``
operating along the sub-carrier axis, a spatial-attention block with a skip
connection, a flattening stage and ``N_dense`` dense layers with SELU
activations and alpha-dropout in between, followed by a final dense layer
producing one logit per module.

With the paper's hyper-parameters (five convolutional layers with 128
filters, kernels ``(1,7) x3``, ``(1,5)``, ``(1,3)``, dense layers of 128 and
64 units, 234 sub-carriers, one spatial stream, 2M-1 = 5 I/Q channels and 10
classes) the model has 489,305 trainable parameters, matching the 489,301
quoted by the paper up to the accounting of the attention-convolution bias.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.nn.attention import SpatialAttention
from repro.nn.layers import (
    AlphaDropout,
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    Selu,
)
from repro.nn.model import Sequential


class ModelConfigError(ValueError):
    """Raised for inconsistent architecture configurations."""


@dataclass(frozen=True)
class DeepCsiModelConfig:
    """Hyper-parameters of the DeepCSI CNN.

    Attributes
    ----------
    num_filters:
        Number of filters of every convolutional layer.
    kernel_widths:
        Width (along the sub-carrier axis) of each convolutional kernel; the
        length of this tuple is ``N_conv``.
    pool_width:
        Width of the max-pooling window applied after every convolution.
    dense_units:
        Sizes of the hidden dense layers (``N_dense`` entries).
    dropout_retain:
        Retain probabilities of the alpha-dropout layers interposed between
        the dense layers; must have the same length as ``dense_units``.
    attention_kernel_width:
        Kernel width of the spatial-attention convolution.
    use_attention:
        Whether to include the spatial-attention block; disabling it is the
        ablation of the paper's architectural choice (Fig. 4).
    """

    num_filters: int = 128
    kernel_widths: Tuple[int, ...] = (7, 7, 7, 5, 3)
    pool_width: int = 2
    dense_units: Tuple[int, ...] = (128, 64)
    dropout_retain: Tuple[float, ...] = (0.5, 0.2)
    attention_kernel_width: int = 7
    use_attention: bool = True

    def __post_init__(self) -> None:
        if self.num_filters < 1:
            raise ModelConfigError("num_filters must be >= 1")
        if not self.kernel_widths:
            raise ModelConfigError("at least one convolutional layer is required")
        if any(k < 1 for k in self.kernel_widths):
            raise ModelConfigError("kernel widths must be >= 1")
        if self.pool_width < 1:
            raise ModelConfigError("pool_width must be >= 1")
        if not self.dense_units:
            raise ModelConfigError("at least one dense layer is required")
        if len(self.dropout_retain) != len(self.dense_units):
            raise ModelConfigError(
                "dropout_retain must have one entry per dense layer"
            )
        if any(not 0.0 < p <= 1.0 for p in self.dropout_retain):
            raise ModelConfigError("dropout retain probabilities must be in (0, 1]")

    @property
    def num_conv_layers(self) -> int:
        """Number of convolutional layers (``N_conv``)."""
        return len(self.kernel_widths)

    @property
    def num_dense_layers(self) -> int:
        """Number of hidden dense layers (``N_dense``)."""
        return len(self.dense_units)

    def with_conv_layers(self, num_layers: int) -> "DeepCsiModelConfig":
        """Copy of the config with a different number of conv layers.

        The kernel-width schedule is extended by repeating the first kernel
        width (the Fig. 7a sweep varies the layer count, not the schedule).
        """
        if num_layers < 1:
            raise ModelConfigError("num_layers must be >= 1")
        widths = list(self.kernel_widths)
        if num_layers <= len(widths):
            new_widths = tuple(widths[-num_layers:])
        else:
            new_widths = tuple([widths[0]] * (num_layers - len(widths)) + widths)
        return DeepCsiModelConfig(
            num_filters=self.num_filters,
            kernel_widths=new_widths,
            pool_width=self.pool_width,
            dense_units=self.dense_units,
            dropout_retain=self.dropout_retain,
            attention_kernel_width=self.attention_kernel_width,
            use_attention=self.use_attention,
        )

    def with_filters(self, num_filters: int) -> "DeepCsiModelConfig":
        """Copy of the config with a different filter count (Fig. 7b sweep)."""
        return DeepCsiModelConfig(
            num_filters=num_filters,
            kernel_widths=self.kernel_widths,
            pool_width=self.pool_width,
            dense_units=self.dense_units,
            dropout_retain=self.dropout_retain,
            attention_kernel_width=self.attention_kernel_width,
            use_attention=self.use_attention,
        )

    def without_attention(self) -> "DeepCsiModelConfig":
        """Copy of the config with the spatial-attention block removed."""
        return DeepCsiModelConfig(
            num_filters=self.num_filters,
            kernel_widths=self.kernel_widths,
            pool_width=self.pool_width,
            dense_units=self.dense_units,
            dropout_retain=self.dropout_retain,
            attention_kernel_width=self.attention_kernel_width,
            use_attention=False,
        )


#: The hyper-parameters selected by the paper (Section V).
PAPER_MODEL_CONFIG = DeepCsiModelConfig()

#: A reduced configuration for CPU-bound (numpy) training runs.
FAST_MODEL_CONFIG = DeepCsiModelConfig(
    num_filters=24,
    kernel_widths=(7, 5, 3),
    pool_width=2,
    dense_units=(48, 32),
    dropout_retain=(0.7, 0.5),
    attention_kernel_width=5,
)


def _pooled_width(width: int, pool_width: int, num_pools: int) -> int:
    """Spatial width after ``num_pools`` non-overlapping poolings."""
    for _ in range(num_pools):
        width = width // pool_width
    return width


def build_deepcsi_model(
    input_shape: Tuple[int, int, int],
    num_classes: int,
    config: Optional[DeepCsiModelConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> Sequential:
    """Build the DeepCSI classifier for the given input shape.

    Parameters
    ----------
    input_shape:
        ``(Nch, Nrow, Ncol)`` shape of the feature tensors produced by
        :class:`repro.datasets.features.FeatureExtractor`.
    num_classes:
        Number of Wi-Fi modules to discriminate.
    config:
        Architecture hyper-parameters; defaults to the paper configuration.
    rng:
        Random generator for weight initialisation (reproducibility).

    Returns
    -------
    repro.nn.model.Sequential
        The assembled model (logits output; apply softmax for probabilities).
    """
    config = config if config is not None else PAPER_MODEL_CONFIG
    rng = rng if rng is not None else np.random.default_rng()
    if len(input_shape) != 3:
        raise ModelConfigError("input_shape must be (channels, rows, columns)")
    channels, rows, columns = (int(dim) for dim in input_shape)
    if channels < 1 or rows < 1 or columns < 1:
        raise ModelConfigError("all input dimensions must be >= 1")
    if num_classes < 2:
        raise ModelConfigError("num_classes must be >= 2")

    final_width = _pooled_width(columns, config.pool_width, config.num_conv_layers)
    if final_width < 1:
        raise ModelConfigError(
            f"{config.num_conv_layers} pooling stages of width "
            f"{config.pool_width} reduce {columns} sub-carriers below 1; "
            "reduce the number of layers or the pooling width"
        )

    model = Sequential()
    in_channels = channels
    width = columns
    for index, kernel_width in enumerate(config.kernel_widths):
        model.add(
            Conv2D(
                in_channels=in_channels,
                out_channels=config.num_filters,
                kernel_size=(1, kernel_width),
                padding="same",
                rng=rng,
                name=f"conv{index + 1}",
            )
        )
        model.add(Selu())
        model.add(MaxPool2D((1, config.pool_width), name=f"pool{index + 1}"))
        in_channels = config.num_filters
        width = width // config.pool_width

    if config.use_attention:
        model.add(
            SpatialAttention(
                kernel_size=(1, config.attention_kernel_width), rng=rng, name="attention"
            )
        )
    model.add(Flatten())

    in_features = config.num_filters * rows * width
    for index, (units, retain) in enumerate(
        zip(config.dense_units, config.dropout_retain)
    ):
        model.add(Dense(in_features, units, rng=rng, name=f"dense{index + 1}"))
        model.add(Selu())
        model.add(
            AlphaDropout(retain, rng=rng, name=f"alpha_dropout{index + 1}")
        )
        in_features = units
    model.add(Dense(in_features, num_classes, rng=rng, name="classifier"))
    return model


def count_parameters(
    input_shape: Tuple[int, int, int],
    num_classes: int,
    config: Optional[DeepCsiModelConfig] = None,
) -> int:
    """Number of trainable parameters of the architecture (without building RNG state)."""
    model = build_deepcsi_model(
        input_shape, num_classes, config=config, rng=np.random.default_rng(0)
    )
    return model.num_parameters
