"""Evaluation metrics: accuracy, confusion matrices and text reports."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


class EvaluationError(ValueError):
    """Raised for invalid evaluation inputs."""


def confusion_matrix(
    true_labels: Sequence[int],
    predicted_labels: Sequence[int],
    num_classes: Optional[int] = None,
) -> np.ndarray:
    """Row-normalisable confusion matrix ``C[true, predicted]`` (raw counts)."""
    true_labels = np.asarray(true_labels, dtype=int)
    predicted_labels = np.asarray(predicted_labels, dtype=int)
    if true_labels.shape != predicted_labels.shape:
        raise EvaluationError("label arrays must have the same shape")
    if true_labels.size == 0:
        raise EvaluationError("cannot build a confusion matrix from no labels")
    if num_classes is None:
        num_classes = int(max(true_labels.max(), predicted_labels.max())) + 1
    if true_labels.min() < 0 or predicted_labels.min() < 0:
        raise EvaluationError("labels must be non-negative")
    if true_labels.max() >= num_classes or predicted_labels.max() >= num_classes:
        raise EvaluationError("labels exceed num_classes")
    matrix = np.zeros((num_classes, num_classes), dtype=int)
    np.add.at(matrix, (true_labels, predicted_labels), 1)
    return matrix


def normalize_confusion(matrix: np.ndarray) -> np.ndarray:
    """Row-normalised confusion matrix (rows sum to one where defined)."""
    matrix = np.asarray(matrix, dtype=float)
    row_sums = matrix.sum(axis=1, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        normalised = np.where(row_sums > 0, matrix / row_sums, 0.0)
    return normalised


def accuracy_score(true_labels: Sequence[int], predicted_labels: Sequence[int]) -> float:
    """Overall classification accuracy in ``[0, 1]``."""
    true_labels = np.asarray(true_labels)
    predicted_labels = np.asarray(predicted_labels)
    if true_labels.shape != predicted_labels.shape:
        raise EvaluationError("label arrays must have the same shape")
    if true_labels.size == 0:
        raise EvaluationError("cannot compute the accuracy of no predictions")
    return float(np.mean(true_labels == predicted_labels))


def per_class_accuracy(matrix: np.ndarray) -> np.ndarray:
    """Recall (diagonal of the row-normalised confusion matrix) per class."""
    normalised = normalize_confusion(matrix)
    return np.diag(normalised)


@dataclass(frozen=True)
class ClassificationReport:
    """Summary of a classification run.

    Attributes
    ----------
    accuracy:
        Overall accuracy in ``[0, 1]``.
    confusion:
        Raw-count confusion matrix ``C[true, predicted]``.
    num_samples:
        Number of evaluated samples.
    label:
        Free-form description (e.g. ``"S1 / beamformee 1 / stream 0"``).
    """

    accuracy: float
    confusion: np.ndarray
    num_samples: int
    label: str = ""

    @property
    def per_class_accuracy(self) -> np.ndarray:
        """Recall per class."""
        return per_class_accuracy(self.confusion)

    def __str__(self) -> str:
        header = f"{self.label + ': ' if self.label else ''}accuracy " \
                 f"{100.0 * self.accuracy:.2f}% over {self.num_samples} samples"
        return header + "\n" + format_confusion_matrix(self.confusion)


def evaluate_predictions(
    true_labels: Sequence[int],
    predicted_labels: Sequence[int],
    num_classes: Optional[int] = None,
    label: str = "",
) -> ClassificationReport:
    """Build a :class:`ClassificationReport` from label arrays."""
    matrix = confusion_matrix(true_labels, predicted_labels, num_classes)
    return ClassificationReport(
        accuracy=accuracy_score(true_labels, predicted_labels),
        confusion=matrix,
        num_samples=int(np.asarray(true_labels).size),
        label=label,
    )


def format_confusion_matrix(matrix: np.ndarray, normalise: bool = True) -> str:
    """Render a confusion matrix as monospace text (rows = actual IDs)."""
    matrix = np.asarray(matrix)
    display = normalize_confusion(matrix) if normalise else matrix.astype(float)
    num_classes = matrix.shape[0]
    header = "actual\\pred |" + "".join(f" {c:>5d}" for c in range(num_classes))
    rows = [header, "-" * len(header)]
    for actual in range(num_classes):
        cells = "".join(f" {display[actual, predicted]:5.2f}" for predicted in range(num_classes))
        rows.append(f"{actual:11d} |" + cells)
    return "\n".join(rows)
