"""High-level DeepCSI classifier: samples in, module identities out.

:class:`DeepCsiClassifier` glues the pieces together:

1. feature extraction from the reconstructed ``V~`` matrices
   (:class:`repro.datasets.features.FeatureExtractor`),
2. per-channel standardisation (statistics estimated on the training set),
3. the DeepCSI CNN (:func:`repro.core.model.build_deepcsi_model`),
4. the training loop (:class:`repro.nn.training.Trainer`),
5. persistence of weights and normalisation statistics.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.annotations import hot_path
from repro.core.evaluation import ClassificationReport, evaluate_predictions
from repro.core.model import (
    DeepCsiModelConfig,
    PAPER_MODEL_CONFIG,
    build_deepcsi_model,
)
from repro.datasets.containers import FeedbackSample
from repro.datasets.features import (
    FeatureConfig,
    FeatureExtractor,
    apply_normalization,
    normalize_features,
)
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import Sequential
from repro.nn.optimizers import Adam
from repro.nn.serialization import (
    load_compute_state,
    load_weights,
    save_compute_state,
    save_weights,
)
from repro.nn.training import History, Trainer, TrainingConfig


class ClassifierError(ValueError):
    """Raised for invalid classifier usage."""


def _jsonify(value):
    """Round-trip a config dict through JSON types (tuples become lists)."""
    return json.loads(json.dumps(value))


@dataclass(frozen=True)
class ClassifierConfig:
    """Everything needed to rebuild a :class:`DeepCsiClassifier`.

    Attributes
    ----------
    num_classes:
        Number of Wi-Fi modules the classifier discriminates.
    feature:
        Selection of antennas / streams / sub-carriers used as input.
    model:
        Architecture hyper-parameters.
    training:
        Optimiser-independent training hyper-parameters.
    learning_rate:
        Adam learning rate.
    seed:
        Seed for weight initialisation, shuffling and dropout.
    """

    num_classes: int = 10
    feature: FeatureConfig = field(default_factory=FeatureConfig)
    model: DeepCsiModelConfig = field(default_factory=lambda: PAPER_MODEL_CONFIG)
    training: TrainingConfig = field(default_factory=TrainingConfig)
    learning_rate: float = 1e-3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ClassifierError("num_classes must be >= 2")
        if self.learning_rate <= 0:
            raise ClassifierError("learning_rate must be positive")


class DeepCsiClassifier:
    """Fingerprints a MU-MIMO beamformer from its beamforming feedback."""

    def __init__(self, config: Optional[ClassifierConfig] = None) -> None:
        self.config = config if config is not None else ClassifierConfig()
        self.extractor = FeatureExtractor(self.config.feature)
        self.model: Optional[Sequential] = None
        self._normalization: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._input_shape: Optional[Tuple[int, int, int]] = None

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def fit(
        self,
        train_samples: Sequence[FeedbackSample],
        validation_samples: Optional[Sequence[FeedbackSample]] = None,
    ) -> History:
        """Train the classifier on labelled feedback samples."""
        if not train_samples:
            raise ClassifierError("cannot train on an empty sample list")
        features, labels = self.extractor.transform_samples(train_samples)
        self._check_labels(labels)
        features, statistics = normalize_features(features)
        self._normalization = statistics
        self._input_shape = features.shape[1:]

        rng = np.random.default_rng(self.config.seed)
        self.model = build_deepcsi_model(
            self._input_shape,
            self.config.num_classes,
            config=self.config.model,
            rng=rng,
        )
        trainer = Trainer(
            self.model,
            optimizer=Adam(self.config.learning_rate),
            loss=SoftmaxCrossEntropy(),
            config=self.config.training,
        )
        validation_data = None
        if validation_samples:
            val_features, val_labels = self.extractor.transform_samples(
                validation_samples
            )
            self._check_labels(val_labels)
            val_features = apply_normalization(val_features, statistics)
            validation_data = (val_features, val_labels)
        return trainer.fit(features, labels, validation_data=validation_data)

    def fine_tune(
        self,
        samples: Sequence[FeedbackSample],
        epochs: Optional[int] = None,
        learning_rate: Optional[float] = None,
    ) -> History:
        """Continue training the already-fitted model on new samples.

        Unlike :meth:`fit`, the model weights and the input normalisation
        statistics are kept, so the classifier accumulates knowledge (used by
        :mod:`repro.core.continual` for the lifelong-learning extension the
        paper lists as future work).

        Parameters
        ----------
        samples:
            New labelled feedback samples.
        epochs:
            Number of fine-tuning epochs (defaults to the configured epochs).
        learning_rate:
            Optimiser learning rate for the fine-tuning phase (defaults to a
            tenth of the configured rate).
        """
        model = self._require_trained()
        if not samples:
            raise ClassifierError("cannot fine-tune on an empty sample list")
        features, labels = self.extractor.transform_samples(samples)
        self._check_labels(labels)
        features = apply_normalization(features, self._normalization)
        config = self.config.training
        tuned_config = replace(
            config, epochs=epochs if epochs is not None else config.epochs
        )
        rate = (
            learning_rate
            if learning_rate is not None
            else 0.1 * self.config.learning_rate
        )
        trainer = Trainer(
            model,
            optimizer=Adam(rate),
            loss=SoftmaxCrossEntropy(),
            config=tuned_config,
        )
        return trainer.fit(features, labels)

    def _check_labels(self, labels: np.ndarray) -> None:
        if labels.min() < 0 or labels.max() >= self.config.num_classes:
            raise ClassifierError(
                f"module identifiers must be in 0..{self.config.num_classes - 1}"
            )

    def _require_trained(self) -> Sequential:
        if self.model is None or self._normalization is None:
            raise ClassifierError("the classifier has not been trained or loaded yet")
        return self.model

    def _features_of(self, samples: Sequence[FeedbackSample]) -> np.ndarray:
        if not samples:
            raise ClassifierError("the sample list is empty")
        features, _ = self.extractor.transform_samples(samples)
        return apply_normalization(features, self._normalization)

    # ------------------------------------------------------------------ #
    # Compute backend selection
    # ------------------------------------------------------------------ #
    @property
    def compute(self):
        """The compute backend attached to the model (``None`` = plain fp64)."""
        return self.model.compute if self.model is not None else None

    @property
    def compute_name(self) -> str:
        """Registry name of the active compute backend (``"fp64"`` default)."""
        backend = self.compute
        return backend.name if backend is not None else "fp64"

    def set_compute(self, compute, calibration=None):
        """Route inference through a pluggable compute backend.

        Parameters
        ----------
        compute:
            Registry name (``"exact"``, ``"fp32"``, ``"int8"``), a backend
            instance, or ``None`` to restore the plain fp64 path.
        calibration:
            Data for backends that need an activation-calibration pass
            (``int8``): either a sequence of labelled
            :class:`~repro.datasets.containers.FeedbackSample` (typically the
            training split) or a pre-stacked ``(B, K, M, N_SS)`` array of
            reconstructed ``V~`` matrices.  Ignored by ``exact``/``fp32``.

        Returns the attached backend (or ``None``).
        """
        model = self._require_trained()
        backend = self.compute
        if backend is not None and (
            compute is backend or (isinstance(compute, str) and compute == backend.name)
        ):
            return backend
        backend = model.set_compute(compute)
        if backend is not None and getattr(backend, "calibrated", True) is False:
            if calibration is None:
                model.set_compute(None)
                raise ClassifierError(
                    f"the {backend.name!r} backend requires calibration data "
                    "(pass calibration=<training samples or V~ batch>)"
                )
            backend.calibrate(self._calibration_features(calibration))
        return backend

    def _calibration_features(self, calibration) -> np.ndarray:
        """Normalised model-input features from calibration data."""
        if isinstance(calibration, np.ndarray):
            if calibration.ndim != 4:
                raise ClassifierError(
                    "calibration arrays must have shape (B, K, M, N_SS)"
                )
            return apply_normalization(
                self.extractor.transform_matrices(calibration), self._normalization
            )
        return self._features_of(list(calibration))

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    def predict_logits(self, samples: Sequence[FeedbackSample]) -> np.ndarray:
        """Raw classifier logits, shape ``(num_samples, num_classes)``."""
        model = self._require_trained()
        return model.predict(self._features_of(samples))

    def predict_proba(self, samples: Sequence[FeedbackSample]) -> np.ndarray:
        """Softmax probabilities, shape ``(num_samples, num_classes)``."""
        return SoftmaxCrossEntropy.softmax(self.predict_logits(samples))

    def predict(self, samples: Sequence[FeedbackSample]) -> np.ndarray:
        """Predicted module identifier for every sample."""
        return np.argmax(self.predict_logits(samples), axis=1)

    def predict_matrix(self, v_tilde: np.ndarray) -> Tuple[int, float]:
        """Classify a single reconstructed ``V~`` matrix.

        Returns
        -------
        (module_id, confidence):
            The predicted module and its softmax probability.
        """
        ids, confidences = self.predict_matrices(np.asarray(v_tilde)[np.newaxis])
        return int(ids[0]), float(confidences[0])

    @hot_path
    def predict_matrices(self, v_batch: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Classify a pre-stacked batch of reconstructed ``V~`` matrices.

        This is the batched hot path of the streaming inference engine:
        feature extraction, normalisation and the CNN forward all run once
        over the whole ``(B, K, M, N_SS)`` batch.

        Returns
        -------
        (module_ids, confidences):
            Integer module identifiers, shape ``(B,)``, and the softmax
            probability of each winner, shape ``(B,)``.
        """
        v_batch = np.asarray(v_batch)
        if v_batch.ndim != 4:
            raise ClassifierError("v_batch must have shape (B, K, M, N_SS)")
        if v_batch.shape[0] == 0:
            return np.zeros(0, dtype=int), np.zeros(0, dtype=float)
        return self.predict_features(self.extractor.transform_matrices(v_batch))

    @hot_path
    def predict_features(self, features: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Classify a batch of already-extracted feature tensors.

        The entry point of the codeword-native preprocessing path: the
        engine extracts features straight from the Givens accumulator
        (:meth:`repro.datasets.features.FeatureExtractor.transform_accumulator`)
        and hands them here without materialising ``V~``.  ``features`` is
        treated as scratch -- it is normalised *in place* (the extractor
        hands over a freshly-built tensor, so this avoids two broadcast
        temporaries per batch).

        Returns
        -------
        (module_ids, confidences):
            Integer module identifiers, shape ``(B,)``, and the softmax
            probability of each winner, shape ``(B,)``.
        """
        _, probabilities = self.predict_features_outputs(features)
        if probabilities.shape[0] == 0:
            return np.zeros(0, dtype=int), np.zeros(0, dtype=float)
        winners = np.argmax(probabilities, axis=1)
        confidences = probabilities[np.arange(probabilities.shape[0]), winners]
        return winners.astype(int), confidences.astype(float)

    @hot_path
    def predict_features_outputs(
        self, features: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Raw network outputs for a batch of already-extracted features.

        Same in-place normalisation contract as :meth:`predict_features`, but
        exposes the full ``(logits, probabilities)`` pair so open-set scoring
        rules (max-softmax, entropy, centroid distance over logits) can run
        on the streaming hot path without a second forward pass.
        """
        model = self._require_trained()
        if features.ndim != 4:
            raise ClassifierError("features must have shape (B, Nch, Nrow, Ncol)")
        if features.shape[0] == 0:
            empty = np.zeros((0, self.config.num_classes), dtype=np.float64)
            return empty, empty
        mean, std = self._normalization
        np.subtract(features, mean, out=features)
        np.divide(features, std, out=features)
        logits = model.predict(features)
        return logits, SoftmaxCrossEntropy.softmax(logits)

    def evaluate(
        self, samples: Sequence[FeedbackSample], label: str = ""
    ) -> ClassificationReport:
        """Accuracy and confusion matrix on labelled samples."""
        predictions = self.predict(samples)
        true_labels = np.array([s.module_id for s in samples], dtype=int)
        return evaluate_predictions(
            true_labels, predictions, num_classes=self.config.num_classes, label=label
        )

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, directory: Union[str, Path]) -> Path:
        """Persist weights, normalisation statistics and metadata."""
        model = self._require_trained()
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        save_weights(model, directory / "weights.npz")
        if model.compute is not None:
            save_compute_state(model, directory / "compute.npz")
        mean, std = self._normalization
        np.savez(directory / "normalization.npz", mean=mean, std=std)
        metadata = {
            "num_classes": self.config.num_classes,
            "compute": self.compute_name,
            "input_shape": list(self._input_shape),
            "seed": self.config.seed,
            "learning_rate": self.config.learning_rate,
            "feature": _jsonify(asdict(self.config.feature)),
            "model": _jsonify(asdict(self.config.model)),
            "training": _jsonify(asdict(self.config.training)),
        }
        (directory / "metadata.json").write_text(json.dumps(metadata, indent=2))
        return directory

    def load(self, directory: Union[str, Path]) -> "DeepCsiClassifier":
        """Restore a classifier previously stored with :meth:`save`.

        The classifier must be constructed with the same
        :class:`ClassifierConfig` that produced the stored weights.
        """
        directory = Path(directory)
        metadata = json.loads((directory / "metadata.json").read_text())
        if metadata["num_classes"] != self.config.num_classes:
            raise ClassifierError(
                "stored model was trained with a different number of classes"
            )
        for key, sub_config in (("feature", self.config.feature), ("model", self.config.model)):
            stored = metadata.get(key)
            if stored is not None and stored != _jsonify(asdict(sub_config)):
                raise ClassifierError(
                    f"stored model was trained with a different {key} "
                    f"configuration: {stored} != {_jsonify(asdict(sub_config))}"
                )
        self._input_shape = tuple(metadata["input_shape"])
        rng = np.random.default_rng(self.config.seed)
        self.model = build_deepcsi_model(
            self._input_shape,
            self.config.num_classes,
            config=self.config.model,
            rng=rng,
        )
        load_weights(self.model, directory / "weights.npz")
        with np.load(directory / "normalization.npz") as archive:
            self._normalization = (archive["mean"], archive["std"])
        compute_path = directory / "compute.npz"
        if compute_path.exists():
            load_compute_state(self.model, compute_path)
        return self

    @property
    def num_parameters(self) -> int:
        """Number of trainable parameters of the underlying model."""
        return self._require_trained().num_parameters
