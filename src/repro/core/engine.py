"""Batched streaming inference engine (the observer's always-on hot path).

The deployment scenario of Fig. 1/Fig. 3 is an always-on monitor-mode
observer that authenticates *every* VHT compressed-beamforming frame it
sniffs.  Classifying frames one at a time wastes almost all of the hardware:
feature extraction, normalisation and the CNN forward are vectorised, so
running them with batch size 1 pays the full Python/numpy dispatch overhead
per frame.

:class:`InferenceEngine` turns the per-frame API into a micro-batched
streaming one:

* observations (raw frames, parsed captures, samples or plain ``V~``
  arrays) are buffered and classified in micro-batches of ``batch_size``;
* ``max_latency_frames`` bounds how many frames may sit in the buffer
  before a partial batch is forced out, trading throughput for latency;
* raw :class:`~repro.feedback.frames.FeedbackFrame` payloads are parsed,
  grouped by geometry/quantisation and de-quantised + reconstructed through
  the *batched* Givens path
  (:func:`repro.feedback.givens.reconstruct_v_matrices`);
* every result is appended to a per-source ring buffer so a windowed
  majority vote (:meth:`InferenceEngine.verdict`) is available at any time;
* an optional open-set policy (:class:`~repro.core.openset.OpenSetPolicy`)
  scores every frame's *known-ness* on the same forward pass; frames below
  the calibrated threshold are rejected and windowed verdicts can resolve
  to :data:`UNKNOWN_MODULE_ID` instead of the nearest enrolled identity;
* per-source score trajectories feed an optional
  :class:`~repro.core.lifecycle.DriftMonitor` that flags sources whose
  recent known-ness degrades below their own baseline;
* :meth:`InferenceEngine.install_model` swaps in a versioned model snapshot
  (:class:`~repro.core.lifecycle.ModelVersion`) at a batch boundary --
  buffered frames are flushed under the old weights first, so every result
  carries the version that actually classified it and the per-source
  version stamps are monotonically non-decreasing;
* throughput counters (:class:`EngineStats`) expose frames/sec, rejections
  and a score histogram for the benchmarks and the CLI.

Every consumer of per-frame classification (the authentication pipeline,
the CLI, the throughput benchmark) routes through this engine.  The engine
itself is single-threaded; :class:`repro.core.service.StreamingService`
scales it out to a sharded multi-worker pool with asynchronous ingestion
while preserving the per-source semantics defined here.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Deque, Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.analysis.annotations import hot_path
from repro.arena import ArenaPool
from repro.core.classifier import DeepCsiClassifier
from repro.datasets.containers import FeedbackSample
from repro.feedback.capture import CapturedFeedback
from repro.feedback.frames import FeedbackFrame, parse_feedback_frame
from repro.feedback.givens import reconstruct_accumulator_quantized
from repro.feedback.quantization import QuantizedAngles
from repro.core.lifecycle import DriftConfig, DriftMonitor, DriftStatus, ModelVersion
from repro.core.openset import OpenSetAuthenticator, OpenSetPolicy
from repro.nn.model import LayerProfile

if TYPE_CHECKING:
    from repro.nn.compute import ComputeBackend


class EngineError(ValueError):
    """Raised for invalid engine configurations or inputs."""


#: Anything the engine can classify.
Observation = Union[
    FeedbackFrame, CapturedFeedback, FeedbackSample, QuantizedAngles, np.ndarray
]

#: Names of the engine's preprocessing precisions.
PRECISION_NAMES = ("exact", "fast")

#: Ring-buffer key used for observations without a source address.
ANONYMOUS_SOURCE = ""

#: Module id of a rejected (not-any-enrolled-transmitter) decision.
UNKNOWN_MODULE_ID = -1

#: Number of equal-width [0, 1] bins in the open-set score histogram.
SCORE_HISTOGRAM_BINS = 16


@dataclass(frozen=True)
class EngineResult:
    """Classification outcome for one streamed observation.

    Attributes
    ----------
    predicted_module_id:
        Module the classifier believes produced the transmission.
    confidence:
        Softmax probability of the predicted module.
    source:
        Source address the observation was attributed to
        (:data:`ANONYMOUS_SOURCE` when unknown).
    sequence:
        Position of the observation in the engine's input order.
    timestamp_s:
        Capture timestamp when the observation carried one, else 0.
    score:
        Open-set known-ness score of the frame (the winner's confidence on
        a closed-set engine).
    accepted:
        Whether the frame's score cleared the open-set threshold (always
        true on a closed-set engine).  Rejected frames keep the nearest
        enrolled module in ``predicted_module_id`` for diagnostics but do
        not vote for it.
    model_version:
        Version of the model snapshot that classified this frame (0 until
        the first :meth:`InferenceEngine.install_model`).
    """

    predicted_module_id: int
    confidence: float
    source: str = ANONYMOUS_SOURCE
    sequence: int = 0
    timestamp_s: float = 0.0
    score: float = 1.0
    accepted: bool = True
    model_version: int = 0


@dataclass(frozen=True)
class MajorityVerdict:
    """Windowed majority vote over one source's recent results.

    Attributes
    ----------
    module_id:
        The most frequent module in the window (ties broken by mean
        confidence), or :data:`UNKNOWN_MODULE_ID` when the window's
        rejections outweigh the best enrolled identity.
    confidence:
        Mean confidence of the frames voting for the winner (mean rejection
        strength, ``1 - score``, for an UNKNOWN verdict).
    num_votes:
        Number of frames voting for the winner (rejected frames for an
        UNKNOWN verdict).
    window_size:
        Number of results currently in the window.
    num_rejected:
        Number of open-set-rejected frames in the window.
    model_version:
        Highest model version among the window's results (non-decreasing
        per source because the engine flushes before installing a version).
    """

    module_id: int
    confidence: float
    num_votes: int
    window_size: int
    num_rejected: int = 0
    model_version: int = 0


@dataclass(frozen=True)
class StageProfile:
    """Accumulated wall-clock of one batch-processing stage.

    The preprocessing analogue of :class:`repro.nn.model.LayerProfile`:
    ``reconstruct`` covers staging + Givens reconstruction of a micro-batch,
    ``features`` the feature-tensor extraction, and ``inference`` the
    normalisation + CNN forward (one call each per processed group).
    """

    name: str
    calls: int
    total_ns: int

    @property
    def mean_ms(self) -> float:
        """Mean milliseconds per processed group."""
        if self.calls == 0:
            return 0.0
        return self.total_ns / self.calls / 1e6


#: Stage names reported in :attr:`EngineStats.stage_profile`, in order.
STAGE_NAMES = ("reconstruct", "features", "inference")


@dataclass
class EngineStats:
    """Throughput counters of one engine instance.

    ``inference_seconds`` only accounts for time spent inside batch
    processing (decode + feature extraction + CNN forward), not for the time
    frames spent waiting in the buffer.

    The derived :attr:`frames_per_second` and :attr:`mean_batch_size` are
    safe to read at any time: on a fresh or freshly-reset engine (no batch
    processed yet) they return ``0.0`` instead of dividing by zero.

    :attr:`InferenceEngine.stats` returns a private *consistent* snapshot:
    the engine updates every counter of a processed batch under one lock, so
    a snapshot taken mid-drain (from a monitoring thread, or shipped to the
    service from a worker process) never shows a batch's ``frames_out``
    without its ``batches`` and ``inference_seconds``.
    """

    frames_in: int = 0
    frames_out: int = 0
    batches: int = 0
    inference_seconds: float = 0.0
    #: Frames whose open-set score fell below the threshold (0 closed-set).
    frames_rejected: int = 0
    #: Histogram of open-set scores over ``SCORE_HISTOGRAM_BINS`` equal
    #: [0, 1] bins; empty when the engine runs closed-set.
    score_histogram: Tuple[int, ...] = ()
    #: Version of the currently-installed model snapshot (0 = as-built).
    model_version: int = 0
    #: Registry name of the active compute backend ("fp64" = default path).
    compute: str = "fp64"
    #: Preprocessing precision ("exact" = bit-identical float64 LUT path,
    #: "fast" = complex64/float32 codeword path).
    precision: str = "exact"
    #: Per-layer forward timings, populated when the engine profiles.
    layer_profile: Tuple[LayerProfile, ...] = ()
    #: Per-stage batch-processing timings (reconstruct / features /
    #: inference), always accumulated -- see :class:`StageProfile`.
    stage_profile: Tuple[StageProfile, ...] = ()

    @property
    def frames_per_second(self) -> float:
        """Classified frames per second of inference time."""
        if self.inference_seconds <= 0.0:
            return 0.0
        return self.frames_out / self.inference_seconds

    @property
    def mean_batch_size(self) -> float:
        """Average number of frames per processed micro-batch."""
        if self.batches == 0:
            return 0.0
        return self.frames_out / self.batches

    @property
    def rejection_rate(self) -> float:
        """Fraction of classified frames the open-set policy rejected."""
        if self.frames_out == 0:
            return 0.0
        return self.frames_rejected / self.frames_out


class SourceWindows:
    """Bounded per-source ring buffers feeding the windowed majority vote.

    The book keeps one ``deque(maxlen=vote_window)`` per source and at most
    ``max_sources`` of them alive, evicting the least-recently-updated
    source beyond that.  It is factored out of the engine so the streaming
    service's *process* backend can replay the per-shard result streams into
    an identical book on the parent side: verdicts answered from the replica
    are exactly the verdicts the worker's engine would produce, without a
    cross-process round trip per :meth:`verdict` call.
    """

    def __init__(
        self, vote_window: int, max_sources: int, reject_streak: int = 3
    ) -> None:
        if vote_window < 1:
            raise EngineError("vote_window must be >= 1")
        if max_sources < 1:
            raise EngineError("max_sources must be >= 1")
        if reject_streak < 1:
            raise EngineError("reject_streak must be >= 1")
        self.vote_window = vote_window
        self.max_sources = max_sources
        self.reject_streak = reject_streak
        self._windows: Dict[str, Deque[EngineResult]] = {}

    def append(self, result: EngineResult) -> None:
        """Record one classified result in its source's window."""
        window = self._windows.pop(result.source, None)
        if window is None:
            window = deque(maxlen=self.vote_window)
            while len(self._windows) >= self.max_sources:
                # Evict the least-recently-updated source (dicts keep
                # insertion order; updated windows are re-inserted last).
                self._windows.pop(next(iter(self._windows)))
        # Re-insert so this source becomes the most recently updated.
        self._windows[result.source] = window
        window.append(result)

    def verdict(self, source: Optional[str] = None) -> MajorityVerdict:
        """Majority vote over the ring buffer of one source.

        Only *accepted* results vote: an enrolled identity wins when it is
        the most frequent accepted module (ties broken by mean confidence).
        The verdict is :data:`UNKNOWN_MODULE_ID` when

        * no accepted result is in the window, or
        * rejections match/outnumber the winner's votes, or
        * the ``reject_streak`` most recent results were all rejected.

        The streak rule is what keeps an always-on verdict current: a source
        that was enrolled-looking for most of the window but whose *latest*
        frames are all rejected (an address takeover, a departed device)
        must not be outvoted back into the stale identity by old entries.
        """
        key = ANONYMOUS_SOURCE if source is None else source
        window = self._windows.get(key)
        if not window:
            raise EngineError(f"no results recorded for source {key!r} yet")
        votes: Dict[int, List[float]] = {}
        rejected_scores: List[float] = []
        trailing_rejected = 0
        trailing_live = True
        model_version = 0
        for result in reversed(window):
            if result.model_version > model_version:
                model_version = result.model_version
            if result.accepted:
                trailing_live = False
                votes.setdefault(result.predicted_module_id, []).append(
                    result.confidence
                )
            else:
                rejected_scores.append(result.score)
                if trailing_live:
                    trailing_rejected += 1
        num_rejected = len(rejected_scores)
        winner: Optional[int] = None
        if votes:
            winner = max(
                votes, key=lambda module: (len(votes[module]), np.mean(votes[module]))
            )
        streak = min(self.reject_streak, self.vote_window)
        if (
            winner is None
            or num_rejected >= len(votes[winner])
            or trailing_rejected >= streak
        ):
            rejection_strength = float(
                np.mean([1.0 - score for score in rejected_scores])
                if rejected_scores
                else 0.0
            )
            return MajorityVerdict(
                module_id=UNKNOWN_MODULE_ID,
                confidence=rejection_strength,
                num_votes=num_rejected,
                window_size=len(window),
                num_rejected=num_rejected,
                model_version=model_version,
            )
        return MajorityVerdict(
            module_id=winner,
            confidence=float(np.mean(votes[winner])),
            num_votes=len(votes[winner]),
            window_size=len(window),
            num_rejected=num_rejected,
            model_version=model_version,
        )

    @property
    def sources(self) -> List[str]:
        """Sources with at least one recorded result."""
        return sorted(self._windows)

    def clear(self) -> None:
        self._windows.clear()


@dataclass
class _PendingObservation:
    """One buffered observation, normalised for batch processing."""

    sequence: int
    source: str
    timestamp_s: float
    # Exactly one of the two payloads is set: a parsed quantised feedback
    # (raw frames and codeword records, decoded through the codeword-native
    # batched Givens path) or a ready ``V~`` matrix.
    quantized: Optional[QuantizedAngles] = None
    v_tilde: Optional[np.ndarray] = None


class InferenceEngine:
    """Micro-batched streaming classification of beamforming feedback.

    Parameters
    ----------
    classifier:
        A trained (or loaded) :class:`~repro.core.classifier.DeepCsiClassifier`.
    batch_size:
        Target micro-batch size; a full buffer is classified immediately.
    max_latency_frames:
        Maximum number of frames allowed to sit in the buffer before a
        partial batch is forced out (``None`` means only :meth:`flush` or a
        full batch triggers processing).  Effectively caps the per-frame
        queueing delay of a live stream at ``max_latency_frames`` arrivals.
    vote_window:
        Length of the per-source ring buffers used by :meth:`verdict`.
    max_sources:
        Maximum number of per-source ring buffers kept alive.  An always-on
        observer sees an unbounded set of source addresses (spoofed MACs
        included); beyond this many the least-recently-seen source's window
        is evicted so memory stays bounded.
    open_set:
        Optional open-set policy (an :class:`~repro.core.openset.OpenSetPolicy`
        or a calibrated :class:`~repro.core.openset.OpenSetAuthenticator`,
        converted via its :meth:`~repro.core.openset.OpenSetAuthenticator.policy`).
        When set, every frame's known-ness is scored on the classification
        forward pass; frames below the threshold are rejected and verdicts
        can resolve to :data:`UNKNOWN_MODULE_ID`.
    drift:
        Optional :class:`~repro.core.lifecycle.DriftConfig`; when set the
        engine feeds every frame's score into a per-source
        :class:`~repro.core.lifecycle.DriftMonitor`
        (see :meth:`drift_snapshot`).
    reject_streak:
        Number of *consecutive* most-recent rejections that force a
        source's verdict to UNKNOWN regardless of older accepted votes.
    compute:
        Optional compute backend (registry name or instance) routed to
        :meth:`DeepCsiClassifier.set_compute`.  ``None`` keeps whatever the
        classifier already uses.  The ``int8`` backend must be calibrated
        beforehand (``classifier.set_compute("int8", calibration=...)``).
    precision:
        Preprocessing precision of the codeword-native path used for
        quantised observations (raw frames, codeword records,
        :class:`~repro.feedback.quantization.QuantizedAngles`):

        * ``"exact"`` (default) gathers the float64/complex128 trig LUTs --
          bit-identical features and verdicts to the historical
          dequantize+reconstruct path;
        * ``"fast"`` gathers the complex64/float32 LUTs, halving the
          preprocessing memory traffic; pairs naturally with the ``fp32``
          compute backend.

        Ready ``V~`` observations keep their own dtype either way.
    profile:
        When true, per-layer forward timings are accumulated and surfaced
        through :attr:`EngineStats.layer_profile`.  The coarser per-stage
        preprocessing timings (:attr:`EngineStats.stage_profile`) are always
        accumulated.

    Example
    -------
    ::

        engine = InferenceEngine(classifier, batch_size=64)
        for frame in sniffer:                    # any Observation type
            for result in engine.submit(frame):  # [] until a batch is due
                handle(result)
        engine.flush()                           # classify the partial batch
        verdict = engine.verdict(source)         # windowed majority vote
        print(engine.stats.frames_per_second)
    """

    def __init__(
        self,
        classifier: DeepCsiClassifier,
        batch_size: int = 64,
        max_latency_frames: Optional[int] = None,
        vote_window: int = 16,
        max_sources: int = 1024,
        open_set: Optional[Union[OpenSetPolicy, OpenSetAuthenticator]] = None,
        drift: Optional[DriftConfig] = None,
        reject_streak: int = 3,
        compute: Optional[Union[str, "ComputeBackend"]] = None,
        precision: str = "exact",
        profile: bool = False,
    ) -> None:
        if batch_size < 1:
            raise EngineError("batch_size must be >= 1")
        if max_latency_frames is not None and max_latency_frames < 1:
            raise EngineError("max_latency_frames must be >= 1 or None")
        if precision not in PRECISION_NAMES:
            raise EngineError(
                f"unknown precision {precision!r}; expected one of "
                f"{PRECISION_NAMES}"
            )
        self.classifier = classifier
        self.batch_size = batch_size
        self.max_latency_frames = max_latency_frames
        self.vote_window = vote_window
        self.max_sources = max_sources
        self.precision = precision
        if isinstance(open_set, OpenSetAuthenticator):
            open_set = open_set.policy()
        self._open_set = open_set
        self._drift = DriftMonitor(drift) if drift is not None else None
        if compute is not None:
            classifier.set_compute(compute)
        self._profile = bool(profile)
        if self._profile and classifier.model is not None:
            classifier.model.enable_profiling()
        self._model_version = 0
        self._stats = EngineStats()  # guarded-by: _stats_lock
        # Per-stage [calls, total_ns] accumulators.  guarded-by: _stats_lock
        self._stage_totals: Dict[str, List[int]] = {
            name: [0, 0] for name in STAGE_NAMES
        }
        # Open-set score histogram bin counts.  guarded-by: _stats_lock
        self._score_hist: List[int] = [0] * SCORE_HISTOGRAM_BINS
        self._stats_lock = threading.Lock()
        self._pending: List[_PendingObservation] = []
        self._windows = SourceWindows(vote_window, max_sources, reject_streak)
        self._sequence = 0
        # Grow-only staging buffers, one per (V~ shape, dtype), reused across
        # batches so steady-state batching performs no large allocations.
        self._batch_buffers: Dict[tuple, np.ndarray] = {}
        # Arena backing the codeword-native preprocessing path (codeword
        # staging, Givens accumulator + scratch, feature gathers/output).
        self._arena = ArenaPool()

    @property
    def stats(self) -> EngineStats:
        """A consistent point-in-time snapshot of the throughput counters.

        All counters of one processed batch are published atomically, so a
        reader in another thread (the service's stats aggregation, a
        monitoring loop) never observes a half-updated batch.
        """
        with self._stats_lock:
            stage_profile = tuple(
                StageProfile(name=name, calls=calls, total_ns=total_ns)
                for name, (calls, total_ns) in self._stage_totals.items()
                if calls
            )
            snapshot = replace(
                self._stats,
                compute=self.compute,
                precision=self.precision,
                stage_profile=stage_profile,
                score_histogram=(
                    tuple(self._score_hist) if self._open_set is not None else ()
                ),
            )
        if self._profile and self.classifier.model is not None:
            snapshot.layer_profile = self.classifier.model.profile()
        return snapshot

    @property
    def compute(self) -> str:
        """Registry name of the classifier's active compute backend."""
        return self.classifier.compute_name

    @property
    def open_set(self) -> Optional[OpenSetPolicy]:
        """The active open-set policy (``None`` = closed-set)."""
        return self._open_set

    @property
    def model_version(self) -> int:
        """Version of the currently-installed model snapshot."""
        return self._model_version

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def install_model(self, version: ModelVersion) -> List[EngineResult]:
        """Swap in a versioned model snapshot at a batch boundary.

        The epoch barrier of the zero-downtime swap: everything buffered is
        flushed through the *old* weights first, then the snapshot's weights
        + compute state (and open-set threshold, when it carries one) are
        installed and the engine's version stamp is bumped.  A frame is
        therefore always classified entirely by one version, and the
        ``model_version`` stamped on results never decreases.

        Returns the results of the barrier flush (classified by the old
        version) so callers can hand them to their consumers -- nothing is
        dropped by a swap.
        """
        if version.version <= self._model_version:
            raise EngineError(
                f"model version must increase: engine is at "
                f"{self._model_version}, got {version.version}"
            )
        flushed = self._process_pending()
        version.apply(self.classifier)
        if version.open_set_threshold is not None and self._open_set is not None:
            self._open_set = replace(
                self._open_set, threshold=float(version.open_set_threshold)
            )
        self._model_version = version.version
        with self._stats_lock:
            self._stats.model_version = version.version
        return flushed

    def drift_snapshot(self) -> Tuple[DriftStatus, ...]:
        """Per-source drift state (empty when no drift monitor is active)."""
        if self._drift is None:
            return ()
        return self._drift.snapshot()

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        observation: Observation,
        source: Optional[str] = None,
    ) -> List[EngineResult]:
        """Buffer one observation; classify the buffer when it is due.

        Frames and captured feedbacks carry their own source address, which
        is used unless ``source`` overrides it.

        Returns
        -------
        list of EngineResult
            The results that became available because of this submission
            (usually empty, or one full micro-batch).
        """
        return self._enqueue(self._normalise(observation, source))

    def submit_decoded(
        self,
        v_tilde: np.ndarray,
        source: str = ANONYMOUS_SOURCE,
        timestamp_s: float = 0.0,
    ) -> List[EngineResult]:
        """Buffer one already-reconstructed ``V~`` matrix.

        The entry point the process-backend worker uses for observations
        that crossed the shared-memory transport as ready arrays: it is
        exactly the ``v_tilde`` branch of :meth:`submit`, with the capture
        timestamp supplied explicitly, so the classification batches are
        identical to submitting the original observation object.
        """
        array = np.asarray(v_tilde)
        if array.ndim != 3:
            raise EngineError("expected a (K, M, N_SS) array")
        entry = _PendingObservation(
            sequence=self._next_sequence(),
            source=source,
            timestamp_s=timestamp_s,
            v_tilde=array,
        )
        return self._enqueue(entry)

    def submit_frame_payload(
        self,
        payload: bytes,
        source: str = ANONYMOUS_SOURCE,
        timestamp_s: float = 0.0,
    ) -> List[EngineResult]:
        """Buffer one raw VHT action-frame payload (packed angle report).

        Equivalent to submitting the :class:`~repro.feedback.frames.FeedbackFrame`
        the payload came from: the frame is parsed here and de-quantised
        through the batched Givens path with the rest of its micro-batch.
        """
        _, quantized = parse_feedback_frame(payload)
        entry = _PendingObservation(
            sequence=self._next_sequence(),
            source=source,
            timestamp_s=timestamp_s,
            quantized=quantized,
        )
        return self._enqueue(entry)

    def submit_quantized(
        self,
        quantized: QuantizedAngles,
        source: str = ANONYMOUS_SOURCE,
        timestamp_s: float = 0.0,
    ) -> List[EngineResult]:
        """Buffer one quantised feedback (integer angle codewords).

        The entry point the process-backend worker uses for observations
        that crossed the shared-memory transport as
        :data:`~repro.core.transport.RECORD_CODEWORDS` records: the
        codewords go straight into the codeword-native batched Givens path,
        so reconstruction happens worker-side and nothing larger than the
        int16 codewords ever crosses the ring.
        """
        entry = _PendingObservation(
            sequence=self._next_sequence(),
            source=source,
            timestamp_s=timestamp_s,
            quantized=quantized,
        )
        return self._enqueue(entry)

    def _next_sequence(self) -> int:
        sequence = self._sequence
        self._sequence += 1
        return sequence

    def _enqueue(self, entry: _PendingObservation) -> List[EngineResult]:
        self._pending.append(entry)
        with self._stats_lock:
            self._stats.frames_in += 1
        threshold = self.batch_size
        if self.max_latency_frames is not None:
            threshold = min(threshold, self.max_latency_frames)
        if len(self._pending) >= threshold:
            return self._process_pending()
        return []

    def flush(self) -> List[EngineResult]:
        """Classify whatever is buffered, regardless of the batch size."""
        return self._process_pending()

    def stream(
        self,
        observations: Iterable[Observation],
        source: Optional[str] = None,
    ) -> Iterator[EngineResult]:
        """Drain an iterable of observations, yielding results as batches fill.

        The final partial batch is flushed automatically when the iterable
        is exhausted, so every submitted observation yields a result.
        """
        for observation in observations:
            yield from self.submit(observation, source=source)
        yield from self.flush()

    def drain(
        self,
        observations: Iterable[Observation],
        source: Optional[str] = None,
    ) -> List[EngineResult]:
        """Classify a whole iterable and return the results in input order."""
        return list(self.stream(observations, source=source))

    # ------------------------------------------------------------------ #
    # Windowed majority voting
    # ------------------------------------------------------------------ #
    def verdict(self, source: Optional[str] = None) -> MajorityVerdict:
        """Majority vote over the ring buffer of one source.

        The predicted module is the most frequent one in the window; its
        confidence is the mean confidence of the frames voting for it.
        """
        return self._windows.verdict(source)

    @property
    def sources(self) -> List[str]:
        """Sources with at least one classified observation."""
        return self._windows.sources

    def reset(self) -> None:
        """Drop buffered observations, ring buffers and counters.

        The installed model version survives a reset: the weights stay
        swapped in, so results classified after the reset are still stamped
        with the version that produces them.
        """
        self._pending.clear()
        self._windows.clear()
        if self._drift is not None:
            self._drift.clear()
        self._sequence = 0
        with self._stats_lock:
            self._stats = EngineStats(model_version=self._model_version)
            self._stage_totals = {name: [0, 0] for name in STAGE_NAMES}
            self._score_hist = [0] * SCORE_HISTOGRAM_BINS

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _normalise(
        self, observation: Observation, source: Optional[str]
    ) -> _PendingObservation:
        sequence = self._next_sequence()
        if isinstance(observation, FeedbackFrame):
            _, quantized = parse_feedback_frame(observation.payload)
            return _PendingObservation(
                sequence=sequence,
                source=source if source is not None else observation.source_address,
                timestamp_s=observation.timestamp_s,
                quantized=quantized,
            )
        if isinstance(observation, CapturedFeedback):
            return _PendingObservation(
                sequence=sequence,
                source=source if source is not None else observation.source_address,
                timestamp_s=observation.timestamp_s,
                v_tilde=np.asarray(observation.v_tilde),
            )
        if isinstance(observation, FeedbackSample):
            return _PendingObservation(
                sequence=sequence,
                source=source if source is not None else ANONYMOUS_SOURCE,
                timestamp_s=observation.timestamp_s,
                v_tilde=np.asarray(observation.v_tilde),
            )
        if isinstance(observation, QuantizedAngles):
            return _PendingObservation(
                sequence=sequence,
                source=source if source is not None else ANONYMOUS_SOURCE,
                timestamp_s=0.0,
                quantized=observation,
            )
        array = np.asarray(observation)
        if array.ndim != 3:
            raise EngineError(
                "expected a FeedbackFrame, CapturedFeedback, FeedbackSample, "
                "QuantizedAngles or a (K, M, N_SS) array"
            )
        return _PendingObservation(
            sequence=sequence,
            source=source if source is not None else ANONYMOUS_SOURCE,
            timestamp_s=0.0,
            v_tilde=array,
        )

    @hot_path
    def _stage_batch(self, entries: List[_PendingObservation]) -> np.ndarray:
        """Copy same-shape observations into a reusable staging buffer.

        Equivalent to ``np.stack`` but without a fresh batch-sized
        allocation per micro-batch: the buffer grows to the largest batch
        seen and later batches reuse (a view of) it.
        """
        dtype = np.result_type(*(entry.v_tilde.dtype for entry in entries))
        shape = entries[0].v_tilde.shape
        slot = (shape, dtype)
        buffer = self._batch_buffers.get(slot)
        if buffer is None or buffer.shape[0] < len(entries):
            buffer = np.empty((len(entries), *shape), dtype=dtype)
            self._batch_buffers[slot] = buffer
        staged = buffer[: len(entries)]
        for position, entry in enumerate(entries):
            staged[position] = entry.v_tilde
        return staged

    @hot_path
    def _stage_codewords(
        self, entries: List[_PendingObservation]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Copy same-geometry codewords into reusable int16 arena buffers."""
        first = entries[0].quantized
        assert first is not None
        batch = len(entries)
        q_phi = self._arena.get(
            ("stage", "q_phi"),
            (batch,) + first.q_phi.shape,
            dtype=np.int16,
        )
        q_psi = self._arena.get(
            ("stage", "q_psi"),
            (batch,) + first.q_psi.shape,
            dtype=np.int16,
        )
        for position, entry in enumerate(entries):
            assert entry.quantized is not None
            q_phi[position] = entry.quantized.q_phi
            q_psi[position] = entry.quantized.q_psi
        return q_phi, q_psi

    @hot_path
    def _classify_features(
        self, features: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Classify one feature batch, scoring known-ness when open-set.

        Returns ``(module_ids, confidences, scores, accepted)``.  Closed-set
        engines take the historical :meth:`DeepCsiClassifier.predict_features`
        path (bitwise-identical results); open-set engines reuse the same
        forward pass's logits/probabilities for the policy's scoring rule,
        so rejection costs no second inference.
        """
        policy = self._open_set
        if policy is None:
            ids, confidences = self.classifier.predict_features(features)
            return ids, confidences, confidences, np.ones(len(ids), dtype=bool)
        logits, probabilities = self.classifier.predict_features_outputs(features)
        winners = np.argmax(probabilities, axis=1)
        confidences = probabilities[np.arange(probabilities.shape[0]), winners]
        scores = policy.score_outputs(probabilities, logits)
        accepted = scores >= policy.threshold
        return (
            winners.astype(int),
            confidences.astype(float),
            scores,
            accepted,
        )

    def _emit_results(
        self,
        entries: List[_PendingObservation],
        module_ids: np.ndarray,
        confidences: np.ndarray,
        scores: np.ndarray,
        accepted: np.ndarray,
        results: List[Optional[EngineResult]],
        index_of: Dict[int, int],
    ) -> None:
        model_version = self._model_version
        for position, entry in enumerate(entries):
            results[index_of[id(entry)]] = EngineResult(
                predicted_module_id=int(module_ids[position]),
                confidence=float(confidences[position]),
                source=entry.source,
                sequence=entry.sequence,
                timestamp_s=entry.timestamp_s,
                score=float(scores[position]),
                accepted=bool(accepted[position]),
                model_version=model_version,
            )

    @hot_path
    def _process_pending(self) -> List[EngineResult]:
        if not self._pending:
            return []
        pending, self._pending = self._pending, []
        started = time.perf_counter()
        stage_ns = {name: 0 for name in STAGE_NAMES}
        stage_calls = {name: 0 for name in STAGE_NAMES}

        results: List[Optional[EngineResult]] = [None] * len(pending)
        index_of = {id(entry): idx for idx, entry in enumerate(pending)}
        fast = self.precision == "fast"
        extractor = self.classifier.extractor

        # Quantised observations take the codeword-native path: group by
        # (config, geometry), gather the trig LUTs straight from the staged
        # codewords and extract features from the Givens accumulator without
        # materialising V~.  Ready V~ observations are grouped by shape and
        # staged as before.  Mixed batches are classified per group but
        # reported in input order; the CNN forward is per-sample, so the
        # split never changes a verdict.
        quantized_groups: Dict[tuple, List[_PendingObservation]] = {}
        vtilde_groups: Dict[tuple, List[_PendingObservation]] = {}
        for entry in pending:
            if entry.quantized is not None:
                quantized = entry.quantized
                key = (
                    quantized.config,
                    quantized.num_tx,
                    quantized.num_streams,
                    quantized.num_subcarriers,
                )
                quantized_groups.setdefault(key, []).append(entry)
            else:
                assert entry.v_tilde is not None
                vtilde_groups.setdefault(entry.v_tilde.shape, []).append(entry)

        open_set = self._open_set is not None
        rejected = 0
        hist = np.zeros(SCORE_HISTOGRAM_BINS, dtype=np.int64)

        for (config, num_tx, num_streams, _), entries in quantized_groups.items():
            tick = time.perf_counter_ns()
            q_phi, q_psi = self._stage_codewords(entries)
            accumulator = reconstruct_accumulator_quantized(
                q_phi,
                q_psi,
                config,
                num_tx,
                num_streams,
                fast=fast,
                arena=self._arena,
            )
            tock = time.perf_counter_ns()
            stage_ns["reconstruct"] += tock - tick
            stage_calls["reconstruct"] += 1
            features = extractor.transform_accumulator(
                accumulator, num_streams, arena=self._arena
            )
            tick = time.perf_counter_ns()
            stage_ns["features"] += tick - tock
            stage_calls["features"] += 1
            ids, confidences, scores, accepted = self._classify_features(features)
            tock = time.perf_counter_ns()
            stage_ns["inference"] += tock - tick
            stage_calls["inference"] += 1
            if open_set:
                rejected += int(len(accepted) - np.count_nonzero(accepted))
                hist += self._histogram(scores)
            self._emit_results(
                entries, ids, confidences, scores, accepted, results, index_of
            )

        for entries in vtilde_groups.values():
            tick = time.perf_counter_ns()
            v_batch = self._stage_batch(entries)
            tock = time.perf_counter_ns()
            stage_ns["reconstruct"] += tock - tick
            stage_calls["reconstruct"] += 1
            features = extractor.transform_matrices(v_batch)
            tick = time.perf_counter_ns()
            stage_ns["features"] += tick - tock
            stage_calls["features"] += 1
            ids, confidences, scores, accepted = self._classify_features(features)
            tock = time.perf_counter_ns()
            stage_ns["inference"] += tock - tick
            stage_calls["inference"] += 1
            if open_set:
                rejected += int(len(accepted) - np.count_nonzero(accepted))
                hist += self._histogram(scores)
            self._emit_results(
                entries, ids, confidences, scores, accepted, results, index_of
            )

        elapsed = time.perf_counter() - started
        # Publish the whole batch's counters atomically so concurrent stats
        # snapshots never see frames_out without the matching batches /
        # inference_seconds update.
        with self._stats_lock:
            self._stats.frames_out += len(pending)
            self._stats.batches += 1
            self._stats.inference_seconds += elapsed
            self._stats.frames_rejected += rejected
            if open_set:
                for bin_index in range(SCORE_HISTOGRAM_BINS):
                    self._score_hist[bin_index] += int(hist[bin_index])
            for name in STAGE_NAMES:
                totals = self._stage_totals[name]
                totals[0] += stage_calls[name]
                totals[1] += stage_ns[name]

        ordered = [result for result in results if result is not None]
        drift = self._drift
        for result in ordered:
            self._windows.append(result)
            if drift is not None:
                drift.observe(result.source, result.score)
        return ordered

    @staticmethod
    @hot_path
    def _histogram(scores: np.ndarray) -> np.ndarray:
        """Bin a batch of [0, 1] scores into the score histogram."""
        bins = np.clip(scores, 0.0, 1.0) * SCORE_HISTOGRAM_BINS
        bins = np.minimum(bins.astype(np.int64), SCORE_HISTOGRAM_BINS - 1)
        return np.bincount(bins, minlength=SCORE_HISTOGRAM_BINS)
