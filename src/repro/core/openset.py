"""Open-set authentication: rejecting transmitters outside the enrolled set.

The paper's motivating scenario (spectrum-access enforcement) needs more than
closed-set classification: a monitor must also flag transmissions from radios
it has *never* seen.  This module adds that capability on top of the trained
:class:`~repro.core.classifier.DeepCsiClassifier`:

* :class:`OpenSetAuthenticator` scores each feedback sample with either the
  maximum softmax probability or the distance to the nearest enrolled-class
  centroid in penultimate feature space (here: the softmax input logits), and
  rejects samples whose score falls below a threshold.
* :func:`calibrate_threshold` picks the threshold from enrolled-device data
  for a target false-rejection rate (:func:`calibrate_threshold_far` is the
  impostor-side dual for a target false-accept rate).
* :func:`evaluate_open_set` sweeps the threshold and reports the detection
  metrics (false-accept and false-reject rates, AUROC).
* :class:`OpenSetPolicy` is the engine-facing form of an authenticator: a
  picklable bundle of (scoring rule, threshold, centroid statistics) whose
  :meth:`~OpenSetPolicy.score_outputs` scores a whole micro-batch from the
  classifier outputs the streaming hot path already computes, so the
  :class:`~repro.core.engine.InferenceEngine` can reject without a second
  forward pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.annotations import hot_path
from repro.core.classifier import DeepCsiClassifier
from repro.datasets.containers import FeedbackSample


class OpenSetError(ValueError):
    """Raised for invalid open-set-authentication usage."""


#: Supported scoring rules.
SCORING_RULES = ("max_softmax", "negative_entropy", "centroid_distance")


@dataclass(frozen=True)
class OpenSetDecision:
    """Decision for one sample.

    Attributes
    ----------
    predicted_module_id:
        The closed-set prediction (most likely enrolled module).
    score:
        Known-ness score (higher means more likely to be an enrolled module).
    accepted:
        ``True`` when the score reaches the authenticator threshold.
    """

    predicted_module_id: int
    score: float
    accepted: bool


@dataclass(frozen=True)
class OpenSetMetrics:
    """Detection metrics of an open-set evaluation.

    Attributes
    ----------
    false_accept_rate:
        Fraction of unknown-device samples accepted as enrolled.
    false_reject_rate:
        Fraction of enrolled-device samples rejected as unknown.
    known_accuracy:
        Closed-set accuracy on the accepted enrolled-device samples.
    auroc:
        Area under the ROC curve of the known-ness score (1.0 = perfect
        separation between enrolled and unknown devices).
    threshold:
        The threshold the rates were computed at.
    """

    false_accept_rate: float
    false_reject_rate: float
    known_accuracy: float
    auroc: float
    threshold: float


@dataclass(frozen=True)
class OpenSetPolicy:
    """Engine-facing open-set decision rule (scoring + threshold).

    A plain-data snapshot of an :class:`OpenSetAuthenticator`: no classifier
    reference, so it is cheap to copy into every service shard and picklable
    for the process backend's worker startup payload.  The streaming engine
    evaluates it per micro-batch via :meth:`score_outputs`, which works on
    the logits/probabilities the closed-set prediction already produced.

    Attributes
    ----------
    scoring:
        One of :data:`SCORING_RULES`.
    threshold:
        Known-ness score below which a sample is rejected as ``UNKNOWN``.
    centroids:
        Enrolled-class logit centroids (``centroid_distance`` only).
    centroid_scale:
        Median enrolled distance used to normalise the centroid score.
    """

    scoring: str = "max_softmax"
    threshold: float = 0.5
    centroids: Optional[np.ndarray] = None
    centroid_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.scoring not in SCORING_RULES:
            raise OpenSetError(
                f"scoring must be one of {SCORING_RULES}, got {self.scoring!r}"
            )
        if self.scoring == "centroid_distance" and self.centroids is None:
            raise OpenSetError(
                "centroid_distance scoring requires enrolled centroids "
                "(build the policy from an enrolled authenticator)"
            )

    @classmethod
    def from_authenticator(cls, authenticator: "OpenSetAuthenticator") -> "OpenSetPolicy":
        """Snapshot an authenticator's decision rule (see also its ``policy()``)."""
        return cls(
            scoring=authenticator.scoring,
            threshold=authenticator.threshold,
            centroids=authenticator._centroids,
            centroid_scale=authenticator._centroid_scale,
        )

    @hot_path
    def score_outputs(
        self,
        probabilities: Optional[np.ndarray],
        logits: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Known-ness scores of one batch from the classifier outputs.

        ``probabilities`` is the ``(B, C)`` softmax batch (softmax-based
        rules); ``logits`` the matching raw outputs (only consulted by
        ``centroid_distance``).  Applies exactly the formulas of
        :meth:`OpenSetAuthenticator.scores`, so engine-side decisions match
        the sample-based API bit for bit.
        """
        if self.scoring != "centroid_distance" and probabilities is None:
            raise OpenSetError(f"{self.scoring} scoring needs the softmax batch")
        if self.scoring == "max_softmax":
            return probabilities.max(axis=1)
        if self.scoring == "negative_entropy":
            entropy = -np.sum(
                probabilities * np.log(np.clip(probabilities, 1e-12, None)), axis=1
            )
            max_entropy = np.log(probabilities.shape[1])
            return 1.0 - entropy / max_entropy
        if logits is None:
            raise OpenSetError("centroid_distance scoring needs the logits batch")
        distances = np.linalg.norm(
            logits[:, np.newaxis, :] - self.centroids[np.newaxis, :, :], axis=2
        )
        nearest = distances.min(axis=1)
        return 1.0 / (1.0 + nearest / self.centroid_scale)


class OpenSetAuthenticator:
    """Open-set wrapper around a trained closed-set classifier."""

    def __init__(
        self,
        classifier: DeepCsiClassifier,
        scoring: str = "max_softmax",
        threshold: float = 0.5,
    ) -> None:
        if scoring not in SCORING_RULES:
            raise OpenSetError(
                f"scoring must be one of {SCORING_RULES}, got {scoring!r}"
            )
        self.classifier = classifier
        self.scoring = scoring
        self.threshold = float(threshold)
        self._centroids: Optional[np.ndarray] = None
        self._centroid_scale: float = 1.0

    # ------------------------------------------------------------------ #
    # Enrolment
    # ------------------------------------------------------------------ #
    def enroll(self, samples: Sequence[FeedbackSample]) -> "OpenSetAuthenticator":
        """Fit the centroid statistics used by the distance-based score.

        Only needed for ``scoring="centroid_distance"``; the softmax-based
        scores use the classifier output directly.
        """
        if not samples:
            raise OpenSetError("cannot enroll an empty sample list")
        logits = self.classifier.predict_logits(samples)
        labels = np.array([sample.module_id for sample in samples])
        num_classes = logits.shape[1]
        centroids = np.zeros((num_classes, logits.shape[1]))
        for cls in range(num_classes):
            members = logits[labels == cls]
            if len(members):
                centroids[cls] = members.mean(axis=0)
        self._centroids = centroids
        distances = np.linalg.norm(logits - centroids[labels], axis=1)
        self._centroid_scale = float(np.median(distances) + 1e-9)
        return self

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    def policy(self) -> OpenSetPolicy:
        """The engine-facing :class:`OpenSetPolicy` of this authenticator.

        ``centroid_distance`` authenticators must be enrolled first.
        """
        if self.scoring == "centroid_distance" and self._centroids is None:
            raise OpenSetError(
                "centroid_distance scoring requires calling enroll() first"
            )
        return OpenSetPolicy.from_authenticator(self)

    def scores(self, samples: Sequence[FeedbackSample]) -> np.ndarray:
        """Known-ness score of every sample (higher = more likely enrolled)."""
        if not samples:
            raise OpenSetError("the sample list is empty")
        policy = self.policy()
        if self.scoring == "centroid_distance":
            return policy.score_outputs(None, self.classifier.predict_logits(samples))
        return policy.score_outputs(self.classifier.predict_proba(samples))

    def decide(self, samples: Sequence[FeedbackSample]) -> List[OpenSetDecision]:
        """Accept/reject decision (plus closed-set prediction) per sample."""
        scores = self.scores(samples)
        predictions = self.classifier.predict(samples)
        return [
            OpenSetDecision(
                predicted_module_id=int(prediction),
                score=float(score),
                accepted=bool(score >= self.threshold),
            )
            for prediction, score in zip(predictions, scores)
        ]


def calibrate_threshold(
    authenticator: OpenSetAuthenticator,
    enrolled_samples: Sequence[FeedbackSample],
    target_false_reject_rate: float = 0.05,
) -> float:
    """Pick the threshold that rejects at most the target fraction of enrolled data.

    The threshold is set to the ``target_false_reject_rate`` quantile of the
    enrolled-device scores and stored on the authenticator.
    """
    if not 0.0 <= target_false_reject_rate < 1.0:
        raise OpenSetError("target_false_reject_rate must be in [0, 1)")
    scores = authenticator.scores(enrolled_samples)
    threshold = float(np.quantile(scores, target_false_reject_rate))
    authenticator.threshold = threshold
    return threshold


def calibrate_threshold_far(
    authenticator: OpenSetAuthenticator,
    impostor_samples: Sequence[FeedbackSample],
    target_false_accept_rate: float = 0.05,
) -> float:
    """Pick the threshold that accepts at most the target fraction of impostors.

    The impostor-side dual of :func:`calibrate_threshold`: the threshold is
    set to the ``1 - target_false_accept_rate`` quantile of the impostor
    scores (nudged just above the maximum for a target of exactly 0, since
    acceptance is ``score >= threshold``) and stored on the authenticator.
    The CLI's ``serve --open-set --far`` path calibrates this way against a
    synthetic spoofed-feedback population when no real impostor captures are
    available.
    """
    if not 0.0 <= target_false_accept_rate < 1.0:
        raise OpenSetError("target_false_accept_rate must be in [0, 1)")
    scores = authenticator.scores(impostor_samples)
    if target_false_accept_rate == 0.0:
        threshold = float(np.nextafter(scores.max(), np.inf))
    else:
        threshold = float(np.quantile(scores, 1.0 - target_false_accept_rate))
    authenticator.threshold = threshold
    return threshold


def _auroc(known_scores: np.ndarray, unknown_scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank-sum (Mann-Whitney) statistic."""
    combined = np.concatenate([known_scores, unknown_scores])
    ranks = np.empty_like(combined)
    order = np.argsort(combined, kind="mergesort")
    sorted_scores = combined[order]
    ranks[order] = np.arange(1, len(combined) + 1, dtype=float)
    # Average ranks for ties.
    unique, inverse, counts = np.unique(
        sorted_scores, return_inverse=True, return_counts=True
    )
    if len(unique) != len(sorted_scores):
        cumulative = np.cumsum(counts)
        start = cumulative - counts + 1
        average = (start + cumulative) / 2.0
        ranks[order] = average[inverse]
    known_rank_sum = float(np.sum(ranks[: len(known_scores)]))
    n_known = len(known_scores)
    n_unknown = len(unknown_scores)
    u_statistic = known_rank_sum - n_known * (n_known + 1) / 2.0
    return float(u_statistic / (n_known * n_unknown))


def evaluate_open_set(
    authenticator: OpenSetAuthenticator,
    known_samples: Sequence[FeedbackSample],
    unknown_samples: Sequence[FeedbackSample],
    threshold: Optional[float] = None,
) -> OpenSetMetrics:
    """Evaluate the authenticator on enrolled-device and unknown-device data."""
    if not known_samples or not unknown_samples:
        raise OpenSetError("both known and unknown sample lists must be non-empty")
    threshold = authenticator.threshold if threshold is None else float(threshold)
    known_scores = authenticator.scores(known_samples)
    unknown_scores = authenticator.scores(unknown_samples)
    accepted_known = known_scores >= threshold
    accepted_unknown = unknown_scores >= threshold

    predictions = authenticator.classifier.predict(known_samples)
    truth = np.array([sample.module_id for sample in known_samples])
    if np.any(accepted_known):
        known_accuracy = float(
            np.mean(predictions[accepted_known] == truth[accepted_known])
        )
    else:
        known_accuracy = 0.0

    return OpenSetMetrics(
        false_accept_rate=float(np.mean(accepted_unknown)),
        false_reject_rate=float(np.mean(~accepted_known)),
        known_accuracy=known_accuracy,
        auroc=_auroc(known_scores, unknown_scores),
        threshold=threshold,
    )


def threshold_sweep(
    authenticator: OpenSetAuthenticator,
    known_samples: Sequence[FeedbackSample],
    unknown_samples: Sequence[FeedbackSample],
    num_points: int = 21,
) -> Dict[float, Tuple[float, float]]:
    """False-accept / false-reject rates over a grid of thresholds.

    Returns a mapping ``threshold -> (false_accept_rate, false_reject_rate)``
    suitable for plotting a DET-style trade-off curve.
    """
    if num_points < 2:
        raise OpenSetError("num_points must be >= 2")
    known_scores = authenticator.scores(known_samples)
    unknown_scores = authenticator.scores(unknown_samples)
    low = float(min(known_scores.min(), unknown_scores.min()))
    high = float(max(known_scores.max(), unknown_scores.max()))
    thresholds = np.linspace(low, high, num_points)
    sweep: Dict[float, Tuple[float, float]] = {}
    for threshold in thresholds:
        far = float(np.mean(unknown_scores >= threshold))
        frr = float(np.mean(known_scores < threshold))
        sweep[float(threshold)] = (far, frr)
    return sweep
