"""End-to-end authentication pipeline on top of the monitor-mode capture.

The pipeline reproduces the deployment scenario of Fig. 1/Fig. 3: an observer
sniffs VHT compressed-beamforming frames, reconstructs ``V~`` and runs the
trained DeepCSI classifier to authenticate the beamformer, without ever being
associated to the network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.classifier import DeepCsiClassifier
from repro.core.engine import UNKNOWN_MODULE_ID, InferenceEngine
from repro.core.service import StreamingService
from repro.datasets.containers import FeedbackSample
from repro.feedback.capture import CapturedFeedback, MonitorCapture
from repro.feedback.frames import FeedbackFrame, parse_feedback_frame
from repro.feedback.givens import reconstruct_v_matrix
from repro.feedback.quantization import dequantize_angles


class PipelineError(ValueError):
    """Raised for invalid pipeline usage."""


@dataclass(frozen=True)
class AuthenticationResult:
    """Outcome of authenticating one captured feedback.

    Attributes
    ----------
    predicted_module_id:
        Module the classifier believes produced the transmission.
    confidence:
        Softmax probability of the predicted module.
    accepted:
        Whether the prediction matches the claimed identity (when one was
        provided) and the confidence exceeds the acceptance threshold.
    claimed_module_id:
        The identity the transmitter claims (``None`` for open-set queries).
    """

    predicted_module_id: int
    confidence: float
    accepted: bool
    claimed_module_id: Optional[int] = None


class AuthenticationPipeline:
    """Authenticates beamformers from sniffed beamforming feedback."""

    def __init__(
        self,
        classifier: DeepCsiClassifier,
        confidence_threshold: float = 0.5,
    ) -> None:
        if not 0.0 <= confidence_threshold <= 1.0:
            raise PipelineError("confidence_threshold must be in [0, 1]")
        self.classifier = classifier
        self.confidence_threshold = confidence_threshold

    # ------------------------------------------------------------------ #
    # Enrollment
    # ------------------------------------------------------------------ #
    def enroll(
        self,
        samples: Sequence[FeedbackSample],
        validation_samples: Optional[Sequence[FeedbackSample]] = None,
    ):
        """Train the classifier on labelled feedback samples."""
        return self.classifier.fit(samples, validation_samples)

    # ------------------------------------------------------------------ #
    # Authentication
    # ------------------------------------------------------------------ #
    def _to_v_tilde(
        self, observation: Union[FeedbackFrame, CapturedFeedback, FeedbackSample, np.ndarray]
    ) -> np.ndarray:
        if isinstance(observation, FeedbackFrame):
            _, quantized = parse_feedback_frame(observation.payload)
            return reconstruct_v_matrix(dequantize_angles(quantized))
        if isinstance(observation, CapturedFeedback):
            return observation.v_tilde
        if isinstance(observation, FeedbackSample):
            return observation.v_tilde
        array = np.asarray(observation)
        if array.ndim != 3:
            raise PipelineError(
                "expected a FeedbackFrame, CapturedFeedback, FeedbackSample or a "
                "(K, M, N_SS) array"
            )
        return array

    def authenticate(
        self,
        observation: Union[FeedbackFrame, CapturedFeedback, FeedbackSample, np.ndarray],
        claimed_module_id: Optional[int] = None,
    ) -> AuthenticationResult:
        """Authenticate a single captured feedback.

        When ``claimed_module_id`` is given the result is *accepted* only if
        the classifier agrees with the claim with sufficient confidence;
        otherwise acceptance only requires the confidence threshold.
        """
        v_tilde = self._to_v_tilde(observation)
        predicted, confidence = self.classifier.predict_matrix(v_tilde)
        return self._decide(predicted, confidence, claimed_module_id)

    def _decide(
        self,
        predicted: int,
        confidence: float,
        claimed_module_id: Optional[int],
    ) -> AuthenticationResult:
        """Turn one classification into an accept/reject decision."""
        confident = confidence >= self.confidence_threshold
        if claimed_module_id is None:
            accepted = confident
        else:
            accepted = confident and predicted == claimed_module_id
        return AuthenticationResult(
            predicted_module_id=predicted,
            confidence=confidence,
            accepted=accepted,
            claimed_module_id=claimed_module_id,
        )

    def authenticate_batch(
        self,
        observations: Sequence[
            Union[FeedbackFrame, CapturedFeedback, FeedbackSample, np.ndarray]
        ],
        claimed_module_id: Optional[int] = None,
        batch_size: int = 64,
        workers: int = 1,
        backend: str = "threads",
    ) -> List[AuthenticationResult]:
        """Authenticate many observations through the batched engine.

        With ``workers > 1`` the observations are routed through a sharded
        :class:`~repro.core.service.StreamingService` (one engine per worker,
        sources assigned to shards by stable hash); the per-frame decisions
        are identical to the single-engine path and returned in input order.
        ``backend`` picks where those shards run: worker threads
        (``"threads"``) or worker processes fed through shared-memory ring
        buffers (``"processes"``, the multi-core option).
        """
        if not observations:
            raise PipelineError("cannot authenticate an empty observation list")
        if workers > 1:
            with StreamingService(
                self.classifier,
                num_workers=workers,
                batch_size=batch_size,
                backend=backend,
            ) as service:
                results = service.drain(observations)
        else:
            engine = InferenceEngine(self.classifier, batch_size=batch_size)
            results = engine.drain(observations)
        return [
            self._decide(
                result.predicted_module_id, result.confidence, claimed_module_id
            )
            for result in results
        ]

    def authenticate_capture(
        self,
        capture: MonitorCapture,
        source_address: Optional[str] = None,
        claimed_module_id: Optional[int] = None,
        batch_size: int = 64,
        workers: int = 1,
        backend: str = "threads",
    ) -> List[AuthenticationResult]:
        """Authenticate every matching frame stored in a monitor capture.

        The frames are decoded and classified in micro-batches of
        ``batch_size`` through the :class:`~repro.core.engine.InferenceEngine`
        hot path instead of one CNN forward per frame.  ``workers > 1``
        spreads the capture's sources over a sharded
        :class:`~repro.core.service.StreamingService` worker pool running on
        the chosen execution ``backend`` (``"threads"`` or ``"processes"``).
        """
        frames = capture.filter(source_address=source_address)
        if not frames:
            raise PipelineError("the capture contains no matching feedback frames")
        return self.authenticate_batch(
            frames,
            claimed_module_id=claimed_module_id,
            batch_size=batch_size,
            workers=workers,
            backend=backend,
        )

    def majority_vote(
        self, results: Sequence[AuthenticationResult]
    ) -> AuthenticationResult:
        """Fuse several per-frame decisions into a single verdict.

        The predicted module is the most frequent one; the confidence is the
        mean confidence of the frames voting for it.  A fused
        :data:`~repro.core.engine.UNKNOWN_MODULE_ID` winner is never
        *accepted*: a majority of open-set rejections means the traffic
        matches no enrolled transmitter, so it must not authenticate as one
        -- however confident the rejections are.
        """
        if not results:
            raise PipelineError("cannot vote over an empty result list")
        claims = {result.claimed_module_id for result in results}
        if len(claims) > 1:
            raise PipelineError(
                "cannot fuse results with inconsistent claimed identities: "
                f"{sorted(claims, key=repr)}"
            )
        votes: dict = {}
        for result in results:
            votes.setdefault(result.predicted_module_id, []).append(result.confidence)
        winner = max(votes, key=lambda module: (len(votes[module]), np.mean(votes[module])))
        confidence = float(np.mean(votes[winner]))
        claimed = claims.pop()
        confident = confidence >= self.confidence_threshold
        accepted = (
            confident
            and winner != UNKNOWN_MODULE_ID
            and (claimed is None or winner == claimed)
        )
        return AuthenticationResult(
            predicted_module_id=winner,
            confidence=confidence,
            accepted=accepted,
            claimed_module_id=claimed,
        )
