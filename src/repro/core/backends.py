"""Execution backends of the sharded streaming service.

:class:`~repro.core.service.StreamingService` owns the public API (routing,
service-wide sequence stamping, aggregated stats) and delegates *where the
shard engines run* to an :class:`ExecutionBackend`:

* :class:`ThreadBackend` (``backend="threads"``) - one worker **thread** per
  shard, each with a bounded ``queue.Queue``.  Cheap to start and shares the
  classifier clones in one address space, but the Python shards only overlap
  during BLAS calls: on a single core, and for the non-GEMM parts of the hot
  path everywhere, the GIL serialises them.
* :class:`ProcessBackend` (``backend="processes"``) - one worker **process**
  per shard.  Each child owns a private
  :class:`~repro.core.engine.InferenceEngine` whose classifier weights are
  cloned exactly once at startup (copy-on-write under the ``fork`` start
  method, one pickled copy under ``spawn``).  The classifier's compute
  backend (:mod:`repro.nn.compute`) rides along in that startup payload --
  including the int8 quantised weights and calibration scales -- while its
  scratch arenas are dropped on pickling and rebuilt lazily in the child,
  so a quantised service never re-calibrates per shard.  Afterwards the
  hot path moves
  frames through a :class:`~repro.core.transport.ShmRing` shared-memory ring
  buffer - raw angle/``V~`` bytes plus a compact header, never a pickled
  NumPy object per frame.  Compact per-frame *results* (module id,
  confidence, source, sequence) return over a ``multiprocessing`` queue,
  batched per micro-batch, together with a consistent
  :class:`~repro.core.engine.EngineStats` snapshot.

Both backends provide the same invariants the service documents:

* **routing stability** - the backend is handed a shard index computed from
  the stable source hash; one source never spans two shards;
* **verdict parity** - a shard processes its sub-stream in submission order
  with the same micro-batching as a standalone engine, so per-frame results
  and windowed verdicts are bitwise identical to a single engine fed the
  routed sub-stream.  The process backend replays each shard's result
  stream into a parent-side :class:`~repro.core.engine.SourceWindows`
  replica, which answers :meth:`verdict` without a cross-process round trip;
* **bounded-queue backpressure** - ``queue_depth`` bounds each shard's
  ingestion (queue slots for threads, shared-memory ring slots for
  processes); a full shard blocks the submitter and the stall is counted in
  ``queue_full_waits``;
* **failure visibility** - a worker that raises (or a child process that
  dies) surfaces as :class:`~repro.core.service.ServiceError` on the next
  ``submit``/``flush``/``collect`` instead of a hang.
"""

from __future__ import annotations

import copy
import multiprocessing
import queue
import threading
from collections import deque
from dataclasses import replace
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.engine import (
    EngineResult,
    EngineStats,
    InferenceEngine,
    MajorityVerdict,
    Observation,
    SourceWindows,
)
from repro.core.lifecycle import DriftMonitor, DriftStatus, ModelVersion
from repro.core.transport import (
    RECORD_CODEWORDS,
    RECORD_FLUSH,
    RECORD_FRAME,
    RECORD_MODEL_SWAP,
    RECORD_STOP,
    ShmRing,
    pack_array_record,
    pack_codeword_record,
    pack_control_record,
    pack_frame_record,
    pack_model_swap_record,
)
from repro.datasets.containers import FeedbackSample
from repro.feedback.capture import CapturedFeedback
from repro.feedback.frames import FeedbackFrame
from repro.feedback.quantization import QuantizedAngles

if TYPE_CHECKING:
    from repro.core.classifier import DeepCsiClassifier

#: Names accepted by ``StreamingService(backend=...)`` / ``serve --backend``.
BACKEND_NAMES = ("threads", "processes")


class WorkerFailure(RuntimeError):
    """Internal: a shard worker failed (wrapped in ServiceError upstream)."""


# --------------------------------------------------------------------------- #
# Thread backend
# --------------------------------------------------------------------------- #
class _FlushRequest:
    """Control token: flush the shard engine, then signal ``done``."""

    def __init__(self, stop: bool = False) -> None:
        self.done = threading.Event()
        self.stop = stop


class _SwapRequest:
    """Control token: install a model version at the shard's batch boundary."""

    def __init__(self, version: ModelVersion) -> None:
        self.done = threading.Event()
        self.version = version


class _ThreadShard:
    """One worker thread: a private engine, its queue and its bookkeeping."""

    def __init__(self, index: int, engine: InferenceEngine, depth: int) -> None:
        self.index = index
        self.engine = engine
        self.queue: "queue.Queue" = queue.Queue(maxsize=depth)
        self.lock = threading.Lock()
        #: Global sequence numbers of the observations handed to the engine,
        #: in order; popped as the engine emits their results.
        self.sequences: Deque[int] = deque()
        self.thread: Optional[threading.Thread] = None


class ThreadBackend:
    """Shards as daemon threads over bounded queues (the PR-2 design)."""

    name = "threads"

    def __init__(
        self,
        classifier: "DeepCsiClassifier",
        num_workers: int,
        queue_depth: int,
        engine_kwargs: dict,
    ) -> None:
        self._completed: Deque[EngineResult] = deque()
        self._failure: Optional[BaseException] = None
        self._queue_full_waits = 0  # guarded-by: _counter_lock
        self._counter_lock = threading.Lock()
        self.shards: List[_ThreadShard] = []
        for index in range(num_workers):
            engine = InferenceEngine(copy.deepcopy(classifier), **engine_kwargs)
            shard = _ThreadShard(index, engine, queue_depth)
            shard.thread = threading.Thread(
                target=self._worker_loop,
                args=(shard,),
                name=f"repro-shard-{index}",
                daemon=True,
            )
            self.shards.append(shard)
        for shard in self.shards:
            shard.thread.start()

    # -- submission ---------------------------------------------------- #
    def submit(
        self,
        shard_index: int,
        sequence: int,
        observation: Observation,
        source: str,
    ) -> None:
        shard = self.shards[shard_index]
        item = (sequence, observation, source)
        try:
            shard.queue.put_nowait(item)
        except queue.Full:
            with self._counter_lock:
                self._queue_full_waits += 1
            shard.queue.put(item)

    def flush(self) -> None:
        requests = []
        for shard in self.shards:
            request = _FlushRequest()
            shard.queue.put(request)
            requests.append(request)
        for request in requests:
            request.done.wait()

    def swap(self, version: ModelVersion) -> None:
        """Install a model version into every shard at a batch boundary.

        Each shard flushes its buffered frames under the old weights first
        (inside :meth:`InferenceEngine.install_model`), so no frame is
        dropped and none is split across versions.  The swap token rides the
        same queue as the frames, which orders it against in-flight
        submissions exactly like the process backend's ring record.
        """
        requests = []
        for shard in self.shards:
            request = _SwapRequest(version)
            shard.queue.put(request)
            requests.append(request)
        for request in requests:
            request.done.wait()
        self.raise_if_failed()

    def poll(self) -> List[EngineResult]:
        results: List[EngineResult] = []
        while True:
            try:
                results.append(self._completed.popleft())
            except IndexError:
                return results

    # -- introspection -------------------------------------------------- #
    def verdict(self, shard_index: int, source: str) -> MajorityVerdict:
        shard = self.shards[shard_index]
        with shard.lock:
            return shard.engine.verdict(source)

    def sources(self) -> List[str]:
        names: List[str] = []
        for shard in self.shards:
            with shard.lock:
                names.extend(shard.engine.sources)
        return sorted(names)

    def worker_stats(self) -> Tuple[EngineStats, ...]:
        # engine.stats is already a consistent snapshot (single writer,
        # published under the engine's stats lock).
        return tuple(shard.engine.stats for shard in self.shards)

    def drift_snapshot(self) -> Tuple[DriftStatus, ...]:
        """Per-source drift state across all shards, sorted by source.

        Routing pins every source to one shard, so the per-shard snapshots
        are disjoint and merging is a plain sorted concatenation.
        """
        merged: List[DriftStatus] = []
        for shard in self.shards:
            merged.extend(shard.engine.drift_snapshot())
        return tuple(sorted(merged, key=lambda status: status.source))

    @property
    def queue_full_waits(self) -> int:
        with self._counter_lock:
            waits = self._queue_full_waits
        return waits

    def raise_if_failed(self) -> None:
        if self._failure is not None:
            raise WorkerFailure(str(self._failure)) from self._failure

    # -- lifecycle ------------------------------------------------------ #
    def close(self) -> None:
        requests = []
        for shard in self.shards:
            request = _FlushRequest(stop=True)
            shard.queue.put(request)
            requests.append(request)
        for request in requests:
            request.done.wait()
        for shard in self.shards:
            shard.thread.join()

    # -- worker side ----------------------------------------------------- #
    def _worker_loop(self, shard: _ThreadShard) -> None:
        while True:
            # Drain greedily: after the blocking get, grab everything already
            # queued so one thread wake-up handles a whole run of items (far
            # fewer queue handshakes and context switches per frame).
            items = [shard.queue.get()]
            while True:
                try:
                    items.append(shard.queue.get_nowait())
                except queue.Empty:
                    break
            for item in items:
                if self._handle(shard, item):
                    return

    def _handle(self, shard: _ThreadShard, item: object) -> bool:
        """Process one queued item; returns True when the worker must stop."""
        if isinstance(item, _FlushRequest):
            try:
                if self._failure is None:
                    with shard.lock:
                        results = shard.engine.flush()
                    self._emit(shard, results)
            except BaseException as exc:  # noqa: BLE001 - reported upstream
                self._failure = exc
                shard.sequences.clear()
            finally:
                item.done.set()
            return item.stop
        if isinstance(item, _SwapRequest):
            try:
                if self._failure is None:
                    with shard.lock:
                        results = shard.engine.install_model(item.version)
                    self._emit(shard, results)
            except BaseException as exc:  # noqa: BLE001 - reported upstream
                self._failure = exc
                shard.sequences.clear()
            finally:
                item.done.set()
            return False
        if self._failure is not None:
            # A shard already failed: keep draining so submitters never
            # deadlock on a full queue, but stop doing work.
            return False
        sequence, observation, source = item
        try:
            shard.sequences.append(sequence)
            with shard.lock:
                results = shard.engine.submit(observation, source=source)
            self._emit(shard, results)
        except BaseException as exc:  # noqa: BLE001 - reported upstream
            self._failure = exc
            shard.sequences.clear()
        return False

    def _emit(self, shard: _ThreadShard, results: List[EngineResult]) -> None:
        """Re-stamp engine-local sequences with the service-wide ones."""
        for result in results:
            self._completed.append(
                replace(result, sequence=shard.sequences.popleft())
            )


# --------------------------------------------------------------------------- #
# Process backend
# --------------------------------------------------------------------------- #
def _stats_tuple(
    engine: InferenceEngine,
) -> Tuple[int, int, int, float, int, int, Tuple[int, ...]]:
    stats = engine.stats  # consistent snapshot
    return (
        stats.frames_in,
        stats.frames_out,
        stats.batches,
        stats.inference_seconds,
        stats.frames_rejected,
        stats.model_version,
        stats.score_histogram,
    )


def _shard_worker_main(
    shard_index: int,
    classifier: "DeepCsiClassifier",
    engine_kwargs: dict,
    ring: ShmRing,
    results: "multiprocessing.queues.Queue",
) -> None:
    """Entry point of one shard worker process.

    Builds the private engine (the one-time weight clone), then loops over
    the shared-memory ring: observation records feed the engine through the
    same submission path as the thread backend, control records flush/stop.
    Results are re-stamped with the service-wide sequence numbers and shipped
    back per micro-batch, together with a consistent stats snapshot.
    """
    engine = InferenceEngine(classifier, **engine_kwargs)
    sequences: Deque[int] = deque()
    failed = False

    def ship(batch: List[EngineResult]) -> None:
        if not batch:
            return
        compact = [
            (
                sequences.popleft(),
                result.predicted_module_id,
                result.confidence,
                result.source,
                result.timestamp_s,
                result.score,
                result.accepted,
                result.model_version,
            )
            for result in batch
        ]
        results.put(("results", shard_index, compact, _stats_tuple(engine)))

    while True:
        record = ring.get()
        if record.kind == RECORD_MODEL_SWAP:
            # A swap is an epoch barrier exactly like a flush: everything
            # buffered is classified under the old weights (and shipped),
            # then the new version is installed.  The ack goes back even on
            # a failed shard so the parent's swap barrier never hangs.
            swap = record.swap
            assert swap is not None
            if not failed:
                try:
                    version = ModelVersion.from_bytes(
                        swap.blob, expected_version=swap.version
                    )
                    ship(engine.install_model(version))
                except BaseException as exc:  # noqa: BLE001 - reported upstream
                    failed = True
                    sequences.clear()
                    results.put(
                        ("error", shard_index, f"{type(exc).__name__}: {exc}")
                    )
            results.put(
                ("swapped", shard_index, swap.version, _stats_tuple(engine))
            )
            continue
        if record.kind in (RECORD_FLUSH, RECORD_STOP):
            if not failed:
                try:
                    ship(engine.flush())
                except BaseException as exc:  # noqa: BLE001 - reported upstream
                    failed = True
                    sequences.clear()
                    results.put(
                        ("error", shard_index, f"{type(exc).__name__}: {exc}")
                    )
            if record.kind == RECORD_STOP:
                results.put(("stopped", shard_index, _stats_tuple(engine)))
                ring.close()
                return
            results.put(
                ("flushed", shard_index, record.sequence, _stats_tuple(engine))
            )
            continue
        if failed:
            # Keep consuming so the producer never deadlocks on a full ring.
            continue
        try:
            sequences.append(record.sequence)
            if record.kind == RECORD_FRAME:
                out = engine.submit_frame_payload(
                    record.payload, record.source, record.timestamp_s
                )
            elif record.kind == RECORD_CODEWORDS:
                out = engine.submit_quantized(
                    record.quantized, record.source, record.timestamp_s
                )
            else:
                out = engine.submit_decoded(
                    record.array, record.source, record.timestamp_s
                )
            ship(out)
        except BaseException as exc:  # noqa: BLE001 - reported upstream
            failed = True
            sequences.clear()
            results.put(("error", shard_index, f"{type(exc).__name__}: {exc}"))


class _ProcessShard:
    """Parent-side handle of one worker process."""

    def __init__(
        self,
        index: int,
        ring: ShmRing,
        windows: SourceWindows,
        drift: Optional[DriftMonitor] = None,
    ) -> None:
        self.index = index
        self.ring = ring
        self.windows = windows
        #: Parent-side drift replica, fed from the replayed result stream in
        #: arrival order -- identical trajectories to the worker's monitor.
        self.drift = drift
        self.process: Optional[multiprocessing.Process] = None
        self.stats = EngineStats()
        self.lock = threading.Lock()  # serialises producers on this ring
        self.stopped = False


class ProcessBackend:
    """Shards as child processes fed through shared-memory ring buffers."""

    name = "processes"

    #: Default ring slot size; one slot comfortably fits the paper's 80 MHz
    #: geometry ((234, 3, 2) complex128 ~ 22 KiB + header), larger frames
    #: span several consecutive slots automatically.
    DEFAULT_SLOT_BYTES = 32768

    def __init__(
        self,
        classifier: "DeepCsiClassifier",
        num_workers: int,
        queue_depth: int,
        engine_kwargs: dict,
        slot_bytes: Optional[int] = None,
    ) -> None:
        # fork clones the trained classifier into each child copy-on-write
        # (the "weights cloned once at startup" contract); spawn is the
        # portable fallback and pickles it once per worker instead.
        methods = multiprocessing.get_all_start_methods()
        self._context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._results_queue = self._context.Queue()
        self._completed: Deque[EngineResult] = deque()
        self._failure: Optional[str] = None
        self._queue_full_waits = 0  # guarded-by: _counter_lock
        self._flush_acks: Dict[int, set] = {}
        self._swap_acks: Dict[int, set] = {}
        self._stopped_shards: set = set()
        self._flush_id = 0
        self._drain_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._lifecycle_lock = threading.Lock()
        self._closed = False
        vote_window = engine_kwargs.get("vote_window", 16)
        max_sources = engine_kwargs.get("max_sources", 1024)
        reject_streak = engine_kwargs.get("reject_streak", 3)
        drift_config = engine_kwargs.get("drift")
        slot_bytes = self.DEFAULT_SLOT_BYTES if slot_bytes is None else slot_bytes
        self.shards: List[_ProcessShard] = []
        try:
            for index in range(num_workers):
                ring = ShmRing(self._context, queue_depth, slot_bytes)
                shard = _ProcessShard(
                    index,
                    ring,
                    SourceWindows(vote_window, max_sources, reject_streak),
                    drift=(
                        DriftMonitor(drift_config)
                        if drift_config is not None
                        else None
                    ),
                )
                shard.process = self._context.Process(
                    target=_shard_worker_main,
                    args=(
                        index,
                        classifier,
                        engine_kwargs,
                        ring,
                        self._results_queue,
                    ),
                    name=f"repro-shard-{index}",
                    daemon=True,
                )
                self.shards.append(shard)
            for shard in self.shards:
                shard.process.start()
        except BaseException:
            for shard in self.shards:
                shard.ring.unlink()
            raise

    @property
    def segment_names(self) -> List[str]:
        """Shared-memory segment names (exposed for the leak tests)."""
        return [shard.ring.name for shard in self.shards]

    # -- submission ---------------------------------------------------- #
    def submit(
        self,
        shard_index: int,
        sequence: int,
        observation: Observation,
        source: str,
    ) -> None:
        record = self._encode(sequence, observation, source)
        shard = self.shards[shard_index]
        with shard.lock:
            shard.ring.put(
                record,
                on_wait=self._count_backpressure,
                liveness=lambda: self._check_worker_alive(shard),
            )
        # Opportunistically drain finished results so the return queue never
        # accumulates a whole run's worth of messages.
        self._drain(block=False)

    def _encode(self, sequence: int, observation: Observation, source: str) -> bytes:
        if isinstance(observation, FeedbackFrame):
            return pack_frame_record(
                sequence, source, observation.timestamp_s, observation.payload
            )
        if isinstance(observation, (CapturedFeedback, FeedbackSample)):
            return pack_array_record(
                sequence,
                source,
                observation.timestamp_s,
                np.asarray(observation.v_tilde),
            )
        if isinstance(observation, QuantizedAngles):
            # Codewords ride the ring as compact int16 payloads (~8x smaller
            # than the complex128 V~ record for the same geometry); the
            # worker-side engine reconstructs on its own arena.
            return pack_codeword_record(sequence, source, 0.0, observation)
        # Anything else is handed to the worker engine as an array, which
        # validates the (K, M, N_SS) shape there - same point of failure as
        # the thread backend.
        return pack_array_record(sequence, source, 0.0, np.asarray(observation))

    def _count_backpressure(self) -> None:
        with self._counter_lock:
            self._queue_full_waits += 1

    def _check_worker_alive(self, shard: _ProcessShard) -> None:
        process = shard.process
        if process is not None and not process.is_alive():
            self._failure = (
                f"worker process {shard.index} died "
                f"(exit code {process.exitcode})"
            )
            raise WorkerFailure(self._failure)

    def _check_all_alive(self) -> None:
        for shard in self.shards:
            if not shard.stopped:
                self._check_worker_alive(shard)

    def flush(self) -> None:
        with self._lifecycle_lock:
            self._flush_id += 1
            flush_id = self._flush_id
            self._flush_acks[flush_id] = set()
            for shard in self.shards:
                with shard.lock:
                    shard.ring.put(
                        pack_control_record(RECORD_FLUSH, flush_id),
                        on_wait=self._count_backpressure,
                        liveness=lambda shard=shard: self._check_worker_alive(
                            shard
                        ),
                    )
            while len(self._flush_acks[flush_id]) < len(self.shards):
                if not self._drain(block=True):
                    self._check_all_alive()
            del self._flush_acks[flush_id]

    def swap(self, version: ModelVersion) -> None:
        """Install a model version into every worker process.

        The version is serialised once and enqueued on every shard's ring as
        a :data:`RECORD_MODEL_SWAP` record; FIFO ordering against in-flight
        frame records gives each shard its epoch barrier for free.  Blocks
        until every live shard acks the install (a dead worker raises
        instead of hanging the barrier).
        """
        record = pack_model_swap_record(
            0, version.version, version.to_bytes(), version.open_set_threshold
        )
        with self._lifecycle_lock:
            acks = self._swap_acks.setdefault(version.version, set())
            try:
                for shard in self.shards:
                    with shard.lock:
                        shard.ring.put(
                            record,
                            on_wait=self._count_backpressure,
                            liveness=lambda shard=shard: self._check_worker_alive(
                                shard
                            ),
                        )
                while len(acks) < len(self.shards):
                    if not self._drain(block=True):
                        self._check_all_alive()
            finally:
                self._swap_acks.pop(version.version, None)
        self.raise_if_failed()

    def poll(self) -> List[EngineResult]:
        self._drain(block=False)
        results: List[EngineResult] = []
        while True:
            try:
                results.append(self._completed.popleft())
            except IndexError:
                return results

    # -- result return path --------------------------------------------- #
    def _drain(self, block: bool) -> bool:
        """Process queued worker messages; returns True if any were seen.

        Only one thread drains at a time; opportunistic (non-blocking)
        drains simply skip when another thread already holds the lock.
        """
        if block:
            self._drain_lock.acquire()
        elif not self._drain_lock.acquire(blocking=False):
            return False
        seen = False
        try:
            while True:
                try:
                    if block and not seen:
                        message = self._results_queue.get(timeout=0.1)
                    else:
                        message = self._results_queue.get_nowait()
                except queue.Empty:
                    return seen
                seen = True
                self._dispatch(message)
        finally:
            self._drain_lock.release()

    def _dispatch(self, message: tuple) -> None:
        kind, shard_index = message[0], message[1]
        shard = self.shards[shard_index]
        if kind == "results":
            _, _, compact, stats = message
            for (
                sequence,
                module_id,
                confidence,
                source,
                timestamp_s,
                score,
                accepted,
                model_version,
            ) in compact:
                result = EngineResult(
                    predicted_module_id=module_id,
                    confidence=confidence,
                    source=source,
                    sequence=sequence,
                    timestamp_s=timestamp_s,
                    score=score,
                    accepted=accepted,
                    model_version=model_version,
                )
                self._completed.append(result)
                # Replay into the parent-side window replica so verdicts are
                # answered locally with the exact shard-engine semantics.
                shard.windows.append(result)
                if shard.drift is not None:
                    shard.drift.observe(source, score)
            self._apply_stats(shard, stats)
        elif kind == "flushed":
            _, _, flush_id, stats = message
            self._apply_stats(shard, stats)
            acks = self._flush_acks.get(flush_id)
            if acks is not None:
                acks.add(shard_index)
        elif kind == "swapped":
            _, _, swap_version, stats = message
            self._apply_stats(shard, stats)
            acks = self._swap_acks.get(swap_version)
            if acks is not None:
                acks.add(shard_index)
        elif kind == "stopped":
            _, _, stats = message
            self._apply_stats(shard, stats)
            shard.stopped = True
            self._stopped_shards.add(shard_index)
        elif kind == "error":
            _, _, text = message
            if self._failure is None:
                self._failure = f"worker process {shard_index} failed: {text}"

    @staticmethod
    def _apply_stats(
        shard: _ProcessShard,
        stats: Tuple[int, int, int, float, int, int, Tuple[int, ...]],
    ) -> None:
        (
            frames_in,
            frames_out,
            batches,
            inference_seconds,
            frames_rejected,
            model_version,
            score_histogram,
        ) = stats
        shard.stats = EngineStats(
            frames_in=frames_in,
            frames_out=frames_out,
            batches=batches,
            inference_seconds=inference_seconds,
            frames_rejected=frames_rejected,
            model_version=model_version,
            score_histogram=tuple(score_histogram),
        )

    # -- introspection -------------------------------------------------- #
    def verdict(self, shard_index: int, source: str) -> MajorityVerdict:
        self._drain(block=False)
        return self.shards[shard_index].windows.verdict(source)

    def sources(self) -> List[str]:
        self._drain(block=False)
        names: List[str] = []
        for shard in self.shards:
            names.extend(shard.windows.sources)
        return sorted(names)

    def worker_stats(self) -> Tuple[EngineStats, ...]:
        self._drain(block=False)
        return tuple(replace(shard.stats) for shard in self.shards)

    def drift_snapshot(self) -> Tuple[DriftStatus, ...]:
        """Per-source drift state from the parent-side replicas."""
        self._drain(block=False)
        merged: List[DriftStatus] = []
        for shard in self.shards:
            if shard.drift is not None:
                merged.extend(shard.drift.snapshot())
        return tuple(sorted(merged, key=lambda status: status.source))

    @property
    def queue_full_waits(self) -> int:
        with self._counter_lock:
            waits = self._queue_full_waits
        return waits

    def raise_if_failed(self) -> None:
        self._drain(block=False)
        if self._failure is not None:
            raise WorkerFailure(self._failure)

    # -- lifecycle ------------------------------------------------------ #
    def close(self) -> None:
        """Stop the workers, join them and release every shm segment.

        Best effort: a crashed worker must not leave the parent hanging or
        the shared-memory segments linked, so every step degrades to
        terminate + unlink instead of raising.
        """
        if self._closed:
            return
        self._closed = True
        try:
            for shard in self.shards:
                try:
                    with shard.lock:
                        shard.ring.put(
                            pack_control_record(RECORD_STOP),
                            liveness=lambda shard=shard: self._check_worker_alive(
                                shard
                            ),
                        )
                except Exception:  # noqa: BLE001 - dead worker; still clean up
                    continue
            deadline = 100  # x 0.1s drain timeout = 10s overall bound
            while len(self._stopped_shards) < len(self.shards) and deadline > 0:
                if not self._drain(block=True):
                    deadline -= 1
                    if any(
                        not shard.stopped and not shard.process.is_alive()
                        for shard in self.shards
                    ):
                        break
        finally:
            for shard in self.shards:
                if shard.process is not None:
                    shard.process.join(timeout=5.0)
                    if shard.process.is_alive():  # pragma: no cover - safety
                        shard.process.terminate()
                        shard.process.join(timeout=5.0)
            for shard in self.shards:
                shard.ring.unlink()
            self._results_queue.close()
            self._results_queue.join_thread()


def make_backend(
    backend: str,
    classifier: "DeepCsiClassifier",
    num_workers: int,
    queue_depth: int,
    engine_kwargs: dict,
    slot_bytes: Optional[int] = None,
) -> Union["ThreadBackend", "ProcessBackend"]:
    """Instantiate the named execution backend."""
    if backend == "threads":
        return ThreadBackend(classifier, num_workers, queue_depth, engine_kwargs)
    if backend == "processes":
        return ProcessBackend(
            classifier, num_workers, queue_depth, engine_kwargs, slot_bytes
        )
    raise ValueError(
        f"unknown execution backend {backend!r}; expected one of {BACKEND_NAMES}"
    )


__all__ = [
    "BACKEND_NAMES",
    "ProcessBackend",
    "ThreadBackend",
    "WorkerFailure",
    "make_backend",
]
