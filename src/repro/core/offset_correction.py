"""Phase-offset correction baseline (Fig. 16 of the paper).

The paper compares DeepCSI (which learns directly from the raw I/Q samples
of ``V~``) against a variant that first applies the CSI phase-cleaning
algorithm of Meneghello et al. (ref. [36]): the cleaning removes the phase
contributions of Eq. (9) -- a constant phase term and a term linear in the
sub-carrier index -- from every antenna/stream response.

Because most of those offsets originate in the *transmitter* hardware, the
cleaning also removes a large part of the device fingerprint and the
classification accuracy drops; reproducing that drop is the purpose of this
module.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.datasets.containers import FeedbackSample


def _detrend_phase(phase: np.ndarray, subcarrier_indices: np.ndarray) -> np.ndarray:
    """Remove the best-fit affine (constant + linear-in-k) phase component."""
    design = np.stack([np.ones_like(subcarrier_indices), subcarrier_indices], axis=1)
    coeffs, *_ = np.linalg.lstsq(design, phase, rcond=None)
    return phase - design @ coeffs


def correct_phase_offsets(
    v_tilde: np.ndarray, subcarrier_indices: np.ndarray | None = None
) -> np.ndarray:
    """Apply the offset-cleaning algorithm to a ``V~`` matrix.

    For every (antenna, stream) pair the phase across sub-carriers is
    unwrapped and its affine component (constant offset plus linear slope,
    i.e. the CFO/PLL and SFO/PDD terms of Eq. (9)) is removed, while the
    magnitude is left untouched.

    Parameters
    ----------
    v_tilde:
        Complex beamforming feedback matrix of shape ``(K, M, N_SS)``.
    subcarrier_indices:
        Sub-carrier indices used as the abscissa of the linear fit; defaults
        to ``0..K-1`` (only the fit quality, not the result shape, depends on
        this choice).

    Returns
    -------
    numpy.ndarray
        The cleaned matrix, same shape as the input.
    """
    v_tilde = np.asarray(v_tilde)
    if v_tilde.ndim != 3:
        raise ValueError("v_tilde must have shape (K, M, N_SS)")
    num_subcarriers = v_tilde.shape[0]
    if subcarrier_indices is None:
        subcarrier_indices = np.arange(num_subcarriers, dtype=float)
    else:
        subcarrier_indices = np.asarray(subcarrier_indices, dtype=float)
        if subcarrier_indices.shape != (num_subcarriers,):
            raise ValueError("subcarrier_indices must have one entry per sub-carrier")

    magnitude = np.abs(v_tilde)
    cleaned = np.empty_like(v_tilde, dtype=complex)
    for antenna in range(v_tilde.shape[1]):
        for stream in range(v_tilde.shape[2]):
            phase = np.unwrap(np.angle(v_tilde[:, antenna, stream]))
            detrended = _detrend_phase(phase, subcarrier_indices)
            cleaned[:, antenna, stream] = magnitude[:, antenna, stream] * np.exp(
                1j * detrended
            )
    return cleaned


def correct_sample(sample: FeedbackSample) -> FeedbackSample:
    """Return a copy of a feedback sample with cleaned ``V~``."""
    return FeedbackSample(
        v_tilde=correct_phase_offsets(sample.v_tilde),
        module_id=sample.module_id,
        beamformee_id=sample.beamformee_id,
        position_id=sample.position_id,
        group=sample.group,
        timestamp_s=sample.timestamp_s,
        path_progress=sample.path_progress,
    )


def correct_samples(samples: Sequence[FeedbackSample]) -> list:
    """Apply :func:`correct_sample` to a list of samples."""
    return [correct_sample(sample) for sample in samples]
