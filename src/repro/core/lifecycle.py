"""Model lifecycle primitives of the always-on streaming service.

An always-on authenticator cannot stop serving to pick up a better model or
to notice that its decision quality is degrading.  This module holds the two
plain-data building blocks the engine/service/backends layers share:

* :class:`ModelVersion` -- an immutable, versioned snapshot of everything a
  shard engine needs to serve a classifier: the weight tensors, the compute
  backend name + its prepared/quantised state, and the open-set threshold.
  It serialises to a single ``.npz`` byte blob (:meth:`ModelVersion.to_bytes`)
  so the process backend can ship it over the shared-memory ring as one
  :data:`~repro.core.transport.RECORD_MODEL_SWAP` control record.
* :class:`DriftMonitor` -- per-source EWMA trajectories of the engine's
  known-ness scores.  A fast EWMA tracks the recent trend, a slow EWMA the
  long-term baseline; a source whose recent scores fall a configurable
  fraction below its own baseline is flagged as *drifting* (channel change,
  antenna swap, or an impostor slowly taking over the address).

Both are deliberately free of engine/service imports so every layer
(engine hot path, backend workers, parent-side replicas, CLI reports) can
use them without cycles.
"""

from __future__ import annotations

import io
import json
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from repro.core.classifier import DeepCsiClassifier


class LifecycleError(RuntimeError):
    """Raised for invalid model-version or drift-monitor usage."""


#: Registry name reported when no compute backend is attached.
_DEFAULT_COMPUTE = "fp64"

#: Archive key of the JSON metadata record inside a serialised version blob.
_META_KEY = "__meta__"

#: Archive key prefixes of the weight / compute-state tensors.
_WEIGHT_PREFIX = "weight/"
_STATE_PREFIX = "state/"


@dataclass(frozen=True)
class ModelVersion:
    """Versioned snapshot of a servable classifier.

    Attributes
    ----------
    version:
        Monotonic version number.  Engines refuse to install a version that
        does not increase their current one, which is what makes the
        per-verdict version stamp non-decreasing.
    weights:
        Parameter arrays keyed by their qualified names (the same
        self-describing ``"03_conv/weight"`` names the ``.npz`` weight
        archives use), so installing into a mismatched architecture fails
        loudly instead of silently scrambling layers.
    compute:
        Registry name of the compute backend the snapshot was serving with
        (``"fp64"`` when none was attached).
    compute_state:
        The backend's serialised state (e.g. int8 tensors + calibration
        scales), captured so a swapped-in quantised model never re-calibrates.
    open_set_threshold:
        Open-set rejection threshold bundled with the weights (``None`` keeps
        the engine's current threshold).
    """

    version: int
    weights: Mapping[str, np.ndarray]
    compute: str = _DEFAULT_COMPUTE
    compute_state: Mapping[str, np.ndarray] = field(default_factory=dict)
    open_set_threshold: Optional[float] = None

    def __post_init__(self) -> None:
        if self.version < 1:
            raise LifecycleError("model versions start at 1")
        if not self.weights:
            raise LifecycleError("a model version must carry weight tensors")

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_classifier(
        cls,
        classifier: "DeepCsiClassifier",
        version: int,
        open_set_threshold: Optional[float] = None,
    ) -> "ModelVersion":
        """Snapshot a trained classifier (weights + compute state) as a version."""
        model = classifier.model
        if model is None:
            raise LifecycleError("the classifier has no trained model to snapshot")
        weights = {
            name: np.array(param, copy=True) for name, param, _ in model.parameters()
        }
        backend = model.compute
        if backend is None:
            return cls(
                version=version,
                weights=weights,
                open_set_threshold=open_set_threshold,
            )
        state = {
            name: np.array(value, copy=True)
            for name, value in backend.state_dict().items()
        }
        return cls(
            version=version,
            weights=weights,
            compute=backend.name,
            compute_state=state,
            open_set_threshold=open_set_threshold,
        )

    # ------------------------------------------------------------------ #
    # Installation
    # ------------------------------------------------------------------ #
    def apply(self, classifier: "DeepCsiClassifier") -> None:
        """Install this version's weights and compute state into a classifier.

        Validates names and shapes against the live architecture *before*
        touching any tensor, so a mismatched version leaves the classifier
        exactly as it was.  The compute backend is re-attached (prepared
        against the new weights) and its captured state restored, which keeps
        e.g. int8 inference bitwise identical to the snapshotted classifier.
        """
        model = classifier.model
        if model is None:
            raise LifecycleError("cannot install a model version into an untrained classifier")
        expected = {name: param for name, param, _ in model.parameters()}
        missing = sorted(set(expected) - set(self.weights))
        unexpected = sorted(set(self.weights) - set(expected))
        if missing or unexpected:
            raise LifecycleError(
                f"model version {self.version} does not match the architecture: "
                f"missing={missing}, unexpected={unexpected}"
            )
        for name, param in expected.items():
            value = np.asarray(self.weights[name])
            if value.shape != param.shape:
                raise LifecycleError(
                    f"model version {self.version} weight {name!r} has shape "
                    f"{value.shape}, expected {param.shape}"
                )
        for name, param in expected.items():
            param[...] = self.weights[name]
        if self.compute == _DEFAULT_COMPUTE:
            model.set_compute(None)
            return
        backend = model.set_compute(self.compute)
        if self.compute_state:
            backend.load_state_dict(dict(self.compute_state))

    # ------------------------------------------------------------------ #
    # Wire form
    # ------------------------------------------------------------------ #
    def to_bytes(self) -> bytes:
        """Serialise to one ``.npz`` blob (the swap record's payload)."""
        meta = {
            "version": self.version,
            "compute": self.compute,
            "open_set_threshold": self.open_set_threshold,
        }
        arrays: Dict[str, np.ndarray] = {
            _META_KEY: np.frombuffer(
                json.dumps(meta).encode("utf-8"), dtype=np.uint8
            )
        }
        for name, array in self.weights.items():
            arrays[_WEIGHT_PREFIX + name] = np.asarray(array)
        for name, array in self.compute_state.items():
            arrays[_STATE_PREFIX + name] = np.asarray(array)
        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        return buffer.getvalue()

    @classmethod
    def from_bytes(
        cls, blob: bytes, expected_version: Optional[int] = None
    ) -> "ModelVersion":
        """Decode a blob produced by :meth:`to_bytes`.

        ``expected_version`` cross-checks the version the transport record
        header announced against the one embedded in the blob, so a payload
        that was truncated-and-reassembled or paired with the wrong header
        fails loudly instead of installing the wrong weights.
        """
        try:
            with np.load(io.BytesIO(blob)) as archive:
                stored = {name: archive[name] for name in archive.files}
        except Exception as error:
            raise LifecycleError(
                f"truncated or corrupt model-version payload: {error}"
            ) from error
        if _META_KEY not in stored:
            raise LifecycleError("model-version payload has no metadata record")
        meta = json.loads(stored.pop(_META_KEY).tobytes().decode("utf-8"))
        version = int(meta["version"])
        if expected_version is not None and version != expected_version:
            raise LifecycleError(
                f"model-version mismatch: the transport record announced "
                f"version {expected_version} but the payload carries {version}"
            )
        weights = {
            name[len(_WEIGHT_PREFIX):]: array
            for name, array in stored.items()
            if name.startswith(_WEIGHT_PREFIX)
        }
        state = {
            name[len(_STATE_PREFIX):]: array
            for name, array in stored.items()
            if name.startswith(_STATE_PREFIX)
        }
        threshold = meta.get("open_set_threshold")
        return cls(
            version=version,
            weights=weights,
            compute=str(meta.get("compute", _DEFAULT_COMPUTE)),
            compute_state=state,
            open_set_threshold=None if threshold is None else float(threshold),
        )


@dataclass(frozen=True)
class DriftConfig:
    """Hyper-parameters of the per-source drift detector.

    Attributes
    ----------
    alpha:
        Fast-EWMA smoothing factor (weight of the newest score).
    baseline_alpha:
        Slow-EWMA smoothing factor; this trajectory is the source's own
        long-term baseline the fast one is compared against.
    min_samples:
        Observations required before a source may be flagged (stops a noisy
        first handful of frames from tripping the detector).
    relative_drop:
        Flag the source when the fast EWMA falls below
        ``baseline * (1 - relative_drop)``.
    max_sources:
        Bound on tracked sources; beyond it the least-recently-updated
        trajectory is evicted (same policy as the engine's result windows).
    """

    alpha: float = 0.1
    baseline_alpha: float = 0.02
    min_samples: int = 8
    relative_drop: float = 0.25
    max_sources: int = 1024

    def __post_init__(self) -> None:
        for name in ("alpha", "baseline_alpha"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise LifecycleError(f"{name} must be in (0, 1]")
        if self.min_samples < 1:
            raise LifecycleError("min_samples must be >= 1")
        if not 0.0 < self.relative_drop < 1.0:
            raise LifecycleError("relative_drop must be in (0, 1)")
        if self.max_sources < 1:
            raise LifecycleError("max_sources must be >= 1")


@dataclass(frozen=True)
class DriftStatus:
    """Point-in-time drift state of one source.

    Attributes
    ----------
    source:
        Source address of the trajectory.
    samples:
        Number of scores observed for this source.
    score:
        Fast EWMA of the known-ness scores (the recent trend).
    baseline:
        Slow EWMA (the source's own long-term level).
    drifting:
        Whether the recent trend degraded ``relative_drop`` below baseline.
    """

    source: str
    samples: int
    score: float
    baseline: float
    drifting: bool

    @property
    def drop(self) -> float:
        """Fraction the recent trend sits below the baseline (>= 0)."""
        if self.baseline <= 0.0:
            return 0.0
        return max(0.0, 1.0 - self.score / self.baseline)


class DriftMonitor:
    """Per-source EWMA score trajectories with degradation flagging.

    Thread-safe: the engine's worker thread feeds :meth:`observe` from the
    batch hot path while stats snapshots read :meth:`snapshot` from the
    service side.  The process backend replays each shard's result stream
    into a parent-side monitor in arrival order, so parent snapshots equal
    the worker's exactly (same floats, same order).
    """

    def __init__(self, config: Optional[DriftConfig] = None) -> None:
        self.config = config if config is not None else DriftConfig()
        # source -> [samples, fast_ewma, slow_ewma]; insertion order doubles
        # as the LRU order (updated sources are re-inserted last).
        self._trajectories: Dict[str, List[float]] = {}  # guarded-by: _lock
        self._lock = threading.Lock()

    def observe(self, source: str, score: float) -> None:
        """Fold one known-ness score into the source's trajectories."""
        value = float(score)
        config = self.config
        with self._lock:
            state = self._trajectories.pop(source, None)
            if state is None:
                state = [0.0, value, value]
                while len(self._trajectories) >= config.max_sources:
                    self._trajectories.pop(next(iter(self._trajectories)))
            self._trajectories[source] = state
            state[0] += 1.0
            state[1] += config.alpha * (value - state[1])
            state[2] += config.baseline_alpha * (value - state[2])

    def _status(self, source: str, state: List[float]) -> DriftStatus:
        samples = int(state[0])
        fast, slow = state[1], state[2]
        drifting = (
            samples >= self.config.min_samples
            and slow > 0.0
            and fast < slow * (1.0 - self.config.relative_drop)
        )
        return DriftStatus(
            source=source,
            samples=samples,
            score=fast,
            baseline=slow,
            drifting=drifting,
        )

    def status(self, source: str) -> DriftStatus:
        """Drift state of one source (raises if it was never observed)."""
        with self._lock:
            state = self._trajectories.get(source)
            if state is None:
                raise LifecycleError(f"no scores observed for source {source!r} yet")
            return self._status(source, list(state))

    def snapshot(self) -> Tuple[DriftStatus, ...]:
        """Drift state of every tracked source, sorted by source address."""
        with self._lock:
            states = {name: list(state) for name, state in self._trajectories.items()}
        return tuple(
            self._status(name, state) for name, state in sorted(states.items())
        )

    def drifting_sources(self) -> Tuple[str, ...]:
        """Source addresses currently flagged as drifting."""
        return tuple(
            status.source for status in self.snapshot() if status.drifting
        )

    def clear(self) -> None:
        """Forget every trajectory."""
        with self._lock:
            self._trajectories.clear()


__all__ = [
    "DriftConfig",
    "DriftMonitor",
    "DriftStatus",
    "LifecycleError",
    "ModelVersion",
]
