"""Synthetic generation of the paper's datasets D1 (static) and D2 (dynamic).

The structure of both datasets follows Section IV-A of the paper:

* **D1** -- for every one of the 10 modules, 9 traces are collected with the
  AP fixed in position A and the two beamformees moved sideways in 10 cm
  steps (positions 1..9 of Fig. 6).  Both beamformees use ``N = N_SS = 2``.
* **D2** -- for every module, 11 traces are collected with the beamformees
  fixed in position 3: four static traces (groups ``fix1``/``fix2``, two
  each) and seven mobility traces (groups ``mob1`` with four and ``mob2``
  with three) captured while the AP walks the A-B-C-D-B-A path.  Beamformee
  1 uses ``N = N_SS = 1`` and beamformee 2 ``N = N_SS = 2``.

Every sample goes through the complete feedback pipeline: CFR with device
fingerprint, per-packet offsets and noise -> SVD -> Givens compression ->
quantisation -> reconstruction of ``V~`` (i.e. what a monitor-mode observer
obtains from the captured frame).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.containers import FeedbackDataset, FeedbackSample, Trace
from repro.feedback.givens import compress_v_matrix, reconstruct_v_matrix
from repro.feedback.quantization import QuantizationConfig, quantization_roundtrip
from repro.phy.channel import ChannelRealization, MultipathChannel
from repro.phy.fading import SpatiallyCorrelatedChannel
from repro.phy.devices import (
    AccessPoint,
    Beamformee,
    WiFiModule,
    make_beamformee,
    make_module_population,
)
from repro.phy.geometry import (
    AP_POSITION_A,
    Position,
    beamformee_positions,
    mobility_subpath,
)
from repro.phy.impairments import PacketOffsets, thermal_noise
from repro.phy.mimo import beamforming_matrix, compute_cfr
from repro.phy.mobility import waypoint_path
from repro.phy.ofdm import SubcarrierLayout, sounding_layout

#: Beamformee position used for every D2 acquisition (Fig. 6).
D2_BEAMFORMEE_POSITION = 3
#: Trace groups of dataset D2 and the number of traces in each.
D2_GROUPS: Dict[str, int] = {"fix1": 2, "fix2": 2, "mob1": 4, "mob2": 3}


@dataclass(frozen=True)
class DatasetConfig:
    """Parameters controlling the synthetic data generation.

    Attributes
    ----------
    bandwidth_mhz / carrier_frequency_hz:
        Sounded channel (defaults: 80 MHz, channel 42).
    num_modules:
        Number of Wi-Fi modules (classes).
    soundings_per_trace:
        Number of sounding rounds per trace *per beamformee*.
    snr_db:
        Channel-estimation SNR at the beamformees.
    quantization:
        Angle quantisation configuration (default: the paper's bφ=9, bψ=7).
    fingerprint_strength:
        Relative magnitude of the beamformer hardware impairments.
    beamformee_impairment_strength:
        Relative magnitude of the beamformee receive-chain impairments.
    fading_jitter:
        Packet-to-packet small-scale fading of the multipath gains.
    pa_flip_probability:
        Probability of a per-packet ``pi`` phase ambiguity on each transmit
        antenna.  The default is zero: the PLL phase ambiguity of the tested
        modules is assumed stable over a two-minute trace, so the feedback
        variability within a trace comes from fading, estimation noise and
        quantisation only (see DESIGN.md).
    mobility_yaw_std_rad:
        Standard deviation of the random yaw of the AP antenna array while it
        is carried along the D2 mobility path (the AP is moved by hand, so
        its orientation wobbles); applied to the mobility traces only.
    environment_seed:
        Seed of the environment (scatterer placement for the geometric model,
        tap delays/directions/gain fields for the correlated model).
    base_seed:
        Base seed of every per-trace random stream.
    num_scatterers:
        Number of point scatterers (geometric channel model only).
    channel_model:
        ``"correlated"`` (default) uses the spatially-correlated tapped-delay
        model of :mod:`repro.phy.fading`, whose correlation length reproduces
        the paper's position-generalisation behaviour; ``"geometric"`` uses
        the image-method multipath model of :mod:`repro.phy.channel`.
    correlation_length_m:
        Spatial correlation length of the correlated channel [m].
    rician_k:
        Line-of-sight to diffuse power ratio of the correlated channel.
    num_taps:
        Number of diffuse taps of the correlated channel.
    """

    bandwidth_mhz: int = 80
    carrier_frequency_hz: float = 5.21e9
    num_modules: int = 10
    soundings_per_trace: int = 50
    snr_db: float = 28.0
    quantization: QuantizationConfig = field(default_factory=QuantizationConfig)
    fingerprint_strength: float = 1.0
    beamformee_impairment_strength: float = 1.0
    fading_jitter: float = 0.05
    pa_flip_probability: float = 0.0
    mobility_yaw_std_rad: float = 0.2
    environment_seed: int = 11
    base_seed: int = 2022
    num_scatterers: int = 8
    channel_model: str = "correlated"
    correlation_length_m: float = 0.15
    rician_k: float = 0.5
    num_taps: int = 8

    def __post_init__(self) -> None:
        if self.num_modules < 2:
            raise ValueError("at least two modules are needed for classification")
        if self.soundings_per_trace < 1:
            raise ValueError("soundings_per_trace must be >= 1")
        if self.channel_model not in ("correlated", "geometric"):
            raise ValueError(
                "channel_model must be 'correlated' or 'geometric', "
                f"got {self.channel_model!r}"
            )

    def layout(self) -> SubcarrierLayout:
        """Sub-carrier layout implied by the configuration."""
        return sounding_layout(self.bandwidth_mhz, self.carrier_frequency_hz)

    def modules(self) -> List[WiFiModule]:
        """The module population implied by the configuration."""
        return make_module_population(
            num_modules=self.num_modules,
            fingerprint_strength=self.fingerprint_strength,
            seed=self.base_seed,
        )

    def channel(self):
        """The channel environment implied by the configuration.

        Returns a :class:`~repro.phy.fading.SpatiallyCorrelatedChannel` or a
        :class:`~repro.phy.channel.MultipathChannel` depending on
        ``channel_model``; both expose the same ``realize()`` interface.
        """
        if self.channel_model == "geometric":
            return MultipathChannel(
                num_scatterers=self.num_scatterers,
                environment_seed=self.environment_seed,
            )
        return SpatiallyCorrelatedChannel(
            num_taps=self.num_taps,
            rician_k=self.rician_k,
            correlation_length_m=self.correlation_length_m,
            environment_seed=self.environment_seed,
        )


def _observed_v_tilde(
    access_point: AccessPoint,
    beamformee: Beamformee,
    channel: MultipathChannel,
    layout: SubcarrierLayout,
    rng: np.random.Generator,
    config: DatasetConfig,
    realization: Optional[ChannelRealization] = None,
) -> np.ndarray:
    """One full sounding: CFR -> V -> angles -> quantise -> reconstruct V~."""
    cfr = compute_cfr(
        access_point,
        beamformee,
        channel,
        layout,
        rng,
        snr_db=config.snr_db,
        fading_jitter=config.fading_jitter,
        realization=realization,
        pa_flip_probability=config.pa_flip_probability,
    )
    v_matrix = beamforming_matrix(cfr, beamformee.num_streams)
    angles = compress_v_matrix(v_matrix)
    quantised = quantization_roundtrip(angles, config.quantization)
    return reconstruct_v_matrix(quantised)


def _trace_rng(config: DatasetConfig, *stream: int) -> np.random.Generator:
    """Deterministic random generator for a given trace identity."""
    return np.random.default_rng((config.base_seed, *stream))


def make_d1_beamformees(
    position_id: int, config: DatasetConfig
) -> Tuple[Beamformee, Beamformee]:
    """The two D1 beamformees (N = N_SS = 2) at the given position pair."""
    bf1_pos, bf2_pos = beamformee_positions(position_id)
    bf1 = make_beamformee(
        1, bf1_pos, num_antennas=2, num_streams=2,
        impairment_strength=config.beamformee_impairment_strength,
        seed=config.base_seed + 10_000,
    )
    bf2 = make_beamformee(
        2, bf2_pos, num_antennas=2, num_streams=2,
        impairment_strength=config.beamformee_impairment_strength,
        seed=config.base_seed + 10_000,
    )
    return bf1, bf2


def make_d2_beamformees(config: DatasetConfig) -> Tuple[Beamformee, Beamformee]:
    """The two D2 beamformees: bf1 with one stream, bf2 with two."""
    bf1_pos, bf2_pos = beamformee_positions(D2_BEAMFORMEE_POSITION)
    bf1 = make_beamformee(
        1, bf1_pos, num_antennas=1, num_streams=1,
        impairment_strength=config.beamformee_impairment_strength,
        seed=config.base_seed + 10_000,
    )
    bf2 = make_beamformee(
        2, bf2_pos, num_antennas=2, num_streams=2,
        impairment_strength=config.beamformee_impairment_strength,
        seed=config.base_seed + 10_000,
    )
    return bf1, bf2


def generate_position_trace(
    module: WiFiModule,
    position_id: int,
    config: DatasetConfig,
    trace_id: int = 0,
) -> Trace:
    """Generate one static D1 trace (one module, one beamformee position)."""
    layout = config.layout()
    channel = config.channel()
    access_point = AccessPoint(module=module, position=AP_POSITION_A)
    beamformees = make_d1_beamformees(position_id, config)
    rng = _trace_rng(config, module.module_id, position_id)

    trace = Trace(
        module_id=module.module_id,
        position_id=position_id,
        group="static",
        trace_id=trace_id,
    )
    # Static geometry: compute the multipath realisation once per beamformee
    # and let the per-packet fading perturb it.
    realizations = {
        bf.station_id: channel.realize(
            access_point.antenna_elements(),
            bf.antenna_elements(),
            layout.config.carrier_frequency_hz,
        )
        for bf in beamformees
    }
    interval_s = 0.5
    for sounding in range(config.soundings_per_trace):
        for beamformee in beamformees:
            v_tilde = _observed_v_tilde(
                access_point,
                beamformee,
                channel,
                layout,
                rng,
                config,
                realization=realizations[beamformee.station_id],
            )
            trace.add(
                FeedbackSample(
                    v_tilde=v_tilde.astype(np.complex64),
                    module_id=module.module_id,
                    beamformee_id=beamformee.station_id,
                    position_id=position_id,
                    group="static",
                    timestamp_s=sounding * interval_s,
                    path_progress=0.0,
                )
            )
    return trace


def generate_mobility_trace(
    module: WiFiModule,
    group: str,
    config: DatasetConfig,
    trace_id: int = 0,
    trace_index: int = 0,
) -> Trace:
    """Generate one D2 trace (static for the 'fix' groups, mobile otherwise)."""
    if group not in D2_GROUPS:
        raise ValueError(f"unknown D2 group {group!r}; expected one of {sorted(D2_GROUPS)}")
    layout = config.layout()
    channel = config.channel()
    beamformees = make_d2_beamformees(config)
    rng = _trace_rng(config, module.module_id, 100 + trace_id, trace_index)

    mobile = group.startswith("mob")
    num_soundings = config.soundings_per_trace
    if mobile:
        waypoints = mobility_subpath("full")
        path = waypoint_path(
            waypoints, num_soundings, jitter_std_m=0.03, rng=rng
        )
        positions = list(path.positions)
    else:
        positions = [AP_POSITION_A] * num_soundings

    trace = Trace(
        module_id=module.module_id,
        position_id=D2_BEAMFORMEE_POSITION,
        group=group,
        trace_id=trace_id,
    )
    interval_s = 0.5
    base_ap = AccessPoint(module=module, position=AP_POSITION_A)
    static_realizations: Dict[int, ChannelRealization] = {}
    if not mobile:
        static_realizations = {
            bf.station_id: channel.realize(
                base_ap.antenna_elements(),
                bf.antenna_elements(),
                layout.config.carrier_frequency_hz,
            )
            for bf in beamformees
        }
    for sounding in range(num_soundings):
        access_point = base_ap.moved_to(positions[sounding])
        if mobile and config.mobility_yaw_std_rad > 0.0:
            # The AP is carried by hand along the path, so its array yaws
            # randomly around the nominal orientation.
            access_point = access_point.rotated(
                float(rng.normal(0.0, config.mobility_yaw_std_rad))
            )
        progress = sounding / max(num_soundings - 1, 1) if mobile else 0.0
        for beamformee in beamformees:
            realization = static_realizations.get(beamformee.station_id)
            v_tilde = _observed_v_tilde(
                access_point,
                beamformee,
                channel,
                layout,
                rng,
                config,
                realization=realization,
            )
            trace.add(
                FeedbackSample(
                    v_tilde=v_tilde.astype(np.complex64),
                    module_id=module.module_id,
                    beamformee_id=beamformee.station_id,
                    position_id=D2_BEAMFORMEE_POSITION,
                    group=group,
                    timestamp_s=sounding * interval_s,
                    path_progress=progress,
                )
            )
    return trace


def generate_dataset_d1(
    config: Optional[DatasetConfig] = None,
    modules: Optional[Sequence[WiFiModule]] = None,
    position_ids: Optional[Sequence[int]] = None,
) -> FeedbackDataset:
    """Generate the static dataset D1 (9 positions x ``num_modules`` traces)."""
    config = config if config is not None else DatasetConfig()
    modules = list(modules) if modules is not None else config.modules()
    position_ids = list(position_ids) if position_ids is not None else list(range(1, 10))

    dataset = FeedbackDataset(name="D1")
    trace_id = 0
    for module in modules:
        for position_id in position_ids:
            dataset.add(
                generate_position_trace(module, position_id, config, trace_id=trace_id)
            )
            trace_id += 1
    return dataset


def generate_dataset_d2(
    config: Optional[DatasetConfig] = None,
    modules: Optional[Sequence[WiFiModule]] = None,
) -> FeedbackDataset:
    """Generate the dynamic dataset D2 (11 traces per module)."""
    config = config if config is not None else DatasetConfig()
    modules = list(modules) if modules is not None else config.modules()

    dataset = FeedbackDataset(name="D2")
    trace_id = 0
    for module in modules:
        for group, count in D2_GROUPS.items():
            for index in range(count):
                dataset.add(
                    generate_mobility_trace(
                        module, group, config, trace_id=trace_id, trace_index=index
                    )
                )
                trace_id += 1
    return dataset
